"""Deterministic parallel sweep execution.

A sweep is a grid of **cells** — (library × workload × hardware ×
policy) points — each an independent, deterministic unit of work:
rebuild the library from its constructor inputs, generate its traces,
simulate. :func:`run_sweep` fans cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and reassembles
results **by cell index**, so the merged result — per-cell numbers and
the aggregate :class:`Counters` fold — is byte-identical to a serial
run regardless of worker count or completion order. The determinism
suite pins this property.

With a :class:`~repro.parallel.cache.ContentCache`, finished cells are
memoized under a sha256 fingerprint of their full configuration; a
warm sweep re-runs nothing and changes nothing.

When an :mod:`repro.obs` tracer is installed, parallel workers record
onto private tracers and the parent splices the payloads onto its own
timeline in cell order (:meth:`~repro.obs.Tracer.absorb`), so the
merged trace is deterministic too.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.libs.base import UnsupportedWorkload
from repro.obs import Tracer, get_tracer, use_tracer
from repro.parallel.cache import CACHE_VERSION, ContentCache, fingerprint
from repro.simulator import HardwareConfig
from repro.simulator.counters import Counters
from repro.trace import Workload


def _freeze_kwargs(kwargs: dict | None) -> tuple:
    """Normalize a kwargs dict to a sorted, hashable pairs tuple."""
    if not kwargs:
        return ()
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class SweepCell:
    """One grid point: everything needed to rebuild and run it.

    The library is named, not instantiated — cells travel to worker
    processes and into cache fingerprints, so they carry constructor
    inputs rather than live objects.
    """

    library: str
    workload: Workload
    hardware: HardwareConfig
    policy: object | None = None
    #: Constructor kwargs for the library (e.g. DialgaConfig fields),
    #: as sorted (name, value) pairs.
    library_kwargs: tuple = ()

    def key(self) -> str:
        """Content-addressed cache key for this cell's result."""
        return f"cell:{CACHE_VERSION}:{fingerprint(self)}"


@dataclass
class CellResult:
    """Outcome of one cell (unsupported cells carry ``supported=False``)."""

    index: int
    library: str
    workload: Workload
    supported: bool
    throughput_gbps: float | None = None
    makespan_ns: float | None = None
    data_bytes: int = 0
    counters: Counters | None = None
    error: str | None = None
    #: Served from cache (bookkeeping; not part of result identity).
    cached: bool = field(default=False, compare=False)
    #: Worker tracer payload awaiting absorption (never compared).
    tracer_payload: dict | None = field(default=None, compare=False,
                                        repr=False)


@dataclass(frozen=True)
class SweepSpec:
    """A sweep grid. Axes iterate in the declared order; the cell list
    (and therefore every merged result) is a pure function of the spec.

    Accepts lists for any axis; they are normalized to tuples. The
    paper's comparison set is the default library axis.
    """

    libraries: tuple = ("ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA")
    workloads: tuple = ()
    hardware: tuple = ()
    policies: tuple = (None,)
    #: Per-library constructor kwargs, e.g. ``{"DIALGA": {...}}``.
    library_kwargs: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "libraries", tuple(self.libraries))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        hw = self.hardware
        if isinstance(hw, HardwareConfig):
            hw = (hw,)
        object.__setattr__(self, "hardware",
                           tuple(hw) if hw else (HardwareConfig(),))
        object.__setattr__(self, "policies", tuple(self.policies) or (None,))
        lk = self.library_kwargs
        if isinstance(lk, dict):
            lk = tuple(sorted(
                (name, _freeze_kwargs(kw)) for name, kw in lk.items()))
        object.__setattr__(self, "library_kwargs", tuple(lk))
        if not self.workloads:
            raise ValueError("a sweep needs at least one workload")

    def kwargs_for(self, library: str) -> tuple:
        for name, kw in self.library_kwargs:
            if name == library:
                return kw
        return ()

    def cells(self) -> list[SweepCell]:
        """The grid in its canonical (stable) order:
        workload-major, then hardware, then library, then policy."""
        return [
            SweepCell(lib, wl, hw, pol, self.kwargs_for(lib))
            for wl in self.workloads
            for hw in self.hardware
            for lib in self.libraries
            for pol in self.policies
        ]

    def __len__(self) -> int:
        return (len(self.workloads) * len(self.hardware)
                * len(self.libraries) * len(self.policies))


@dataclass
class SweepResult:
    """All cell results (in cell order) plus the aggregate counter fold.

    Equality covers the *results* — two sweeps over the same spec
    compare equal iff every cell number and every merged counter is
    identical, which is how the determinism suite asserts serial ≡
    parallel ≡ warm-cache. Wall-clock and scheduling metadata never
    participate.
    """

    results: list[CellResult]
    counters: Counters
    workers: int = field(default=1, compare=False)
    wall_s: float = field(default=0.0, compare=False)
    cache_stats: dict | None = field(default=None, compare=False)
    #: Worker-death / timeout accounting from the hardened executor:
    #: ``{"pool_restarts", "resubmitted_cells", "timed_out_cells",
    #: "abandoned_cells"}`` (None for serial / fault-free runs).
    fault_stats: dict | None = field(default=None, compare=False)

    def __getitem__(self, i: int) -> CellResult:
        return self.results[i]

    def __len__(self) -> int:
        return len(self.results)

    def by_library(self) -> dict[str, list[CellResult]]:
        """Cell results grouped by library, cell order preserved."""
        out: dict[str, list[CellResult]] = {}
        for r in self.results:
            out.setdefault(r.library, []).append(r)
        return out

    def to_dict(self) -> dict:
        """Deterministic JSON-able payload (no timing/scheduling data)."""
        return {
            "cells": [
                {
                    "index": r.index,
                    "library": r.library,
                    "k": r.workload.k,
                    "m": r.workload.m,
                    "block_bytes": r.workload.block_bytes,
                    "nthreads": r.workload.nthreads,
                    "op": r.workload.op,
                    "supported": r.supported,
                    "throughput_gbps": r.throughput_gbps,
                    "makespan_ns": r.makespan_ns,
                    "data_bytes": r.data_bytes,
                    "error": r.error,
                }
                for r in self.results
            ],
            "counters": self.counters.nonzero_dict(),
        }


def _build_library(cell: SweepCell):
    from repro.bench.runner import standard_libraries
    kw = dict(cell.library_kwargs)
    wl = cell.workload
    if cell.library == "DIALGA":
        return standard_libraries(wl.k, wl.m, include=("DIALGA",),
                                  dialga_kwargs=kw)[0]
    if kw:
        raise ValueError(
            f"library_kwargs not supported for {cell.library!r}")
    return standard_libraries(wl.k, wl.m, include=(cell.library,))[0]


def _run_cell(index: int, cell: SweepCell) -> CellResult:
    """Execute one cell from scratch (library rebuild + trace + sim)."""
    try:
        lib = _build_library(cell)
        out = lib.run(cell.workload, cell.hardware, policy=cell.policy)
    except UnsupportedWorkload:
        return CellResult(index, cell.library, cell.workload,
                          supported=False)
    except Exception as exc:  # defensive: one bad cell must not kill a sweep
        return CellResult(index, cell.library, cell.workload,
                          supported=True,
                          error=f"{type(exc).__name__}: {exc}")
    sim = out.sim
    return CellResult(index, cell.library, out.workload, supported=True,
                      throughput_gbps=sim.throughput_gbps,
                      makespan_ns=sim.makespan_ns,
                      data_bytes=sim.data_bytes,
                      counters=sim.counters)


def _exec_cell(payload) -> CellResult:
    """Worker entry: optionally record onto a private tracer."""
    index, cell, want_trace = payload
    _maybe_poison(index)
    if not want_trace:
        return _run_cell(index, cell)
    tracer = Tracer(f"sweep[{index}]")
    with use_tracer(tracer):
        result = _run_cell(index, cell)
    result.tracer_payload = tracer.export_payload()
    return result


def _maybe_poison(index: int) -> None:
    """Worker-death test hook: ``REPRO_SWEEP_POISON=<index>[:<flag>]``
    hard-kills the worker assigned that cell. With a flag path the kill
    fires only while the file is absent (it is created first), so the
    resubmitted attempt survives; without one, every attempt dies —
    the budget-exhaustion case. Only the fault-tolerance tests set it.
    """
    spec = os.environ.get("REPRO_SWEEP_POISON")
    if not spec:
        return
    target, _, flag = spec.partition(":")
    if index != int(target):
        return
    if flag:
        if os.path.exists(flag):
            return
        with open(flag, "w"):
            pass
    os._exit(1)


def _pool_round(todo: list, workers: int, cell_timeout_s: float | None,
                stats: dict) -> tuple[dict, list]:
    """One process-pool round over ``todo`` payloads.

    Returns ``(done, lost)``: results by cell index, plus payloads
    whose worker died (``BrokenProcessPool``) before finishing — the
    caller decides whether to resubmit those. Cells that exceed the
    per-cell timeout are *not* retried (a deterministic cell that hung
    once will hang again); they come back as error results.
    """
    done: dict[int, CellResult] = {}
    lost: list = []
    broken = hung = False
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [(p, pool.submit(_exec_cell, p)) for p in todo]
        for payload, fut in futures:
            index, cell = payload[0], payload[1]
            if broken:
                # The pool already died; salvage whatever finished.
                if (fut.done() and not fut.cancelled()
                        and fut.exception() is None):
                    done[index] = fut.result()
                else:
                    lost.append(payload)
                continue
            try:
                done[index] = fut.result(timeout=cell_timeout_s)
            except FutureTimeout:
                stats["timed_out_cells"] += 1
                fut.cancel()
                hung = True
                done[index] = CellResult(
                    index, cell.library, cell.workload, supported=True,
                    error=f"timeout: cell exceeded {cell_timeout_s:g}s")
            except BrokenProcessPool:
                broken = True
                stats["pool_restarts"] += 1
                lost.append(payload)
    finally:
        # Never block shutdown on a dead pool or a still-hung cell.
        pool.shutdown(wait=not (broken or hung), cancel_futures=True)
    return done, lost


def run_sweep(spec: SweepSpec, workers: int = 1,
              cache: ContentCache | bool | None = None, *,
              cell_timeout_s: float | None = None,
              max_resubmits: int = 2) -> SweepResult:
    """Run every cell of ``spec``; results are independent of ``workers``.

    Parameters
    ----------
    spec:
        The grid.
    workers:
        Process count. 1 runs in-process; N > 1 fans uncached cells
        out over a process pool. Output is byte-identical either way:
        cells are reassembled in grid order before any merging.
    cache:
        ``None`` — no memoization. ``True`` — a fresh in-memory
        :class:`ContentCache`. A :class:`ContentCache` — use it (pass
        one constructed with ``disk=True`` for cross-run persistence).
        Cached cells are not re-executed; a warm cache therefore
        changes wall-clock only, never results. Skipped while a tracer
        is recording (a cache hit would silently drop its spans).
    cell_timeout_s:
        Per-cell wall-clock bound (parallel runs only). A cell past it
        comes back as an error result instead of hanging the sweep; it
        is not retried.
    max_resubmits:
        Rounds of resubmission granted to cells lost to a crashed
        worker (``BrokenProcessPool``). Past the budget the lost cells
        come back as error results; the sweep itself always completes.

    Returns
    -------
    SweepResult
        Per-cell results in grid order plus the aggregate counter
        fold (folded in grid order — float-sum stable). Worker-death
        and timeout accounting, if any, lands in ``fault_stats``.
    """
    t0 = time.perf_counter()
    cells = spec.cells()
    tracer = get_tracer()
    tracing = bool(tracer.enabled)
    if cache is True:
        cache = ContentCache()
    use_cache = cache is not None and cache is not False and not tracing

    results: list[CellResult | None] = [None] * len(cells)
    pending: list[tuple[int, SweepCell]] = []
    for i, cell in enumerate(cells):
        hit = cache.get(cell.key()) if use_cache else None
        if hit is not None:
            hit.index = i
            hit.cached = True
            results[i] = hit
        else:
            pending.append((i, cell))

    fault_stats = None
    if workers <= 1 or len(pending) <= 1:
        for i, cell in pending:
            results[i] = _run_cell(i, cell)
    else:
        stats = {"pool_restarts": 0, "resubmitted_cells": 0,
                 "timed_out_cells": 0, "abandoned_cells": 0}
        todo = [(i, cell, tracing) for i, cell in pending]
        attempts = 0
        while todo:
            done, lost = _pool_round(todo, workers, cell_timeout_s, stats)
            for index, result in done.items():
                results[index] = result
            if not lost:
                break
            if attempts >= max_resubmits:
                # Budget exhausted: surface the loss, never hang/raise.
                stats["abandoned_cells"] += len(lost)
                for payload in lost:
                    i, cell = payload[0], payload[1]
                    results[i] = CellResult(
                        i, cell.library, cell.workload, supported=True,
                        error=(f"worker died; resubmission budget "
                               f"({max_resubmits}) exhausted"))
                break
            attempts += 1
            stats["resubmitted_cells"] += len(lost)
            todo = lost
        if any(stats.values()):
            fault_stats = stats
        # Splice worker timelines in deterministic (cell) order.
        if tracing:
            for result in results:
                if result.tracer_payload:
                    tracer.absorb(result.tracer_payload)
                    result.tracer_payload = None

    if use_cache:
        for i, cell in pending:
            cached_copy = results[i]
            if cached_copy.error is not None and (
                    cached_copy.error.startswith("timeout:")
                    or cached_copy.error.startswith("worker died")):
                # Executor faults are transient — memoizing one would
                # replay a dead worker forever on warm runs.
                continue
            cache.put(cell.key(), cached_copy)

    merged = Counters()
    for result in results:
        if result.counters is not None:
            merged.merge(result.counters)
    return SweepResult(
        results=results,
        counters=merged,
        workers=workers,
        wall_s=time.perf_counter() - t0,
        cache_stats=cache.stats() if use_cache else None,
        fault_stats=fault_stats,
    )
