"""Content-addressed memoization of traces and simulation results.

Trace generation and simulation are pure functions of their inputs —
a workload, a library configuration, a :class:`HardwareConfig` — so
memoizing them is sound *by construction*: equal fingerprints imply
equal outputs, bit for bit. Keys are sha256 digests of a canonical
encoding of those inputs (exact float encoding, sorted keys, type
tags), so any change to any input — a prefetcher knob, a block size,
a DIALGA threshold — produces a different key and never a stale hit.

Three layers use this module:

* :func:`repro.simulate` — when a cache is installed (see
  :func:`install_sim_cache` / :func:`sim_cache`), repeated
  (trace, hardware) simulations are served from memory;
* :func:`repro.parallel.run_sweep` — whole sweep cells
  (library × workload × hardware × policy) memoize their results;
* benchmarks — a warm cache makes repeated figure/ablation cells
  near-free.

Values are stored *pickled*, in memory and optionally on disk under
``~/.cache/repro/`` (override with ``REPRO_CACHE_DIR``). Storing bytes
rather than live objects means every :meth:`ContentCache.get` returns
a fresh object — callers may mutate results (merge counters, attach
metadata) without corrupting the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from pathlib import Path

from repro.simulator import api as _sim_api
from repro.simulator.multicore import simulate as _simulate_raw
from repro.trace.ops import Trace

#: Bump when the canonical encoding (or anything simulated meaning)
#: changes incompatibly; invalidates every existing key.
#: v2: SimResult grew the ``fastforward`` stats field and sim keys
#: carry the fastforward flag.
CACHE_VERSION = "v2"


# -- fingerprinting ------------------------------------------------------


def canonical(obj):
    """Canonical JSON-able form of a configuration value.

    Dataclasses become type-tagged field dicts, floats are encoded
    exactly (``float.hex``), dict keys are sorted. Two configurations
    canonicalize equal iff they would drive trace generation and
    simulation identically.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dc__": type(obj).__qualname__}
        for f in fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {"__map__": sorted(
            (str(k), canonical(v)) for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return {"__f__": obj.hex()}
    if isinstance(obj, bytes):
        return {"__b__": hashlib.sha256(obj).hexdigest()}
    if isinstance(obj, Trace):
        return {"__trace__": hashlib.sha256(obj.content_key()).hexdigest()}
    raise TypeError(f"cannot fingerprint {type(obj).__name__}")


def fingerprint(obj) -> str:
    """sha256 hex digest of ``obj``'s canonical form."""
    blob = json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """sha256 of a trace's exact content (ops + data volume)."""
    return hashlib.sha256(trace.content_key()).hexdigest()


def sim_key(traces, hw, batch_ops: int = 1,
            fastforward: bool = False) -> str:
    """Cache key for ``simulate(traces, hw, batch_ops, fastforward)``.

    Fast-forwarded results are byte-identical to interpreted ones, but
    the flag is keyed anyway: the cache must never be the mechanism
    that papers over an extrapolation bug, and the attached
    ``SimResult.fastforward`` stats differ between the two paths.
    """
    h = hashlib.sha256()
    h.update(f"sim:{CACHE_VERSION}:{fingerprint(hw)}:{batch_ops}:"
             f"{int(fastforward)}:{len(traces)}".encode())
    for t in traces:
        h.update(t.content_key())
    return h.hexdigest()


# -- the store -----------------------------------------------------------


def default_cache_dir() -> Path:
    """On-disk cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ContentCache:
    """Content-addressed pickle store: in-memory, optionally on disk.

    Parameters
    ----------
    disk:
        False (default): memory only. True: persist under
        :func:`default_cache_dir`. A path: persist there.

    Disk layout is two-level (``ab/abcdef...pkl``) to keep directories
    small; writes are atomic (write to a temp name, then ``rename``),
    so concurrent sweep workers and interrupted runs never leave a
    torn entry.
    """

    def __init__(self, disk: bool | str | Path = False):
        self._mem: dict[str, bytes] = {}
        if disk is True:
            self.disk_dir: Path | None = default_cache_dir()
        elif disk:
            self.disk_dir = Path(disk).expanduser()
        else:
            self.disk_dir = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._mem)

    def _path(self, key: str) -> Path:
        return self.disk_dir / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Fetch a fresh copy of the value at ``key``, or None."""
        blob = self._mem.get(key)
        if blob is None and self.disk_dir is not None:
            path = self._path(key)
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            else:
                self._mem[key] = blob  # promote
                self.disk_hits += 1
        if blob is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(blob)

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (overwrites)."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._mem[key] = blob
        if self.disk_dir is not None:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)

    def stats(self) -> dict:
        """Hit/miss counts plus resident entry count."""
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "entries": len(self._mem)}


# -- the simulate() hook -------------------------------------------------


class SimCache:
    """Memoizes ``simulate`` through the :mod:`repro.simulator.api` seam."""

    def __init__(self, store: ContentCache):
        self.store = store

    def simulate(self, traces, hw, batch_ops: int = 1,
                 fastforward: bool = False):
        key = sim_key(traces, hw, batch_ops, fastforward)
        res = self.store.get(key)
        if res is None:
            res = _simulate_raw(traces, hw, batch_ops=batch_ops,
                                fastforward=fastforward)
            self.store.put(key, res)
        return res


def install_sim_cache(store: ContentCache | None = None) -> ContentCache:
    """Install a (trace, hardware) result cache behind
    :func:`repro.simulate`; returns the backing store."""
    # `store or ...` would discard a caller's *empty* cache: ContentCache
    # defines __len__, so a fresh store is falsy.
    store = store if store is not None else ContentCache()
    _sim_api._SIM_CACHE = SimCache(store)
    return store


def uninstall_sim_cache() -> None:
    """Remove the simulate() cache (simulations run fresh again)."""
    _sim_api._SIM_CACHE = None


@contextmanager
def sim_cache(store: ContentCache | None = None):
    """Scoped :func:`install_sim_cache`; yields the backing store."""
    previous = _sim_api._SIM_CACHE
    store = install_sim_cache(store)
    try:
        yield store
    finally:
        _sim_api._SIM_CACHE = previous
