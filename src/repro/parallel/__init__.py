"""Parallel sweep execution and content-addressed caching.

The ROADMAP's "fast as the hardware allows" goal applied to the repro
itself: benchmark grids fan out over a process pool with results
reassembled deterministically (:func:`run_sweep`), and pure
(configuration → trace → simulation) work memoizes under sha256
content fingerprints (:class:`ContentCache`), in memory and optionally
on disk under ``~/.cache/repro/``.

Quickstart::

    from repro.parallel import SweepSpec, run_sweep, ContentCache
    spec = SweepSpec(workloads=[Workload.rs(8, 4)], libraries=("ISA-L", "DIALGA"))
    cold = run_sweep(spec, workers=4, cache=(cache := ContentCache()))
    warm = run_sweep(spec, workers=1, cache=cache)
    assert cold == warm  # bit-identical, near-free

See ``docs/performance.md`` for the determinism guarantees and cache
layout.
"""

from repro.parallel.cache import (
    CACHE_VERSION,
    ContentCache,
    SimCache,
    canonical,
    default_cache_dir,
    fingerprint,
    install_sim_cache,
    sim_cache,
    sim_key,
    trace_fingerprint,
    uninstall_sim_cache,
)
from repro.parallel.sweep import (
    CellResult,
    SweepCell,
    SweepResult,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "CACHE_VERSION",
    "ContentCache",
    "SimCache",
    "canonical",
    "default_cache_dir",
    "fingerprint",
    "install_sim_cache",
    "sim_cache",
    "sim_key",
    "trace_fingerprint",
    "uninstall_sim_cache",
    "SweepCell",
    "CellResult",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
]
