"""Coding-matrix construction and GF linear algebra.

Provides the generator matrices used by every codec:

* systematic Vandermonde (ISA-L's ``gf_gen_rs_matrix`` analogue),
* Cauchy and "good" (low bit-weight) Cauchy matrices for XOR codes,
* Gaussian elimination / inversion over GF(2^w) for decoding.
"""

from repro.matrix.vandermonde import vandermonde_matrix, systematic_vandermonde
from repro.matrix.cauchy import cauchy_matrix, systematic_cauchy, optimize_cauchy_ones
from repro.matrix.invert import gf_invert_matrix, gf_solve, gf_rank

__all__ = [
    "vandermonde_matrix",
    "systematic_vandermonde",
    "cauchy_matrix",
    "systematic_cauchy",
    "optimize_cauchy_ones",
    "gf_invert_matrix",
    "gf_solve",
    "gf_rank",
]
