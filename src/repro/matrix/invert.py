"""Gaussian elimination, inversion and rank over GF(2^w).

Decoding a stripe with erasures reduces to inverting the surviving
k x k submatrix of the generator — this module is that primitive.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


def _eliminate(field: GF, M: np.ndarray) -> tuple[np.ndarray, int]:
    """Row-reduce ``M`` in place (returns the matrix and its rank)."""
    rows, cols = M.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot = None
        for r in range(rank, rows):
            if M[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != rank:
            M[[rank, pivot]] = M[[pivot, rank]]
        inv = int(field.inv(int(M[rank, col])))
        M[rank] = field.mul(M[rank], inv)
        for r in range(rows):
            if r != rank and M[r, col]:
                M[r] ^= field.mul(int(M[r, col]), M[rank])
        rank += 1
    return M, rank


def gf_rank(field: GF, A: np.ndarray) -> int:
    """Rank of ``A`` over the field."""
    M = np.array(A, dtype=field.dtype, copy=True)
    _, rank = _eliminate(field, M)
    return rank


def gf_invert_matrix(field: GF, A: np.ndarray) -> np.ndarray:
    """Invert square matrix ``A`` over GF(2^w).

    Raises
    ------
    SingularMatrixError
        If ``A`` is singular.
    """
    A = np.asarray(A, dtype=field.dtype)
    n, n2 = A.shape
    if n != n2:
        raise ValueError(f"matrix must be square, got {A.shape}")
    aug = np.zeros((n, 2 * n), dtype=field.dtype)
    aug[:, :n] = A
    aug[np.arange(n), n + np.arange(n)] = 1
    aug, rank = _eliminate(field, aug)
    if rank < n or not np.array_equal(
        aug[:, :n], np.eye(n, dtype=field.dtype)
    ):
        raise SingularMatrixError("matrix is singular over GF(2^w)")
    return aug[:, n:].copy()


def gf_solve(field: GF, A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A @ x = b`` over the field (b may be a matrix of columns)."""
    Ainv = gf_invert_matrix(field, A)
    b = np.asarray(b, dtype=field.dtype)
    if b.ndim == 1:
        return field.matmul(Ainv, b[:, None])[:, 0]
    return field.matmul(Ainv, b)
