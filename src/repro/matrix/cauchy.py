"""Cauchy generator matrices and bit-weight optimization.

Cauchy matrices ``C[i, j] = 1 / (x_i + y_j)`` are MDS for any disjoint
point sets, and are the canonical starting point for XOR-based codes:
the XOR cost of a code is the popcount of its bitmatrix, which depends
on the choice of ``x``/``y`` points. ``optimize_cauchy_ones`` performs
the classic column/row scaling that Jerasure calls "improving" a Cauchy
matrix, and is the seed for Zerasure's annealing and Cerasure's greedy
search in :mod:`repro.xorsched`.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF
from repro.gf.bitmatrix import element_bitmatrix


def cauchy_matrix(field: GF, x_points, y_points) -> np.ndarray:
    """Cauchy matrix ``C[i, j] = (x_i + y_j)^-1`` over the field.

    Point sets must be disjoint and each internally distinct.
    """
    x = np.asarray(list(x_points), dtype=field.dtype)
    y = np.asarray(list(y_points), dtype=field.dtype)
    if len(set(x.tolist())) != len(x) or len(set(y.tolist())) != len(y):
        raise ValueError("Cauchy points must be distinct")
    if set(x.tolist()) & set(y.tolist()):
        raise ValueError("Cauchy x/y point sets must be disjoint")
    sums = np.bitwise_xor(x[:, None], y[None, :])
    return field.inv(sums)


def systematic_cauchy(field: GF, k: int, m: int,
                      x_points=None, y_points=None) -> np.ndarray:
    """Systematic (k+m) x k generator: identity on top, Cauchy parity rows.

    Default points are ``x = {k..k+m-1}``, ``y = {0..k-1}`` (Jerasure's
    ``cauchy_original_coding_matrix`` convention).
    """
    if k + m > field.order:
        raise ValueError(f"k+m={k + m} exceeds field order {field.order}")
    if x_points is None:
        x_points = range(k, k + m)
    if y_points is None:
        y_points = range(k)
    parity = cauchy_matrix(field, x_points, y_points)
    G = np.zeros((k + m, k), dtype=field.dtype)
    G[np.arange(k), np.arange(k)] = 1
    G[k:] = parity
    return G


def _element_ones(field: GF, e: int, cache: dict[int, int]) -> int:
    if e not in cache:
        cache[e] = int(element_bitmatrix(field, e).sum())
    return cache[e]


def optimize_cauchy_ones(field: GF, parity: np.ndarray) -> np.ndarray:
    """Reduce total bitmatrix ones of a Cauchy parity block by scaling.

    Dividing any row (or column) by a nonzero constant preserves the
    MDS property. We first normalize each column by its first entry,
    then greedily rescale each row by the divisor minimizing that row's
    bit weight — Jerasure's ``cauchy_xy_coding_matrix`` improvement.
    """
    P = np.array(parity, dtype=field.dtype, copy=True)
    m, k = P.shape
    cache: dict[int, int] = {}
    # Column scaling: make row 0 all ones.
    for j in range(k):
        d = int(P[0, j])
        if d not in (0, 1):
            P[:, j] = field.div(P[:, j], d)
    # Greedy row scaling.
    for i in range(1, m):
        best_div, best_w = 1, sum(
            _element_ones(field, int(e), cache) for e in P[i]
        )
        for d in range(2, field.order):
            row = field.div(P[i], d)
            w = sum(_element_ones(field, int(e), cache) for e in row)
            if w < best_w:
                best_div, best_w = d, w
        if best_div != 1:
            P[i] = field.div(P[i], best_div)
    return P
