"""Vandermonde-based generator matrices.

``systematic_vandermonde`` mirrors ISA-L's ``gf_gen_rs_matrix``: build a
(k+m) x k Vandermonde matrix and row-reduce so the top k x k block is
the identity — data blocks pass through unchanged and the bottom m rows
are the parity coefficients. Any k rows of the result are linearly
independent, which is what makes RS(k+m, k) MDS.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF
from repro.matrix.invert import gf_invert_matrix


def vandermonde_matrix(field: GF, rows: int, cols: int) -> np.ndarray:
    """Plain Vandermonde matrix ``V[i, j] = i ** j`` over the field.

    Row 0 is ``[1, 0, 0, ...]`` by the convention ``0**0 = 1``.
    """
    if rows > field.order:
        raise ValueError(
            f"cannot build {rows} distinct evaluation points in GF(2^{field.w})"
        )
    V = np.zeros((rows, cols), dtype=field.dtype)
    for i in range(rows):
        for j in range(cols):
            V[i, j] = field.pow(i, j) if (i or not j) else 0
    V[0, 0] = 1
    return V


def systematic_vandermonde(field: GF, k: int, m: int) -> np.ndarray:
    """Systematic (k+m) x k generator matrix.

    The top k rows are the identity; the bottom m rows generate parity.
    Equivalent in spirit to ISA-L ``gf_gen_rs_matrix(a, k+m, k)``.
    """
    if k + m > field.order:
        raise ValueError(
            f"RS({k + m},{k}) does not fit in GF(2^{field.w}) "
            f"(need k+m <= {field.order})"
        )
    V = vandermonde_matrix(field, k + m, k)
    top_inv = gf_invert_matrix(field, V[:k])
    return field.matmul(V, top_inv)
