"""Parity-consistency scrubbing for the PM store.

Silent corruption (bit flips, scribbles) is invisible to the erasure
code itself — RS repairs *erasures*, not errors, unless you spend
decoding distance on error location. The standard system design (and
this scrubber) locates corruption with per-block checksums, *converts*
it to erasures, and repairs through parity: exactly the
detect-locate-repair loop the paper's reliability discussion assumes.

A scrub can cover the whole store (the default) or any subset of
stripes — the service's background scrub scheduler walks the store in
paced slices so scrubbing never starves foreground traffic of its
Eq. (1) thread budget. Outcomes can be recorded into any counter sink
with an ``inc(name, by)`` method (duck-typed so this layer never
imports the service's :class:`~repro.service.metrics.MetricsRegistry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.pmstore.store import PMStore


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    stripes_scanned: int = 0
    corrupt_blocks: list[tuple[int, int]] = field(default_factory=list)
    repaired_blocks: int = 0
    unrepairable_stripes: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was corrupt."""
        return not self.corrupt_blocks and not self.unrepairable_stripes


class Scrubber:
    """Checksum-based scrub-and-repair over a :class:`PMStore`.

    ``metrics`` is an optional counter sink (anything with
    ``inc(name, by=1)``); every scrub records ``scrub_stripes_scanned``,
    ``scrub_corrupt_blocks``, ``scrub_repaired_blocks`` and
    ``scrub_unrepairable_stripes`` into it.
    """

    def __init__(self, store: PMStore, metrics=None):
        self.store = store
        self.metrics = metrics

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None and by:
            self.metrics.inc(name, by)

    def locate(self, sid: int) -> list[int]:
        """Blocks of stripe ``sid`` whose checksum no longer matches."""
        stripe = self.store._stripes[sid]
        blocks = self.store.blocks_of(sid)
        return [
            i for i in range(len(blocks))
            if i not in stripe.lost
            and self.store._checksum(blocks[i]) != stripe.checksums[i]
        ]

    def scrub(self, repair: bool = True,
              stripes: Iterable[int] | None = None) -> ScrubReport:
        """Scan stripes (all by default, or the given subset); optionally
        convert corruption to erasures and repair through parity."""
        report = ScrubReport()
        sids = range(self.store.num_stripes) if stripes is None else stripes
        for sid in sids:
            report.stripes_scanned += 1
            corrupt = self.locate(sid)
            for block in corrupt:
                report.corrupt_blocks.append((sid, block))
            stripe = self.store._stripes[sid]
            total_bad = len(corrupt) + len(stripe.lost)
            if total_bad == 0:
                continue
            if not repair:
                # Without attempting the decode we can only use the
                # global-parity budget as the classification bound.
                if total_bad > self.store.m:
                    report.unrepairable_stripes.append(sid)
                continue
            for block in corrupt:
                self.store.mark_lost(sid, block)
            try:
                report.repaired_blocks += self.store.repair(sid)
            except ValueError:
                report.unrepairable_stripes.append(sid)
        self._inc("scrub_stripes_scanned", report.stripes_scanned)
        self._inc("scrub_corrupt_blocks", len(report.corrupt_blocks))
        self._inc("scrub_repaired_blocks", report.repaired_blocks)
        self._inc("scrub_unrepairable_stripes",
                  len(report.unrepairable_stripes))
        return report
