"""Fault injection for the PM store.

Models the paper's §2.1 error taxonomy: random media bit flips and
write disturbance (silent corruption, caught only by checksums),
region/device loss (detected erasures), and software scribbles
(wild writes from buggy kernels/scrubbers — also silent).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.pmstore.store import PMStore


class TransientFault(RuntimeError):
    """An operation-level failure that succeeds on retry.

    Models the recoverable end of the §2.1 taxonomy (a timed-out media
    access, a torn DDR-T transaction the controller replays): the store
    itself is undamaged, the *operation* failed. Raised from
    :attr:`PMStore.fault_hooks`; the service layer retries with
    exponential backoff.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (returned so tests can assert exact damage)."""

    kind: str            # "bit_flip" | "block_loss" | "device_loss" | "scribble"
    stripe: int
    block: int
    detail: str = ""


class FaultInjector:
    """Deterministic fault source over a :class:`PMStore`.

    Randomness is drawn from *per-site* streams — one independent,
    seeded generator per fault kind (and per created hook) — so the
    targets a ``bit_flip`` picks do not depend on how many scribbles or
    transient hooks ran before it. That call-order independence is what
    lets chaos campaigns and crash campaigns compose deterministically:
    adding a ``power_cut`` action to a schedule leaves every other
    fault's targets bit-identical.
    """

    def __init__(self, store: PMStore, seed: int = 0):
        self.store = store
        self.seed = seed
        #: Shared legacy stream, kept for callers that drew from
        #: ``injector.rng`` directly; the injector itself no longer
        #: uses it.
        self.rng = np.random.default_rng(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._hook_count = 0
        self.events: list[FaultEvent] = []

    def _stream(self, site: str) -> np.random.Generator:
        """The independent RNG stream of one injection site."""
        if site not in self._streams:
            self._streams[site] = np.random.default_rng(
                [self.seed, zlib.crc32(site.encode())])
        return self._streams[site]

    def _random_block(self, rng: np.random.Generator) -> tuple[int, int]:
        sid = int(rng.integers(self.store.num_stripes))
        block = int(rng.integers(self.store.k + self.store.parity_blocks))
        return sid, block

    def bit_flip(self, stripe: int | None = None, block: int | None = None,
                 nbits: int = 1) -> FaultEvent:
        """Flip random bit(s) in one block — *silent* corruption."""
        rng = self._stream("bit_flip")
        if stripe is None or block is None:
            stripe, block = self._random_block(rng)
        blocks = self.store.blocks_of(stripe)
        target = blocks[block]
        s = self.store._stripes[stripe]
        arr = s.data[block] if block < self.store.k else s.parity[block - self.store.k]
        for _ in range(nbits):
            byte = int(rng.integers(len(target)))
            bit = int(rng.integers(8))
            arr[byte] ^= 1 << bit
        ev = FaultEvent("bit_flip", stripe, block, f"{nbits} bit(s)")
        self.events.append(ev)
        return ev

    def scribble(self, stripe: int | None = None, block: int | None = None,
                 length: int = 64) -> FaultEvent:
        """Overwrite a run of bytes with garbage (software error path)."""
        rng = self._stream("scribble")
        if stripe is None or block is None:
            stripe, block = self._random_block(rng)
        s = self.store._stripes[stripe]
        arr = s.data[block] if block < self.store.k else s.parity[block - self.store.k]
        start = int(rng.integers(max(1, len(arr) - length)))
        arr[start:start + length] = rng.integers(
            0, 256, min(length, len(arr) - start), dtype=np.uint8)
        ev = FaultEvent("scribble", stripe, block, f"{length} B @ {start}")
        self.events.append(ev)
        return ev

    def block_loss(self, stripe: int | None = None,
                   block: int | None = None) -> FaultEvent:
        """Lose one block region — a *detected* erasure."""
        if stripe is None or block is None:
            stripe, block = self._random_block(self._stream("block_loss"))
        self.store.mark_lost(stripe, block)
        ev = FaultEvent("block_loss", stripe, block)
        self.events.append(ev)
        return ev

    def device_loss(self, device: int) -> list[FaultEvent]:
        """Lose block position ``device`` in *every* stripe — the
        correlated failure striping is designed for."""
        out = []
        for sid in range(self.store.num_stripes):
            self.store.mark_lost(sid, device)
            ev = FaultEvent("device_loss", sid, device)
            self.events.append(ev)
            out.append(ev)
        return out

    def transient_hook(self, rate: float = 0.1,
                       max_failures_per_key: int = 2,
                       ops: tuple[str, ...] = ("put", "get"),
                       ) -> Callable[[str, str], None]:
        """Build a :attr:`PMStore.fault_hooks` callback that raises
        :class:`TransientFault` on a deterministic ``rate`` fraction of
        operations, at most ``max_failures_per_key`` times per (op,
        key) — so a retrying caller always eventually succeeds.

        Each raise is also recorded as a ``transient`` event, letting
        tests assert the exact injected-vs-retried counts.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        failures: dict[tuple[str, str], int] = {}
        self._hook_count += 1
        rng = self._stream(f"transient:{self._hook_count}")

        def hook(op: str, key: str) -> None:
            if op not in ops:
                return
            seen = failures.get((op, key), 0)
            if seen >= max_failures_per_key:
                return
            if rng.random() < rate:
                failures[(op, key)] = seen + 1
                self.events.append(
                    FaultEvent("transient", -1, -1, f"{op} {key!r}"))
                raise TransientFault(f"transient {op} failure on {key!r}")

        return hook

    def storm_hook(self, clock_fn: Callable[[], float], *,
                   start_ns: float, end_ns: float, rate: float = 0.8,
                   max_failures_per_key: int = 2,
                   ops: tuple[str, ...] = ("put", "get"),
                   ) -> Callable[[str, str], None]:
        """A *time-windowed* transient-fault storm.

        Like :meth:`transient_hook` but active only while the simulated
        clock (read through ``clock_fn``, e.g. ``lambda:
        service.clock_ns``) is inside ``[start_ns, end_ns)`` — the chaos
        engine's "retry storm" primitive. The per-key failure cap keeps
        a retrying caller convergent even at ``rate=1.0``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if end_ns <= start_ns:
            raise ValueError(f"empty storm window [{start_ns}, {end_ns})")
        failures: dict[tuple[str, str], int] = {}
        self._hook_count += 1
        rng = self._stream(f"storm:{self._hook_count}")

        def hook(op: str, key: str) -> None:
            if op not in ops or not start_ns <= clock_fn() < end_ns:
                return
            seen = failures.get((op, key), 0)
            if seen >= max_failures_per_key:
                return
            if rng.random() < rate:
                failures[(op, key)] = seen + 1
                self.events.append(
                    FaultEvent("transient", -1, -1,
                               f"storm {op} {key!r}"))
                raise TransientFault(
                    f"storm: transient {op} failure on {key!r}")

        return hook
