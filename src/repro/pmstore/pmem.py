"""The persistence-domain model: PM durability at 256 B line granularity.

Real persistent memory gives no durability guarantee for a plain store:
the write sits in the CPU cache hierarchy until a ``clwb`` pushes its
cache line toward the memory controller and an ``sfence`` orders the
flush with what follows. Only then is the line inside the *persistence
domain* (ADR) and guaranteed to survive power loss; everything else may
be dropped — or, worse, *partially* evicted — leaving torn state behind.
The media itself writes in 256 B XPLine units, which is the tearing
granularity this model adopts.

:class:`PersistenceDomain` reproduces exactly that contract for the
simulated store:

* :meth:`write` applies bytes to memory immediately (the running
  program always sees its own stores — store-to-load forwarding) while
  snapshotting the *pre-write* content of every touched line;
* :meth:`flush` marks touched lines flushed (``clwb``), :meth:`fence`
  makes every flushed line durable (``sfence``) and drops its snapshot;
* :meth:`crash` reverts, keeps or *tears* each still-pending line
  according to a :data:`CrashPolicy` — the default models the
  guaranteed-minimum outcome (every unfenced line is lost), while
  :func:`seeded_line_policy` models the adversarial one (caches may
  have evicted any subset of unfenced lines, whole or torn at 8 B
  store granularity).

Every flush and fence also fires the registered persist hooks, which is
how :class:`~repro.crash.injector.CrashInjector` enumerates crash
points: each hook invocation is one ordering boundary where the power
can be cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Media write granularity (Optane's XPLine): crash tearing never
#: splits state finer than one of these except at 8 B store boundaries.
LINE_BYTES = 256

#: Within-line tear granularity: the 8 B atomicity unit of the ISA.
ATOM_BYTES = 8


class PersistenceDomainFull(RuntimeError):
    """The simulated PM region ran out of capacity."""


@dataclass
class PendingLine:
    """One line written but not yet fenced into the persistence domain.

    Attributes
    ----------
    line:
        Line index (``addr // LINE_BYTES``).
    flushed:
        Whether a ``clwb`` already pushed it (fence pending).
    old:
        The durable content the line had before the first unfenced
        write touched it (the rollback image).
    """

    line: int
    flushed: bool
    old: bytes


#: Decides one pending line's fate at a crash: returns the bytes that
#: are durable afterwards (``pending.old``, the new content, or a torn
#: mix). ``new`` is the volatile content at crash time.
CrashPolicy = Callable[[PendingLine, bytes], bytes]


def drop_unfenced(pending: PendingLine, new: bytes) -> bytes:
    """The guaranteed-minimum crash outcome: every line that was not
    fenced into the persistence domain reverts to its old content."""
    return pending.old


def keep_flushed(pending: PendingLine, new: bytes) -> bytes:
    """An optimistic outcome: flushed-but-unfenced lines made it to the
    media before power died; dirty (never flushed) lines did not."""
    return new if pending.flushed else pending.old


def seeded_line_policy(rng: np.random.Generator) -> CrashPolicy:
    """The adversarial outcome: caches evict what they please.

    Each pending line — flushed or not — independently persists whole,
    reverts whole, or *tears* at a random 8 B boundary (new prefix, old
    suffix: stores drain in order within a line). Deterministic per
    ``rng`` state, which is how the crash harness replays a tear run.
    """

    def policy(pending: PendingLine, new: bytes) -> bytes:
        roll = rng.integers(3)
        if roll == 0:
            return new
        if roll == 1:
            return pending.old
        atoms = len(new) // ATOM_BYTES
        cut = int(rng.integers(1, max(2, atoms))) * ATOM_BYTES
        return new[:cut] + pending.old[cut:]

    return policy


class PersistenceDomain:
    """Simulated PM region with explicit flush/fence durability.

    Parameters
    ----------
    capacity_bytes:
        Fixed region size. Allocated lazily by the OS (the backing
        array is zero-filled virtual memory), so a roomy default costs
        nothing until touched.
    line_bytes:
        Durability/tearing granularity (default 256 B XPLine).

    Notes
    -----
    Reads served through :meth:`view` always see the *volatile* state
    (the program observes its own stores); :attr:`pending_lines` is
    what separates that from the durable state a crash would leave.
    """

    def __init__(self, capacity_bytes: int = 64 << 20,
                 line_bytes: int = LINE_BYTES):
        if line_bytes < ATOM_BYTES or line_bytes % ATOM_BYTES:
            raise ValueError(f"line_bytes must be a multiple of {ATOM_BYTES}")
        self.line_bytes = line_bytes
        self.capacity = capacity_bytes
        self.memory = np.zeros(capacity_bytes, dtype=np.uint8)
        self._tail = 0                       # allocation bump pointer
        self._pending: dict[int, PendingLine] = {}
        #: Callbacks fired as ``hook(kind, line)`` at every ordering
        #: boundary: ``("flush", line)`` per line entering the flush
        #: queue, ``("fence", -1)`` per fence. A hook may raise to model
        #: a power cut *at* that boundary (the op then never happens).
        self.persist_hooks: list[Callable[[str, int], None]] = []
        # Lifetime counters (observability / recovery-cost model).
        self.lines_written = 0
        self.flushes = 0
        self.fences = 0

    # -- allocation --------------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` (line-aligned); returns the base address.

        Allocation state is volatile bookkeeping — recovery re-derives
        the watermark from the WAL via :meth:`reset_allocator`.
        """
        addr = self._tail
        end = addr + self._line_align(nbytes)
        if end > self.capacity:
            raise PersistenceDomainFull(
                f"allocating {nbytes} B at {addr} exceeds the "
                f"{self.capacity} B region")
        self._tail = end
        return addr

    def reset_allocator(self, tail: int) -> None:
        """Set the allocation watermark (used by crash recovery, which
        re-learns region placement from the WAL)."""
        self._tail = max(0, min(self._line_align(tail), self.capacity))

    @property
    def allocated_bytes(self) -> int:
        """Bytes below the allocation watermark."""
        return self._tail

    def _line_align(self, n: int) -> int:
        lb = self.line_bytes
        return (n + lb - 1) // lb * lb

    # -- the store path ----------------------------------------------------

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        """A live ``uint8`` view of ``[addr, addr + nbytes)``.

        Mutating the view writes *around* the durability model (the
        fault injector uses this deliberately: media corruption does
        not pass through the store buffer).
        """
        return self.memory[addr:addr + nbytes]

    def _touched_lines(self, addr: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        return range(addr // self.line_bytes,
                     (addr + nbytes - 1) // self.line_bytes + 1)

    def _snapshot(self, line: int) -> None:
        if line not in self._pending:
            lb = self.line_bytes
            old = self.memory[line * lb:(line + 1) * lb].tobytes()
            self._pending[line] = PendingLine(line, False, old)

    def write(self, addr: int, data) -> None:
        """Store bytes at ``addr`` — visible immediately, durable only
        after the touched lines are flushed *and* fenced."""
        buf = np.frombuffer(bytes(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else \
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        if len(buf) == 0:
            return
        for line in self._touched_lines(addr, len(buf)):
            self._snapshot(line)
            # A re-write of a flushed-but-unfenced line dirties it
            # again: the earlier clwb covered the earlier content only.
            self._pending[line].flushed = False
        self.memory[addr:addr + len(buf)] = buf
        self.lines_written += len(self._touched_lines(addr, len(buf)))

    def flush(self, addr: int, nbytes: int) -> int:
        """``clwb`` every line of ``[addr, addr + nbytes)``; returns how
        many pending lines entered the flush queue."""
        n = 0
        for line in self._touched_lines(addr, nbytes):
            pending = self._pending.get(line)
            if pending is None or pending.flushed:
                continue
            self._fire("flush", line)
            pending.flushed = True
            self.flushes += 1
            n += 1
        return n

    def fence(self) -> int:
        """``sfence``: every flushed line becomes durable (its rollback
        image is dropped); returns how many lines were committed."""
        self._fire("fence", -1)
        self.fences += 1
        done = [ln for ln, p in self._pending.items() if p.flushed]
        for line in done:
            del self._pending[line]
        return len(done)

    def persist(self, addr: int, nbytes: int) -> None:
        """Flush + fence one range — the ``clwb*; sfence`` idiom."""
        self.flush(addr, nbytes)
        self.fence()

    def _fire(self, kind: str, line: int) -> None:
        for hook in self.persist_hooks:
            hook(kind, line)

    # -- crash semantics ---------------------------------------------------

    @property
    def pending_lines(self) -> int:
        """Lines currently outside the persistence domain."""
        return len(self._pending)

    def crash(self, policy: CrashPolicy | None = None) -> int:
        """Power cut: resolve every pending line through ``policy``
        (default :func:`drop_unfenced`) and clear the store buffer.
        Returns how many lines did *not* keep their new content intact.
        """
        policy = policy or drop_unfenced
        lb = self.line_bytes
        damaged = 0
        for line in sorted(self._pending):
            pending = self._pending[line]
            new = self.memory[line * lb:(line + 1) * lb].tobytes()
            durable = policy(pending, new)
            if len(durable) != lb:
                raise ValueError(
                    f"crash policy returned {len(durable)} B for a "
                    f"{lb} B line")
            if durable != new:
                damaged += 1
                self.memory[line * lb:(line + 1) * lb] = np.frombuffer(
                    durable, dtype=np.uint8)
        self._pending.clear()
        return damaged

    def state_digest(self) -> str:
        """SHA-256 over the allocated durable region — equal digests
        mean byte-identical durable state (the idempotence oracle)."""
        import hashlib
        return hashlib.sha256(
            self.memory[:self._tail].tobytes()).hexdigest()
