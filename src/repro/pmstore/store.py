"""The erasure-coded PM object store.

Objects are packed into fixed-geometry stripes (k data + m parity
blocks, one block per simulated PM "device region" so correlated loss
maps to block loss). The store keeps per-block CRC32 checksums — the
standard trick (Pangolin, NOVA-Fortis) that turns silent corruption
into locatable *erasures*, which RS can then repair.

Stripe bytes live in a :class:`~repro.pmstore.pmem.PersistenceDomain`
(256 B-line flush/fence durability, crash tearing) and every mutating
operation — ``put``, ``delete``, the delta-parity ``update`` path and
the shard manifest — is a logged, checksummed, idempotent transaction
through the :class:`~repro.pmstore.wal.StripeWAL`: intent record, in-
place data+parity lines, commit record. :meth:`PMStore.crash` /
:meth:`PMStore.recover` simulate a power cut at any point and replay
the log, so an acknowledged write survives every crash point and a
partially applied update can never leave data and parity disagreeing
(the PM small-write hole).

Performance accounting is optional: hand the store a
:class:`~repro.libs.base.CodingLibrary` (e.g. ``DialgaEncoder``) and a
:class:`~repro.simulator.HardwareConfig`, and every encode/decode also
runs the corresponding workload on the simulated testbed, accumulating
coding time into :class:`StoreStats`.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.codes.lrc import LRCCode
from repro.codes.rs import RSCode
from repro.libs.base import CodingLibrary
from repro.pmstore.pmem import CrashPolicy, PersistenceDomain
from repro.pmstore.wal import (
    OP_DELETE,
    OP_MANIFEST,
    OP_PUT,
    OP_UPDATE,
    StripeWAL,
    TxIntent,
)
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


@dataclass
class ObjectMeta:
    """Where one object lives."""

    key: str
    stripe: int
    offset: int          # byte offset within the stripe's data space
    length: int


@dataclass
class StoreStats:
    """Operational counters, including simulated coding time.

    Counters are applied strictly *after* a transaction's commit
    record is durable, so a crash mid-write never shows up as bytes
    written — stats count acknowledged work only.
    """

    puts: int = 0
    gets: int = 0
    updates: int = 0
    degraded_reads: int = 0
    repairs: int = 0
    blocks_repaired: int = 0
    encode_ns: float = 0.0
    decode_ns: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0


@dataclass
class RecoveryReport:
    """What one :meth:`PMStore.recover` pass found and did."""

    txns_seen: int = 0
    committed: int = 0
    #: Intent-complete but uncommitted transactions completed by replay
    #: (never acknowledged, so completing them is as correct as
    #: dropping them — and needs no undo images).
    rolled_forward: int = 0
    stripes_recovered: int = 0
    objects_recovered: int = 0
    lines_redone: int = 0
    wal_bytes_scanned: int = 0
    #: Blocks whose durable content disagrees with the recovered
    #: checksum — pre-crash silent corruption surviving the cut
    #: (recovery preserves detectability; the scrubber repairs it).
    checksum_mismatches: int = 0

    def summary(self) -> str:
        """One deterministic report line."""
        return (f"txns={self.txns_seen} committed={self.committed} "
                f"rolled_forward={self.rolled_forward} "
                f"stripes={self.stripes_recovered} "
                f"objects={self.objects_recovered} "
                f"lines_redone={self.lines_redone} "
                f"wal_bytes={self.wal_bytes_scanned} "
                f"checksum_mismatches={self.checksum_mismatches}")


@dataclass
class _Stripe:
    addr: int                         # base address in the domain
    data: np.ndarray                  # (k, block) uint8 view
    parity: np.ndarray                # (m [+l], block) uint8 view
    checksums: list[int]              # per stripe-global block
    used: int = 0                     # bytes of data space consumed
    lost: set = field(default_factory=set)  # stripe-global indices marked lost


class PMStore:
    """A reliability-coded object store over (simulated) PM.

    Parameters
    ----------
    k, m:
        Stripe geometry.
    block_bytes:
        Block size (also the device-region granularity).
    lrc_l:
        If set, protect with LRC(k, m, l) instead of RS — single-block
        losses then repair by reading one group only.
    library:
        Optional coding library whose simulated performance is charged
        for every encode/decode (defaults to pure functional coding
        with no timing).
    hw:
        Testbed for the performance model.
    verify_reads:
        Verify checksums (and repair mismatches) before serving reads.
    pm_capacity_bytes, wal_capacity_bytes:
        Sizes of the stripe region and the WAL region (both are
        zero-filled virtual memory — unused capacity costs nothing).
    """

    def __init__(self, k: int, m: int, block_bytes: int = 4096,
                 lrc_l: int | None = None,
                 library: CodingLibrary | None = None,
                 hw: HardwareConfig | None = None,
                 verify_reads: bool = False,
                 pm_capacity_bytes: int = 64 << 20,
                 wal_capacity_bytes: int = 32 << 20):
        self.k, self.m = k, m
        self.block_bytes = block_bytes
        self.lrc_l = lrc_l
        self.code = LRCCode(k, m, lrc_l) if lrc_l else RSCode(k, m)
        self.library = library
        self.hw = hw or HardwareConfig()
        #: Verify checksums (and repair mismatches) before serving reads
        #: — catches silent corruption at read time instead of waiting
        #: for the next scrub, at one CRC pass per get.
        self.verify_reads = verify_reads
        self.stats = StoreStats()
        #: Stripe bytes: a flush/fence persistence domain at XPLine
        #: granularity. Crash consistency lives here.
        self.domain = PersistenceDomain(pm_capacity_bytes)
        #: The stripe WAL, in its own domain (a dedicated log region).
        self.wal = StripeWAL(capacity_bytes=wal_capacity_bytes)
        self._stripes: list[_Stripe] = []
        self._objects: dict[str, ObjectMeta] = {}
        #: Callbacks fired at the top of every put/get as ``hook(op,
        #: key)``. A hook may raise (e.g. :class:`~repro.pmstore.faults.
        #: TransientFault`) to model an operation-level failure — the
        #: service layer's retry path hangs off this.
        self.fault_hooks: list[Callable[[str, str], None]] = []
        self._lost_devices: set[int] = set()
        #: Loss marks captured at :meth:`crash` — erasure marks are
        #: cluster control-plane metadata (held off-PM), so recovery
        #: reinstates them rather than forgetting the damage.
        self._saved_marks: dict[int, set[int]] = {}

    # -- geometry helpers --------------------------------------------------

    @property
    def stripe_data_bytes(self) -> int:
        """Object-payload capacity of one stripe."""
        return self.k * self.block_bytes

    @property
    def parity_blocks(self) -> int:
        """Parity blocks per stripe (global + local for LRC)."""
        return self.m + (self.lrc_l or 0)

    @property
    def _stripe_bytes(self) -> int:
        return (self.k + self.parity_blocks) * self.block_bytes

    def _checksum(self, block: np.ndarray) -> int:
        return zlib.crc32(block.tobytes())

    def add_fault_hook(self, hook: Callable[[str, str], None]) -> None:
        """Register an operation-level fault hook (see ``fault_hooks``)."""
        self.fault_hooks.append(hook)

    def _fire_hooks(self, op: str, key: str) -> None:
        for hook in self.fault_hooks:
            hook(op, key)

    def _charge(self, op: str, stripes: int) -> None:
        """Charge simulated coding time for ``stripes`` stripe ops."""
        if self.library is None or stripes == 0:
            return
        wl = Workload(
            k=self.k, m=self.m, block_bytes=self.block_bytes,
            lrc_l=self.lrc_l if op == "encode" else None,
            op="encode" if op == "encode" else "decode",
            erasures=0 if op == "encode" else min(self.m, 1),
            data_bytes_per_thread=stripes * self.stripe_data_bytes)
        res = self.library.run(wl, self.hw)
        if op == "encode":
            self.stats.encode_ns += res.sim.makespan_ns
        else:
            self.stats.decode_ns += res.sim.makespan_ns

    # -- stripe management ---------------------------------------------------

    def _compute_parity(self, data: np.ndarray) -> np.ndarray:
        """All parity blocks (global [+ local]) for ``(k, block)`` data."""
        if self.lrc_l:
            gp, lp = self.code.encode(data)
            return np.vstack([gp, lp])
        return self.code.encode_blocks(data)

    def _stripe_checksums(self, data: np.ndarray,
                          parity: np.ndarray) -> list[int]:
        out = [self._checksum(data[i]) for i in range(self.k)]
        out += [self._checksum(parity[i]) for i in range(len(parity))]
        return out

    def _materialize_stripe(self, addr: int) -> _Stripe:
        """Build a stripe whose blocks are views into the domain."""
        bb = self.block_bytes
        data = self.domain.view(addr, self.k * bb).reshape(self.k, bb)
        parity = self.domain.view(addr + self.k * bb,
                                  self.parity_blocks * bb
                                  ).reshape(self.parity_blocks, bb)
        return _Stripe(addr=addr, data=data, parity=parity,
                       checksums=self._stripe_checksums(data, parity))

    def _new_stripe(self) -> int:
        addr = self.domain.allocate(self._stripe_bytes)
        stripe = self._materialize_stripe(addr)
        # Freshly allocated PM is zero-filled and RS/LRC parity of
        # all-zero data is all zeros, so the stripe is born consistent
        # with nothing written; exotic codes get their parity persisted.
        parity = self._compute_parity(stripe.data)
        if parity.any():
            par_addr = addr + self.k * self.block_bytes
            self.domain.write(par_addr, parity)
            self.domain.persist(par_addr, parity.size)
            stripe.parity[:] = stripe.parity  # views already updated
            stripe.checksums = self._stripe_checksums(stripe.data,
                                                      stripe.parity)
        # A dead device region is dead for freshly allocated stripes too:
        # logical writes still land (parity carries them), reads degrade.
        stripe.lost |= self._lost_devices
        self._stripes.append(stripe)
        return len(self._stripes) - 1

    def _write_block_durable(self, sid: int, index: int,
                             block: np.ndarray) -> None:
        """Write one stripe-global block straight to durable state
        (flush + fence; used by repair, which is pure reconstruction
        and therefore idempotent without WAL protection)."""
        addr = self._stripes[sid].addr + index * self.block_bytes
        self.domain.write(addr, block)
        self.domain.persist(addr, self.block_bytes)

    def verify_stripe(self, sid: int, repair: bool = True) -> list[int]:
        """Checksum-verify every non-lost block of stripe ``sid``.

        Mismatching blocks (silent corruption) are converted to
        erasures; with ``repair`` they are rebuilt through parity on the
        spot (best-effort — an unrepairable stripe keeps its loss marks
        for the scrubber/repair queue to deal with). Returns the
        stripe-global indices found corrupt.
        """
        stripe = self._stripes[sid]
        blocks = self.blocks_of(sid)
        corrupt = [
            i for i in range(len(blocks))
            if i not in stripe.lost
            and self._checksum(blocks[i]) != stripe.checksums[i]
        ]
        for block in corrupt:
            stripe.lost.add(block)
        if corrupt and repair:
            try:
                self.repair(sid)
            except ValueError:
                pass  # beyond parity budget: leave the erasure marks
        return corrupt

    # -- the transaction machinery ------------------------------------------

    def _persist_stripe_write(self, stripe: _Stripe, offset: int,
                              payload: bytes, parity: np.ndarray) -> None:
        """Step 2 of a transaction: in-place data+parity lines, one
        fence ordering both behind the already-durable intent."""
        if payload:
            data_addr = stripe.addr + offset
            self.domain.write(data_addr, payload)
            self.domain.flush(data_addr, len(payload))
        par_addr = stripe.addr + self.k * self.block_bytes
        self.domain.write(par_addr, parity)
        self.domain.flush(par_addr, parity.size)
        self.domain.fence()

    def _replace_object(self, key: str, meta: ObjectMeta) -> None:
        """Swap in a new mapping, cascading away a stale shard
        manifest's shard entries (metadata is replaced atomically at
        the commit point — there is no window where ``key`` is gone)."""
        old = self._objects.get(key)
        if old is not None and old.stripe == -1:
            for i in range(old.offset):
                self._objects.pop(f"{key}#{i}", None)
        self._objects[key] = meta

    def _apply_commit(self, tx: TxIntent) -> None:
        """Apply one transaction's volatile metadata (the commit point:
        stats and checksums never reflect a torn write)."""
        if tx.op == OP_DELETE:
            meta = self._objects.pop(tx.key, None)
            if meta is not None and meta.stripe == -1:
                for i in range(meta.offset):
                    self._objects.pop(f"{tx.key}#{i}", None)
            return
        if tx.op == OP_MANIFEST:
            self._objects[tx.key] = ObjectMeta(
                key=tx.key, stripe=-1, offset=tx.offset, length=tx.length)
            return
        stripe = self._stripes[tx.sid]
        stripe.used = tx.used_after
        stripe.checksums = list(tx.checksums)
        self._replace_object(tx.key, ObjectMeta(
            key=tx.key, stripe=tx.sid, offset=tx.offset, length=tx.length))
        if tx.op == OP_PUT:
            self.stats.puts += 1
        else:
            self.stats.updates += 1
        self.stats.bytes_written += tx.length

    # -- public object API ------------------------------------------------------

    def put(self, key: str, value: bytes) -> ObjectMeta:
        """Store an object (at most one stripe of payload).

        The write is one WAL transaction: the intent (carrying the
        payload, the new parity images and the post-state checksums) is
        fenced before any stripe line is touched, and metadata/stats
        move only after the commit record — so a power cut at any line
        boundary leaves either the old store or the new one, never the
        write hole.
        """
        self._fire_hooks("put", key)
        if len(value) > self.stripe_data_bytes:
            raise ValueError(
                f"object of {len(value)} B exceeds stripe capacity "
                f"{self.stripe_data_bytes} B; shard it")
        value = bytes(value)
        sid = None
        for i, s in enumerate(self._stripes):
            if s.used + len(value) <= self.stripe_data_bytes and not s.lost:
                # Write-path verify: re-encoding parity over a silently
                # corrupted neighbor block would *launder* the corruption
                # (fresh parity and checksums computed from bad bytes).
                # Catch and repair it before touching the stripe.
                self.verify_stripe(i)
                if not s.lost:
                    sid = i
                    break
        new_stripe = sid is None
        if new_stripe:
            sid = self._new_stripe()
        stripe = self._stripes[sid]
        offset = stripe.used

        # Compute the complete post-state before touching durable bytes.
        new_data = stripe.data.copy()
        flat = new_data.reshape(-1)
        flat[offset:offset + len(value)] = np.frombuffer(value, dtype=np.uint8)
        parity = self._compute_parity(new_data)
        checksums = self._stripe_checksums(new_data, parity)

        tx = TxIntent(
            txid=self.wal.begin_txid(), op=OP_PUT, key=key, sid=sid,
            new_stripe=new_stripe, stripe_addr=stripe.addr, offset=offset,
            length=len(value), used_after=offset + len(value),
            payload=value, parity=parity.tobytes(),
            checksums=tuple(checksums))
        self.wal.log_intent(tx)
        self._persist_stripe_write(stripe, offset, value, parity)
        self.wal.log_commit(tx.txid, tx.op)
        self._apply_commit(tx)
        self._charge("encode", 1)
        return self._objects[key]

    def update(self, key: str, value: bytes) -> ObjectMeta:
        """Overwrite an object in place via the delta-parity path.

        The new value must match the stored length (in-place small
        write). For RS stripes the new parity comes from
        :meth:`~repro.codes.rs.RSCode.update_parity` — read old data,
        XOR the delta through the generator column — instead of a full
        re-encode; LRC falls back to re-encoding. Either way the write
        is WAL-logged exactly like :meth:`put`, which is what keeps the
        delta path (the classic write-hole shape) crash-atomic: after
        recovery the stripe holds entirely-old or entirely-new data and
        parity, never a mix.
        """
        self._fire_hooks("update", key)
        meta = self._objects[key]
        if meta.stripe == -1:
            raise ValueError(
                f"cannot delta-update sharded object {key!r}; re-put it")
        if len(value) != meta.length:
            raise ValueError(
                f"in-place update must keep the length: stored "
                f"{meta.length} B, got {len(value)} B")
        value = bytes(value)
        sid = meta.stripe
        self.verify_stripe(sid)            # anti-laundering, as in put
        stripe = self._stripes[sid]
        if stripe.lost:
            self.repair(sid)               # delta needs trustworthy old data

        new_data = stripe.data.copy()
        flat = new_data.reshape(-1)
        flat[meta.offset:meta.offset + len(value)] = np.frombuffer(
            value, dtype=np.uint8)
        if self.lrc_l or meta.length == 0:
            parity = self._compute_parity(new_data)
        else:
            parity = stripe.parity
            first = meta.offset // self.block_bytes
            last = (meta.offset + meta.length - 1) // self.block_bytes
            for b in range(first, last + 1):
                parity = self.code.update_parity(
                    parity, b, stripe.data[b], new_data[b])
        checksums = self._stripe_checksums(new_data, parity)

        tx = TxIntent(
            txid=self.wal.begin_txid(), op=OP_UPDATE, key=key, sid=sid,
            new_stripe=False, stripe_addr=stripe.addr, offset=meta.offset,
            length=len(value), used_after=stripe.used,
            payload=value, parity=np.asarray(parity, dtype=np.uint8).tobytes(),
            checksums=tuple(checksums))
        self.wal.log_intent(tx)
        self._persist_stripe_write(stripe, meta.offset, value,
                                   np.asarray(parity, dtype=np.uint8))
        self.wal.log_commit(tx.txid, tx.op)
        self._apply_commit(tx)
        self._charge("encode", 1)
        return self._objects[key]

    def get(self, key: str) -> bytes:
        """Read an object, transparently repairing through parity if its
        blocks are marked lost (a *degraded read*)."""
        self._fire_hooks("get", key)
        meta = self._objects[key]
        if meta.stripe == -1:  # shard manifest: reassemble transparently
            return self.get_sharded(key)
        if self.verify_reads:
            self.verify_stripe(meta.stripe)
        stripe = self._stripes[meta.stripe]
        blocks_needed = set(
            range(meta.offset // self.block_bytes,
                  (meta.offset + meta.length - 1) // self.block_bytes + 1))
        lost_needed = blocks_needed & stripe.lost
        if lost_needed:
            self.stats.degraded_reads += 1
            recovered = self._decode(meta.stripe, sorted(stripe.lost))
            data = stripe.data.copy()
            for e, block in recovered.items():
                if e < self.k:
                    data[e] = block
        else:
            data = stripe.data
        flat = data.reshape(-1)
        self.stats.gets += 1
        self.stats.bytes_read += meta.length
        return flat[meta.offset:meta.offset + meta.length].tobytes()

    def put_sharded(self, key: str, value: bytes) -> list[ObjectMeta]:
        """Store an object of any size, sharding across stripes.

        Shards are stored as ``key#<i>`` objects plus a ``key`` manifest
        entry recording the shard count; :meth:`get` reassembles
        manifests transparently (:meth:`get_sharded` does it explicitly).
        Each shard is its own transaction and the manifest commits last,
        so a crash mid-shard leaves ``key`` unmapped (never a partial
        object) — the unacknowledged shards are garbage, not damage.
        """
        cap = self.stripe_data_bytes
        shards = [value[i:i + cap] for i in range(0, max(1, len(value)), cap)]
        metas = [self.put(f"{key}#{i}", shard)
                 for i, shard in enumerate(shards)]
        tx = TxIntent(
            txid=self.wal.begin_txid(), op=OP_MANIFEST, key=key, sid=-1,
            new_stripe=False, stripe_addr=0, offset=len(shards),
            length=len(value), used_after=0, payload=b"", parity=b"",
            checksums=())
        self.wal.log_intent(tx)
        self.wal.log_commit(tx.txid, tx.op)
        self._apply_commit(tx)
        return metas

    def get_sharded(self, key: str) -> bytes:
        """Reassemble an object stored with :meth:`put_sharded`."""
        manifest = self._objects[key]
        nshards, length = manifest.offset, manifest.length
        data = b"".join(self.get(f"{key}#{i}") for i in range(nshards))
        return data[:length]

    def delete(self, key: str) -> None:
        """Drop an object (space is not compacted; this is a test store).

        Sharded objects cascade to their shards. Deletion is metadata-
        only, but still a logged transaction: an acknowledged delete
        stays deleted across any crash.
        """
        meta = self._objects[key]  # KeyError surfaces, as before
        tx = TxIntent(
            txid=self.wal.begin_txid(), op=OP_DELETE, key=key,
            sid=meta.stripe, new_stripe=False, stripe_addr=0,
            offset=meta.offset, length=meta.length, used_after=0,
            payload=b"", parity=b"", checksums=())
        self.wal.log_intent(tx)
        self.wal.log_commit(tx.txid, tx.op)
        self._apply_commit(tx)

    def keys(self) -> list[str]:
        """All stored object keys."""
        return list(self._objects)

    # -- crash + recovery ----------------------------------------------------

    def crash(self, policy: CrashPolicy | None = None) -> int:
        """Power cut *now*: resolve every unfenced line through
        ``policy`` (default: drop them all) and forget all volatile
        state — object table, stripe table, checksums, stats. Loss
        marks are captured first (erasure marks are control-plane
        metadata held off-PM) for :meth:`recover` to reinstate. Returns
        how many lines lost or tore their new content.
        """
        self._saved_marks = {sid: set(s.lost)
                             for sid, s in enumerate(self._stripes)
                             if s.lost}
        damaged = self.domain.crash(policy)
        damaged += self.wal.domain.crash(policy)
        self._stripes = []
        self._objects = {}
        self.stats = StoreStats()
        return damaged

    def recover(self) -> RecoveryReport:
        """Rebuild the store from durable state by replaying the WAL.

        Committed transactions are redone from their intent images
        (idempotent — replaying twice writes the same bytes); intent-
        complete uncommitted transactions are rolled forward and their
        commit record appended; a torn trailing intent is discarded
        (its stripe was never touched). Safe to call repeatedly: the
        durable state reached is a fixed point.
        """
        report = RecoveryReport()
        intents, committed, scanned = self.wal.scan()
        report.wal_bytes_scanned = scanned
        self._stripes = []
        self._objects = {}
        high_water = 0
        for tx in intents:
            report.txns_seen += 1
            if tx.txid in committed:
                report.committed += 1
            else:
                report.rolled_forward += 1
            if tx.sid >= 0 and tx.op in (OP_PUT, OP_UPDATE):
                if tx.sid == len(self._stripes):
                    # Stripe creation replays in txid order, so sids
                    # are dense and arrive exactly in sequence.
                    self._stripes.append(
                        self._materialize_stripe(tx.stripe_addr))
                    report.stripes_recovered += 1
                stripe = self._stripes[tx.sid]
                # Redo the stripe writes from the intent's images —
                # recovery is itself crash-consistent (flush+fence).
                self._persist_stripe_write(stripe, tx.offset, tx.payload,
                                           np.frombuffer(tx.parity,
                                                         dtype=np.uint8))
                report.lines_redone += (
                    (len(tx.payload) + len(tx.parity) - 1)
                    // self.domain.line_bytes + 1)
                high_water = max(high_water,
                                 tx.stripe_addr + self._stripe_bytes)
            if tx.txid not in committed:
                self.wal.log_commit(tx.txid, tx.op)
            self._apply_commit(tx)
        # Replay counted every commit as a fresh op; recovery rebuilds
        # state, it does not serve traffic — reset the counters.
        self.stats = StoreStats()
        self.domain.reset_allocator(high_water)
        # Reinstate control-plane loss marks (device + block erasures).
        for sid, marks in self._saved_marks.items():
            if sid < len(self._stripes):
                self._stripes[sid].lost |= marks
        for stripe in self._stripes:
            stripe.lost |= self._lost_devices
        for stripe in self._stripes:
            report.checksum_mismatches += sum(
                1 for i, block in enumerate(np.vstack([stripe.data,
                                                       stripe.parity]))
                if i not in stripe.lost
                and self._checksum(block) != stripe.checksums[i])
        report.objects_recovered = len(self._objects)
        return report

    def state_digest(self) -> str:
        """SHA-256 over durable memory + recovered metadata — the
        oracle for the idempotent-replay invariant (two digests equal
        means byte-identical durable state *and* identical volatile
        reconstruction)."""
        h = hashlib.sha256()
        h.update(self.domain.state_digest().encode())
        h.update(self.wal.domain.state_digest().encode())
        for key in sorted(self._objects):
            meta = self._objects[key]
            h.update(f"{key}|{meta.stripe}|{meta.offset}|{meta.length};"
                     .encode())
        for stripe in self._stripes:
            h.update(f"{stripe.addr}|{stripe.used}|"
                     f"{tuple(stripe.checksums)}|"
                     f"{tuple(sorted(stripe.lost))};".encode())
        return h.hexdigest()

    # -- failure handling ----------------------------------------------------

    def blocks_of(self, sid: int) -> np.ndarray:
        """All stripe-global blocks of stripe ``sid`` (data first)."""
        s = self._stripes[sid]
        return np.vstack([s.data, s.parity])

    def meta_of(self, key: str) -> ObjectMeta:
        """Placement metadata of one stored object."""
        return self._objects[key]

    def lost_blocks(self, sid: int) -> frozenset[int]:
        """Stripe-global indices currently marked lost in stripe ``sid``."""
        return frozenset(self._stripes[sid].lost)

    def stripes_with_losses(self) -> list[int]:
        """Stripe ids that currently carry loss marks (repair backlog)."""
        return [sid for sid, s in enumerate(self._stripes) if s.lost]

    def mark_lost(self, sid: int, block: int) -> None:
        """Declare a block erased (device region failed)."""
        total = self.k + self.parity_blocks
        if not 0 <= block < total:
            raise IndexError(f"block {block} out of range 0..{total - 1}")
        self._stripes[sid].lost.add(block)

    @property
    def lost_devices(self) -> frozenset[int]:
        """Block positions currently marked lost store-wide."""
        return frozenset(self._lost_devices)

    def mark_device_lost(self, device: int) -> int:
        """Lose block position ``device`` in every stripe, present and
        future — the correlated "device died" failure the striping is
        designed for. Returns how many existing stripes were affected.
        Reads of affected objects become degraded reads until
        :meth:`restore_device` (or :meth:`repair_all`) runs.
        """
        total = self.k + self.parity_blocks
        if not 0 <= device < total:
            raise IndexError(f"device {device} out of range 0..{total - 1}")
        self._lost_devices.add(device)
        affected = 0
        for stripe in self._stripes:
            if device not in stripe.lost:
                stripe.lost.add(device)
                affected += 1
        return affected

    def restore_device(self, device: int) -> int:
        """Bring a lost device back: rebuild its blocks from parity in
        every stripe and stop marking it in new stripes. Returns blocks
        rebuilt."""
        self._lost_devices.discard(device)
        return self.repair_all()

    def unmark_device(self, device: int) -> None:
        """Stop marking ``device`` lost in new stripes, *without* the
        bulk rebuild of :meth:`restore_device` — for callers (the
        self-healing repair queue) that have already rebuilt its blocks
        stripe-by-stripe under their own pacing."""
        self._lost_devices.discard(device)

    def is_degraded(self, key: str) -> bool:
        """Whether reading ``key`` right now requires parity repair."""
        meta = self._objects[key]
        if meta.stripe == -1:  # shard manifest: degraded if any shard is
            return any(self.is_degraded(f"{key}#{i}")
                       for i in range(meta.offset))
        stripe = self._stripes[meta.stripe]
        blocks_needed = set(
            range(meta.offset // self.block_bytes,
                  (meta.offset + meta.length - 1) // self.block_bytes + 1))
        return bool(blocks_needed & stripe.lost)

    def _decode(self, sid: int, erased: list[int]) -> dict[int, np.ndarray]:
        stripe = self._stripes[sid]
        blocks = self.blocks_of(sid)
        avail = {i: blocks[i] for i in range(len(blocks)) if i not in erased}
        out = self.code.decode(avail, erased)
        self._charge("decode", 1)
        return out

    def repair(self, sid: int) -> int:
        """Rebuild every lost block of a stripe; returns how many.

        The plain-RS budget is ``m`` erasures; LRC stripes can exceed it
        when local parities absorb part of the damage, so the store
        attempts the decode and reports data loss only when it is truly
        unrecoverable. Repaired blocks are persisted (flush + fence)
        straight to durable state: reconstruction is idempotent, so it
        needs no WAL protection.
        """
        stripe = self._stripes[sid]
        if not stripe.lost:
            return 0
        # Anti-laundering: decode inputs must be trustworthy. A silently
        # corrupted "available" block would reconstruct garbage *with a
        # fresh matching checksum* — so CRC-check every input first and
        # promote mismatches to erasures.
        blocks = self.blocks_of(sid)
        for i in range(len(blocks)):
            if (i not in stripe.lost
                    and self._checksum(blocks[i]) != stripe.checksums[i]):
                stripe.lost.add(i)
        erased = sorted(stripe.lost)
        try:
            out = self._decode(sid, erased)
        except ValueError as exc:
            raise ValueError(
                f"stripe {sid} lost {len(erased)} blocks beyond repair "
                f"capacity: data loss") from exc
        for e, block in out.items():
            self._write_block_durable(sid, e, block)
            stripe.checksums[e] = self._checksum(block)
        stripe.lost.clear()
        self.stats.repairs += 1
        self.stats.blocks_repaired += len(erased)
        return len(erased)

    def repair_all(self) -> int:
        """Repair every stripe with losses; returns blocks rebuilt."""
        return sum(self.repair(sid) for sid in range(len(self._stripes))
                   if self._stripes[sid].lost)

    @property
    def num_stripes(self) -> int:
        return len(self._stripes)
