"""The erasure-coded PM object store.

Objects are packed into fixed-geometry stripes (k data + m parity
blocks, one block per simulated PM "device region" so correlated loss
maps to block loss). The store keeps per-block CRC32 checksums — the
standard trick (Pangolin, NOVA-Fortis) that turns silent corruption
into locatable *erasures*, which RS can then repair.

Performance accounting is optional: hand the store a
:class:`~repro.libs.base.CodingLibrary` (e.g. ``DialgaEncoder``) and a
:class:`~repro.simulator.HardwareConfig`, and every encode/decode also
runs the corresponding workload on the simulated testbed, accumulating
coding time into :class:`StoreStats`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.codes.rs import RSCode
from repro.codes.lrc import LRCCode
from repro.libs.base import CodingLibrary
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


@dataclass
class ObjectMeta:
    """Where one object lives."""

    key: str
    stripe: int
    offset: int          # byte offset within the stripe's data space
    length: int


@dataclass
class StoreStats:
    """Operational counters, including simulated coding time."""

    puts: int = 0
    gets: int = 0
    degraded_reads: int = 0
    repairs: int = 0
    blocks_repaired: int = 0
    encode_ns: float = 0.0
    decode_ns: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0


@dataclass
class _Stripe:
    data: np.ndarray                  # (k, block) uint8
    parity: np.ndarray                # (m [+l], block) uint8
    checksums: list[int]              # per stripe-global block
    used: int = 0                     # bytes of data space consumed
    lost: set = field(default_factory=set)  # stripe-global indices marked lost


class PMStore:
    """A reliability-coded object store over (simulated) PM.

    Parameters
    ----------
    k, m:
        Stripe geometry.
    block_bytes:
        Block size (also the device-region granularity).
    lrc_l:
        If set, protect with LRC(k, m, l) instead of RS — single-block
        losses then repair by reading one group only.
    library:
        Optional coding library whose simulated performance is charged
        for every encode/decode (defaults to pure functional coding
        with no timing).
    hw:
        Testbed for the performance model.
    """

    def __init__(self, k: int, m: int, block_bytes: int = 4096,
                 lrc_l: int | None = None,
                 library: CodingLibrary | None = None,
                 hw: HardwareConfig | None = None,
                 verify_reads: bool = False):
        self.k, self.m = k, m
        self.block_bytes = block_bytes
        self.lrc_l = lrc_l
        self.code = LRCCode(k, m, lrc_l) if lrc_l else RSCode(k, m)
        self.library = library
        self.hw = hw or HardwareConfig()
        #: Verify checksums (and repair mismatches) before serving reads
        #: — catches silent corruption at read time instead of waiting
        #: for the next scrub, at one CRC pass per get.
        self.verify_reads = verify_reads
        self.stats = StoreStats()
        self._stripes: list[_Stripe] = []
        self._objects: dict[str, ObjectMeta] = {}
        #: Callbacks fired at the top of every put/get as ``hook(op,
        #: key)``. A hook may raise (e.g. :class:`~repro.pmstore.faults.
        #: TransientFault`) to model an operation-level failure — the
        #: service layer's retry path hangs off this.
        self.fault_hooks: list[Callable[[str, str], None]] = []
        self._lost_devices: set[int] = set()

    # -- geometry helpers --------------------------------------------------

    @property
    def stripe_data_bytes(self) -> int:
        """Object-payload capacity of one stripe."""
        return self.k * self.block_bytes

    @property
    def parity_blocks(self) -> int:
        """Parity blocks per stripe (global + local for LRC)."""
        return self.m + (self.lrc_l or 0)

    def _checksum(self, block: np.ndarray) -> int:
        return zlib.crc32(block.tobytes())

    def add_fault_hook(self, hook: Callable[[str, str], None]) -> None:
        """Register an operation-level fault hook (see ``fault_hooks``)."""
        self.fault_hooks.append(hook)

    def _fire_hooks(self, op: str, key: str) -> None:
        for hook in self.fault_hooks:
            hook(op, key)

    def _charge(self, op: str, stripes: int) -> None:
        """Charge simulated coding time for ``stripes`` stripe ops."""
        if self.library is None or stripes == 0:
            return
        wl = Workload(
            k=self.k, m=self.m, block_bytes=self.block_bytes,
            lrc_l=self.lrc_l if op == "encode" else None,
            op="encode" if op == "encode" else "decode",
            erasures=0 if op == "encode" else min(self.m, 1),
            data_bytes_per_thread=stripes * self.stripe_data_bytes)
        res = self.library.run(wl, self.hw)
        if op == "encode":
            self.stats.encode_ns += res.sim.makespan_ns
        else:
            self.stats.decode_ns += res.sim.makespan_ns

    # -- stripe management ---------------------------------------------------

    def _encode_stripe(self, data: np.ndarray) -> _Stripe:
        if self.lrc_l:
            gp, lp = self.code.encode(data)
            parity = np.vstack([gp, lp])
        else:
            parity = self.code.encode_blocks(data)
        checksums = [self._checksum(data[i]) for i in range(self.k)]
        checksums += [self._checksum(parity[i]) for i in range(len(parity))]
        return _Stripe(data=data, parity=parity, checksums=checksums)

    def _new_stripe(self) -> int:
        data = np.zeros((self.k, self.block_bytes), dtype=np.uint8)
        stripe = self._encode_stripe(data)
        # A dead device region is dead for freshly allocated stripes too:
        # logical writes still land (parity carries them), reads degrade.
        stripe.lost |= self._lost_devices
        self._stripes.append(stripe)
        return len(self._stripes) - 1

    def _reencode(self, sid: int) -> None:
        """Refresh parity and checksums after a data write (in place —
        allocation state and loss marks must survive)."""
        stripe = self._stripes[sid]
        fresh = self._encode_stripe(stripe.data)
        stripe.parity = fresh.parity
        stripe.checksums = fresh.checksums

    def verify_stripe(self, sid: int, repair: bool = True) -> list[int]:
        """Checksum-verify every non-lost block of stripe ``sid``.

        Mismatching blocks (silent corruption) are converted to
        erasures; with ``repair`` they are rebuilt through parity on the
        spot (best-effort — an unrepairable stripe keeps its loss marks
        for the scrubber/repair queue to deal with). Returns the
        stripe-global indices found corrupt.
        """
        stripe = self._stripes[sid]
        blocks = self.blocks_of(sid)
        corrupt = [
            i for i in range(len(blocks))
            if i not in stripe.lost
            and self._checksum(blocks[i]) != stripe.checksums[i]
        ]
        for block in corrupt:
            stripe.lost.add(block)
        if corrupt and repair:
            try:
                self.repair(sid)
            except ValueError:
                pass  # beyond parity budget: leave the erasure marks
        return corrupt

    # -- public object API ------------------------------------------------------

    def put(self, key: str, value: bytes) -> ObjectMeta:
        """Store an object (at most one stripe of payload)."""
        self._fire_hooks("put", key)
        if len(value) > self.stripe_data_bytes:
            raise ValueError(
                f"object of {len(value)} B exceeds stripe capacity "
                f"{self.stripe_data_bytes} B; shard it")
        if key in self._objects:
            self.delete(key)
        sid = None
        for i, s in enumerate(self._stripes):
            if s.used + len(value) <= self.stripe_data_bytes and not s.lost:
                # Write-path verify: re-encoding parity over a silently
                # corrupted neighbor block would *launder* the corruption
                # (fresh parity and checksums computed from bad bytes).
                # Catch and repair it before touching the stripe.
                self.verify_stripe(i)
                if not s.lost:
                    sid = i
                    break
        if sid is None:
            sid = self._new_stripe()
        stripe = self._stripes[sid]
        offset = stripe.used
        flat = stripe.data.reshape(-1)
        flat[offset:offset + len(value)] = np.frombuffer(value, dtype=np.uint8)
        stripe.used += len(value)
        self._reencode(sid)
        self._charge("encode", 1)
        meta = ObjectMeta(key=key, stripe=sid, offset=offset, length=len(value))
        self._objects[key] = meta
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        return meta

    def get(self, key: str) -> bytes:
        """Read an object, transparently repairing through parity if its
        blocks are marked lost (a *degraded read*)."""
        self._fire_hooks("get", key)
        meta = self._objects[key]
        if meta.stripe == -1:  # shard manifest: reassemble transparently
            return self.get_sharded(key)
        if self.verify_reads:
            self.verify_stripe(meta.stripe)
        stripe = self._stripes[meta.stripe]
        blocks_needed = set(
            range(meta.offset // self.block_bytes,
                  (meta.offset + meta.length - 1) // self.block_bytes + 1))
        lost_needed = blocks_needed & stripe.lost
        if lost_needed:
            self.stats.degraded_reads += 1
            recovered = self._decode(meta.stripe, sorted(stripe.lost))
            data = stripe.data.copy()
            for e, block in recovered.items():
                if e < self.k:
                    data[e] = block
        else:
            data = stripe.data
        flat = data.reshape(-1)
        self.stats.gets += 1
        self.stats.bytes_read += meta.length
        return flat[meta.offset:meta.offset + meta.length].tobytes()

    def put_sharded(self, key: str, value: bytes) -> list[ObjectMeta]:
        """Store an object of any size, sharding across stripes.

        Shards are stored as ``key#<i>`` objects plus a ``key`` manifest
        entry recording the shard count; :meth:`get` reassembles
        manifests transparently (:meth:`get_sharded` does it explicitly).
        """
        cap = self.stripe_data_bytes
        shards = [value[i:i + cap] for i in range(0, max(1, len(value)), cap)]
        metas = [self.put(f"{key}#{i}", shard)
                 for i, shard in enumerate(shards)]
        self._objects[key] = ObjectMeta(key=key, stripe=-1, offset=len(shards),
                                        length=len(value))
        return metas

    def get_sharded(self, key: str) -> bytes:
        """Reassemble an object stored with :meth:`put_sharded`."""
        manifest = self._objects[key]
        nshards, length = manifest.offset, manifest.length
        data = b"".join(self.get(f"{key}#{i}") for i in range(nshards))
        return data[:length]

    def delete(self, key: str) -> None:
        """Drop an object (space is not compacted; this is a test store).

        Sharded objects cascade to their shards.
        """
        meta = self._objects.pop(key)
        if meta.stripe == -1:  # a shard manifest
            for i in range(meta.offset):
                self._objects.pop(f"{key}#{i}", None)

    def keys(self) -> list[str]:
        """All stored object keys."""
        return list(self._objects)

    # -- failure handling ----------------------------------------------------

    def blocks_of(self, sid: int) -> np.ndarray:
        """All stripe-global blocks of stripe ``sid`` (data first)."""
        s = self._stripes[sid]
        return np.vstack([s.data, s.parity])

    def meta_of(self, key: str) -> ObjectMeta:
        """Placement metadata of one stored object."""
        return self._objects[key]

    def lost_blocks(self, sid: int) -> frozenset[int]:
        """Stripe-global indices currently marked lost in stripe ``sid``."""
        return frozenset(self._stripes[sid].lost)

    def stripes_with_losses(self) -> list[int]:
        """Stripe ids that currently carry loss marks (repair backlog)."""
        return [sid for sid, s in enumerate(self._stripes) if s.lost]

    def mark_lost(self, sid: int, block: int) -> None:
        """Declare a block erased (device region failed)."""
        total = self.k + self.parity_blocks
        if not 0 <= block < total:
            raise IndexError(f"block {block} out of range 0..{total - 1}")
        self._stripes[sid].lost.add(block)

    @property
    def lost_devices(self) -> frozenset[int]:
        """Block positions currently marked lost store-wide."""
        return frozenset(self._lost_devices)

    def mark_device_lost(self, device: int) -> int:
        """Lose block position ``device`` in every stripe, present and
        future — the correlated "device died" failure the striping is
        designed for. Returns how many existing stripes were affected.
        Reads of affected objects become degraded reads until
        :meth:`restore_device` (or :meth:`repair_all`) runs.
        """
        total = self.k + self.parity_blocks
        if not 0 <= device < total:
            raise IndexError(f"device {device} out of range 0..{total - 1}")
        self._lost_devices.add(device)
        affected = 0
        for stripe in self._stripes:
            if device not in stripe.lost:
                stripe.lost.add(device)
                affected += 1
        return affected

    def restore_device(self, device: int) -> int:
        """Bring a lost device back: rebuild its blocks from parity in
        every stripe and stop marking it in new stripes. Returns blocks
        rebuilt."""
        self._lost_devices.discard(device)
        return self.repair_all()

    def unmark_device(self, device: int) -> None:
        """Stop marking ``device`` lost in new stripes, *without* the
        bulk rebuild of :meth:`restore_device` — for callers (the
        self-healing repair queue) that have already rebuilt its blocks
        stripe-by-stripe under their own pacing."""
        self._lost_devices.discard(device)

    def is_degraded(self, key: str) -> bool:
        """Whether reading ``key`` right now requires parity repair."""
        meta = self._objects[key]
        if meta.stripe == -1:  # shard manifest: degraded if any shard is
            return any(self.is_degraded(f"{key}#{i}")
                       for i in range(meta.offset))
        stripe = self._stripes[meta.stripe]
        blocks_needed = set(
            range(meta.offset // self.block_bytes,
                  (meta.offset + meta.length - 1) // self.block_bytes + 1))
        return bool(blocks_needed & stripe.lost)

    def _decode(self, sid: int, erased: list[int]) -> dict[int, np.ndarray]:
        stripe = self._stripes[sid]
        blocks = self.blocks_of(sid)
        avail = {i: blocks[i] for i in range(len(blocks)) if i not in erased}
        out = self.code.decode(avail, erased)
        self._charge("decode", 1)
        return out

    def repair(self, sid: int) -> int:
        """Rebuild every lost block of a stripe; returns how many.

        The plain-RS budget is ``m`` erasures; LRC stripes can exceed it
        when local parities absorb part of the damage, so the store
        attempts the decode and reports data loss only when it is truly
        unrecoverable.
        """
        stripe = self._stripes[sid]
        if not stripe.lost:
            return 0
        erased = sorted(stripe.lost)
        try:
            out = self._decode(sid, erased)
        except ValueError as exc:
            raise ValueError(
                f"stripe {sid} lost {len(erased)} blocks beyond repair "
                f"capacity: data loss") from exc
        for e, block in out.items():
            if e < self.k:
                stripe.data[e] = block
            else:
                stripe.parity[e - self.k] = block
            stripe.checksums[e] = self._checksum(block)
        stripe.lost.clear()
        self.stats.repairs += 1
        self.stats.blocks_repaired += len(erased)
        return len(erased)

    def repair_all(self) -> int:
        """Repair every stripe with losses; returns blocks rebuilt."""
        return sum(self.repair(sid) for sid in range(len(self._stripes))
                   if self._stripes[sid].lost)

    @property
    def num_stripes(self) -> int:
        return len(self._stripes)
