"""An erasure-coded persistent-memory store (application substrate).

The paper's motivation (§1-2) is PM's reliability gap: media bit flips,
write disturbances and software scribbles that on-DIMM ECC cannot
catch, repaired by system-level erasure coding. This package is that
application layer, built on the repo's codecs — the downstream consumer
a DIALGA user actually runs:

* :class:`~repro.pmstore.store.PMStore` — an object store whose value
  space is protected by RS or LRC stripes; put/get/delete, degraded
  reads, repair, and a coding-cost model (simulated, via any
  :class:`~repro.libs.base.CodingLibrary`).
* :class:`~repro.pmstore.faults.FaultInjector` — media bit flips,
  block/device loss and software scribbles, with deterministic seeding.
* :class:`~repro.pmstore.scrubber.Scrubber` — parity-consistency
  scrubbing: detect, locate (checksum-assisted) and repair corruption.
"""

from repro.pmstore.store import PMStore, StoreStats, ObjectMeta
from repro.pmstore.faults import FaultInjector, FaultEvent, TransientFault
from repro.pmstore.scrubber import Scrubber, ScrubReport

__all__ = [
    "PMStore",
    "StoreStats",
    "ObjectMeta",
    "FaultInjector",
    "FaultEvent",
    "TransientFault",
    "Scrubber",
    "ScrubReport",
]
