"""An erasure-coded persistent-memory store (application substrate).

The paper's motivation (§1-2) is PM's reliability gap: media bit flips,
write disturbances and software scribbles that on-DIMM ECC cannot
catch, repaired by system-level erasure coding. This package is that
application layer, built on the repo's codecs — the downstream consumer
a DIALGA user actually runs:

* :class:`~repro.pmstore.store.PMStore` — an object store whose value
  space is protected by RS or LRC stripes; put/get/update/delete,
  degraded reads, repair, and a coding-cost model (simulated, via any
  :class:`~repro.libs.base.CodingLibrary`). Every mutation is a
  WAL-logged transaction over the persistence domain, so
  :meth:`~repro.pmstore.store.PMStore.crash` /
  :meth:`~repro.pmstore.store.PMStore.recover` survive any power cut.
* :class:`~repro.pmstore.pmem.PersistenceDomain` — the PM durability
  model: 256 B-line store buffer with explicit flush/fence (clwb/
  sfence), line-granular crash dropping and 8 B-granular tearing.
* :class:`~repro.pmstore.wal.StripeWAL` — the checksummed redo log
  (intent → in-place lines → commit) that closes the stripe write hole.
* :class:`~repro.pmstore.faults.FaultInjector` — media bit flips,
  block/device loss and software scribbles, with deterministic
  per-site seeding.
* :class:`~repro.pmstore.scrubber.Scrubber` — parity-consistency
  scrubbing: detect, locate (checksum-assisted) and repair corruption.
"""

from repro.pmstore.faults import FaultEvent, FaultInjector, TransientFault
from repro.pmstore.pmem import (
    ATOM_BYTES,
    LINE_BYTES,
    PendingLine,
    PersistenceDomain,
    PersistenceDomainFull,
    drop_unfenced,
    keep_flushed,
    seeded_line_policy,
)
from repro.pmstore.scrubber import Scrubber, ScrubReport
from repro.pmstore.store import ObjectMeta, PMStore, RecoveryReport, StoreStats
from repro.pmstore.wal import StripeWAL, TxIntent, WALFull

__all__ = [
    "ATOM_BYTES",
    "LINE_BYTES",
    "FaultEvent",
    "FaultInjector",
    "ObjectMeta",
    "PMStore",
    "PendingLine",
    "PersistenceDomain",
    "PersistenceDomainFull",
    "RecoveryReport",
    "ScrubReport",
    "Scrubber",
    "StoreStats",
    "StripeWAL",
    "TransientFault",
    "TxIntent",
    "WALFull",
    "drop_unfenced",
    "keep_flushed",
    "seeded_line_policy",
]
