"""The stripe write-ahead log: intent -> in-place write -> commit.

Delta parity updates and appends-into-open-stripes are the PM write
hole: data and parity lines land in separate media writes, so a power
cut between them leaves a stripe whose parity silently disagrees with
its data. The store closes the hole with classic redo logging:

1. an **intent record** carrying everything needed to redo the
   transaction (key, placement, payload, full new parity images, the
   post-state checksums) is appended and fenced;
2. the stripe's data and parity lines are written in place and fenced;
3. a **commit record** is appended and fenced — only then does the
   store apply volatile metadata and acknowledge the client.

Every record is CRC-checked, so :meth:`StripeWAL.scan` recovers the
longest durable prefix of the log: a record torn by the crash fails its
checksum and ends the scan (nothing after it can be durable, because
each record is fenced before the protocol proceeds). Recovery then
rolls committed *and* intent-complete transactions forward from their
redo images — an uncommitted transaction was never acknowledged, so
completing it is as correct as dropping it, and unlike dropping it the
roll-forward never needs undo images for half-written stripe lines —
and discards a torn intent outright (the stripe is untouched by the
protocol ordering, so there is nothing to undo).

The log lives in its own :class:`~repro.pmstore.pmem.
PersistenceDomain` — a dedicated device region — so scans start at
address 0 and run contiguously. Checkpoint/truncation is out of scope
(the log is bounded by the region; see ``docs/robustness.md``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.pmstore.pmem import PersistenceDomain

#: Record types.
REC_INTENT = 1
REC_COMMIT = 2

#: Transaction ops (the ``op`` header byte of an intent).
OP_PUT = 1
OP_UPDATE = 2
OP_DELETE = 3
OP_MANIFEST = 4

OP_NAMES = {OP_PUT: "put", OP_UPDATE: "update", OP_DELETE: "delete",
            OP_MANIFEST: "manifest"}

_HDR = struct.Struct("<2sBBIII")   # magic, rtype, op, txid, body_len, crc
_MAGIC = b"WL"
_META = struct.Struct("<iBQIII")   # sid, new_stripe, stripe_addr,
                                   # offset, length, used_after


class WALFull(RuntimeError):
    """The log region is exhausted (checkpointing is out of scope)."""


@dataclass(frozen=True)
class TxIntent:
    """Decoded intent record — the redo image of one transaction.

    ``sid == -1`` marks a shard-manifest entry (metadata only, like
    :class:`~repro.pmstore.store.ObjectMeta` with ``stripe == -1``).
    """

    txid: int
    op: int
    key: str
    sid: int
    new_stripe: bool
    stripe_addr: int
    offset: int
    length: int
    used_after: int
    payload: bytes
    parity: bytes
    checksums: tuple[int, ...]

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.op, str(self.op))


def _encode_intent(tx: TxIntent) -> bytes:
    key = tx.key.encode("utf-8")
    parts = [
        struct.pack("<H", len(key)), key,
        _META.pack(tx.sid, int(tx.new_stripe), tx.stripe_addr,
                   tx.offset, tx.length, tx.used_after),
        struct.pack("<I", len(tx.payload)), tx.payload,
        struct.pack("<I", len(tx.parity)), tx.parity,
        struct.pack("<H", len(tx.checksums)),
        struct.pack(f"<{len(tx.checksums)}I", *tx.checksums),
    ]
    return b"".join(parts)


def _decode_intent(txid: int, op: int, body: bytes) -> TxIntent:
    pos = 0
    (key_len,) = struct.unpack_from("<H", body, pos)
    pos += 2
    key = body[pos:pos + key_len].decode("utf-8")
    pos += key_len
    sid, new_stripe, addr, offset, length, used = _META.unpack_from(body, pos)
    pos += _META.size
    (plen,) = struct.unpack_from("<I", body, pos)
    pos += 4
    payload = body[pos:pos + plen]
    pos += plen
    (qlen,) = struct.unpack_from("<I", body, pos)
    pos += 4
    parity = body[pos:pos + qlen]
    pos += qlen
    (ncks,) = struct.unpack_from("<H", body, pos)
    pos += 2
    checksums = struct.unpack_from(f"<{ncks}I", body, pos)
    return TxIntent(txid, op, key, sid, bool(new_stripe), addr, offset,
                    length, used, bytes(payload), bytes(parity),
                    tuple(checksums))


def _crc(rtype: int, op: int, txid: int, body: bytes) -> int:
    head = struct.pack("<BBI", rtype, op, txid)
    return zlib.crc32(body, zlib.crc32(head))


class StripeWAL:
    """Append-only, CRC-checked redo log in a persistence domain."""

    def __init__(self, domain: PersistenceDomain | None = None,
                 capacity_bytes: int = 32 << 20):
        self.domain = domain or PersistenceDomain(capacity_bytes)
        self._head = 0          # volatile append cursor
        self._next_txid = 1     # volatile; recovery resets from scan

    # -- append ------------------------------------------------------------

    def begin_txid(self) -> int:
        """Claim the next transaction id (volatile until logged)."""
        txid = self._next_txid
        self._next_txid += 1
        return txid

    def _append(self, rtype: int, op: int, txid: int, body: bytes) -> int:
        rec = _HDR.pack(_MAGIC, rtype, op, txid, len(body),
                        _crc(rtype, op, txid, body)) + body
        addr = self._head
        if addr + len(rec) > self.domain.capacity:
            raise WALFull(
                f"log region exhausted appending {len(rec)} B at {addr}")
        # Ordered append: the record is written, flushed and fenced
        # before the caller proceeds — a later record can never be
        # durable while an earlier one is torn.
        self.domain.write(addr, rec)
        self.domain.persist(addr, len(rec))
        self._head = addr + len(rec)
        self.domain.reset_allocator(self._head)
        return addr

    def log_intent(self, tx: TxIntent) -> int:
        """Append + fence one intent record; returns its address."""
        return self._append(REC_INTENT, tx.op, tx.txid, _encode_intent(tx))

    def log_commit(self, txid: int, op: int = 0) -> int:
        """Append + fence one commit record; returns its address."""
        return self._append(REC_COMMIT, op, txid, b"")

    @property
    def bytes_logged(self) -> int:
        """Bytes appended so far (volatile view of the head)."""
        return self._head

    # -- recovery scan -----------------------------------------------------

    def scan(self) -> tuple[list[TxIntent], set[int], int]:
        """Decode the longest valid durable prefix of the log.

        Returns ``(intents_in_order, committed_txids, bytes_scanned)``
        and repositions the append head / txid counter past what was
        found — the log keeps growing monotonically across recoveries,
        which is what makes double replay idempotent.
        """
        mem = self.domain.memory
        pos = 0
        intents: list[TxIntent] = []
        committed: set[int] = set()
        max_txid = 0
        while pos + _HDR.size <= self.domain.capacity:
            magic, rtype, op, txid, blen, crc = _HDR.unpack_from(
                mem[pos:pos + _HDR.size].tobytes())
            if magic != _MAGIC or rtype not in (REC_INTENT, REC_COMMIT):
                break
            end = pos + _HDR.size + blen
            if end > self.domain.capacity:
                break
            body = mem[pos + _HDR.size:end].tobytes()
            if _crc(rtype, op, txid, body) != crc:
                break   # torn record: nothing after it can be durable
            if rtype == REC_INTENT:
                intents.append(_decode_intent(txid, op, body))
            else:
                committed.add(txid)
            max_txid = max(max_txid, txid)
            pos = end
        self._head = pos
        self._next_txid = max_txid + 1
        self.domain.reset_allocator(pos)
        return intents, committed, pos
