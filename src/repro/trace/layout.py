"""Address layout of stripes in (simulated) memory.

Models the paper's workload: "random 1 KB stripes" over 1 GB of
pre-filled PM — blocks of a stripe are scattered, so each block starts
on its own 4 KB page (or spans ``ceil(size/4K)`` pages when larger).
This is what gives small blocks their *short prefetch streams*: a 1 KB
block occupies only 16 lines of its page, so the streamer's training
ends at the block boundary (Obs. 4).

Threads get disjoint address spaces (distinct high bits), mirroring
per-thread source buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

LINE = 64
PAGE = 4096


@dataclass(frozen=True)
class StripeLayout:
    """Address calculator for one thread's stripes.

    Parameters
    ----------
    k, m:
        Stripe geometry (data/parity block counts).
    block_bytes:
        Block size; need not be line- or page-aligned (e.g. 5 KB).
    thread:
        Thread index (selects a disjoint address region).
    extra_blocks:
        Additional per-stripe blocks beyond k+m (e.g. LRC local
        parities).
    """

    k: int
    m: int
    block_bytes: int
    thread: int = 0
    extra_blocks: int = 0

    def __post_init__(self):
        if self.block_bytes < LINE:
            raise ValueError(f"block must be >= {LINE} B")

    @property
    def lines_per_block(self) -> int:
        """64 B lines per block (ceil for odd sizes)."""
        return -(-self.block_bytes // LINE)

    @property
    def pages_per_block(self) -> int:
        """4 KB pages each block region occupies."""
        return -(-self.block_bytes // PAGE)

    @property
    def blocks_per_stripe(self) -> int:
        return self.k + self.m + self.extra_blocks

    @property
    def thread_base(self) -> int:
        return (self.thread + 1) << 44

    def block_addr(self, stripe: int, block: int) -> int:
        """Base address of stripe-global ``block`` in ``stripe``.

        Blocks 0..k-1 are data, k..k+m-1 parity, then extras.
        """
        if not 0 <= block < self.blocks_per_stripe:
            raise IndexError(f"block {block} out of range")
        index = stripe * self.blocks_per_stripe + block
        return self.thread_base + index * self.pages_per_block * PAGE

    def line_addr(self, stripe: int, block: int, line: int) -> int:
        """Address of 64 B ``line`` within a block."""
        if not 0 <= line < self.lines_per_block:
            raise IndexError(f"line {line} out of range")
        return self.block_addr(stripe, block) + line * LINE
