"""Stripe-period detection over a trace's parallel arrays.

EC traces are overwhelmingly *stripe-periodic*: the same
load/compute/store kernel repeats once per stripe with every address
shifted by a constant stride (the stripe's footprint in the block
layout). :func:`detect_period` recovers that structure with pure array
arithmetic — no per-op Python — so the simulator's fast-forward path
(:mod:`repro.simulator.fastforward`) can skip steady-state stripes by
exact extrapolation.

Detection is anchored on FENCE ops (every generated stripe ends in
one): the candidate period length is the distance between the first
two fences, and the periodic prefix is the longest run of period-sized
rows whose opcodes repeat verbatim and whose arguments advance by one
constant per-column delta — zero on non-address columns (COMPUTE
cycles, FENCE), a single shared positive stride on address columns
(LOAD/STORE/SWPF). Anything else (update traces, fault perturbations,
mid-trace schedule switches) yields ``None`` or a short prefix, and the
fast-forward layer falls back to plain interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.ops import LOAD, STORE, SWPF, FENCE, Trace

__all__ = ["TracePeriod", "detect_period"]

#: Address columns carry byte addresses; everything else must repeat
#: with a zero delta.
_ADDR_OPS = (LOAD, STORE, SWPF)


@dataclass(frozen=True)
class TracePeriod:
    """A detected periodic region of a trace.

    Attributes
    ----------
    start:
        Op index where the first period begins.
    period_ops:
        Ops per period (one stripe's kernel, fence included).
    periods:
        Number of complete periods starting at ``start``.
    stride:
        Constant per-period byte shift of every address argument.
    """

    start: int
    period_ops: int
    periods: int
    stride: int

    @property
    def end(self) -> int:
        """Op index one past the last complete period."""
        return self.start + self.periods * self.period_ops

    def boundary(self, index: int) -> int:
        """Op index of the ``index``-th period boundary (0 = start)."""
        return self.start + index * self.period_ops


def _leading_true(mask: np.ndarray) -> int:
    """Length of the leading all-True run of a boolean vector."""
    if mask.size == 0:
        return 0
    if mask.all():
        return int(mask.size)
    return int(np.argmin(mask))


def _try_period(opc: np.ndarray, args: np.ndarray, start: int,
                period: int, min_periods: int) -> TracePeriod | None:
    """Validate a candidate (start, period); returns the longest fit."""
    n = opc.size
    avail = (n - start) // period
    if avail < min_periods:
        return None
    region_o = opc[start:start + avail * period].reshape(avail, period)
    region_a = args[start:start + avail * period].reshape(avail, period)
    # Longest prefix of rows whose opcodes repeat the first row verbatim.
    ok_op = (region_o == region_o[0]).all(axis=1)
    rows = _leading_true(ok_op)
    if rows < min_periods:
        return None
    # Longest prefix whose per-row argument delta stays constant.
    deltas = region_a[1:rows] - region_a[:rows - 1]
    if deltas.shape[0] == 0:
        return None
    ok_delta = (deltas == deltas[0]).all(axis=1)
    rows = 1 + _leading_true(ok_delta)
    if rows < min_periods:
        return None
    # The delta row must be pure translation: zero off the address
    # columns, one shared non-negative integer stride on them.
    delta = deltas[0]
    addr_cols = np.isin(region_o[0], _ADDR_OPS)
    if delta[~addr_cols].any():
        return None
    addr_deltas = delta[addr_cols]
    if addr_deltas.size == 0:
        stride = 0.0
    else:
        stride = float(addr_deltas[0])
        if (addr_deltas != stride).any():
            return None
    if stride < 0 or stride != int(stride):
        return None
    return TracePeriod(start=start, period_ops=period, periods=rows,
                       stride=int(stride))


def detect_period(trace: Trace, start_pc: int = 0,
                  min_periods: int = 4) -> TracePeriod | None:
    """Find the dominant stripe period of ``trace`` from ``start_pc``.

    Parameters
    ----------
    trace:
        The op stream to analyse.
    start_pc:
        First op considered (a resumed context's program counter).
    min_periods:
        Minimum complete periods required to report a detection —
        below that there is nothing worth fast-forwarding.

    Returns
    -------
    TracePeriod or None
        The longest FENCE-anchored periodic prefix, or ``None`` when
        the trace has no usable periodic structure.
    """
    n = len(trace.opcodes)
    if n - start_pc < 2 * min_periods:
        return None
    opc = np.frombuffer(trace.opcodes, dtype=np.uint8)
    args = np.frombuffer(trace.args, dtype=np.float64)
    fences = np.flatnonzero(opc[start_pc:] == FENCE)
    if fences.size < 2:
        return None
    period = int(fences[1] - fences[0])
    if period < 1:
        return None
    # Stripes end in their fence, so the repeating unit starting at
    # ``start_pc`` is [kernel..., FENCE]; if a prolog precedes the
    # first full stripe, anchor instead right after the first fence.
    for start in (start_pc, start_pc + int(fences[0]) + 1):
        found = _try_period(opc, args, start, period, min_periods)
        if found is not None:
            return found
    return None
