"""Memory-access trace generation for coding kernels.

A *trace* is the cacheline-granular op stream a coding kernel performs:
loads of data lines, GF/XOR compute, non-temporal parity stores,
optional software prefetches, and a trailing fence. Generators here
mirror the access *schedules* of the real libraries (ISA-L's one-pass
row-major walk, decompose's multi-pass partial parities, bitmatrix
codes' packet XOR programs) and DIALGA's operator variants (pipelined
software prefetch, shuffle mapping, XPLine-granularity expansion).
"""

from repro.trace.ops import LOAD, STORE, SWPF, COMPUTE, FENCE, Trace
from repro.trace.workload import Workload
from repro.trace.layout import StripeLayout
from repro.trace.isal_gen import isal_trace, IsalVariant
from repro.trace.xor_gen import xor_schedule_trace, xor_decomposed_trace
from repro.trace.validate import validate_isal_trace, TraceStats, TraceValidationError
from repro.trace.update_gen import update_trace
from repro.trace.period import detect_period, TracePeriod

__all__ = [
    "LOAD", "STORE", "SWPF", "COMPUTE", "FENCE",
    "Trace",
    "Workload",
    "StripeLayout",
    "isal_trace",
    "IsalVariant",
    "xor_schedule_trace",
    "xor_decomposed_trace",
    "validate_isal_trace",
    "TraceStats",
    "TraceValidationError",
    "update_trace",
    "detect_period",
    "TracePeriod",
]
