"""ISA-L-pattern trace generation, including DIALGA's operator variants.

The baseline schedule mirrors ``ec_encode_data``'s kernel: for every
64 B row position it loads that line from each of the k source blocks,
multiply-accumulates into m parity registers, and writes the m parity
lines with non-temporal stores; a fence ends the stripe. Variants:

* ``sw_prefetch_distance=d`` — pipelined software prefetch: while
  handling sequence element N, prefetch element N+d (§4.1.2/§4.2.2).
  Tail elements revert to the plain kernel (no out-of-range prefetch).
* ``bf_first_line_distance`` — read-buffer-friendly non-uniform
  distances: targets that are the *first line of an XPLine* are
  prefetched from further back (§4.3.2).
* ``shuffle=True`` — static shuffle mapping of the row order; breaks
  the L2 streamer's sequential-pattern detection, i.e. a fine-grained
  hardware-prefetcher *off* switch (§4.2.2). Software prefetch targets
  follow the shuffled order, as in the paper.
* ``xpline_granularity=True`` — expand the loop task to 256 B: consume
  all four lines of an XPLine back-to-back so the implicit media load
  is used before eviction (§4.3.3); software prefetch then touches only
  the first line per XPLine and lets the read buffer serve the rest.
* ``decompose_group=g`` — ISA-L-D / Cerasure wide-stripe decomposition:
  multiple narrow passes with parity reload between passes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.simulator.params import CPUConfig
from repro.trace.layout import StripeLayout, LINE, PAGE
from repro.trace.ops import LOAD, STORE, SWPF, COMPUTE, FENCE, Trace
from repro.trace.workload import Workload

#: Lines per XPLine (256 B / 64 B).
XP_LINES = 4


@dataclass(frozen=True)
class IsalVariant:
    """Kernel-variant selection (DIALGA entry points, §4.1.2)."""

    sw_prefetch_distance: int | None = None
    bf_first_line_distance: int | None = None
    shuffle: bool = False
    xpline_granularity: bool = False
    decompose_group: int | None = None

    def with_(self, **kwargs) -> "IsalVariant":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


def _row_order(lines: int, shuffle: bool) -> list[int]:
    """Row processing order; the shuffle is a *static* mapping.

    The shuffled order must defeat a head-tracking streamer in both
    directions: it opens at the block's *top* line (pinning the
    ascending head, so every later access is a neutral behind-head
    touch) and then descends by a stride >= 3 (so neither consecutive
    accesses nor the descending envelope ever step within the +-2
    sequential window). Constructively:

        sigma(i) = (lines - 1) - (i * stride mod lines),
        gcd(stride, lines) = 1,  3 <= stride <= lines - 3
    """
    if not shuffle or lines <= 2:
        return list(range(lines))
    if lines <= 6:
        return list(range(lines - 1, -1, -1))
    stride = 5
    while np.gcd(stride, lines) != 1 or lines - stride < 3:
        stride += 2
    return [(lines - 1) - ((i * stride) % lines) for i in range(lines)]


def _per_line_compute_cycles(wl: Workload, cpu: CPUConfig) -> float:
    """Kernel cycles to process one 64 B line of one source block."""
    m_eff = wl.erasures if wl.op == "decode" else wl.m
    cycles = m_eff * cpu.gf_cycles_per_parity_line + cpu.loop_overhead_cycles
    if wl.lrc_l is not None:
        # Local XOR parity: one extra XOR fold per data line.
        cycles += cpu.xor_cycles_per_line
    return cycles


def isal_trace(wl: Workload, cpu: CPUConfig,
               variant: IsalVariant = IsalVariant(),
               thread: int = 0, stripe_offset: int = 0) -> Trace:
    """Generate one thread's trace for the ISA-L pattern (+variants).

    ``stripe_offset`` shifts the stripe index range (the adaptive
    coordinator generates chunks incrementally; each chunk must touch
    fresh addresses).
    """
    if variant.decompose_group is not None:
        return _decomposed_trace(wl, cpu, variant, thread, stripe_offset)
    m_eff = wl.erasures if wl.op == "decode" else wl.m
    extra = wl.lrc_l or 0
    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread,
                          extra_blocks=extra)
    L = layout.lines_per_block
    k = wl.k
    per_line = _per_line_compute_cycles(wl, cpu)
    order = _row_order(L, variant.shuffle)
    trace = Trace()
    add = trace.add
    stripes = wl.stripes_per_thread

    srange = range(stripe_offset, stripe_offset + stripes)
    if variant.xpline_granularity:
        _emit_xpline_stripes(wl, layout, order, per_line, variant, add, srange)
    else:
        _emit_rowmajor_stripes(wl, layout, order, per_line, variant, add, srange)

    trace.data_bytes = stripes * wl.stripe_data_bytes
    return trace



def _source_blocks(wl: Workload) -> list[int]:
    """Stripe-global block ids the kernel loads, in stream order.

    Encode reads the k data blocks. Decode reads k *correct* blocks —
    the paper's §4.1.2: with the first ``erasures`` data blocks lost
    (the canonical pattern), that is the surviving data plus the first
    ``erasures`` parity blocks. The memory pattern is identical either
    way: k sequential streams.
    """
    if wl.op == "decode":
        return list(range(wl.erasures, wl.k)) + \
            [wl.k + i for i in range(wl.erasures)]
    return list(range(wl.k))


def _dest_blocks(wl: Workload) -> list[int]:
    """Stripe-global block ids the kernel stores (non-temporally)."""
    if wl.op == "decode":
        return list(range(wl.erasures))       # the rebuilt data blocks
    out = [wl.k + i for i in range(wl.m)]
    out += [wl.k + wl.m + i for i in range(wl.lrc_l or 0)]
    return out


def _emit_rowmajor_stripes(wl, layout, order, per_line, variant, add, srange):
    k = wl.k
    sources = _source_blocks(wl)
    dests = _dest_blocks(wl)
    L = len(order)
    total = L * k
    d = variant.sw_prefetch_distance
    d_first = variant.bf_first_line_distance

    # Address arithmetic hoisted out of the per-op loop (this function
    # emits every op of every ISA-L-family trace):
    # line_addr(s, b, r) == thread_base + (s*bps + b)*block_stride + r*64.
    bps = layout.blocks_per_stripe
    block_stride = layout.pages_per_block * PAGE
    thread_base = layout.thread_base
    stripe_stride = bps * block_stride
    src_off = [b * block_stride for b in sources]
    dst_off = [b * block_stride for b in dests]
    row_off = [r * LINE for r in order]  # indexed by row position rp
    compute_cycles = per_line * k

    def elem_addr(sbase, n):
        rp, j = divmod(n, k)
        return sbase + src_off[j] + row_off[rp]

    for s in srange:
        sbase = thread_base + s * stripe_stride
        for rp in range(L):
            roff = row_off[rp]
            base_n = rp * k
            for j in range(k):
                n = base_n + j
                if d is not None:
                    t = n + d
                    if t < total:
                        addr = elem_addr(sbase, t)
                        is_first = (addr // LINE) % XP_LINES == 0
                        if d_first is None or not is_first:
                            add(SWPF, addr)
                    if d_first is not None:
                        t2 = n + d_first
                        if t2 < total:
                            addr2 = elem_addr(sbase, t2)
                            if (addr2 // LINE) % XP_LINES == 0:
                                add(SWPF, addr2)
                add(LOAD, sbase + src_off[j] + roff)
            add(COMPUTE, compute_cycles)
            for doff in dst_off:
                add(STORE, sbase + doff + roff)
        add(FENCE, 0)


def _emit_xpline_stripes(wl, layout, order, per_line, variant, add, srange):
    """256 B-granularity loop expansion (§4.3.3).

    The element sequence becomes (XPLine-group, block); all lines of a
    group are consumed back-to-back so the implicit media load is used
    before eviction. Software prefetch touches only the first line per
    future group — the read buffer serves the remaining lines.
    """
    k = wl.k
    sources = _source_blocks(wl)
    dests = _dest_blocks(wl)
    L = layout.lines_per_block
    groups = [list(range(g, min(g + XP_LINES, L))) for g in range(0, L, XP_LINES)]
    ngroups = len(groups)
    # Reuse the (possibly shuffled) order at group granularity.
    gorder = _row_order(ngroups, variant.shuffle)
    d = variant.sw_prefetch_distance
    # d is expressed in row-major sequence elements (lines); one group
    # step spans XP_LINES rows, so convert to whole groups.
    dg = max(1, round(d / (XP_LINES * k))) if d is not None else None
    total = ngroups * k

    # Hoisted address arithmetic (see _emit_rowmajor_stripes).
    bps = layout.blocks_per_stripe
    block_stride = layout.pages_per_block * PAGE
    thread_base = layout.thread_base
    stripe_stride = bps * block_stride
    src_off = [b * block_stride for b in sources]
    dst_off = [b * block_stride for b in dests]
    group_line_off = [[r * LINE for r in g] for g in groups]
    group_first_off = [g[0] * LINE for g in groups]
    group_cycles = [per_line * len(g) for g in groups]

    for s in srange:
        sbase = thread_base + s * stripe_stride
        for gp in range(ngroups):
            g = gorder[gp]
            line_offs = group_line_off[g]
            cycles = group_cycles[g]
            for j in range(k):
                n = gp * k + j
                if dg is not None:
                    t = n + dg * k  # same block, dg groups ahead
                    if t < total:
                        t_gp, t_j = divmod(t, k)
                        add(SWPF, sbase + src_off[t_j]
                            + group_first_off[gorder[t_gp]])
                soff = sbase + src_off[j]
                for loff in line_offs:
                    add(LOAD, soff + loff)
                add(COMPUTE, cycles)
            for loff in line_offs:
                for doff in dst_off:
                    add(STORE, sbase + doff + loff)
        add(FENCE, 0)


def _decomposed_trace(wl: Workload, cpu: CPUConfig,
                      variant: IsalVariant, thread: int,
                      stripe_offset: int = 0) -> Trace:
    """Wide-stripe decomposition: narrow passes with parity reload.

    Pass p loads its group's data lines plus (for p > 0) the partial
    parity written by pass p-1 — the "parity reloading" and amplified
    write traffic the paper attributes to the decompose strategy.
    """
    g = variant.decompose_group
    if g is None or g < 1:
        raise ValueError("decompose_group must be a positive int")
    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread,
                          extra_blocks=wl.lrc_l or 0)
    L = layout.lines_per_block
    per_line = _per_line_compute_cycles(wl, cpu)
    sources = _source_blocks(wl)
    dests = _dest_blocks(wl)
    groups = [sources[c:c + g] for c in range(0, wl.k, g)]
    trace = Trace()
    add = trace.add
    order = _row_order(L, variant.shuffle)
    for s in range(stripe_offset, stripe_offset + wl.stripes_per_thread):
        for p, cols in enumerate(groups):
            for r in order:
                for j in cols:
                    add(LOAD, layout.line_addr(s, j, r))
                if p:
                    # Reload the partial result written by the last pass.
                    for dest in dests[:wl.erasures if wl.op == "decode" else wl.m]:
                        add(LOAD, layout.line_addr(s, dest, r))
                add(COMPUTE, per_line * len(cols))
                for dest in dests:
                    if p == len(groups) - 1 or dest < wl.k + wl.m:
                        add(STORE, layout.line_addr(s, dest, r))
        add(FENCE, 0)
    trace.data_bytes = wl.stripes_per_thread * wl.stripe_data_bytes
    return trace
