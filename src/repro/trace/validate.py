"""Structural validation of kernel traces.

Trace generators encode the libraries' memory schedules; these checks
catch generator bugs that the simulator would silently absorb (e.g. a
missed row would just look "faster"). Tests run them over every
generator; callers can use them as assertions when building custom
traces.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field

from repro.trace.layout import LINE, StripeLayout
from repro.trace.ops import COMPUTE, FENCE, LOAD, STORE, SWPF, Trace
from repro.trace.workload import Workload


class TraceValidationError(AssertionError):
    """A trace violates a structural invariant."""


@dataclass
class TraceStats:
    """Summary produced by :func:`validate_isal_trace`."""

    loads: int = 0
    stores: int = 0
    swpfs: int = 0
    computes: int = 0
    fences: int = 0
    compute_cycles: float = 0.0
    data_lines_covered: int = 0
    duplicate_data_loads: int = 0
    load_histogram: _Counter = field(default_factory=_Counter)


def _block_of(layout: StripeLayout, stripes: range, addr: int):
    """Map an address to (stripe, block, line) or None if outside."""
    span = layout.pages_per_block * 4096
    off = addr - layout.thread_base
    if off < 0:
        return None
    index, within = divmod(off, span)
    stripe, block = divmod(index, layout.blocks_per_stripe)
    if stripe not in stripes or within >= layout.block_bytes + LINE:
        return None
    return stripe, block, within // LINE


def validate_isal_trace(trace: Trace, wl: Workload, thread: int = 0,
                        stripe_offset: int = 0,
                        expect_full_coverage: bool = True,
                        reloads_allowed: bool = False) -> TraceStats:
    """Check an ISA-L-pattern trace against its workload.

    Invariants enforced:

    * every op address is 64 B aligned and belongs to this thread's
      stripes;
    * loads target the kernel's *source* blocks (the k data blocks for
      encode; the k surviving blocks — remaining data plus leading
      parity — for decode) or, with ``reloads_allowed`` (decompose),
      also the destination blocks;
    * stores target the *destination* blocks (parity and LRC local
      parity for encode; the rebuilt data blocks for decode);
    * with ``expect_full_coverage``, every line of every source block
      is loaded at least once — nothing is skipped;
    * single-pass kernels load each source line exactly once
      (``duplicate_data_loads`` counts extras for decompose);
    * each stripe ends with a fence.
    """
    from repro.trace.isal_gen import _dest_blocks, _source_blocks

    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread,
                          extra_blocks=wl.lrc_l or 0)
    stripes = range(stripe_offset, stripe_offset + wl.stripes_per_thread)
    sources = set(_source_blocks(wl))
    dests = set(_dest_blocks(wl))
    stats = TraceStats()
    for op, arg in trace.ops:
        if op == COMPUTE:
            stats.computes += 1
            stats.compute_cycles += arg
            continue
        if op == FENCE:
            stats.fences += 1
            continue
        addr = int(arg)
        if addr % LINE:
            raise TraceValidationError(f"unaligned address {addr:#x}")
        where = _block_of(layout, stripes, addr)
        if where is None:
            raise TraceValidationError(
                f"address {addr:#x} outside this thread's stripes")
        stripe, block, line = where
        if op == LOAD:
            stats.loads += 1
            if block in sources:
                stats.load_histogram[(stripe, block, line)] += 1
            elif not (reloads_allowed and block in dests):
                raise TraceValidationError(
                    f"load from non-source block {block} "
                    f"(sources={sorted(sources)})")
        elif op == STORE:
            stats.stores += 1
            if block not in dests:
                raise TraceValidationError(
                    f"store into non-destination block {block} "
                    f"(dests={sorted(dests)})")
        elif op == SWPF:
            stats.swpfs += 1
            if block not in sources:
                raise TraceValidationError(
                    f"software prefetch of non-source block {block}")
        else:  # pragma: no cover - defensive
            raise TraceValidationError(f"unknown opcode {op}")
    lines_per_block = layout.lines_per_block
    expected = wl.stripes_per_thread * len(sources) * lines_per_block
    stats.data_lines_covered = len(stats.load_histogram)
    stats.duplicate_data_loads = stats.loads - stats.data_lines_covered \
        if not reloads_allowed else 0
    if expect_full_coverage and stats.data_lines_covered != expected:
        raise TraceValidationError(
            f"coverage hole: {stats.data_lines_covered} of {expected} "
            f"source lines loaded")
    if not reloads_allowed:
        dupes = {key: v for key, v in stats.load_histogram.items() if v > 1}
        if dupes:
            raise TraceValidationError(
                f"{len(dupes)} source lines loaded more than once (e.g. "
                f"{next(iter(dupes))})")
    if stats.fences != wl.stripes_per_thread:
        raise TraceValidationError(
            f"{stats.fences} fences for {wl.stripes_per_thread} stripes")
    return stats
