"""Trace op encoding.

Ops are stored as two *parallel arrays* — a ``uint8`` opcode array and
a ``float64`` argument array — rather than a list of ``(opcode, arg)``
tuples. That representation is ~3x smaller, pickles cheaply (the
parallel sweep executor ships traces between processes and the content
cache hashes their raw buffers), and lets the simulator's inner loop
index two flat C arrays instead of chasing tuple pointers:

========  =======================================================
opcode    arg
========  =======================================================
LOAD      byte address (64 B-aligned) of a demand load
STORE     byte address of a 64 B non-temporal store
SWPF      byte address targeted by a software prefetch
COMPUTE   CPU cycles of computation (float)
FENCE     unused (0) — drain posted stores (``sfence``)
========  =======================================================

The tuple view survives for compatibility: ``trace.ops`` is a mutable
sequence proxy yielding ``(opcode, arg)`` tuples that supports
``append``/``extend``/``insert``/slicing/assignment, so existing
callers (and tests) that treat a trace as a list of tuples keep
working unmodified.

Generators build traces through :meth:`Trace.add`, which *coalesces
consecutive COMPUTE ops* (summing their cycle counts) at generation
time — runs of pure compute (common in XOR-schedule traces, where
parity-source program steps emit no loads) collapse into one op before
the simulator ever sees them.
"""

from __future__ import annotations

from array import array

LOAD = 0
STORE = 1
SWPF = 2
COMPUTE = 3
FENCE = 4

_NAMES = {LOAD: "LOAD", STORE: "STORE", SWPF: "SWPF",
          COMPUTE: "COMPUTE", FENCE: "FENCE"}


def op_name(opcode: int) -> str:
    """Human-readable op name (for debugging/reporting)."""
    return _NAMES.get(opcode, f"op{opcode}")


class OpsView:
    """Mutable ``(opcode, arg)`` tuple view over a trace's parallel arrays.

    Supports the list operations trace consumers historically used:
    iteration, ``len``, indexing/slicing, ``append``, ``extend``,
    ``insert`` and equality against tuple lists. Mutations write
    through to the underlying arrays (verbatim — no coalescing).
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace"):
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace.opcodes)

    def __iter__(self):
        return zip(self._trace.opcodes, self._trace.args)

    def __getitem__(self, index):
        t = self._trace
        if isinstance(index, slice):
            return list(zip(t.opcodes[index], t.args[index]))
        return (t.opcodes[index], t.args[index])

    def __setitem__(self, index, value) -> None:
        t = self._trace
        if isinstance(index, slice):
            pairs = list(value)
            t.opcodes[index] = array("B", (int(op) for op, _ in pairs))
            t.args[index] = array("d", (arg for _, arg in pairs))
            return
        op, arg = value
        t.opcodes[index] = int(op)
        t.args[index] = arg

    def append(self, pair) -> None:
        op, arg = pair
        self._trace.opcodes.append(int(op))
        self._trace.args.append(arg)

    def extend(self, pairs) -> None:
        for op, arg in pairs:
            self._trace.opcodes.append(int(op))
            self._trace.args.append(arg)

    def insert(self, index: int, pair) -> None:
        op, arg = pair
        self._trace.opcodes.insert(index, int(op))
        self._trace.args.insert(index, arg)

    def __eq__(self, other) -> bool:
        if isinstance(other, OpsView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpsView({list(self)!r})"


class Trace:
    """One thread's op stream plus throughput metadata.

    Attributes
    ----------
    opcodes:
        ``array('B')`` of opcodes (one byte per op).
    args:
        ``array('d')`` of op arguments, parallel to ``opcodes``.
        Addresses are exact: float64 represents integers < 2**53 and
        the simulated address space tops out near 2**45.
    data_bytes:
        Application data bytes this trace encodes/decodes — the
        numerator of the throughput the paper reports.
    """

    __slots__ = ("opcodes", "args", "data_bytes")

    def __init__(self, ops=None, data_bytes: int = 0):
        self.opcodes = array("B")
        self.args = array("d")
        self.data_bytes = data_bytes
        if ops is not None:
            for op, arg in ops:
                self.opcodes.append(int(op))
                self.args.append(arg)

    # -- building ---------------------------------------------------------

    def add(self, op: int, arg: float) -> None:
        """Append one op, coalescing runs of consecutive COMPUTE.

        Trace generators emit through this method; a COMPUTE landing
        directly after another COMPUTE folds its cycles into the
        previous op instead of growing the stream.
        """
        opcodes = self.opcodes
        if op == COMPUTE and opcodes and opcodes[-1] == COMPUTE:
            self.args[-1] += arg
            return
        opcodes.append(op)
        self.args.append(arg)

    def extend(self, other: "Trace") -> None:
        """Append another trace (accumulating data bytes).

        Ops concatenate verbatim — no boundary coalescing, because the
        coordinator extends a trace *mid-execution* and the already-
        executed tail must not change under its program counter.
        """
        self.opcodes.extend(other.opcodes)
        self.args.extend(other.args)
        self.data_bytes += other.data_bytes

    # -- tuple-view compatibility ----------------------------------------

    @property
    def ops(self) -> OpsView:
        """Mutable ``(opcode, arg)`` tuple view (see :class:`OpsView`)."""
        return OpsView(self)

    @ops.setter
    def ops(self, pairs) -> None:
        self.opcodes = array("B")
        self.args = array("d")
        for op, arg in pairs:
            self.opcodes.append(int(op))
            self.args.append(arg)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.opcodes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (self.opcodes == other.opcodes and self.args == other.args
                and self.data_bytes == other.data_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({len(self)} ops, data_bytes={self.data_bytes})"

    def counts(self) -> dict[str, int]:
        """Op histogram, keyed by op name."""
        out: dict[str, int] = {}
        for op in self.opcodes:
            name = op_name(op)
            out[name] = out.get(name, 0) + 1
        return out

    def content_key(self) -> bytes:
        """Raw bytes identifying this trace's exact content.

        Feeds the content-addressed cache: two traces with equal keys
        simulate identically on equal hardware.
        """
        head = f"trace:v1:{len(self.opcodes)}:{self.data_bytes}:".encode()
        return head + self.opcodes.tobytes() + self.args.tobytes()

    # -- pickling (slots) -------------------------------------------------

    def __getstate__(self):
        return (self.opcodes, self.args, self.data_bytes)

    def __setstate__(self, state):
        self.opcodes, self.args, self.data_bytes = state
