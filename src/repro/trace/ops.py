"""Trace op encoding.

Ops are plain ``(opcode, arg)`` tuples for speed in the simulator's
inner loop:

========  =======================================================
opcode    arg
========  =======================================================
LOAD      byte address (64 B-aligned) of a demand load
STORE     byte address of a 64 B non-temporal store
SWPF      byte address targeted by a software prefetch
COMPUTE   CPU cycles of computation (float)
FENCE     unused (0) — drain posted stores (``sfence``)
========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

LOAD = 0
STORE = 1
SWPF = 2
COMPUTE = 3
FENCE = 4

_NAMES = {LOAD: "LOAD", STORE: "STORE", SWPF: "SWPF",
          COMPUTE: "COMPUTE", FENCE: "FENCE"}


def op_name(opcode: int) -> str:
    """Human-readable op name (for debugging/reporting)."""
    return _NAMES.get(opcode, f"op{opcode}")


@dataclass
class Trace:
    """One thread's op stream plus throughput metadata.

    Attributes
    ----------
    ops:
        The ``(opcode, arg)`` list.
    data_bytes:
        Application data bytes this trace encodes/decodes — the
        numerator of the throughput the paper reports.
    """

    ops: list[tuple[int, float]] = field(default_factory=list)
    data_bytes: int = 0

    def __len__(self) -> int:
        return len(self.ops)

    def extend(self, other: "Trace") -> None:
        """Append another trace (accumulating data bytes)."""
        self.ops.extend(other.ops)
        self.data_bytes += other.data_bytes

    def counts(self) -> dict[str, int]:
        """Op histogram, keyed by op name."""
        out: dict[str, int] = {}
        for op, _ in self.ops:
            name = op_name(op)
            out[name] = out.get(name, 0) + 1
        return out
