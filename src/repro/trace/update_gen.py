"""Parity-update ("small write") trace generation.

PM stores mostly *update* in place rather than re-encode whole stripes
(the paper's §2.2 notes coding overhead "upon writes or updates";
CodePM, its predecessor, targets exactly this path). The delta-update
kernel for one modified data block is, per 64 B row:

    load old data line            (PM read)
    [new data assumed in cache]
    compute delta = old ^ new
    for each parity i: load parity line, acc ^= g[i,j]*delta, store
    store new data line (non-temporal)

Loads touch 1 + m streams — a *narrow* access pattern where the
hardware prefetcher struggles with small blocks, so DIALGA's pipelined
software prefetch applies exactly as in encoding. This generator is the
performance model behind :meth:`repro.codes.rs.RSCode.update_parity`.
"""

from __future__ import annotations

from repro.simulator.params import CPUConfig
from repro.trace.layout import StripeLayout
from repro.trace.ops import COMPUTE, FENCE, LOAD, STORE, SWPF, Trace
from repro.trace.workload import Workload


def update_trace(wl: Workload, cpu: CPUConfig,
                 sw_prefetch_distance: int | None = None,
                 shuffle: bool = False,
                 thread: int = 0, stripe_offset: int = 0) -> Trace:
    """One thread's trace for single-block parity updates.

    Each "stripe" of the workload contributes one block update (the
    updated block cycles through positions). ``data_bytes`` counts the
    updated bytes, so throughput reads as update bandwidth.
    """
    from repro.trace.isal_gen import _row_order

    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread)
    L = layout.lines_per_block
    m = wl.m
    per_line = (m * cpu.gf_cycles_per_parity_line
                + cpu.xor_cycles_per_line      # the delta XOR
                + cpu.loop_overhead_cycles)
    order = _row_order(L, shuffle)
    trace = Trace()
    add = trace.add
    stripes = wl.stripes_per_thread
    streams = 1 + m  # old data + m parities

    def elem_addr(s: int, n: int, target_block: int) -> int:
        rp, j = divmod(n, streams)
        block = target_block if j == 0 else wl.k + (j - 1)
        return layout.line_addr(s, block, order[rp])

    total = L * streams
    for s in range(stripe_offset, stripe_offset + stripes):
        target_block = s % wl.k
        for rp, r in enumerate(order):
            for j in range(streams):
                n = rp * streams + j
                if sw_prefetch_distance is not None:
                    t = n + sw_prefetch_distance
                    if t < total:
                        add(SWPF, elem_addr(s, t, target_block))
                block = target_block if j == 0 else wl.k + (j - 1)
                add(LOAD, layout.line_addr(s, block, r))
            add(COMPUTE, per_line)
            add(STORE, layout.line_addr(s, target_block, r))
            for i in range(m):
                add(STORE, layout.line_addr(s, wl.k + i, r))
        add(FENCE, 0)
    trace.data_bytes = stripes * wl.block_bytes
    return trace
