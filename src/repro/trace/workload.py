"""Workload descriptors for experiments.

A :class:`Workload` captures the paper's experimental axes: code
geometry (k, m, optionally LRC's l), block size, thread count, SIMD
width, operation (encode/decode) and the data volume each thread
processes. Library facades turn a workload into per-thread traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Workload:
    """One experimental configuration.

    Attributes
    ----------
    k, m:
        RS geometry: k data blocks, m parity blocks per stripe.
    block_bytes:
        Block size (paper default: 1 KB).
    nthreads:
        Concurrent encoding threads (paper default: 1).
    data_bytes_per_thread:
        Application data each thread processes; the simulator needs
        enough stripes to reach steady state, not the paper's full 1 GB.
    op:
        ``"encode"`` or ``"decode"``.
    erasures:
        For decode: how many blocks are being rebuilt (<= m).
    lrc_l:
        If not None, encode LRC(k, m, l) instead of RS.
    simd:
        ``"avx512"`` (default) or ``"avx256"``.
    """

    k: int
    m: int = 4
    block_bytes: int = 1024
    nthreads: int = 1
    data_bytes_per_thread: int = 1 << 20
    op: str = "encode"
    erasures: int = 0
    lrc_l: int | None = None
    simd: str = "avx512"

    def __post_init__(self):
        if self.k < 1 or self.m < 0:
            raise ValueError(f"bad geometry k={self.k} m={self.m}")
        if self.op not in ("encode", "decode"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.op == "decode" and not 1 <= self.erasures <= min(self.m, self.k):
            raise ValueError("decode needs 1 <= erasures <= min(m, k) "
                             "(the canonical erased blocks are data blocks)")
        if self.lrc_l is not None and (self.k % self.lrc_l):
            raise ValueError("LRC needs l | k")
        if self.simd not in ("avx512", "avx256"):
            raise ValueError(f"unknown SIMD {self.simd!r}")

    @classmethod
    def rs(cls, n: int, k: int, **kwargs) -> "Workload":
        """Build a workload from the paper's RS(n, k) notation.

        The paper labels codes RS(n, k) with n = k + m total blocks;
        internally we speak (k, m). ``Workload.rs(12, 8)`` is
        ``Workload(k=8, m=4)``. Extra keywords pass through unchanged.
        """
        if not 0 < k < n:
            raise ValueError(f"RS(n, k) needs 0 < k < n, got n={n} k={k}")
        return cls(k=k, m=n - k, **kwargs)

    @classmethod
    def paper(cls, n: int, k: int, *, block_kb: float = 1.0,
              threads: int = 1, volume_mb: float = 1.0,
              **kwargs) -> "Workload":
        """RS(n, k) plus the paper's experimental units (KB blocks, MB
        volumes): ``Workload.paper(12, 8, block_kb=4, threads=12)``."""
        return cls.rs(n, k, block_bytes=int(block_kb * 1024),
                      nthreads=threads,
                      data_bytes_per_thread=int(volume_mb * (1 << 20)),
                      **kwargs)

    @property
    def stripe_data_bytes(self) -> int:
        """Application data per stripe."""
        return self.k * self.block_bytes

    @property
    def stripes_per_thread(self) -> int:
        """Whole stripes each thread processes (at least 1)."""
        return max(1, self.data_bytes_per_thread // self.stripe_data_bytes)

    def with_(self, **kwargs) -> "Workload":
        """Copy with fields replaced."""
        return replace(self, **kwargs)
