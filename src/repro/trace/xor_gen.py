"""Trace generation for XOR-schedule (bitmatrix) codes.

Zerasure/Cerasure execute an XOR program over bit-sliced *packets*
(block_bytes / w bytes each). The memory signature differs from ISA-L
in exactly the ways the paper highlights (§2.2, §5.2): source packets
are re-read once per use (multiple ones per bitmatrix column), the
access order follows the schedule rather than a sequential sweep (so
the L2 streamer rarely trains), and the compute is XOR-only AVX256.

Parity and temporary packets are held as in-cache accumulators; parity
packets are flushed with non-temporal stores at the end of each stripe.
"""

from __future__ import annotations

from repro.simulator.params import CPUConfig
from repro.trace.layout import StripeLayout, LINE
from repro.trace.ops import LOAD, STORE, COMPUTE, FENCE, Trace
from repro.trace.workload import Workload
from repro.xorsched.schedule import XorSchedule


def xor_schedule_trace(wl: Workload, cpu: CPUConfig, schedule: XorSchedule,
                       thread: int = 0) -> Trace:
    """Generate one thread's trace for an XOR program.

    ``schedule`` operates on packet ids; data packets map to addresses
    inside the stripe layout, while parity/temp packets are cache-
    resident accumulators (no load traffic until the final flush).
    """
    w = schedule.w
    k, m = schedule.k, schedule.m
    if (k, m) != (wl.k, wl.m):
        raise ValueError(
            f"schedule geometry ({k},{m}) != workload ({wl.k},{wl.m})")
    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread)
    if wl.block_bytes < w:
        raise ValueError(f"block must be >= w={w} bytes for bitmatrix codes")
    # Packet p of block j occupies bytes [p*pkt, (p+1)*pkt) of the block;
    # sub-line packets share cachelines (the loads then mostly hit L2).
    pkt_bytes = wl.block_bytes // w
    packet_lines = [
        range(p * pkt_bytes // LINE, (p * pkt_bytes + pkt_bytes - 1) // LINE + 1)
        for p in range(w)
    ]
    lines_per_packet = max(1, pkt_bytes // LINE)

    kw = k * w
    xor_c = cpu.xor_cycles_per_line
    ovh = cpu.loop_overhead_cycles
    trace = Trace()
    add = trace.add
    stripes = wl.stripes_per_thread
    sched_ops = schedule.ops
    for s in range(stripes):
        for op, dst, src in sched_ops:
            if src < kw:
                j, p = divmod(src, w)
                base = layout.block_addr(s, j)
                for l in packet_lines[p]:
                    add(LOAD, base + l * LINE)
            # dst (parity/temp) stays register/cache resident.
            add(COMPUTE, (xor_c * lines_per_packet) + ovh)
        # Flush parity packets with NT stores.
        for i in range(m):
            base = layout.block_addr(s, k + i)
            for l in range(layout.lines_per_block):
                add(STORE, base + l * LINE)
        add(FENCE, 0)
    trace.data_bytes = stripes * wl.stripe_data_bytes
    return trace


def xor_decomposed_trace(wl: Workload, cpu: CPUConfig,
                         group_schedules: list[tuple[XorSchedule, list[int]]],
                         thread: int = 0) -> Trace:
    """Decomposed XOR encoding (Cerasure's wide-stripe strategy).

    Each ``(schedule, cols)`` pair is one narrow pass over the listed
    source columns; passes after the first reload the partial parity
    (extra load traffic) and every pass rewrites it (amplified write
    traffic) — the decompose costs the paper quantifies in §5.2/§5.7.
    """
    layout = StripeLayout(wl.k, wl.m, wl.block_bytes, thread=thread)
    L = layout.lines_per_block
    xor_c = cpu.xor_cycles_per_line
    ovh = cpu.loop_overhead_cycles
    trace = Trace()
    add = trace.add
    for s in range(wl.stripes_per_thread):
        for p, (sched, cols) in enumerate(group_schedules):
            w = sched.w
            if sched.m != wl.m or sched.k != len(cols):
                raise ValueError("group schedule geometry mismatch")
            pkt_bytes = wl.block_bytes // w
            packet_lines = [
                range(q * pkt_bytes // LINE,
                      (q * pkt_bytes + pkt_bytes - 1) // LINE + 1)
                for q in range(w)
            ]
            if p:  # reload partial parity written by the previous pass
                for i in range(wl.m):
                    base = layout.block_addr(s, wl.k + i)
                    for l in range(L):
                        add(LOAD, base + l * LINE)
            kw = sched.k * w
            for op, dst, src in sched.ops:
                if src < kw:
                    j, q = divmod(src, w)
                    base = layout.block_addr(s, cols[j])
                    for l in packet_lines[q]:
                        add(LOAD, base + l * LINE)
                add(COMPUTE, xor_c * max(1, pkt_bytes // LINE) + ovh)
            for i in range(wl.m):
                base = layout.block_addr(s, wl.k + i)
                for l in range(L):
                    add(STORE, base + l * LINE)
        add(FENCE, 0)
    trace.data_bytes = wl.stripes_per_thread * wl.stripe_data_bytes
    return trace
