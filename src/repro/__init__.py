"""DIALGA reproduction: adaptive prefetcher scheduling for erasure
coding on persistent memory (Xu et al., ICPP 2025).

Layers (bottom-up):

* :mod:`repro.gf`, :mod:`repro.matrix`, :mod:`repro.codes`,
  :mod:`repro.xorsched` — bit-exact coding substrate.
* :mod:`repro.simulator`, :mod:`repro.trace` — the simulated testbed
  (CPU + stream prefetcher + DRAM/Optane-PM) and kernel access traces.
* :mod:`repro.libs` — the compared systems (ISA-L, ISA-L-D, Zerasure,
  Cerasure) as functional-codec + trace facades.
* :mod:`repro.core` — DIALGA itself.
* :mod:`repro.pmstore`, :mod:`repro.service` — the application layer:
  an erasure-coded PM object store and the concurrent service over it
  (queueing, Eq. (1) admission control, retries, degraded reads).
* :mod:`repro.bench` — experiment harness regenerating every paper
  figure.
* :mod:`repro.parallel` — deterministic process-pool sweep execution
  (:func:`run_sweep`) and content-addressed trace/simulation caching;
  parallel and warm-cache runs are bit-identical to serial ones.
* :mod:`repro.obs` — simulated-clock tracing/telemetry across all of
  the above (spans, events, Chrome-trace / JSONL / Prometheus
  exporters); a no-op unless a tracer is installed.
* :mod:`repro.chaos` — deterministic fault-campaign engine driving
  timed schedules (corruption, device loss, transient storms, bursts)
  against the self-healing service, with durability auditing.

Quickstart
----------
>>> import numpy as np
>>> from repro import DialgaEncoder, Workload
>>> enc = DialgaEncoder(k=8, m=4)
>>> data = np.random.default_rng(0).integers(0, 256, (8, 1024)).astype(np.uint8)
>>> parity = enc.encode(data)
>>> result = enc.run(Workload.rs(12, 8, block_bytes=1024))
>>> result.throughput_gbps > 0
True
"""

from repro._deprecation import ReproDeprecationWarning
from repro.chaos import (
    CANNED_CAMPAIGNS,
    AuditReport,
    Campaign,
    CampaignEngine,
    CampaignReport,
    ChaosAction,
    DurabilityAuditor,
)
from repro.codes import RSCode, LRCCode, Stripe
from repro.core import (
    AdaptiveCoordinator,
    DialgaConfig,
    DialgaEncoder,
    Policy,
    PolicySwitch,
)
from repro.gf import GF, gf8
from repro.libs import (
    ISAL,
    ISALDecompose,
    Zerasure,
    Cerasure,
    GeometryMismatch,
    UnsupportedWorkload,
)
from repro.parallel import (
    ContentCache,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.obs import (
    NullTracer,
    Tracer,
    get_tracer,
    prometheus_text,
    set_tracer,
    use_tracer,
    write_trace,
)
from repro.pmstore import (
    FaultEvent,
    FaultInjector,
    PMStore,
    Scrubber,
    ScrubReport,
    TransientFault,
)
from repro.service import (
    ErasureCodingService,
    HealthMonitor,
    HealthState,
    MetricsRegistry,
    Request,
    RequestResult,
    RetryPolicy,
    SelfHealer,
    ServiceConfig,
)
from repro.simulator import HardwareConfig, simulate, SimResult, Counters
from repro.trace import Workload

__version__ = "1.2.0"

__all__ = [
    "RSCode",
    "LRCCode",
    "Stripe",
    "DialgaConfig",
    "DialgaEncoder",
    "Policy",
    "PolicySwitch",
    "AdaptiveCoordinator",
    "GF",
    "gf8",
    "ISAL",
    "ISALDecompose",
    "Zerasure",
    "Cerasure",
    "UnsupportedWorkload",
    "GeometryMismatch",
    "ReproDeprecationWarning",
    "PMStore",
    "FaultInjector",
    "FaultEvent",
    "TransientFault",
    "Scrubber",
    "ScrubReport",
    "ChaosAction",
    "Campaign",
    "CANNED_CAMPAIGNS",
    "CampaignEngine",
    "CampaignReport",
    "DurabilityAuditor",
    "AuditReport",
    "ErasureCodingService",
    "ServiceConfig",
    "HealthMonitor",
    "HealthState",
    "SelfHealer",
    "Request",
    "RequestResult",
    "RetryPolicy",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "write_trace",
    "prometheus_text",
    "HardwareConfig",
    "simulate",
    "SimResult",
    "Counters",
    "Workload",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "ContentCache",
    "__version__",
]
