"""DIALGA reproduction: adaptive prefetcher scheduling for erasure
coding on persistent memory (Xu et al., ICPP 2025).

Layers (bottom-up):

* :mod:`repro.gf`, :mod:`repro.matrix`, :mod:`repro.codes`,
  :mod:`repro.xorsched` — bit-exact coding substrate.
* :mod:`repro.simulator`, :mod:`repro.trace` — the simulated testbed
  (CPU + stream prefetcher + DRAM/Optane-PM) and kernel access traces.
* :mod:`repro.libs` — the compared systems (ISA-L, ISA-L-D, Zerasure,
  Cerasure) as functional-codec + trace facades.
* :mod:`repro.core` — DIALGA itself.
* :mod:`repro.bench` — experiment harness regenerating every paper
  figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import DialgaEncoder, Workload
>>> enc = DialgaEncoder(k=8, m=4)
>>> data = np.random.default_rng(0).integers(0, 256, (8, 1024)).astype(np.uint8)
>>> parity = enc.encode(data)
>>> result = enc.run(Workload(k=8, m=4, block_bytes=1024))
>>> result.throughput_gbps > 0
True
"""

from repro.codes import RSCode, LRCCode, Stripe
from repro.core import DialgaEncoder, Policy, AdaptiveCoordinator
from repro.gf import GF, gf8
from repro.libs import ISAL, ISALDecompose, Zerasure, Cerasure, UnsupportedWorkload
from repro.simulator import HardwareConfig, simulate, SimResult, Counters
from repro.trace import Workload

__version__ = "1.0.0"

__all__ = [
    "RSCode",
    "LRCCode",
    "Stripe",
    "DialgaEncoder",
    "Policy",
    "AdaptiveCoordinator",
    "GF",
    "gf8",
    "ISAL",
    "ISALDecompose",
    "Zerasure",
    "Cerasure",
    "UnsupportedWorkload",
    "HardwareConfig",
    "simulate",
    "SimResult",
    "Counters",
    "Workload",
    "__version__",
]
