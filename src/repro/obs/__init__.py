"""Unified tracing & telemetry (``repro.obs``).

One timeline for everything the paper observes with ``perf``: the
simulator's phase spans (with PMU counter deltas attached), the
coordinator's policy switches and hill-climb steps, and the service's
request lifecycles. A :class:`NullTracer` is the process default, so
instrumentation is free until a real :class:`Tracer` is installed with
:func:`set_tracer` / :func:`use_tracer` (or ``python -m repro.bench
--trace out.json``).

See ``docs/observability.md`` for the span taxonomy and exporter
formats.
"""

from repro.obs.check import assert_well_formed, check_containment, check_spans
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    to_jsonl,
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.summary import (
    aggregate_by_name,
    render_span_tree,
    service_stage_breakdown,
    span_forest,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

# Decision-audit / replay / regression symbols resolve lazily (PEP 562):
# their modules import the simulator and core layers, which themselves
# import repro.obs — eager imports here would cycle.
_LAZY = {
    "DecisionLedger": "repro.obs.audit",
    "DecisionRecord": "repro.obs.audit",
    "ledger_from_coordinator": "repro.obs.audit",
    "DecisionRegret": "repro.obs.replay",
    "RegretReport": "repro.obs.replay",
    "replay_decisions": "repro.obs.replay",
    "BenchHistory": "repro.obs.regress",
    "RegressionFlag": "repro.obs.regress",
    "RegressionReport": "repro.obs.regress",
    "detect_regressions": "repro.obs.regress",
    "history_path": "repro.obs.regress",
    "metric_direction": "repro.obs.regress",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib
        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_records",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "prometheus_text",
    "span_forest",
    "aggregate_by_name",
    "render_span_tree",
    "service_stage_breakdown",
    "check_spans",
    "check_containment",
    "assert_well_formed",
    # lazy (PEP 562) — decision audit, counterfactual replay, regression gate
    "DecisionLedger",
    "DecisionRecord",
    "ledger_from_coordinator",
    "DecisionRegret",
    "RegretReport",
    "replay_decisions",
    "BenchHistory",
    "RegressionFlag",
    "RegressionReport",
    "detect_regressions",
    "history_path",
    "metric_direction",
]
