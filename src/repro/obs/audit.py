"""The coordinator decision ledger (``repro.obs.audit``).

The paper's central claim is that the adaptive coordinator picks the
*right* prefetcher policy from counter evidence (§4.1.2). The tracer
can already show *when* a switch happened; this module records *why* —
per decision: the counter deltas the coordinator saw, every threshold
predicate it evaluated (value, limit, fired?), the candidate policy
set it weighed, the policy it chose, and the hill-climb trajectory of
any distance search that ran.

A :class:`DecisionLedger` consumes the
:class:`~repro.core.coordinator.DecisionEvidence` trail an
:class:`~repro.core.coordinator.AdaptiveCoordinator` accumulates —
either live (wire :meth:`DecisionLedger.on_decision` as the
coordinator's ``on_decision`` callback, or :meth:`attach` it) or after
the fact (:meth:`ingest` / :func:`ledger_from_coordinator`). Records
export as JSONL (:meth:`DecisionLedger.to_jsonl`) and as ``decision.*``
events on the shared :class:`~repro.obs.tracer.Tracer` timeline
(:meth:`emit_events`), and feed the counterfactual oracle replay in
:mod:`repro.obs.replay`.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field


@dataclass
class DecisionRecord:
    """One audited coordinator decision, JSON-ready except for the live
    :class:`~repro.core.policy.Policy` objects kept for replay."""

    #: Ledger index (ingestion order).
    index: int
    #: ``"initial"`` or ``"observe"`` (see DecisionEvidence.kind).
    kind: str
    #: Coordinator sample index (0 for the initial decision).
    sample: int
    #: Simulated timestamp the decision applies from.
    now_ns: float
    #: Non-zero counter deltas the coordinator saw.
    delta: dict
    #: Predicate evaluations as dicts: name/value/limit/fired.
    checks: list
    #: Candidate policies weighed (live Policy objects, chosen included).
    candidates: list
    #: Policy before the decision (None for the initial decision).
    old: object | None
    #: Policy after the decision.
    chosen: object
    #: Whether the policy changed.
    switched: bool
    #: Hill-climb trajectory ``(step, distance, ns_per_byte)``.
    climb: list
    #: Observed window throughput (None when unknown).
    throughput_gbps: float | None

    def to_dict(self) -> dict:
        """Plain-JSON form (policies rendered via ``describe()``)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "sample": self.sample,
            "now_ns": self.now_ns,
            "delta": dict(self.delta),
            "checks": [dict(c) for c in self.checks],
            "candidates": [p.describe() for p in self.candidates],
            "old": self.old.describe() if self.old is not None else None,
            "chosen": self.chosen.describe(),
            "switched": self.switched,
            "climb": [list(step) for step in self.climb],
            "throughput_gbps": self.throughput_gbps,
        }

    def fired(self, name: str) -> bool:
        """Whether the named predicate fired in this decision."""
        return any(c["fired"] for c in self.checks if c["name"] == name)


@dataclass
class DecisionLedger:
    """Append-only audit log of coordinator decisions.

    Use one ledger per adaptive episode. Attach it to a coordinator
    before the run for live capture, or ingest a finished coordinator's
    ``decision_log`` afterwards — the records are identical either way
    because the coordinator's evidence trail is itself complete.
    """

    records: list[DecisionRecord] = field(default_factory=list)
    #: Workload/hardware of the audited episode (set by attach/ingest;
    #: the replay's simulation inputs).
    wl: object | None = None
    hw: object | None = None
    #: Default counterfactual window (stripes) — the coordinator's
    #: adaptation chunk size when known.
    window_stripes: int | None = None

    # -- capture -----------------------------------------------------------

    def on_decision(self, evidence) -> None:
        """Record one :class:`~repro.core.coordinator.DecisionEvidence`
        (suitable as the coordinator's ``on_decision`` callback)."""
        self.records.append(DecisionRecord(
            index=len(self.records),
            kind=evidence.kind,
            sample=evidence.sample,
            now_ns=evidence.now_ns,
            delta=dict(evidence.delta),
            checks=[c._asdict() for c in evidence.checks],
            candidates=list(evidence.candidates),
            old=evidence.old,
            chosen=evidence.chosen,
            switched=evidence.switched,
            climb=list(evidence.climb),
            throughput_gbps=evidence.throughput_gbps,
        ))

    def attach(self, coordinator) -> "DecisionLedger":
        """Wire this ledger into a live coordinator (chaining any
        existing hook) and ingest decisions it already made."""
        self.wl = coordinator.wl
        self.hw = coordinator.hw
        for evidence in coordinator.decision_log:
            self.on_decision(evidence)
        previous = coordinator.on_decision

        def hook(evidence):
            if previous is not None:
                previous(evidence)
            self.on_decision(evidence)

        coordinator.on_decision = hook
        return self

    def ingest(self, coordinator) -> "DecisionLedger":
        """Pull a finished coordinator's whole evidence trail."""
        self.wl = coordinator.wl
        self.hw = coordinator.hw
        if coordinator.window_stripes is not None:
            self.window_stripes = coordinator.window_stripes
        for evidence in coordinator.decision_log:
            self.on_decision(evidence)
        return self

    # -- reading -----------------------------------------------------------

    @property
    def switches(self) -> list[DecisionRecord]:
        """Decisions that changed the policy."""
        return [r for r in self.records if r.switched]

    def to_records(self) -> list[dict]:
        """Every decision as a plain dict (JSONL line order)."""
        return [r.to_dict() for r in self.records]

    def to_jsonl(self) -> str:
        """The ledger as newline-delimited JSON."""
        return "\n".join(json.dumps(r, sort_keys=True)
                         for r in self.to_records()) + "\n"

    def write_jsonl(self, path) -> pathlib.Path:
        """Write the JSONL decision log; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    # -- tracer export -----------------------------------------------------

    def emit_events(self, tracer=None) -> int:
        """Lay the ledger down as ``decision.*`` records on a tracer
        timeline; returns how many records were emitted.

        Every decision becomes a ``decision.evaluated`` instant at its
        recorded simulated timestamp (with the fired predicates and the
        candidate count), and every policy change additionally a
        ``decision.switch`` instant carrying the old/new policies.
        Timestamps are the evidence's own ``now_ns``, so post-hoc
        emission lands exactly where live emission would.
        """
        if tracer is None:
            from repro.obs.tracer import get_tracer
            tracer = get_tracer()
        if not tracer.enabled:
            return 0
        emitted = 0
        for rec in self.records:
            fired = [c["name"] for c in rec.checks if c["fired"]]
            tracer.event("decision.evaluated", rec.now_ns,
                         track="decision", index=rec.index, kind=rec.kind,
                         sample=rec.sample, fired=" ".join(fired) or "none",
                         candidates=len(rec.candidates),
                         chosen=rec.chosen.describe(),
                         switched=rec.switched)
            emitted += 1
            if rec.switched and rec.old is not None:
                tracer.event("decision.switch", rec.now_ns,
                             track="decision", index=rec.index,
                             sample=rec.sample, old=rec.old.describe(),
                             new=rec.chosen.describe())
                emitted += 1
        return emitted

    def render(self, *, max_rows: int | None = None) -> str:
        """Human-readable decision table (for demos and reports)."""
        lines = [f"decision ledger: {len(self.records)} decisions, "
                 f"{len(self.switches)} switches"]
        rows = self.records if max_rows is None else self.records[:max_rows]
        for rec in rows:
            fired = [c["name"] for c in rec.checks if c["fired"]]
            mark = "SWITCH" if rec.switched else "keep  "
            lines.append(
                f"  [{rec.index:>2}] {rec.kind:<7} t={rec.now_ns / 1e3:10.1f}us "
                f"{mark} -> {rec.chosen.describe()}  "
                f"fired={','.join(fired) or '-'}  "
                f"candidates={len(rec.candidates)}"
                + (f"  climb={len(rec.climb)} moves" if rec.climb else ""))
        if max_rows is not None and len(self.records) > max_rows:
            lines.append(f"  ... (+{len(self.records) - max_rows} more)")
        return "\n".join(lines)


def ledger_from_coordinator(coordinator) -> DecisionLedger:
    """Build a ledger from a finished coordinator's evidence trail."""
    return DecisionLedger().ingest(coordinator)
