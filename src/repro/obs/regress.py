"""Perf-regression time-series gate (``repro.obs.regress``).

``BENCH_*.json`` snapshots say what the repo measured *once*; this
module gives every benchmark a **trajectory**. Each ``repro.bench``
runner entry point appends one JSONL record to an append-only history
ledger (``BENCH_history.jsonl`` by default, overridable via the
``REPRO_BENCH_HISTORY`` environment variable), and
:func:`detect_regressions` compares the latest record of each run
against a rolling baseline of its predecessors — reusing the
coordinator's §4.1.2 flag language: a metric worse than **110%** of the
rolling baseline reads as *contention-grade* drift, worse than **150%**
as an *inefficient-prefetcher-grade* regression (the
``scripts/check_regression.py`` gate fails CI on the latter).

Metric direction is inferred from the name: times (``*_s``, ``*_ns``,
``*_us``, ``*_ms``), ``*latency*``, ``*regret*`` and ``*wall*`` are
lower-is-better; ``*gbps*``, ``*speedup*``, ``*score*``,
``*fraction*`` and ``*tput*`` are higher-is-better; anything else is
informational and never gated.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
from dataclasses import dataclass, field

#: Default ledger filename (resolved against the current directory).
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Environment override for the ledger path.
HISTORY_ENV = "REPRO_BENCH_HISTORY"

_LOWER_SUFFIXES = ("_s", "_ns", "_us", "_ms")
_LOWER_TOKENS = ("latency", "regret", "wall", "makespan")
_HIGHER_TOKENS = ("gbps", "speedup", "score", "fraction", "tput",
                  "throughput")


def history_path(path=None) -> pathlib.Path:
    """Resolve the ledger path: explicit arg > env var > default."""
    if path is not None:
        return pathlib.Path(path)
    return pathlib.Path(os.environ.get(HISTORY_ENV, DEFAULT_HISTORY))


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or None (ungated)."""
    low = name.lower()
    if low.endswith(_LOWER_SUFFIXES) or any(t in low for t in _LOWER_TOKENS):
        return "lower"
    if any(t in low for t in _HIGHER_TOKENS):
        return "higher"
    return None


class BenchHistory:
    """Append-only JSONL benchmark ledger.

    One record per runner invocation::

        {"run": "sweep:smoke", "ts": "2026-08-07T...", "metrics": {...},
         "meta": {...}}

    ``metrics`` holds the gated numbers; ``meta`` free-form context
    (digests, grid shape, seeds). Records are never rewritten — the
    ledger is the repo's perf trajectory.
    """

    def __init__(self, path=None):
        self.path = history_path(path)

    def append(self, run: str, metrics: dict, meta: dict | None = None,
               ts: str | None = None) -> dict:
        """Append one record; returns it."""
        record = {
            "run": run,
            "ts": ts if ts is not None else datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "metrics": {k: v for k, v in metrics.items()
                        if isinstance(v, (int, float)) and v is not None},
            "meta": dict(meta or {}),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def entries(self, run: str | None = None) -> list[dict]:
        """Every record (oldest first), optionally for one run id.

        Unparseable or non-record lines are skipped, never fatal — an
        append-only ledger outlives format mistakes.
        """
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(rec, dict) or "run" not in rec:
                continue
            if run is None or rec["run"] == run:
                out.append(rec)
        return out

    def runs(self) -> list[str]:
        """Distinct run ids, in first-appearance order."""
        return list(dict.fromkeys(e["run"] for e in self.entries()))


@dataclass
class RegressionFlag:
    """One metric of one run drifting past a rolling-baseline factor."""

    run: str
    metric: str
    value: float
    baseline: float
    #: value/baseline for lower-is-better, baseline/value for higher —
    #: always >= 1 when flagged ("how many times worse").
    ratio: float
    #: ``"warn"`` (> warn factor) or ``"fail"`` (> fail factor).
    severity: str
    direction: str
    window: int

    def describe(self) -> str:
        grade = ("inefficient-prefetcher-grade (exceeds 150% of the "
                 "rolling baseline)" if self.severity == "fail" else
                 "contention-grade (exceeds 110% of the rolling baseline)")
        return (f"{self.run}: {self.metric} = {self.value:g} vs rolling "
                f"baseline {self.baseline:g} over {self.window} run(s) — "
                f"x{self.ratio:.2f} worse, {grade}; the coordinator "
                f"would flag this")


@dataclass
class RegressionReport:
    """Outcome of one :func:`detect_regressions` pass."""

    flags: list[RegressionFlag] = field(default_factory=list)
    #: (run, metric) pairs actually compared against a baseline.
    compared: int = 0
    #: Runs whose latest entry had no predecessors to compare against.
    unseeded: list[str] = field(default_factory=list)
    #: (run, metric, reason) tuples excluded from gating — e.g.
    #: parallel-speedup metrics recorded on a single-CPU runner, where
    #: a process pool is pure overhead and 0.99x is not a regression.
    skipped: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def failures(self) -> list[RegressionFlag]:
        return [f for f in self.flags if f.severity == "fail"]

    @property
    def warnings(self) -> list[RegressionFlag]:
        return [f for f in self.flags if f.severity == "warn"]

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"regression gate: {self.compared} metric(s) compared, "
                 f"{len(self.warnings)} warning(s), "
                 f"{len(self.failures)} failure(s)"]
        for f in self.flags:
            mark = "FAIL" if f.severity == "fail" else "warn"
            lines.append(f"  [{mark}] {f.describe()}")
        for run, metric, reason in self.skipped:
            lines.append(f"  [info] {run}: {metric} not gated — {reason}")
        for run in self.unseeded:
            lines.append(f"  [info] {run}: first recorded entry — baseline "
                         "seeded, nothing to compare yet")
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def detect_regressions(history: BenchHistory | str | pathlib.Path | None = None,
                       *, window: int = 5, warn_factor: float = 1.10,
                       fail_factor: float = 1.50,
                       runs: list[str] | None = None) -> RegressionReport:
    """Gate the latest entry of each run against its rolling baseline.

    The baseline for a metric is the **median** over up to ``window``
    prior entries of the same run (median, not mean, so one historical
    outlier cannot poison the gate). The latest entry is flagged when
    it is worse than ``warn_factor`` (default 110%) or ``fail_factor``
    (default 150%) times the baseline, in the metric's worse direction.
    """
    if not isinstance(history, BenchHistory):
        history = BenchHistory(history)
    report = RegressionReport()
    for run in (runs if runs is not None else history.runs()):
        entries = history.entries(run)
        if not entries:
            continue
        latest, prior = entries[-1], entries[:-1][-window:]
        if not prior:
            report.unseeded.append(run)
            continue
        meta = latest.get("meta") or {}
        cpus = meta.get("cpus")
        single_cpu = isinstance(cpus, int) and cpus < 2
        for metric, value in sorted(latest.get("metrics", {}).items()):
            direction = metric_direction(metric)
            if direction is None or not isinstance(value, (int, float)):
                continue
            if single_cpu and "parallel" in metric.lower():
                # Pool speedup on a 1-CPU runner measures scheduler
                # overhead, not the code — never a regression signal.
                report.skipped.append(
                    (run, metric,
                     f"single-CPU runner (meta cpus={cpus})"))
                continue
            baseline_values = [
                e["metrics"][metric] for e in prior
                if isinstance(e.get("metrics", {}).get(metric), (int, float))
            ]
            if not baseline_values:
                continue
            baseline = _median(baseline_values)
            report.compared += 1
            if direction == "lower":
                if baseline <= 0:
                    continue
                ratio = value / baseline
            else:
                if value <= 0:
                    ratio = float("inf") if baseline > 0 else 1.0
                else:
                    ratio = baseline / value
            if ratio > fail_factor:
                severity = "fail"
            elif ratio > warn_factor:
                severity = "warn"
            else:
                continue
            report.flags.append(RegressionFlag(
                run=run, metric=metric, value=float(value),
                baseline=float(baseline), ratio=float(ratio),
                severity=severity, direction=direction,
                window=len(baseline_values)))
    return report
