"""Trace well-formedness checks.

Shared by the exporter tests and ``scripts/check_trace.py``: a trace is
well-formed when every parent reference resolves, every finished span
has ``end >= start``, and every span-attached event lies on a known
span. These are the invariants the exporters rely on.
"""

from __future__ import annotations


def check_spans(tracer) -> list[str]:
    """Structural problems in a recorded trace (empty list = clean)."""
    problems: list[str] = []
    ids = {s.span_id for s in tracer.spans}
    for s in tracer.spans:
        if s.parent_id is not None and s.parent_id not in ids:
            problems.append(
                f"span {s.span_id} ({s.name!r}) has orphan parent "
                f"{s.parent_id}")
        if s.end_ns is not None and s.end_ns < s.start_ns:
            problems.append(
                f"span {s.span_id} ({s.name!r}) ends before it starts "
                f"({s.end_ns} < {s.start_ns})")
        if s.start_ns < 0:
            problems.append(
                f"span {s.span_id} ({s.name!r}) starts before t=0")
    for e in tracer.events:
        if e.span_id is not None and e.span_id not in ids:
            problems.append(
                f"event {e.name!r}@{e.ts_ns} references unknown span "
                f"{e.span_id}")
        if e.ts_ns < 0:
            problems.append(f"event {e.name!r} at negative ts {e.ts_ns}")
    return problems


def check_containment(tracer) -> list[str]:
    """Parent/child timestamp containment violations.

    Children may legitimately outlive a parent that was closed early
    (detached request spans), so this is reported separately from the
    hard invariants of :func:`check_spans`.
    """
    problems: list[str] = []
    by_id = {s.span_id: s for s in tracer.spans}
    for s in tracer.spans:
        if s.parent_id is None:
            continue
        parent = by_id.get(s.parent_id)
        if parent is None:
            continue
        if s.start_ns < parent.start_ns - 1e-6:
            problems.append(
                f"span {s.span_id} ({s.name!r}) starts at {s.start_ns} "
                f"before its parent {parent.name!r} at {parent.start_ns}")
    return problems


def assert_well_formed(tracer) -> None:
    """Raise ``ValueError`` listing every structural problem found."""
    problems = check_spans(tracer)
    if problems:
        raise ValueError("malformed trace:\n" + "\n".join(problems))
