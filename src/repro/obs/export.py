"""Trace and metrics exporters.

Three output formats, all dependency-free:

* **JSONL span log** — one JSON object per line (spans then events),
  trivially greppable and line-parseable;
* **Chrome ``trace_event`` JSON** — loadable in ``chrome://tracing``
  and Perfetto: spans become complete (``"ph": "X"``) events, point
  events become instants (``"ph": "i"``), with one named track per
  span ``track`` attribute;
* **Prometheus exposition text** — renders a service
  :class:`~repro.service.metrics.MetricsRegistry` snapshot in the
  standard text format (counters, latency summaries with quantile
  labels, queue gauges).
"""

from __future__ import annotations

import json
import pathlib


def _clean_attrs(attrs: dict) -> dict:
    """JSON-safe copy of span/event attributes."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


# -- JSONL span log --------------------------------------------------------

def trace_records(tracer) -> list[dict]:
    """Every span and event as plain dicts (spans first, then events,
    each group in recording order)."""
    records: list[dict] = []
    for s in tracer.spans:
        records.append({
            "type": "span",
            "name": s.name,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "start_ns": s.start_ns,
            "end_ns": s.end_ns,
            "attrs": _clean_attrs(s.attrs),
        })
    for e in tracer.events:
        records.append({
            "type": "event",
            "name": e.name,
            "span_id": e.span_id,
            "ts_ns": e.ts_ns,
            "attrs": _clean_attrs(e.attrs),
        })
    return records


def to_jsonl(tracer) -> str:
    """The whole trace as newline-delimited JSON."""
    return "\n".join(json.dumps(r, sort_keys=True)
                     for r in trace_records(tracer)) + "\n"


def write_jsonl(tracer, path) -> pathlib.Path:
    """Write the JSONL span log; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(tracer))
    return path


# -- Chrome trace_event ----------------------------------------------------

def _track_of(name: str, attrs: dict) -> str:
    """Display track: the ``track`` attribute, else the span-name prefix
    (``sim.chunk`` -> ``sim``)."""
    return str(attrs.get("track", name.split(".", 1)[0]))


def chrome_trace(tracer) -> dict:
    """The trace in Chrome ``trace_event`` JSON object format.

    Timestamps are microseconds (the format's unit); simulated ns map
    onto them directly, so 1 simulated us renders as 1 us. Unfinished
    spans export with ``dur`` 0 and ``"unfinished": true``.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1,
                "tid": tids[track], "args": {"name": track},
            })
        return tids[track]

    events.append({
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": getattr(tracer, "name", "repro")},
    })
    for s in tracer.spans:
        args = _clean_attrs(s.attrs)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if not s.finished:
            args["unfinished"] = True
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ts": s.start_ns / 1e3,
            "dur": s.duration_ns / 1e3,
            "pid": 1,
            "tid": tid_for(_track_of(s.name, s.attrs)),
            "args": args,
        })
    for e in tracer.events:
        args = _clean_attrs(e.attrs)
        if e.span_id is not None:
            args["span_id"] = e.span_id
        events.append({
            "ph": "i",
            "name": e.name,
            "cat": e.name.split(".", 1)[0],
            "ts": e.ts_ns / 1e3,
            "s": "g",
            "pid": 1,
            "tid": tid_for(_track_of(e.name, e.attrs)),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path) -> pathlib.Path:
    """Write Chrome ``trace_event`` JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return path


def write_trace(tracer, path) -> pathlib.Path:
    """Write the trace in the format implied by the suffix:
    ``.jsonl`` -> span log, anything else -> Chrome ``trace_event``."""
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(tracer, path)
    return write_chrome_trace(tracer, path)


# -- Prometheus text -------------------------------------------------------

def _metric_name(raw: str) -> str:
    """Sanitize a registry counter name into a Prometheus metric name.

    Invalid characters map to ``_``; a leading digit gains a ``_``
    prefix (metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``).
    """
    name = "".join(c if c.isalnum() or c == "_" else "_" for c in raw)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote and newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only — quotes are fine)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _le_label(bound: float) -> str:
    """Render a bucket bound the way Prometheus clients do: integral
    bounds without a trailing ``.0``."""
    return str(int(bound)) if float(bound).is_integer() else repr(bound)


def prometheus_text(metrics, *, prefix: str = "repro_service") -> str:
    """Render a metrics snapshot in Prometheus exposition format.

    ``metrics`` is a :class:`~repro.service.metrics.MetricsRegistry`
    or its ``snapshot()`` dict. Counters become ``*_total`` counters;
    per-operation latencies export twice — the quantile **summary**
    family (``{prefix}_latency_ns``, the original output shape) and a
    cumulative **histogram** family (``{prefix}_latency_ns_hist`` with
    ``_bucket{le=...}`` series, rendered when the snapshot carries
    bucket data); the queue-depth gauge family rounds it out. Every
    family gets ``# HELP`` and ``# TYPE`` lines.
    """
    snap = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    lines: list[str] = []
    for name in sorted(snap.get("counters", {})):
        metric = f"{prefix}_{_metric_name(name)}_total"
        lines.append(f"# HELP {metric} "
                     + _escape_help(f"Service counter '{name}'."))
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snap['counters'][name]}")
    latency = snap.get("latency", {})
    if latency:
        metric = f"{prefix}_latency_ns"
        lines.append(f"# HELP {metric} Request latency quantiles by "
                     "operation (simulated ns).")
        lines.append(f"# TYPE {metric} summary")
        for op in sorted(latency):
            s = latency[op]
            lop = _escape_label(op)
            quantiles = [(0.5, s.get("p50_ns")), (0.9, s.get("p90_ns")),
                         (0.95, s.get("p95_ns")), (0.99, s.get("p99_ns")),
                         (0.999, s.get("p999_ns"))]
            for q, value in quantiles:
                if value is not None:
                    lines.append(
                        f'{metric}{{op="{lop}",quantile="{q}"}} {value}')
            lines.append(f'{metric}_sum{{op="{lop}"}} '
                         f'{s["mean_ns"] * s["count"]}')
            lines.append(f'{metric}_count{{op="{lop}"}} {s["count"]}')
        if any(latency[op].get("buckets") for op in latency):
            metric = f"{prefix}_latency_ns_hist"
            lines.append(f"# HELP {metric} Request latency histogram by "
                         "operation (simulated ns, cumulative buckets).")
            lines.append(f"# TYPE {metric} histogram")
            for op in sorted(latency):
                s = latency[op]
                if not s.get("buckets"):
                    continue
                lop = _escape_label(op)
                for le, n in s["buckets"]:
                    lines.append(f'{metric}_bucket{{op="{lop}",'
                                 f'le="{_le_label(le)}"}} {n}')
                lines.append(
                    f'{metric}_bucket{{op="{lop}",le="+Inf"}} {s["count"]}')
                lines.append(f'{metric}_sum{{op="{lop}"}} '
                             f'{s["mean_ns"] * s["count"]}')
                lines.append(f'{metric}_count{{op="{lop}"}} {s["count"]}')
    queue = snap.get("queue")
    if queue and queue.get("samples"):
        for key, kind, help_text in (
                ("max_depth", "gauge", "Maximum sampled queue depth."),
                ("mean_depth", "gauge", "Mean sampled queue depth."),
                ("samples", "counter", "Queue-depth samples recorded.")):
            metric = f"{prefix}_queue_{key}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {queue[key]}")
    return "\n".join(lines) + "\n"
