"""Spans, point events and the process-wide tracer.

The paper's methodology is *observation*: ``perf``-sampled PMU events
drive every figure and the coordinator itself. This module gives the
reproduction the same spine — one timeline onto which the simulator's
phase spans, the coordinator's policy decisions and the service's
request lifecycles are all recorded, using **simulated-clock**
timestamps (ns).

Design constraints:

* **Zero dependencies** — plain dataclasses and lists; exporters live
  in :mod:`repro.obs.export`.
* **Free when off** — the process-wide default is a
  :class:`NullTracer` whose methods are trivial no-ops, so instrumented
  hot paths cost one attribute check (``tracer.enabled``) at most.
* **Simulated time** — callers pass timestamps explicitly (the
  simulator's ``ctx.clock``, the service's ``clock_ns``); the tracer
  never reads a wall clock. :meth:`Tracer.shifted` rebases nested
  simulations (which start at t=0) onto an enclosing timeline, and
  :meth:`Tracer.sequenced` lays independent standalone runs end to end
  so a bench sweep stays readable in a trace viewer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SpanEvent:
    """A point event on the timeline (optionally tied to a span)."""

    name: str
    ts_ns: float
    span_id: int | None = None
    attrs: dict = field(default_factory=dict)


@dataclass
class Span:
    """One named interval on the simulated timeline."""

    name: str
    span_id: int
    parent_id: int | None
    start_ns: float
    end_ns: float | None = None
    attrs: dict = field(default_factory=dict)
    tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> float:
        """Span length (0 while still open)."""
        return (self.end_ns - self.start_ns) if self.end_ns is not None else 0.0

    def end(self, ts_ns: float, **attrs) -> None:
        """Close this span at ``ts_ns`` (no-op on the null span)."""
        if self.tracer is not None:
            self.tracer.end(self, ts_ns, **attrs)

    def event(self, name: str, ts_ns: float, **attrs) -> SpanEvent | None:
        """Record a point event attached to this span."""
        if self.tracer is not None:
            return self.tracer.event(name, ts_ns, span=self, **attrs)
        return None


#: Shared do-nothing span handed out by :class:`NullTracer`.
NULL_SPAN = Span("null", 0, None, 0.0, 0.0)


class Tracer:
    """Collects spans and events on one simulated timeline.

    Spans opened with :meth:`begin` nest on an internal stack — a new
    span's parent defaults to the innermost open span — except when
    opened ``detached=True`` (used for service request spans, whose
    lifetimes interleave arbitrarily and so cannot obey stack
    discipline).
    """

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = name
        self.spans: list[Span] = []
        self.events: list[SpanEvent] = []
        self._stack: list[Span] = []
        self._offsets: list[float] = []
        self._next_id = 1
        #: Largest (shifted) timestamp recorded so far.
        self.max_ts = 0.0

    # -- time rebasing -----------------------------------------------------

    @property
    def offset_ns(self) -> float:
        """Current rebasing offset added to every timestamp."""
        return self._offsets[-1] if self._offsets else 0.0

    def _shift(self, ts_ns: float) -> float:
        ts = float(ts_ns) + self.offset_ns
        if ts > self.max_ts:
            self.max_ts = ts
        return ts

    @contextmanager
    def shifted(self, delta_ns: float):
        """Rebase timestamps recorded inside by ``+delta_ns``.

        The service uses this to map a coding job simulated on
        ``[0, makespan]`` onto its own clock at dispatch time, so
        simulator spans and request spans share one timeline.
        """
        self._offsets.append(self.offset_ns + float(delta_ns))
        try:
            yield self
        finally:
            self._offsets.pop()

    @contextmanager
    def sequenced(self, t0_ns: float = 0.0):
        """Place a standalone run after everything recorded so far.

        Independent simulations each start at t=0; laid out naively
        they would all overlap. When no span is open (a standalone
        run), this shifts the run to begin at :attr:`max_ts`. Inside an
        enclosing span (e.g. a service batch) it does nothing — the
        caller already owns the timeline.
        """
        if self._stack:
            yield self
        else:
            with self.shifted(max(0.0, self.max_ts - float(t0_ns))):
                yield self

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, ts_ns: float, *, parent: Span | None = None,
              detached: bool = False, **attrs) -> Span:
        """Open a span at ``ts_ns``; returns it (close with :meth:`end`).

        ``parent`` overrides the default parent (the innermost open
        span). ``detached=True`` makes a root span that is *not* pushed
        on the nesting stack.
        """
        if parent is not None:
            parent_id = parent.span_id
        elif self._stack and not detached:
            parent_id = self._stack[-1].span_id
        else:
            parent_id = None
        span = Span(name, self._next_id, parent_id, self._shift(ts_ns),
                    attrs=dict(attrs), tracer=self)
        self._next_id += 1
        self.spans.append(span)
        if not detached:
            self._stack.append(span)
        return span

    def end(self, span: Span, ts_ns: float, **attrs) -> None:
        """Close ``span`` at ``ts_ns`` (clamped to its start), merging
        ``attrs`` into its attributes."""
        span.attrs.update(attrs)
        span.end_ns = max(self._shift(ts_ns), span.start_ns)
        if span in self._stack:
            self._stack.remove(span)

    def event(self, name: str, ts_ns: float, *, span: Span | None = None,
              **attrs) -> SpanEvent:
        """Record a point event (attached to ``span`` or the innermost
        open span, if any)."""
        if span is not None:
            span_id = span.span_id
        else:
            span_id = self._stack[-1].span_id if self._stack else None
        ev = SpanEvent(name, self._shift(ts_ns), span_id, dict(attrs))
        self.events.append(ev)
        return ev

    # -- worker hand-off ---------------------------------------------------

    def export_payload(self) -> dict:
        """Picklable snapshot of everything recorded so far.

        Sweep workers run with a private tracer and ship this payload
        back to the parent process, which splices it onto its own
        timeline with :meth:`absorb`.
        """
        return {
            "name": self.name,
            "max_ts": self.max_ts,
            "spans": [
                (s.name, s.span_id, s.parent_id, s.start_ns, s.end_ns,
                 dict(s.attrs))
                for s in self.spans
            ],
            "events": [
                (e.name, e.ts_ns, e.span_id, dict(e.attrs))
                for e in self.events
            ],
        }

    def absorb(self, payload: dict) -> None:
        """Splice a worker tracer's exported records onto this timeline.

        Records are rebased like :meth:`sequenced` runs: the worker's
        timeline (which starts at 0) is laid down after everything this
        tracer has recorded, and span ids are remapped past this
        tracer's counter so they stay unique. Absorbing worker payloads
        in a fixed order therefore yields a deterministic merged
        timeline regardless of worker scheduling.
        """
        if not payload or (not payload["spans"] and not payload["events"]):
            return
        delta = self.max_ts
        idmap: dict[int, int] = {}
        for name, sid, _pid, _start, _end, _attrs in payload["spans"]:
            idmap[sid] = self._next_id
            self._next_id += 1
        for name, sid, pid, start, end, attrs in payload["spans"]:
            span = Span(name, idmap[sid], idmap.get(pid),
                        self._shift(start + delta), attrs=attrs, tracer=self)
            if end is not None:
                span.end_ns = max(self._shift(end + delta), span.start_ns)
            self.spans.append(span)
        for name, ts, sid, attrs in payload["events"]:
            self.events.append(SpanEvent(
                name, self._shift(ts + delta),
                idmap.get(sid) if sid is not None else None, attrs))

    # -- reading -----------------------------------------------------------

    @property
    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (recording order)."""
        return [s for s in self.spans if not s.finished]

    def find_spans(self, name: str) -> list[Span]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def find_events(self, name: str) -> list[SpanEvent]:
        """All point events with the given name."""
        return [e for e in self.events if e.name == name]


class NullTracer:
    """Do-nothing stand-in with the same surface as :class:`Tracer`.

    This is the process default: instrumented code runs against it at
    effectively zero cost, and any ``tracer.enabled`` guard skips even
    the attribute packing.
    """

    enabled = False
    name = "null"
    spans: tuple = ()
    events: tuple = ()
    max_ts = 0.0
    offset_ns = 0.0

    def begin(self, name: str, ts_ns: float, **kwargs) -> Span:
        return NULL_SPAN

    def end(self, span: Span, ts_ns: float, **attrs) -> None:
        return None

    def event(self, name: str, ts_ns: float, **kwargs) -> None:
        return None

    @contextmanager
    def shifted(self, delta_ns: float):
        yield self

    @contextmanager
    def sequenced(self, t0_ns: float = 0.0):
        yield self

    def find_spans(self, name: str) -> list:
        return []

    def find_events(self, name: str) -> list:
        return []

    def export_payload(self) -> dict:
        return {}

    def absorb(self, payload: dict) -> None:
        return None


#: The process-wide null singleton (default tracer).
NULL_TRACER = NullTracer()

_default: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide default tracer (a no-op unless installed)."""
    return _default


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the process default; returns the previous
    one (pass None to restore the null tracer)."""
    global _default
    previous = _default
    _default = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None):
    """Scoped :func:`set_tracer` — restores the previous default on exit."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
