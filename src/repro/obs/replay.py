"""Counterfactual oracle replay (``repro.obs.replay``).

Prefetcher-manager work is scored against a *per-window oracle*: for
every decision window, re-run the window under every candidate policy
and ask how much the manager's choice lost against the best candidate
(Puppeteer's random-forest manager and the POWER7 runtime-guided
reconfiguration study both evaluate this way). The reproduction can
afford a literal oracle because the simulator is deterministic and the
content-addressed :func:`repro.simulate` cache (PR 4) memoizes repeated
(trace, hardware) windows.

:func:`replay_decisions` takes a :class:`~repro.obs.audit.
DecisionLedger`, re-simulates each recorded decision's window under
every candidate policy, and produces a :class:`RegretReport`:
per-decision regret (chosen vs best-in-window ns/byte) plus an
episode-level **oracle-normalized score** — total oracle window time
over total chosen window time, 1.0 meaning every decision matched the
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DecisionRegret:
    """One decision scored against its in-window oracle."""

    #: Ledger index / kind / sample of the decision.
    index: int
    kind: str
    sample: int
    #: Whether the decision changed the policy.
    switched: bool
    #: ns/byte of the window under every candidate, keyed by
    #: ``Policy.describe()`` (insertion order = candidate order).
    candidate_ns_per_byte: dict
    #: The policy the coordinator chose / the oracle's pick.
    chosen: str = ""
    best: str = ""
    chosen_ns_per_byte: float = 0.0
    best_ns_per_byte: float = 0.0

    @property
    def regret_ns_per_byte(self) -> float:
        """How much slower the choice was than the oracle (>= 0)."""
        return self.chosen_ns_per_byte - self.best_ns_per_byte

    @property
    def regret_pct(self) -> float:
        """Regret as a fraction of the oracle window time."""
        if self.best_ns_per_byte <= 0:
            return 0.0
        return self.regret_ns_per_byte / self.best_ns_per_byte

    @property
    def optimal(self) -> bool:
        """Whether the chosen policy tied the oracle for this window."""
        return self.chosen_ns_per_byte <= self.best_ns_per_byte

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "sample": self.sample,
            "switched": self.switched,
            "chosen": self.chosen,
            "best": self.best,
            "chosen_ns_per_byte": self.chosen_ns_per_byte,
            "best_ns_per_byte": self.best_ns_per_byte,
            "regret_ns_per_byte": self.regret_ns_per_byte,
            "regret_pct": self.regret_pct,
            "optimal": self.optimal,
            "candidates": dict(self.candidate_ns_per_byte),
        }


@dataclass
class RegretReport:
    """Episode-level counterfactual audit."""

    decisions: list[DecisionRegret] = field(default_factory=list)
    #: Stripes per replayed window.
    window_stripes: int = 0
    #: Content-cache hit/miss counts of the replay pass.
    cache_stats: dict = field(default_factory=dict)

    @property
    def oracle_score(self) -> float:
        """Oracle-normalized episode score in (0, 1].

        Total oracle window time over total chosen window time: 1.0
        means every decision matched the per-window oracle; 0.5 means
        the chosen policies took twice the oracle's time.
        """
        chosen = sum(d.chosen_ns_per_byte for d in self.decisions)
        best = sum(d.best_ns_per_byte for d in self.decisions)
        if chosen <= 0:
            return 1.0
        return best / chosen

    @property
    def total_regret_ns_per_byte(self) -> float:
        return sum(d.regret_ns_per_byte for d in self.decisions)

    @property
    def optimal_fraction(self) -> float:
        """Fraction of decisions that tied the oracle."""
        if not self.decisions:
            return 1.0
        return sum(d.optimal for d in self.decisions) / len(self.decisions)

    def render(self) -> str:
        """Per-decision regret table + episode score."""
        lines = [
            f"counterfactual replay: {len(self.decisions)} decisions over "
            f"{self.window_stripes}-stripe windows",
            "  idx  kind     sw  chosen ns/B  oracle ns/B  regret   policy "
            "(chosen -> oracle when different)",
        ]
        for d in self.decisions:
            arrow = (d.chosen if d.chosen == d.best
                     else f"{d.chosen} -> {d.best}")
            lines.append(
                f"  {d.index:>3}  {d.kind:<7} {'*' if d.switched else ' '}  "
                f"{d.chosen_ns_per_byte:11.4f}  {d.best_ns_per_byte:11.4f}  "
                f"{d.regret_pct:+6.1%}  {arrow}")
        lines.append(
            f"  oracle-normalized score: {self.oracle_score:.4f} "
            f"(optimal in {self.optimal_fraction:.0%} of windows, "
            f"total regret {self.total_regret_ns_per_byte:.4f} ns/B)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "window_stripes": self.window_stripes,
            "oracle_score": self.oracle_score,
            "optimal_fraction": self.optimal_fraction,
            "total_regret_ns_per_byte": self.total_regret_ns_per_byte,
            "decisions": [d.to_dict() for d in self.decisions],
            "cache_stats": dict(self.cache_stats),
        }


def _window_cost(policy, wl, hw) -> float:
    """Simulated ns/byte of one decision window under ``policy``.

    Goes through the :func:`repro.simulate` facade so an installed
    content cache memoizes repeated (trace, hardware) windows — the
    same candidate policy recurs across decisions, so a replay is
    mostly cache hits after the first window.
    """
    from repro.simulator.api import simulate
    from repro.trace import isal_trace

    traces = [isal_trace(wl, hw.cpu, policy.to_variant(), thread=t)
              for t in range(wl.nthreads)]
    res = simulate(traces, hw)
    return res.makespan_ns / max(1, res.data_bytes)


def replay_decisions(ledger, *, window_stripes: int | None = None,
                     cache=None) -> RegretReport:
    """Score every ledger decision against its in-window oracle.

    Parameters
    ----------
    ledger:
        A :class:`~repro.obs.audit.DecisionLedger` populated from a
        finished coordinator (it carries the episode's workload and
        hardware).
    window_stripes:
        Stripes per counterfactual window. Defaults to the ledger's
        recorded adaptation chunk size, else 2.
    cache:
        A :class:`~repro.parallel.cache.ContentCache` to memoize window
        simulations in (a fresh in-memory cache is used by default).

    The replay runs with tracing disabled (the facade's cache path
    requires it, and thousands of window spans would drown the
    timeline); emit ledger events separately via
    :meth:`~repro.obs.audit.DecisionLedger.emit_events`.
    """
    from repro.obs.tracer import NULL_TRACER, use_tracer
    from repro.parallel.cache import ContentCache, sim_cache

    if ledger.wl is None or ledger.hw is None:
        raise ValueError("ledger has no workload/hardware "
                         "(ingest a coordinator first)")
    stripes = (window_stripes if window_stripes is not None
               else (ledger.window_stripes or 2))
    wl = ledger.wl.with_(
        data_bytes_per_thread=stripes * ledger.wl.stripe_data_bytes)
    hw = ledger.hw
    store = cache if cache is not None else ContentCache()
    report = RegretReport(window_stripes=stripes)
    with use_tracer(NULL_TRACER), sim_cache(store):
        for rec in ledger.records:
            costs: dict = {}
            by_policy = {}
            for pol in rec.candidates:
                desc = pol.describe()
                if desc not in costs:
                    costs[desc] = _window_cost(pol, wl, hw)
                    by_policy[desc] = pol
            chosen_desc = rec.chosen.describe()
            if chosen_desc not in costs:
                costs[chosen_desc] = _window_cost(rec.chosen, wl, hw)
            best_desc = min(costs, key=lambda d: (costs[d], d))
            report.decisions.append(DecisionRegret(
                index=rec.index, kind=rec.kind, sample=rec.sample,
                switched=rec.switched, candidate_ns_per_byte=costs,
                chosen=chosen_desc, best=best_desc,
                chosen_ns_per_byte=costs[chosen_desc],
                best_ns_per_byte=costs[best_desc]))
    report.cache_stats = {"hits": store.hits, "misses": store.misses}
    return report
