"""Span-tree summaries and per-stage latency breakdowns.

Turns a recorded trace back into something readable without a trace
viewer: an indented span tree (the ``trace_explorer`` demo), per-name
aggregates, and the service request-stage breakdown the bench
``service`` scenario reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SpanNode:
    """One span plus its children, in recording order."""

    span: object
    children: list["SpanNode"] = field(default_factory=list)


def span_forest(tracer) -> list[SpanNode]:
    """The trace's spans as parent/child trees (roots in record order).

    Spans whose parent is missing from the trace are promoted to
    roots rather than dropped.
    """
    nodes = {s.span_id: SpanNode(s) for s in tracer.spans}
    roots: list[SpanNode] = []
    for s in tracer.spans:
        node = nodes[s.span_id]
        if s.parent_id is not None and s.parent_id in nodes:
            nodes[s.parent_id].children.append(node)
        else:
            roots.append(node)
    return roots


def aggregate_by_name(tracer) -> dict[str, dict]:
    """Per span-name count / total / mean duration (finished spans)."""
    out: dict[str, dict] = {}
    for s in tracer.spans:
        if not s.finished:
            continue
        agg = out.setdefault(s.name, {"count": 0, "total_ns": 0.0})
        agg["count"] += 1
        agg["total_ns"] += s.duration_ns
    for agg in out.values():
        agg["mean_ns"] = agg["total_ns"] / agg["count"]
    return out


def render_span_tree(tracer, *, max_children: int = 8,
                     max_depth: int | None = None) -> str:
    """Indented tree of the whole trace with durations.

    Sibling runs longer than ``max_children`` are elided with a
    ``... (+n more)`` line so big sweeps stay printable.
    """
    lines: list[str] = []

    def fmt(span) -> str:
        dur = (f"{span.duration_ns / 1e3:10.1f} us" if span.finished
               else "      open")
        extra = ""
        for key in ("policy", "status", "request_id", "chunk"):
            if key in span.attrs:
                extra += f" {key}={span.attrs[key]}"
        return (f"{dur}  {span.name}"
                f" [{span.start_ns / 1e3:.1f}..") + (
                f"{span.end_ns / 1e3:.1f}]" if span.finished else "...]"
                ) + extra

    def walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        lines.append("  " * depth + fmt(node.span))
        shown = node.children[:max_children]
        for child in shown:
            walk(child, depth + 1)
        hidden = len(node.children) - len(shown)
        if hidden > 0:
            lines.append("  " * (depth + 1) + f"... (+{hidden} more)")

    for root in span_forest(tracer):
        walk(root, 0)
    return "\n".join(lines)


def service_stage_breakdown(tracer) -> dict[str, list[float]]:
    """Per-request stage durations (ns) recovered from request spans.

    Stages, matching the service lifecycle:

    * ``queue_wait`` — enqueue (span start) to the ``service.admitted``
      event (dispatch instant);
    * ``execute``    — admission to completion (batch base latency,
      retries, transfer and the coalesced coding job);
    * ``total``      — full arrival-to-completion latency.

    Rejected and unfinished request spans are skipped.
    """
    admitted_at: dict[int, float] = {}
    for e in tracer.events:
        if e.name == "service.admitted" and e.span_id is not None:
            admitted_at[e.span_id] = e.ts_ns
    stages: dict[str, list[float]] = {
        "queue_wait": [], "execute": [], "total": []}
    for s in tracer.spans:
        if s.name != "service.request" or not s.finished:
            continue
        if s.attrs.get("status") != "completed":
            continue
        admit = admitted_at.get(s.span_id)
        if admit is None:
            continue
        stages["queue_wait"].append(admit - s.start_ns)
        stages["execute"].append(s.end_ns - admit)
        stages["total"].append(s.end_ns - s.start_ns)
    return stages
