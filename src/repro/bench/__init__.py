"""Experiment harness: regenerates every figure of the paper.

Each ``fig*`` function in :mod:`repro.bench.figures` runs one paper
experiment end-to-end (workload sweep x libraries) on the simulated
testbed and returns a :class:`~repro.bench.report.FigureResult` with
the measured series, the paper's expected shape encoded as explicit
checks, and notes on any known deviation. The pytest-benchmark modules
under ``benchmarks/`` are thin wrappers; ``scripts/make_experiments_md.py``
renders all results into EXPERIMENTS.md.

Set ``REPRO_BENCH_SCALE`` (float) to shrink/grow simulated data volumes.
"""

from repro.bench.report import FigureResult, Check, fmt_value
from repro.bench.runner import (
    run_libraries,
    run_spec,
    scaled,
    standard_libraries,
    sweep_results_table,
    sweep_spec,
)
from repro.bench.sweep import benchmark_sweep, full_grid, smoke_grid
from repro.bench.compare import compare_libraries, Comparison
from repro.bench.workloads import PRODUCTION_WORKLOADS, get_workload

__all__ = [
    "FigureResult",
    "Check",
    "fmt_value",
    "run_libraries",
    "standard_libraries",
    "scaled",
    "sweep_spec",
    "run_spec",
    "sweep_results_table",
    "benchmark_sweep",
    "smoke_grid",
    "full_grid",
    "compare_libraries",
    "Comparison",
    "PRODUCTION_WORKLOADS",
    "get_workload",
]
