"""All paper-figure experiments (Figs. 3-7 observations, 10-19 evaluation).

Every function runs one experiment on the simulated testbed and returns
a :class:`~repro.bench.report.FigureResult` whose ``checks`` encode the
paper's qualitative claims (who wins, where the knees are, rough
factors). Absolute GB/s are not expected to match the authors' Optane
testbed — see DESIGN.md §2/§6 and EXPERIMENTS.md.

Paper notation: figures label codes RS(n, k) with n = k + m; here we
use (k, m) directly, so the paper's RS(12, 8) is ``k=8, m=4``.
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.bench.runner import scaled, standard_libraries
from repro.core import DialgaConfig, DialgaEncoder, Policy
from repro.libs import ISAL, ISALDecompose, Cerasure, Zerasure
from repro.simulator import HardwareConfig, simulate
from repro.trace import IsalVariant, Workload, isal_trace

HW = HardwareConfig()


def _run_isal(wl: Workload, hw: HardwareConfig, variant=IsalVariant()):
    traces = [isal_trace(wl, hw.cpu, variant, thread=t)
              for t in range(wl.nthreads)]
    return simulate(traces, hw)


def _gain(a: float, b: float) -> float:
    """Relative improvement of a over b."""
    return a / b - 1.0


# ---------------------------------------------------------------------------
# Observations (§3)
# ---------------------------------------------------------------------------

def fig03(volume: int | None = None) -> FigureResult:
    """Fig. 3: RS(12,8) encode throughput by load source x HW prefetch."""
    vol = volume or scaled(192 * 1024)
    fig = FigureResult(
        "fig03", "Encoding throughput with different load sources (RS(12,8), 1KB)",
        ["throughput_gbps", "stall_ns_per_load"])
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=vol)
    vals = {}
    for src in ("pm", "dram"):
        for pf in (False, True):
            hw = HW.with_(load_source=src).with_prefetcher(enabled=pf)
            r = _run_isal(wl, hw)
            vals[(src, pf)] = r
            fig.add_row(f"{src}/pf={'on' if pf else 'off'}",
                        throughput_gbps=r.throughput_gbps,
                        stall_ns_per_load=r.counters.avg_load_latency_ns)
    dram_gain = _gain(vals[("dram", True)].throughput_gbps,
                      vals[("dram", False)].throughput_gbps)
    pm_gain = _gain(vals[("pm", True)].throughput_gbps,
                    vals[("pm", False)].throughput_gbps)
    ratio_off = (vals[("dram", False)].throughput_gbps
                 / vals[("pm", False)].throughput_gbps)
    ratio_on = (vals[("dram", True)].throughput_gbps
                / vals[("pm", True)].throughput_gbps)
    fig.check("DRAM source 195-272% faster than PM (band 1.8x-4.2x)",
              1.8 <= min(ratio_off, ratio_on) and max(ratio_off, ratio_on) <= 4.2,
              f"off={ratio_off:.2f}x on={ratio_on:.2f}x")
    fig.check("HW prefetch helps DRAM more than PM (paper: +109% vs +50%)",
              dram_gain > pm_gain,
              f"dram={dram_gain:+.0%} pm={pm_gain:+.0%}")
    fig.check("PM prefetch gain moderate (paper ~+50%, band +20..+90%)",
              0.20 <= pm_gain <= 0.90, f"{pm_gain:+.0%}")
    fig.notes.append(
        "DRAM prefetch gain lands below the paper's +109% (the conservative "
        "per-block training model); ordering and PM band reproduce.")
    return fig


def fig04(volume: int | None = None) -> FigureResult:
    """Fig. 4: encode throughput vs CPU frequency (PM flattens >2 GHz)."""
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "fig04", "Encoding throughput with different CPU frequencies (RS(12,8))",
        ["pm_gbps", "dram_gbps", "pm_avx256_gbps"])
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=vol)
    freqs = (1.2, 1.8, 2.4, 3.0, 3.3)
    series = {}
    for ghz in freqs:
        row = {}
        for src, col in (("pm", "pm_gbps"), ("dram", "dram_gbps")):
            hw = HW.with_(load_source=src).with_cpu(freq_ghz=ghz)
            row[col] = _run_isal(wl, hw).throughput_gbps
        hw256 = HW.with_cpu(freq_ghz=ghz, simd="avx256")
        row["pm_avx256_gbps"] = _run_isal(wl.with_(simd="avx256"), hw256).throughput_gbps
        series[ghz] = row
        fig.add_row(f"{ghz:.1f}GHz", **row)
    pm_flat = _gain(series[3.3]["pm_gbps"], series[2.4]["pm_gbps"])
    dram_scale = _gain(series[3.3]["dram_gbps"], series[2.4]["dram_gbps"])
    pm_low = _gain(series[2.4]["pm_gbps"], series[1.2]["pm_gbps"])
    fig.check("PM gains little beyond ~2.4 GHz (cycles wait on memory)",
              pm_flat < 0.08, f"2.4->3.3GHz: {pm_flat:+.1%}")
    fig.check("DRAM keeps scaling with frequency more than PM",
              dram_scale > pm_flat, f"dram={dram_scale:+.1%} pm={pm_flat:+.1%}")
    fig.check("PM does scale at low frequencies (compute-bound region)",
              pm_low > pm_flat, f"1.2->2.4GHz: {pm_low:+.1%}")
    avx_flat = _gain(series[3.3]["pm_avx256_gbps"], series[2.4]["pm_avx256_gbps"])
    fig.check("AVX256 flattens later (more compute-bound) than AVX512 on PM",
              avx_flat >= pm_flat - 0.02,
              f"avx256 2.4->3.3GHz: {avx_flat:+.1%}")
    return fig


def fig05(volume: int | None = None) -> FigureResult:
    """Fig. 5: stripe-width sweep (4 KB blocks): the k=32 streamer cliff."""
    vol = volume or scaled(192 * 1024)
    fig = FigureResult(
        "fig05", "Impact of stripe width k (m=4, 4KB blocks, HW prefetch on)",
        ["throughput_gbps", "useless_pf_ratio", "l2_pf_per_load"])
    ks = (4, 8, 12, 16, 20, 24, 32, 36, 48, 64)
    tput = {}
    for k in ks:
        wl = Workload(k=k, m=4, block_bytes=4096, data_bytes_per_thread=vol)
        r = _run_isal(wl, HW)
        tput[k] = r.throughput_gbps
        fig.add_row(f"k={k}",
                    throughput_gbps=r.throughput_gbps,
                    useless_pf_ratio=r.counters.useless_hwpf_ratio,
                    l2_pf_per_load=r.counters.hwpf_per_load)
    fig.check("Stage i: throughput rises with k below 16",
              tput[4] < tput[8] < tput[16],
              f"{tput[4]:.2f} < {tput[8]:.2f} < {tput[16]:.2f}")
    fig.check("Stage ii: moderate growth 16 < k <= 32",
              tput[16] <= tput[24] <= tput[32] and tput[32] < 1.3 * tput[16],
              f"{tput[16]:.2f} -> {tput[32]:.2f}")
    fig.check("Stage iii: cliff past 32 streams (paper: 'extremely low')",
              tput[36] < 0.45 * tput[32], f"{tput[36]:.2f} vs {tput[32]:.2f}")
    useless = fig.series("useless_pf_ratio")
    fig.check("Useless-prefetch ratio declines as k grows toward 32",
              useless[0] > useless[5] > useless[6] * 0.99,
              f"k=4:{useless[0]:.2f} k=24:{useless[5]:.2f} k=32:{useless[6]:.2f}")
    pf = fig.series("l2_pf_per_load")
    fig.check("L2 prefetch ratio collapses to ~0 past 32 streams",
              pf[7] < 0.02 and pf[6] > 0.5, f"k=32:{pf[6]:.2f} k=36:{pf[7]:.2f}")
    return fig


def fig06(volume: int | None = None) -> FigureResult:
    """Fig. 6: block-size sweep for RS(28,24): amp at 1-3KB, best at 4KB."""
    vol = volume or scaled(192 * 1024)
    fig = FigureResult(
        "fig06", "RS(28,24) throughput and media read amplification vs block size",
        ["pf_on_gbps", "pf_off_gbps", "media_amp"])
    sizes = (256, 512, 1024, 2048, 3072, 4096, 5120)
    rows = {}
    for bs in sizes:
        wl = Workload(k=24, m=4, block_bytes=bs, data_bytes_per_thread=vol)
        r_on = _run_isal(wl, HW)
        r_off = _run_isal(wl, HW.with_prefetcher(enabled=False))
        rows[bs] = (r_on, r_off)
        fig.add_row(f"{bs}B",
                    pf_on_gbps=r_on.throughput_gbps,
                    pf_off_gbps=r_off.throughput_gbps,
                    media_amp=r_on.counters.media_read_amplification)
    g256 = _gain(rows[256][0].throughput_gbps, rows[256][1].throughput_gbps)
    fig.check("256B: prefetcher has no effect and no read amplification",
              abs(g256) < 0.10 and rows[256][0].counters.media_read_amplification <= 1.05,
              f"gain={g256:+.0%} amp={rows[256][0].counters.media_read_amplification:.2f}")
    g1k = _gain(rows[1024][0].throughput_gbps, rows[1024][1].throughput_gbps)
    fig.check("1KB: prefetcher improves 33-112% (band +25..+130%)",
              0.25 <= g1k <= 1.30, f"{g1k:+.0%}")
    amps = [rows[b][0].counters.media_read_amplification for b in (1024, 2048, 3072)]
    fig.check("1-3KB: 23-37% read amplification (band 10-55%)",
              all(1.10 <= a <= 1.55 for a in amps),
              " ".join(f"{a:.2f}" for a in amps))
    amp4k = rows[4096][0].counters.media_read_amplification
    fig.check("4KB: most effective size, no amplification (page-bounded)",
              amp4k <= 1.02 and rows[4096][0].throughput_gbps
              == max(r[0].throughput_gbps for r in rows.values()),
              f"amp={amp4k:.2f}")
    fig.check("5KB: mixed pattern (slower than 4KB, some amplification)",
              rows[5120][0].throughput_gbps < rows[4096][0].throughput_gbps
              and rows[5120][0].counters.media_read_amplification > 1.0,
              f"{rows[5120][0].throughput_gbps:.2f} vs {rows[4096][0].throughput_gbps:.2f}")
    fig.notes.append(
        "512B shows a partial prefetch effect (+~30%, amp 1.5) where the "
        "paper reports none; the streamer-confidence model engages on the "
        "last lines of 8-line streams. All other sizes reproduce.")
    return fig


def fig07(volume: int | None = None) -> FigureResult:
    """Fig. 7: multithread scalability of RS(28,24), HW prefetch on/off."""
    vol = volume or scaled(64 * 1024)
    fig = FigureResult(
        "fig07", "Multi-thread scalability of RS(28,24) 1KB encoding",
        ["pf_on_gbps", "pf_off_gbps", "media_amp_on"])
    threads = (1, 2, 4, 8, 10, 12, 16, 18)
    on, off = {}, {}
    for nt in threads:
        wl = Workload(k=24, m=4, block_bytes=1024, nthreads=nt,
                      data_bytes_per_thread=vol)
        r_on = _run_isal(wl, HW)
        r_off = _run_isal(wl, HW.with_prefetcher(enabled=False))
        on[nt], off[nt] = r_on, r_off
        fig.add_row(f"{nt}t",
                    pf_on_gbps=r_on.throughput_gbps,
                    pf_off_gbps=r_off.throughput_gbps,
                    media_amp_on=r_on.counters.media_read_amplification)
    fig.check("Prefetch-on throughput plateaus/declines by 8-10 threads",
              on[18].throughput_gbps <= 1.05 * on[8].throughput_gbps,
              f"8t={on[8].throughput_gbps:.2f} 18t={on[18].throughput_gbps:.2f}")
    fig.check("Prefetch-off scales ~linearly further (no buffer thrash)",
              off[12].throughput_gbps >= 0.9 * (off[1].throughput_gbps * 8),
              f"1t={off[1].throughput_gbps:.2f} 12t={off[12].throughput_gbps:.2f}")
    fig.check("Prefetch-on faster at low concurrency (latency hiding)",
              on[1].throughput_gbps > 1.3 * off[1].throughput_gbps,
              f"on={on[1].throughput_gbps:.2f} off={off[1].throughput_gbps:.2f}")
    fig.check("Thrashing grows media amplification with thread count",
              on[18].counters.media_read_amplification
              > on[1].counters.media_read_amplification + 0.3,
              f"1t={on[1].counters.media_read_amplification:.2f} "
              f"18t={on[18].counters.media_read_amplification:.2f}")
    return fig


# ---------------------------------------------------------------------------
# Evaluation (§5)
# ---------------------------------------------------------------------------

LIB_COLS = ["ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA"]


def fig10(volume: int | None = None) -> FigureResult:
    """Fig. 10: encode throughput vs stripe width, all five libraries."""
    vol = volume or scaled(160 * 1024)
    xvol = volume or scaled(48 * 1024)
    fig = FigureResult(
        "fig10", "Encoding throughput vs number of data blocks (1KB, m=4)",
        LIB_COLS)
    ks = (4, 8, 12, 16, 20, 24, 32, 40, 48, 64)

    def wl_of(k):
        return Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)

    def libs_of(k):
        libs = standard_libraries(k, 4)
        return libs

    results = {}
    for k in ks:
        res = {}
        for lib in libs_of(k):
            wl = wl_of(k)
            if lib.name in ("Zerasure", "Cerasure"):
                wl = wl.with_(data_bytes_per_thread=xvol)
            try:
                res[lib.name] = lib.run(wl, HW)
            except Exception as exc:  # UnsupportedWorkload
                from repro.libs import UnsupportedWorkload
                if isinstance(exc, UnsupportedWorkload):
                    res[lib.name] = None
                else:
                    raise
        results[k] = res
        fig.add_row(f"k={k}", **{
            n: (r.throughput_gbps if r is not None else None)
            for n, r in res.items()})

    def tp(k, name):
        r = results[k][name]
        return r.throughput_gbps if r else None

    narrow_gains = []
    for k in (4, 8, 12, 16):
        others = max(v for n in ("ISA-L", "ISA-L-D", "Zerasure", "Cerasure")
                     if (v := tp(k, n)) is not None)
        narrow_gains.append(_gain(tp(k, "DIALGA"), others))
    fig.check("Narrow stripes: DIALGA +53.9-102% over best other (band +30..+130%)",
              all(0.30 <= g <= 1.30 for g in narrow_gains),
              " ".join(f"{g:+.0%}" for g in narrow_gains))
    fig.check("ISA-L collapses for k > 32 (streamer capacity)",
              tp(40, "ISA-L") < 0.55 * tp(32, "ISA-L"),
              f"k=32:{tp(32,'ISA-L'):.2f} k=40:{tp(40,'ISA-L'):.2f}")
    fig.check("Zerasure missing results on wide stripes (search non-convergence)",
              tp(48, "Zerasure") is None and tp(8, "Zerasure") is not None)
    fig.check("ISA-L-D beats Cerasure's decompose on wide stripes "
              "(simpler access pattern)",
              tp(48, "ISA-L-D") > tp(48, "Cerasure"),
              f"{tp(48,'ISA-L-D'):.2f} vs {tp(48,'Cerasure'):.2f}")
    wide_gains = [_gain(tp(k, "DIALGA"), tp(k, "ISA-L")) for k in (40, 48, 64)]
    fig.check("Wide stripes: DIALGA ~3x ISA-L (paper +193.6-198.9%; band >= +150%)",
              all(g >= 1.50 for g in wide_gains),
              " ".join(f"{g:+.0%}" for g in wide_gains))
    fig.check("Cerasure below ISA-L on PM (extra load/stores of XOR path)",
              tp(16, "Cerasure") < tp(16, "ISA-L"),
              f"{tp(16,'Cerasure'):.2f} vs {tp(16,'ISA-L'):.2f}")
    fig.notes.append(
        "DIALGA's wide-stripe gain exceeds the paper's +199% (software "
        "prefetch coverage is more complete in simulation); ordering and "
        "the k=32 cliff reproduce.")
    return fig


def fig11(volume: int | None = None) -> FigureResult:
    """Fig. 11: encode throughput vs number of parity blocks m."""
    vol = volume or scaled(128 * 1024)
    xvol = volume or scaled(48 * 1024)
    fig = FigureResult(
        "fig11", "Encoding throughput vs parity count m (1KB blocks)",
        ["ISA-L", "Cerasure", "DIALGA"])
    points = [(k, m) for k in (8, 24, 48) for m in (2, 4, 6, 8)]
    results = {}
    for k, m in points:
        wl = Workload(k=k, m=m, block_bytes=1024, data_bytes_per_thread=vol)
        res = {
            "ISA-L": ISAL(k, m).run(wl, HW),
            "Cerasure": Cerasure(k, m).run(
                wl.with_(data_bytes_per_thread=xvol), HW),
            "DIALGA": DialgaEncoder(k, m).run(wl, HW),
        }
        results[(k, m)] = res
        fig.add_row(f"k={k},m={m}", **{
            n: r.throughput_gbps for n, r in res.items()})

    def tp(k, m, n):
        return results[(k, m)][n].throughput_gbps

    gains = [_gain(tp(k, m, "DIALGA"),
                   max(tp(k, m, "ISA-L"), tp(k, m, "Cerasure")))
             for k, m in points]
    fig.check("DIALGA wins at every (k, m) (paper: +20.1-96.6%)",
              all(g > 0.10 for g in gains),
              " ".join(f"{g:+.0%}" for g in gains[:6]) + " ...")
    cer_deg = tp(8, 8, "Cerasure") / tp(8, 2, "Cerasure")
    isal_deg = tp(8, 8, "ISA-L") / tp(8, 2, "ISA-L")
    fig.check("Cerasure degrades faster with m than ISA-L (XOR cost "
              "grows non-linearly)",
              cer_deg < isal_deg,
              f"cerasure x{cer_deg:.2f} isal x{isal_deg:.2f}")
    dialga_wide_spread = (max(tp(48, m, "DIALGA") for m in (2, 4, 6, 8))
                          / min(tp(48, m, "DIALGA") for m in (2, 4, 6, 8)))
    fig.check("Wide stripes: DIALGA stable across m (load-dominated)",
              dialga_wide_spread < 1.35, f"max/min = {dialga_wide_spread:.2f}")
    return fig


def fig12(volume: int | None = None) -> FigureResult:
    """Fig. 12: encode throughput vs block size, all libraries."""
    vol = volume or scaled(128 * 1024)
    xvol = volume or scaled(48 * 1024)
    fig = FigureResult(
        "fig12", "Encoding throughput vs block size (RS(28,24), m=4)",
        LIB_COLS)
    sizes = (256, 512, 1024, 2048, 4096, 5120)
    k = 24
    libs = standard_libraries(k, 4)
    results = {}
    for bs in sizes:
        res = {}
        for lib in libs:
            wl = Workload(k=k, m=4, block_bytes=bs, data_bytes_per_thread=(
                xvol if lib.name in ("Zerasure", "Cerasure") else vol))
            try:
                res[lib.name] = lib.run(wl, HW)
            except Exception:
                res[lib.name] = None
        results[bs] = res
        fig.add_row(f"{bs}B", **{
            n: (r.throughput_gbps if r else None) for n, r in res.items()})

    def tp(bs, n):
        r = results[bs][n]
        return r.throughput_gbps if r else None

    small_gains = [_gain(tp(bs, "DIALGA"),
                         max(tp(bs, n) for n in LIB_COLS[:-1] if tp(bs, n)))
                   for bs in (256, 512, 1024)]
    fig.check("<=1KB blocks: DIALGA +63.8-180.5% over best other (band +40..+220%)",
              all(0.40 <= g <= 2.20 for g in small_gains),
              " ".join(f"{g:+.0%}" for g in small_gains))
    g4k = _gain(tp(4096, "DIALGA"),
                max(tp(4096, n) for n in LIB_COLS[:-1] if tp(4096, n)))
    fig.check("4KB: DIALGA improvement limited (HW prefetcher at peak)",
              g4k < min(small_gains), f"4KB {g4k:+.0%}")
    g5k = _gain(tp(5120, "DIALGA"),
                max(tp(5120, n) for n in LIB_COLS[:-1] if tp(5120, n)))
    fig.check("5KB: limited improvement, 4KB pages dominate (paper 8.2-25.6%)",
              g5k < max(small_gains), f"5KB {g5k:+.0%}")
    fig.check("XOR libraries suffer most at small blocks",
              tp(256, "Cerasure") < 0.8 * tp(256, "ISA-L"),
              f"{tp(256,'Cerasure'):.2f} vs {tp(256,'ISA-L'):.2f}")
    return fig


def fig13(volume: int | None = None) -> FigureResult:
    """Fig. 13: multithread scalability, DIALGA vs ISA-L vs decompose."""
    vol = volume or scaled(40 * 1024)
    fig = FigureResult(
        "fig13", "Multi-thread encoding scalability",
        ["ISA-L", "ISA-L-D", "DIALGA"])
    threads = (1, 2, 4, 8, 12, 16, 18)
    configs = [("RS(28,24)/1KB", 24, 1024), ("RS(28,24)/4KB", 24, 4096),
               ("RS(52,48)/1KB", 48, 1024)]
    results = {}
    for tag, k, bs in configs:
        for nt in threads:
            wl = Workload(k=k, m=4, block_bytes=bs, nthreads=nt,
                          data_bytes_per_thread=vol)
            res = {
                "ISA-L": ISAL(k, 4).run(wl, HW),
                "ISA-L-D": ISALDecompose(k, 4).run(wl, HW),
                "DIALGA": DialgaEncoder(k, 4).run(wl, HW),
            }
            results[(tag, nt)] = res
            fig.add_row(f"{tag}/{nt}t", **{
                n: r.throughput_gbps for n, r in res.items()})

    def peak(tag, name):
        return max(results[(tag, nt)][name].throughput_gbps for nt in threads)

    p1 = peak("RS(28,24)/1KB", "DIALGA") / peak("RS(28,24)/1KB", "ISA-L")
    fig.check("RS(28,24) 1KB: DIALGA peaks higher than ISA-L (paper +50%)",
              1.25 <= p1 <= 2.60, f"x{p1:.2f}")
    p2 = peak("RS(28,24)/4KB", "DIALGA") / peak("RS(28,24)/4KB", "ISA-L")
    fig.check("RS(28,24) 4KB: only marginal DIALGA gain (HW prefetch "
              "efficient at 4KB)",
              p2 < p1 and p2 <= 1.45, f"x{p2:.2f}")
    p3 = peak("RS(52,48)/1KB", "DIALGA") / peak("RS(52,48)/1KB", "ISA-L")
    fig.check("Wide stripes: DIALGA well above ISA-L (paper +182.8%; band >= +50%)",
              p3 >= 1.50, f"x{p3:.2f}")
    p4 = peak("RS(52,48)/1KB", "DIALGA") / peak("RS(52,48)/1KB", "ISA-L-D")
    fig.check("Wide stripes: DIALGA up to +140.3% over decompose (band >= +60%)",
              p4 >= 1.60, f"x{p4:.2f}")
    isal_1k = [results[("RS(28,24)/1KB", nt)]["ISA-L"].throughput_gbps
               for nt in threads]
    fig.check("ISA-L bottlenecks by ~8 threads on 1KB stripes",
              isal_1k[-1] <= 1.1 * isal_1k[3],
              f"8t={isal_1k[3]:.2f} 18t={isal_1k[-1]:.2f}")
    dialga_wide = [results[("RS(52,48)/1KB", nt)]["DIALGA"].throughput_gbps
                   for nt in threads]
    fig.check("Wide stripes: DIALGA sustains throughput at high thread "
              "counts (adaptive coordination)",
              dialga_wide[-1] >= 1.4 * results[("RS(52,48)/1KB", 18)]["ISA-L"].throughput_gbps,
              f"18t dialga={dialga_wide[-1]:.2f}")
    fig.notes.append(
        "DIALGA's multithread peak ratios exceed the paper's (+50% becomes "
        "~2x) because its single-thread gain is already larger in "
        "simulation; shapes (ISA-L knee at 8 threads, 4KB marginality, "
        "wide-stripe dominance) reproduce.")
    return fig


def fig14(volume: int | None = None) -> FigureResult:
    """Fig. 14: decoding throughput vs stripe width."""
    vol = volume or scaled(96 * 1024)
    xvol = volume or scaled(32 * 1024)
    fig = FigureResult(
        "fig14", "Decoding throughput vs stripe width (m=4 erasures, 1KB)",
        ["ISA-L", "Zerasure", "Cerasure", "DIALGA"])
    ks = (8, 16, 24, 32, 48)
    results = {}
    for k in ks:
        wl = Workload(k=k, m=4, op="decode", erasures=4, block_bytes=1024,
                      data_bytes_per_thread=vol)
        xwl = wl.with_(data_bytes_per_thread=xvol)
        res = {
            "ISA-L": ISAL(k, 4).run(wl, HW),
            "Zerasure": Zerasure(k, 4).run(xwl, HW) if Zerasure(k, 4).search.converged else None,
            "Cerasure": Cerasure(k, 4).run(xwl, HW),
            "DIALGA": DialgaEncoder(k, 4).run(wl, HW),
        }
        results[k] = res
        fig.add_row(f"k={k}", **{
            n: (r.throughput_gbps if r else None) for n, r in res.items()})

    def tp(k, n):
        r = results[k][n]
        return r.throughput_gbps if r else None

    dialga_gains = [_gain(tp(k, "DIALGA"), tp(k, "ISA-L")) for k in ks[:4]]
    fig.check("DIALGA decode +76.1-88.1% over ISA-L (band +35..+130%)",
              all(0.35 <= g <= 1.30 for g in dialga_gains),
              " ".join(f"{g:+.0%}" for g in dialga_gains))
    fig.check("Wide-stripe decode: DIALGA >= 2x ISA-L (streamer dead at k=48)",
              tp(48, "DIALGA") >= 2.0 * tp(48, "ISA-L"),
              f"{tp(48, 'DIALGA'):.2f} vs {tp(48, 'ISA-L'):.2f}")
    cer_gains = [tp(k, "DIALGA") / tp(k, "Cerasure") for k in ks[:4]]
    fig.check("DIALGA decode 142.1-340.7% over Cerasure (band >= 2x)",
              all(g >= 2.0 for g in cer_gains),
              " ".join(f"x{g:.1f}" for g in cer_gains))
    # XOR decode degradation vs their own encode
    enc = Cerasure(16, 4).run(Workload(k=16, m=4, block_bytes=1024,
                                       data_bytes_per_thread=xvol), HW)
    fig.check("XOR libraries degrade on decode (unoptimizable decode matrix)",
              tp(16, "Cerasure") < 0.9 * enc.throughput_gbps,
              f"decode {tp(16,'Cerasure'):.2f} vs encode {enc.throughput_gbps:.2f}")
    return fig


def fig15(volume: int | None = None) -> FigureResult:
    """Fig. 15: AVX512 vs AVX256 encode throughput."""
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "fig15", "Encoding throughput with different SIMD widths (1KB)",
        ["ISA-L_avx512", "ISA-L_avx256", "DIALGA_avx512", "DIALGA_avx256"])
    ks = (8, 24, 48)
    results = {}
    for k in ks:
        row = {}
        for simd in ("avx512", "avx256"):
            wl = Workload(k=k, m=4, block_bytes=1024,
                          data_bytes_per_thread=vol, simd=simd)
            row[f"ISA-L_{simd}"] = ISAL(k, 4).run(wl, HW).throughput_gbps
            row[f"DIALGA_{simd}"] = DialgaEncoder(k, 4).run(wl, HW).throughput_gbps
        results[k] = row
        fig.add_row(f"k={k}", **row)
    isal_declines = [1 - results[k]["ISA-L_avx256"] / results[k]["ISA-L_avx512"]
                     for k in ks]
    dialga_declines = [1 - results[k]["DIALGA_avx256"] / results[k]["DIALGA_avx512"]
                       for k in ks]
    fig.check("ISA-L declines moderately on AVX256 (paper 12.3-23.6%; band 5-35%)",
              all(0.05 <= d <= 0.35 for d in isal_declines),
              " ".join(f"{d:.0%}" for d in isal_declines))
    fig.check("DIALGA declines more than ISA-L (it made encoding compute-bound)",
              sum(dialga_declines) > sum(isal_declines),
              f"dialga {sum(dialga_declines)/3:.0%} vs isal {sum(isal_declines)/3:.0%}")
    fig.check("DIALGA on AVX256 still beats ISA-L on AVX512 (paper +37.5-104.4%)",
              all(results[k]["DIALGA_avx256"] > results[k]["ISA-L_avx512"]
                  for k in ks),
              " ".join(f"{results[k]['DIALGA_avx256']/results[k]['ISA-L_avx512']:.2f}x"
                       for k in ks))
    return fig


def fig16(volume: int | None = None) -> FigureResult:
    """Fig. 16: LRC encoding throughput."""
    vol = volume or scaled(96 * 1024)
    xvol = volume or scaled(32 * 1024)
    fig = FigureResult(
        "fig16", "LRC(k,m,l) encoding throughput (1KB blocks)",
        ["ISA-L", "ISA-L-D", "Cerasure", "DIALGA", "DIALGA_RS"])
    configs = [(8, 4, 2), (24, 4, 4), (48, 4, 4)]
    results = {}
    for k, m, l in configs:
        wl = Workload(k=k, m=m, block_bytes=1024, lrc_l=l,
                      data_bytes_per_thread=vol)
        res = {
            "ISA-L": ISAL(k, m).run(wl, HW),
            "ISA-L-D": ISALDecompose(k, m).run(wl, HW),
            "Cerasure": Cerasure(k, m).run(
                wl.with_(data_bytes_per_thread=xvol), HW),
            "DIALGA": DialgaEncoder(k, m).run(wl, HW),
            "DIALGA_RS": DialgaEncoder(k, m).run(wl.with_(lrc_l=None), HW),
        }
        results[(k, m, l)] = res
        fig.add_row(f"LRC({k},{m},{l})", **{
            n: r.throughput_gbps for n, r in res.items()})

    def tp(cfg, n):
        return results[cfg][n].throughput_gbps

    def best_non_dialga(cfg):
        return max(tp(cfg, n) for n in ("ISA-L", "ISA-L-D", "Cerasure"))

    fig.check("LRC is slower than RS for DIALGA (extra local-parity stores)",
              all(tp(c, "DIALGA") < tp(c, "DIALGA_RS") for c in configs),
              " ".join(f"{tp(c,'DIALGA')/tp(c,'DIALGA_RS'):.2f}" for c in configs))
    narrow_gains = [_gain(tp(c, "DIALGA"), best_non_dialga(c))
                    for c in configs[:2]]
    fig.check("Non-wide LRC: DIALGA +24.3-32.7% over best other (band +10..+110%)",
              all(0.10 <= g <= 1.10 for g in narrow_gains),
              " ".join(f"{g:+.0%}" for g in narrow_gains))
    wide_gain = _gain(tp(configs[2], "DIALGA"), best_non_dialga(configs[2]))
    fig.check("Wide LRC: DIALGA wins (paper +35.2-37.8%)",
              wide_gain > 0.35, f"{wide_gain:+.0%}")
    rs_gain = _gain(tp(configs[0], "DIALGA_RS"),
                    ISAL(8, 4).run(Workload(k=8, m=4, block_bytes=1024,
                                            data_bytes_per_thread=vol), HW).throughput_gbps)
    lrc_gain = narrow_gains[0]
    fig.check("LRC gain smaller than RS gain (higher store fraction)",
              lrc_gain <= rs_gain + 0.05,
              f"lrc {lrc_gain:+.0%} vs rs {rs_gain:+.0%}")
    fig.notes.append(
        "Wide-stripe LRC gain exceeds the paper's +37.8% for the same "
        "reason as Fig. 10's wide stripes (fuller software-prefetch "
        "coverage in simulation).")
    return fig


def fig17(volume: int | None = None) -> FigureResult:
    """Fig. 17: cache miss cycles per load, normalized to ISA-L."""
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "fig17", "Cache miss (stall) cycles per load, normalized to ISA-L",
        ["ISA-L", "ISA-L-D", "DIALGA"])
    results = {}
    for tag, k in (("RS(12,8)", 8), ("RS(28,24)", 24), ("RS(52,48)", 48)):
        wl = Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)
        res = {
            "ISA-L": ISAL(k, 4).run(wl, HW),
            "ISA-L-D": ISALDecompose(k, 4).run(wl, HW),
            "DIALGA": DialgaEncoder(k, 4).run(wl, HW),
        }
        base = res["ISA-L"].sim.counters.avg_load_latency_ns
        results[tag] = {n: r.sim.counters.avg_load_latency_ns / base
                        for n, r in res.items()}
        fig.add_row(tag, **results[tag])
    fig.check("RS(12,8): DIALGA ~halves miss cycles (band 0.25-0.70 of ISA-L)",
              0.25 <= results["RS(12,8)"]["DIALGA"] <= 0.70,
              f"{results['RS(12,8)']['DIALGA']:.2f}")
    redn = 1 - results["RS(52,48)"]["DIALGA"] / results["RS(52,48)"]["ISA-L-D"]
    fig.check("RS(52,48): DIALGA cuts >= 25% vs decompose (paper 35.3%)",
              redn >= 0.25, f"{redn:.0%}")
    fig.check("RS(28,24): smallest reduction (HW prefetcher relatively "
              "efficient there)",
              results["RS(28,24)"]["DIALGA"] >= results["RS(12,8)"]["DIALGA"] - 0.25,
              f"{results['RS(28,24)']['DIALGA']:.2f}")
    return fig


def fig18(volume: int | None = None) -> FigureResult:
    """Fig. 18: ablation breakdown Vanilla -> +SW -> +HW -> +BF."""
    vol = volume or scaled(160 * 1024)
    fig = FigureResult(
        "fig18", "Breakdown of 1KB encoding throughput (single thread)",
        ["Vanilla", "+SW", "+HW", "+BF"])
    results = {}
    for tag, k in (("RS(12,8)", 8), ("RS(28,24)", 24), ("RS(52,48)", 48)):
        wl = Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)
        # Use the distance DIALGA actually runs (hill-climbed from the
        # d=k initialization, §4.1.2) so each +stage reflects the real
        # increments of the full system.
        enc = DialgaEncoder(k, 4, config=DialgaConfig(use_probe=True))
        d = enc.coordinator_for(wl, HW).policy.sw_distance or k
        variants = {
            "Vanilla": Policy(hw_prefetch=False, sw_distance=None),
            "+SW": Policy(hw_prefetch=False, sw_distance=d),
            "+HW": Policy(hw_prefetch=True, sw_distance=d),
            "+BF": Policy(hw_prefetch=True, sw_distance=d,
                          bf_first_distance=2 * d),
        }
        row = {}
        for name, pol in variants.items():
            enc = DialgaEncoder(k, 4, config=DialgaConfig(policy_override=pol))
            row[name] = enc.run(wl, HW).throughput_gbps
        results[tag] = row
        fig.add_row(tag, **row)
    sw_gains = [_gain(results[t]["+SW"], results[t]["Vanilla"]) for t in results]
    hw_gains = [_gain(results[t]["+HW"], results[t]["+SW"]) for t in results]
    bf_gains = [_gain(results[t]["+BF"], results[t]["+HW"]) for t in results]
    fig.check("+SW: pipelined software prefetch is the largest contribution "
              "(paper +29.4-48.6%)",
              all(g >= 0.15 and g > max(h, b) for g, h, b
                  in zip(sw_gains, hw_gains, bf_gains)),
              " ".join(f"{g:+.0%}" for g in sw_gains))
    fig.check("+HW: hardware prefetching adds a small extra gain on top "
              "(paper +8.6-15.9%; band -5..+35%)",
              all(-0.05 <= g <= 0.35 for g in hw_gains),
              " ".join(f"{g:+.0%}" for g in hw_gains))
    fig.check("+BF: buffer-friendly prefetch adds a moderate gain on "
              "medium/wide stripes (paper +18.3-29.3%; band +3..+60%)",
              all(0.03 <= g <= 0.60 for g in bf_gains[1:]),
              " ".join(f"{g:+.0%}" for g in bf_gains))
    fig.check("Full stack is far above Vanilla (cumulative >= +60%)",
              all(results[t]["+BF"] >= 1.6 * results[t]["Vanilla"]
                  for t in results))
    fig.check("BF benefit smaller on the narrowest stripe (spatial "
              "locality already good)",
              bf_gains[0] <= max(bf_gains) + 1e-9,
              " ".join(f"{g:+.0%}" for g in bf_gains))
    fig.notes.append(
        "+SW contributes more than the paper's +29-49% (simulated software "
        "prefetch achieves fuller coverage). On the narrowest stripe the "
        "forced BF split can go slightly negative in our model (its long-"
        "distance prefetches suppress streamer training) — which is why "
        "the coordinator probes BF on/off and backs off to uniform there; "
        "the paper likewise reports BF helping narrow stripes least.")
    return fig


def fig19(volume: int | None = None) -> FigureResult:
    """Fig. 19: read traffic by layer under low/high pressure."""
    vol = volume or scaled(64 * 1024)
    fig = FigureResult(
        "fig19", "Read traffic at encode/controller/media layers (RS(28,24) 1KB)",
        ["ctrl_amp", "media_amp", "throughput_gbps"])
    k = 24
    rows = {}
    for tag, nt, lib in (("ISA-L/1t", 1, ISAL(k, 4)),
                         ("DIALGA/1t", 1, DialgaEncoder(k, 4)),
                         ("ISA-L/18t", 18, ISAL(k, 4)),
                         ("DIALGA/18t", 18, DialgaEncoder(k, 4))):
        wl = Workload(k=k, m=4, block_bytes=1024, nthreads=nt,
                      data_bytes_per_thread=vol)
        r = lib.run(wl, HW)
        rows[tag] = r
        fig.add_row(tag,
                    ctrl_amp=r.sim.counters.ctrl_read_amplification,
                    media_amp=r.sim.counters.media_read_amplification,
                    throughput_gbps=r.throughput_gbps)
    isal_lo = rows["ISA-L/1t"].sim.counters.media_read_amplification
    isal_hi = rows["ISA-L/18t"].sim.counters.media_read_amplification
    fig.check("ISA-L media amplification grows under pressure "
              "(paper: 22.3% -> 65.8%)",
              isal_hi > isal_lo + 0.15, f"{isal_lo:.2f} -> {isal_hi:.2f}")
    dialga_hi = rows["DIALGA/18t"].sim.counters.media_read_amplification
    redn = (isal_hi - dialga_hi) / max(1e-9, isal_hi - 1.0) if isal_hi > 1 else 0
    fig.check("DIALGA removes most high-pressure amplification (paper -76.7%)",
              dialga_hi < isal_hi and redn >= 0.5,
              f"isal {isal_hi:.2f} dialga {dialga_hi:.2f} (cut {redn:.0%})")
    dialga_lo = rows["DIALGA/1t"].sim.counters.media_read_amplification
    isal_lo_amp = rows["ISA-L/1t"].sim.counters.media_read_amplification
    fig.check("Low pressure: DIALGA trades extra read traffic for speed "
              "(software prefetches train the streamer, §5.9)",
              dialga_lo >= isal_lo_amp - 0.05 and dialga_lo >= 1.05,
              f"dialga {dialga_lo:.2f} vs isal {isal_lo_amp:.2f}")
    fig.check("DIALGA throughput advantage holds at 18 threads",
              rows["DIALGA/18t"].throughput_gbps > rows["ISA-L/18t"].throughput_gbps,
              f"{rows['DIALGA/18t'].throughput_gbps:.2f} vs "
              f"{rows['ISA-L/18t'].throughput_gbps:.2f}")
    return fig


ALL_FIGURES = {
    "fig03": fig03, "fig04": fig04, "fig05": fig05, "fig06": fig06,
    "fig07": fig07, "fig10": fig10, "fig11": fig11, "fig12": fig12,
    "fig13": fig13, "fig14": fig14, "fig15": fig15, "fig16": fig16,
    "fig17": fig17, "fig18": fig18, "fig19": fig19,
}
