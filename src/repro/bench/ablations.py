"""Ablation studies beyond the paper's figures.

These probe the design choices DESIGN.md calls out: how sensitive the
reproduced phenomena are to the stream-table capacity, the PM read
buffer size, the Eq. (1) distance cap, hill-climbed vs fixed prefetch
distances, and the shuffle mapping itself.
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.bench.runner import scaled
from repro.core import DialgaConfig, DialgaEncoder, Policy, eq1_max_distance
from repro.simulator import HardwareConfig, simulate
from repro.trace import IsalVariant, Workload, isal_trace

HW = HardwareConfig()


def _run(wl: Workload, hw: HardwareConfig, variant=IsalVariant()):
    traces = [isal_trace(wl, hw.cpu, variant, thread=t)
              for t in range(wl.nthreads)]
    return simulate(traces, hw)


def ablation_stream_table(volume: int | None = None) -> FigureResult:
    """The Obs.-3 cliff follows the stream-table capacity (16/32/64).

    The paper observes 32 unidirectional streams on Cascade Lake and 64
    on 3rd-gen Xeon; the throughput cliff must track the knob.
    """
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "ablation_stream_table",
        "Stripe-width cliff vs stream-table capacity (4KB blocks, m=4)",
        ["cap16_gbps", "cap32_gbps", "cap64_gbps"])
    ks = (8, 16, 24, 32, 48, 64, 80)
    series = {}
    for k in ks:
        wl = Workload(k=k, m=4, block_bytes=4096, data_bytes_per_thread=vol)
        row = {}
        for cap in (16, 32, 64):
            hw = HW.with_prefetcher(max_streams=cap)
            row[f"cap{cap}_gbps"] = _run(wl, hw).throughput_gbps
        series[k] = row
        fig.add_row(f"k={k}", **row)
    fig.check("Capacity 16: cliff between k=16 and k=24",
              series[24]["cap16_gbps"] < 0.5 * series[16]["cap16_gbps"],
              f"{series[16]['cap16_gbps']:.2f} -> {series[24]['cap16_gbps']:.2f}")
    fig.check("Capacity 32: cliff between k=32 and k=48",
              series[48]["cap32_gbps"] < 0.5 * series[32]["cap32_gbps"]
              and series[32]["cap32_gbps"] > 0.9 * series[24]["cap32_gbps"],
              f"{series[32]['cap32_gbps']:.2f} -> {series[48]['cap32_gbps']:.2f}")
    fig.check("Capacity 64 (3rd-gen Xeon): survives k=48/64, dies at 80",
              series[64]["cap64_gbps"] > 0.5 * series[32]["cap64_gbps"]
              and series[80]["cap64_gbps"] < 0.5 * series[64]["cap64_gbps"],
              f"k=64:{series[64]['cap64_gbps']:.2f} k=80:{series[80]['cap64_gbps']:.2f}")
    return fig


def ablation_read_buffer(volume: int | None = None) -> FigureResult:
    """Thrash onset tracks the read-buffer capacity (48/96/192 KB)."""
    vol = volume or scaled(48 * 1024)
    fig = FigureResult(
        "ablation_read_buffer",
        "RS(28,24) 1KB prefetch-off scalability vs PM read-buffer size",
        ["buf48_gbps", "buf96_gbps", "buf192_gbps"])
    threads = (4, 8, 12, 16, 18)
    series = {}
    for nt in threads:
        wl = Workload(k=24, m=4, block_bytes=1024, nthreads=nt,
                      data_bytes_per_thread=vol)
        row = {}
        for kb in (48, 96, 192):
            hw = HW.with_pm(read_buffer_kb=kb).with_prefetcher(enabled=False)
            row[f"buf{kb}_gbps"] = _run(wl, hw).throughput_gbps
        series[nt] = row
        fig.add_row(f"{nt}t", **row)
    # 48 KB = 192 XPLines: thrash beyond 192/24 = 8 threads.
    fig.check("48KB buffer: collapse by 12 threads (192/24 = 8-thread bound)",
              series[12]["buf48_gbps"] < 0.7 * series[8]["buf48_gbps"],
              f"8t={series[8]['buf48_gbps']:.2f} 12t={series[12]['buf48_gbps']:.2f}")
    fig.check("96KB buffer: holds to 16 threads, degrades at 18",
              series[16]["buf96_gbps"] > 0.9 * series[12]["buf96_gbps"]
              and series[18]["buf96_gbps"] < series[16]["buf96_gbps"],
              f"16t={series[16]['buf96_gbps']:.2f} 18t={series[18]['buf96_gbps']:.2f}")
    fig.check("192KB buffer: no collapse through 18 threads",
              series[18]["buf192_gbps"] > 0.85 * series[16]["buf192_gbps"],
              f"16t={series[16]['buf192_gbps']:.2f} 18t={series[18]['buf192_gbps']:.2f}")
    return fig


def ablation_eq1_cap(volume: int | None = None) -> FigureResult:
    """The Eq. (1)-governed high-pressure policy vs not adapting at all.

    At 16 threads the read-buffer budget (Eq. 1) allows only one XPLine
    row of prefetch lead per stream; DIALGA's high-pressure policy
    (capped distance, XPLine expansion, streamer shuffled off) must beat
    the unadapted low-pressure policy (long buffer-friendly distances,
    streamer on) — the switch Fig. 13's stability comes from.
    """
    vol = volume or scaled(48 * 1024)
    fig = FigureResult(
        "ablation_eq1_cap",
        "Eq. (1)-capped high-pressure policy vs unadapted low-pressure "
        "policy (RS(28,24) 1KB, 16 threads)",
        ["high_pressure_gbps", "unadapted_gbps",
         "high_pressure_amp", "unadapted_amp"])
    wl = Workload(k=24, m=4, block_bytes=1024, nthreads=16,
                  data_bytes_per_thread=vol)
    cap = eq1_max_distance(16, 24, 4, HW.pm)
    hp = DialgaEncoder(24, 4, config=DialgaConfig(policy_override=Policy(
        hw_prefetch=False, sw_distance=min(24, cap),
        xpline_granularity=True))).run(wl, HW)
    # What the (tuned) low-pressure policy would do if never adapted:
    # streamer on, long buffer-friendly distances.
    lp = DialgaEncoder(24, 4, config=DialgaConfig(policy_override=Policy(
        hw_prefetch=True, sw_distance=28,
        bf_first_distance=56))).run(wl, HW)
    fig.add_row("16t", high_pressure_gbps=hp.throughput_gbps,
                unadapted_gbps=lp.throughput_gbps,
                high_pressure_amp=hp.sim.counters.media_read_amplification,
                unadapted_amp=lp.sim.counters.media_read_amplification)
    fig.check("High-pressure policy outperforms the unadapted policy at "
              "16 threads",
              hp.throughput_gbps > lp.throughput_gbps,
              f"{hp.throughput_gbps:.2f} vs {lp.throughput_gbps:.2f}")
    fig.check("Unadapted prefetching thrashes the read buffer "
              "(higher media amplification)",
              lp.sim.counters.media_read_amplification
              > hp.sim.counters.media_read_amplification + 0.1,
              f"{lp.sim.counters.media_read_amplification:.2f} vs "
              f"{hp.sim.counters.media_read_amplification:.2f}")
    return fig


def ablation_hillclimb(volume: int | None = None) -> FigureResult:
    """Hill-climbed distance vs the d=k initialization (single thread)."""
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "ablation_hillclimb",
        "Hill-climbed vs fixed (d=k) software-prefetch distance",
        ["fixed_gbps", "climbed_gbps", "climbed_d"])
    rows = {}
    for k in (8, 24, 48):
        wl = Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)
        fixed = DialgaEncoder(
            k, 4, config=DialgaConfig(use_probe=False)).run(wl, HW)
        enc = DialgaEncoder(k, 4, config=DialgaConfig(use_probe=True))
        climbed = enc.run(wl, HW)
        d = enc.policy_log[-1].sw_distance
        rows[k] = (fixed.throughput_gbps, climbed.throughput_gbps, d)
        fig.add_row(f"k={k}", fixed_gbps=fixed.throughput_gbps,
                    climbed_gbps=climbed.throughput_gbps, climbed_d=d)
    fig.check("Hill climbing never loses to the d=k initialization",
              all(c >= f * 0.999 for f, c, _ in rows.values()),
              " ".join(f"{c/f:.2f}x" for f, c, _ in rows.values()))
    fig.check("Hill climbing finds d > k somewhere (PM latency needs lead)",
              any(d > k for k, (_, _, d) in rows.items()))
    return fig


def ablation_shuffle(volume: int | None = None) -> FigureResult:
    """The shuffle mapping acts as a hardware-prefetcher off switch."""
    vol = volume or scaled(128 * 1024)
    fig = FigureResult(
        "ablation_shuffle",
        "Shuffle mapping vs BIOS-style prefetcher disable (RS(28,24) 1KB)",
        ["hw_on_gbps", "shuffle_gbps", "bios_off_gbps", "shuffle_hwpf"])
    wl = Workload(k=24, m=4, block_bytes=1024, data_bytes_per_thread=vol)
    on = _run(wl, HW)
    shuffle = _run(wl, HW, IsalVariant(shuffle=True))
    bios = _run(wl, HW.with_prefetcher(enabled=False))
    fig.add_row("RS(28,24)", hw_on_gbps=on.throughput_gbps,
                shuffle_gbps=shuffle.throughput_gbps,
                bios_off_gbps=bios.throughput_gbps,
                shuffle_hwpf=shuffle.counters.hwpf_issued)
    fig.check("Shuffle issues (almost) no hardware prefetches",
              shuffle.counters.hwpf_issued < 0.02 * on.counters.hwpf_issued,
              f"{shuffle.counters.hwpf_issued} vs {on.counters.hwpf_issued}")
    fig.check("Shuffle matches the privileged BIOS/MSR disable within 10%",
              abs(shuffle.throughput_gbps - bios.throughput_gbps)
              <= 0.10 * bios.throughput_gbps,
              f"{shuffle.throughput_gbps:.2f} vs {bios.throughput_gbps:.2f}")
    return fig


def ablation_generality(volume: int | None = None) -> FigureResult:
    """§6: DIALGA's mechanisms generalize to future PM devices.

    A CMM-H-style CXL memory-semantic SSD shares the characteristics
    DIALGA targets (high miss latency, internal-granularity implicit
    loads, on-device buffering), so the DIALGA-over-ISA-L advantage
    must persist there; a 3rd-gen Xeon (64-stream streamer) merely
    moves the wide-stripe cliff.
    """
    vol = volume or scaled(128 * 1024)
    from repro.libs import ISAL
    from repro.simulator.presets import get_preset
    fig = FigureResult(
        "ablation_generality",
        "DIALGA vs ISA-L across device presets (§6 generality)",
        ["isal_gbps", "dialga_gbps", "dialga_gain"])
    rows = {}
    for preset, k in (("cascade_lake_optane", 24), ("cxl_cmmh", 24),
                      ("icelake_optane", 48)):
        hw = get_preset(preset)
        wl = Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)
        isal = ISAL(k, 4).run(wl, hw).throughput_gbps
        dialga = DialgaEncoder(k, 4).run(wl, hw).throughput_gbps
        rows[preset] = (isal, dialga)
        fig.add_row(f"{preset}/k={k}", isal_gbps=isal, dialga_gbps=dialga,
                    dialga_gain=dialga / isal - 1)
    fig.check("DIALGA keeps a significant edge on the CXL/CMM-H preset",
              rows["cxl_cmmh"][1] > 1.25 * rows["cxl_cmmh"][0],
              f"{rows['cxl_cmmh'][1]:.2f} vs {rows['cxl_cmmh'][0]:.2f}")
    fig.check("64-stream streamer (3rd-gen Xeon) keeps ISA-L alive at k=48 "
              "but DIALGA still wins",
              rows["icelake_optane"][0] > 1.5  # no cliff at k=48
              and rows["icelake_optane"][1] > rows["icelake_optane"][0],
              f"isal {rows['icelake_optane'][0]:.2f} "
              f"dialga {rows['icelake_optane'][1]:.2f}")
    return fig


def ablation_vast_width(volume: int | None = None) -> FigureResult:
    """Production-scale wide stripes, up to VAST's k=154.

    The paper motivates wide stripes with VAST (k = 154) and notes even
    the 64-stream 3rd-gen streamer "remains insufficient for wide
    stripe encoding". Here the full stack runs at that width: ISA-L
    stays at its no-prefetch floor, decomposition recovers some, DIALGA
    keeps scaling because software prefetching tracks no streams.
    """
    vol = volume or scaled(192 * 1024)
    from repro.libs import ISAL, ISALDecompose
    fig = FigureResult(
        "ablation_vast_width",
        "Production stripe widths up to VAST's k=154 (1KB blocks, m=4)",
        ["ISA-L", "ISA-L-D", "DIALGA"])
    rows = {}
    for k in (48, 96, 154):
        wl = Workload(k=k, m=4, block_bytes=1024, data_bytes_per_thread=vol)
        res = {
            "ISA-L": ISAL(k, 4).run(wl, HW).throughput_gbps,
            "ISA-L-D": ISALDecompose(k, 4).run(wl, HW).throughput_gbps,
            "DIALGA": DialgaEncoder(k, 4).run(wl, HW).throughput_gbps,
        }
        rows[k] = res
        fig.add_row(f"k={k}", **res)
    fig.check("ISA-L is pinned at the no-prefetch floor at every width",
              max(rows[k]["ISA-L"] for k in rows)
              < 1.3 * min(rows[k]["ISA-L"] for k in rows),
              " ".join(f"{rows[k]['ISA-L']:.2f}" for k in rows))
    fig.check("DIALGA >= 2.5x ISA-L at k=154",
              rows[154]["DIALGA"] >= 2.5 * rows[154]["ISA-L"],
              f"{rows[154]['DIALGA']:.2f} vs {rows[154]['ISA-L']:.2f}")
    fig.check("DIALGA beats decomposition at every width",
              all(rows[k]["DIALGA"] > rows[k]["ISA-L-D"] for k in rows),
              " ".join(f"{rows[k]['DIALGA']/rows[k]['ISA-L-D']:.2f}x"
                       for k in rows))
    fig.check("DIALGA does not degrade from k=48 to k=154",
              rows[154]["DIALGA"] >= 0.9 * rows[48]["DIALGA"],
              f"{rows[48]['DIALGA']:.2f} -> {rows[154]['DIALGA']:.2f}")
    return fig


def extension_update_path(volume: int | None = None) -> FigureResult:
    """Extension: DIALGA's prefetching on the parity-*update* path.

    The paper's predecessor (CodePM) targets update writes; DIALGA
    targets loads. The delta-update kernel reads 1+m streams (old data
    + parities), so pipelined software prefetching should transfer.
    Not a paper figure — an extension experiment.
    """
    vol = volume or scaled(96 * 1024)
    from repro.trace.update_gen import update_trace
    fig = FigureResult(
        "extension_update_path",
        "Parity-update (small-write) bandwidth with DIALGA-style prefetch",
        ["plain_gbps", "prefetched_gbps", "gain"])
    rows = {}
    for k, m in ((8, 4), (24, 4)):
        wl = Workload(k=k, m=m, block_bytes=1024, data_bytes_per_thread=vol)
        plain = simulate([update_trace(wl, HW.cpu)], HW)
        d = (1 + m) * 4
        pf = simulate([update_trace(wl, HW.cpu, sw_prefetch_distance=d)], HW)
        gain = pf.throughput_gbps / plain.throughput_gbps - 1
        rows[(k, m)] = gain
        fig.add_row(f"RS({k + m},{k})", plain_gbps=plain.throughput_gbps,
                    prefetched_gbps=pf.throughput_gbps, gain=gain)
    fig.check("Software prefetching accelerates updates by > 20%",
              all(g > 0.20 for g in rows.values()),
              " ".join(f"{g:+.0%}" for g in rows.values()))
    fig.check("Update gain is geometry-insensitive (narrow access pattern)",
              abs(rows[(8, 4)] - rows[(24, 4)]) < 0.5,
              f"{rows[(8, 4)]:+.0%} vs {rows[(24, 4)]:+.0%}")
    return fig


def extension_gain_heatmap(volume: int | None = None) -> FigureResult:
    """Extension: DIALGA's gain over ISA-L across the (k, block) plane.

    A compact map of where adaptive prefetcher scheduling pays: small
    blocks and wide stripes (where the streamer fails) versus 4KB
    blocks at moderate width (where it doesn't). Not a paper figure —
    it interpolates Figs. 10 and 12 into one picture.
    """
    vol = volume or scaled(96 * 1024)
    from repro.libs import ISAL
    fig = FigureResult(
        "extension_gain_heatmap",
        "DIALGA speedup over ISA-L across stripe width x block size",
        ["b256", "b1k", "b4k"])
    gains = {}
    for k in (8, 24, 48):
        row = {}
        for bs, col in ((256, "b256"), (1024, "b1k"), (4096, "b4k")):
            wl = Workload(k=k, m=4, block_bytes=bs,
                          data_bytes_per_thread=vol)
            isal = ISAL(k, 4).run(wl, HW).throughput_gbps
            dialga = DialgaEncoder(k, 4).run(wl, HW).throughput_gbps
            row[col] = dialga / isal
        gains[k] = row
        fig.add_row(f"k={k}", **row)
    fig.check("Within streamer capacity (k <= 32): gains grow as blocks "
              "shrink (streamer confidence fades)",
              all(gains[k]["b256"] > gains[k]["b4k"] for k in (8, 24)),
              " ".join(f"k={k}:{gains[k]['b256']:.1f}x vs {gains[k]['b4k']:.1f}x"
                       for k in (8, 24)))
    fig.check("Gains grow as stripes widen (streamer capacity fades)",
              gains[48]["b1k"] > gains[8]["b1k"],
              f"{gains[8]['b1k']:.1f}x -> {gains[48]['b1k']:.1f}x")
    fig.check("DIALGA never loses anywhere on the plane",
              all(g >= 1.0 for row in gains.values() for g in row.values()),
              f"min {min(g for row in gains.values() for g in row.values()):.2f}x")
    return fig


ALL_ABLATIONS = {
    "ablation_stream_table": ablation_stream_table,
    "ablation_read_buffer": ablation_read_buffer,
    "ablation_eq1_cap": ablation_eq1_cap,
    "ablation_hillclimb": ablation_hillclimb,
    "ablation_shuffle": ablation_shuffle,
    "ablation_generality": ablation_generality,
    "ablation_vast_width": ablation_vast_width,
    "extension_update_path": extension_update_path,
    "extension_gain_heatmap": extension_gain_heatmap,
}
