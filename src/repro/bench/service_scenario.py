"""Service-layer scenario: concurrent clients against the EC service.

Not a paper figure — a systems scenario built on the paper's Eq. (1)
read-buffer bound (§4.2.1). A fleet of simulated clients pushes put
traffic through :class:`~repro.service.service.ErasureCodingService`
while a fault injector fires transient device hiccups and one device is
lost outright before the read-back phase. The shape checks pin the
service-layer guarantees:

* admission rejections happen **only** while the Eq. (1) thread cap is
  saturated (``rejected_below_cap`` stays 0);
* every injected transient fault is absorbed by retry — all admitted
  requests complete;
* reads after the device loss are served **degraded** through RS
  reconstruction rather than failing.
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.pmstore import FaultInjector
from repro.service import ErasureCodingService, ServiceConfig, get_wave, put_wave


def service_scenario(volume: int | None = None) -> FigureResult:
    """Concurrent EC service under faults: Eq. (1) admission + retries.

    ``volume`` overrides per-object payload bytes (default 1 KiB).
    """
    payload = volume or 1024
    fig = FigureResult(
        "service_scenario",
        "EC service under concurrent traffic, transient faults and one "
        "device loss (RS(12,8) 1KB)",
        ["completed", "rejected", "below_cap", "retries", "faults",
         "degraded", "p99_put_us", "peak_threads"])
    cap_detail = []
    for nclients in (8, 16, 32, 48):
        svc = ErasureCodingService(
            8, 4, block_bytes=1024,
            config=ServiceConfig(max_queue_depth=12, max_batch=8))
        inj = FaultInjector(svc.store, seed=nclients)
        svc.store.add_fault_hook(inj.transient_hook(
            rate=0.25, max_failures_per_key=2))
        svc.submit_many(put_wave(nclients, 2, payload_bytes=payload,
                                 mean_gap_ns=2_000.0, seed=nclients))
        put_results = svc.drain()
        stored = {r.request.key for r in put_results if r.ok}
        svc.store.mark_device_lost(1)
        gets = [r for r in get_wave(nclients, 2, start_ns=svc.clock_ns + 1e4,
                                    seed=nclients + 1)
                if r.key in stored]
        svc.submit_many(gets)
        get_results = svc.drain()
        mx = svc.metrics
        fig.add_row(
            f"{nclients} clients",
            completed=mx.count("completed"),
            rejected=mx.count("admission_rejected"),
            below_cap=mx.count("rejected_below_cap"),
            retries=mx.count("retries"),
            faults=mx.count("faults_transient"),
            degraded=mx.count("degraded_reads"),
            p99_put_us=mx.latency["put"].percentile(99) / 1e3,
            peak_threads=svc.admission.peak_threads)
        cap_detail.append(
            f"{nclients}c: rej={mx.count('admission_rejected')} "
            f"below_cap={mx.count('rejected_below_cap')}")
        fig.check(
            f"{nclients} clients: every admitted request completes "
            "(transient faults absorbed by retry)",
            all(r.ok for r in put_results if r.status.value != "rejected")
            and all(r.ok for r in get_results),
            f"retries={mx.count('retries')} faults="
            f"{mx.count('faults_transient')}")
        # Only objects whose blocks live on the lost device degrade
        # (small objects may not touch every device in the stripe).
        expect_degraded = sum(svc.store.is_degraded(k) for k in stored)
        fig.check(
            f"{nclients} clients: reads hitting the lost device are "
            "reconstructed (degraded), never failed",
            mx.count("degraded_reads") == expect_degraded > 0,
            f"degraded={mx.count('degraded_reads')}/{len(get_results)}")
    fig.check(
        "Admission rejections occur only while the Eq. (1) thread cap "
        "is saturated",
        all(vals["below_cap"] == 0 for _, vals in fig.rows),
        "; ".join(cap_detail))
    fig.notes.append(
        "Eq. (1) cap for RS(12,8) on the default testbed: "
        f"{ErasureCodingService(8, 4).admission.capacity_threads} threads "
        "(nthreads * k * 256B * ceil(d_max/(k+m)) <= 96KB read buffer).")
    return fig


ALL_SCENARIOS = {
    "service": service_scenario,
}
