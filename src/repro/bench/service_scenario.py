"""Service-layer scenario: concurrent clients against the EC service.

Not a paper figure — a systems scenario built on the paper's Eq. (1)
read-buffer bound (§4.2.1). A fleet of simulated clients pushes put
traffic through :class:`~repro.service.service.ErasureCodingService`
while a fault injector fires transient device hiccups and one device is
lost outright before the read-back phase. The shape checks pin the
service-layer guarantees:

* admission rejections happen **only** while the Eq. (1) thread cap is
  saturated (``rejected_below_cap`` stays 0);
* every injected transient fault is absorbed by retry — all admitted
  requests complete;
* reads after the device loss are served **degraded** through RS
  reconstruction rather than failing.

The whole scenario records onto a :class:`repro.obs.Tracer` (the
ambient one under ``--trace``, a private one otherwise): request
lifecycle spans yield the per-stage latency breakdown, and the closing
**pressure burst** — a 10-thread adaptive encode job big enough to
thrash the read buffer — drives the coordinator through a live
``PolicySwitch`` on the same timeline.
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.obs import Tracer, get_tracer, service_stage_breakdown, use_tracer
from repro.pmstore import FaultInjector
from repro.service import ErasureCodingService, ServiceConfig, get_wave, put_wave
from repro.service.metrics import LatencyHistogram
from repro.service.request import Request


def _client_sweep(fig: FigureResult, payload: int) -> list[str]:
    """The original fault/degraded-read sweep; returns cap details."""
    cap_detail = []
    for nclients in (8, 16, 32, 48):
        svc = ErasureCodingService(
            8, 4, block_bytes=1024,
            config=ServiceConfig(max_queue_depth=12, max_batch=8))
        inj = FaultInjector(svc.store, seed=nclients)
        svc.store.add_fault_hook(inj.transient_hook(
            rate=0.25, max_failures_per_key=2))
        svc.submit_many(put_wave(nclients, 2, payload_bytes=payload,
                                 mean_gap_ns=2_000.0, seed=nclients))
        put_results = svc.drain()
        stored = {r.request.key for r in put_results if r.ok}
        svc.store.mark_device_lost(1)
        gets = [r for r in get_wave(nclients, 2, start_ns=svc.clock_ns + 1e4,
                                    seed=nclients + 1)
                if r.key in stored]
        svc.submit_many(gets)
        get_results = svc.drain()
        mx = svc.metrics
        put_lat = mx.latency["put"]
        fig.add_row(
            f"{nclients} clients",
            completed=mx.count("completed"),
            rejected=mx.count("admission_rejected"),
            below_cap=mx.count("rejected_below_cap"),
            retries=mx.count("retries"),
            faults=mx.count("faults_transient"),
            degraded=mx.count("degraded_reads"),
            p50_put_us=put_lat.p50 / 1e3,
            p95_put_us=put_lat.p95 / 1e3,
            p999_put_us=put_lat.p999 / 1e3,
            peak_threads=svc.admission.peak_threads)
        cap_detail.append(
            f"{nclients}c: rej={mx.count('admission_rejected')} "
            f"below_cap={mx.count('rejected_below_cap')}")
        fig.check(
            f"{nclients} clients: every admitted request completes "
            "(transient faults absorbed by retry)",
            all(r.ok for r in put_results if r.status.value != "rejected")
            and all(r.ok for r in get_results),
            f"retries={mx.count('retries')} faults="
            f"{mx.count('faults_transient')}")
        # Only objects whose blocks live on the lost device degrade
        # (small objects may not touch every device in the stripe).
        expect_degraded = sum(svc.store.is_degraded(k) for k in stored)
        fig.check(
            f"{nclients} clients: reads hitting the lost device are "
            "reconstructed (degraded), never failed",
            mx.count("degraded_reads") == expect_degraded > 0,
            f"degraded={mx.count('degraded_reads')}/{len(get_results)}")
    return cap_detail


def _pressure_burst(fig: FigureResult) -> None:
    """10-thread adaptive encode burst: the Eq.-(1)-adjacent regime
    where the coordinator switches policy mid-job, on the trace."""
    svc = ErasureCodingService(
        8, 4, block_bytes=1024,
        library=DialgaEncoder(8, 4, config=DialgaConfig(
            use_probe=False, chunks=6)),
        config=ServiceConfig(threads_per_job=10, max_batch=4,
                             max_queue_depth=12))
    svc.submit(Request.encode(stripes=160, arrival_ns=0.0))
    svc.submit_many(put_wave(4, 2, payload_bytes=1024,
                             mean_gap_ns=2_000.0, seed=5))
    results = svc.drain()
    mx = svc.metrics
    enc_lat = mx.latency["encode"]
    fig.add_row(
        "pressure burst",
        completed=mx.count("completed"),
        rejected=mx.count("admission_rejected"),
        below_cap=mx.count("rejected_below_cap"),
        retries=mx.count("retries"),
        faults=mx.count("faults_transient"),
        degraded=mx.count("degraded_reads"),
        p50_put_us=mx.latency["put"].p50 / 1e3,
        p95_put_us=mx.latency["put"].p95 / 1e3,
        p999_put_us=enc_lat.p999 / 1e3,
        peak_threads=svc.admission.peak_threads)
    fig.check(
        "Pressure burst: the 10-thread adaptive encode drives a live "
        "coordinator policy switch (visible as a trace event)",
        mx.count("policy_switches") >= 1
        and all(r.ok for r in results),
        f"policy_switches={mx.count('policy_switches')}")


def _stage_notes(fig: FigureResult, tracer) -> None:
    """Per-stage latency breakdown recovered from request spans."""
    stages = service_stage_breakdown(tracer)
    for stage in ("queue_wait", "execute", "total"):
        values = stages.get(stage, [])
        if not values:
            continue
        hist = LatencyHistogram()
        for v in values:
            hist.record(v)
        fig.notes.append(
            f"stage {stage}: n={hist.count} mean={hist.mean_ns / 1e3:.1f}us "
            f"p50={hist.p50 / 1e3:.1f}us p95={hist.p95 / 1e3:.1f}us "
            f"p999={hist.p999 / 1e3:.1f}us (from request spans)")
    fig.check(
        "Request spans decompose every completed request into "
        "queue-wait + execute stages",
        bool(stages.get("total"))
        and len(stages["queue_wait"]) == len(stages["execute"])
        == len(stages["total"]),
        f"spans={len(stages.get('total', []))}")


def service_scenario(volume: int | None = None) -> FigureResult:
    """Concurrent EC service under faults: Eq. (1) admission + retries.

    ``volume`` overrides per-object payload bytes (default 1 KiB).
    """
    payload = volume or 1024
    fig = FigureResult(
        "service_scenario",
        "EC service under concurrent traffic, transient faults and one "
        "device loss (RS(12,8) 1KB)",
        ["completed", "rejected", "below_cap", "retries", "faults",
         "degraded", "p50_put_us", "p95_put_us", "p999_put_us",
         "peak_threads"])
    ambient = get_tracer()
    tracer = ambient if ambient.enabled else Tracer("service_scenario")
    with use_tracer(tracer):
        cap_detail = _client_sweep(fig, payload)
        _pressure_burst(fig)
    fig.check(
        "Admission rejections occur only while the Eq. (1) thread cap "
        "is saturated",
        all(vals["below_cap"] == 0 for _, vals in fig.rows),
        "; ".join(cap_detail))
    _stage_notes(fig, tracer)
    fig.notes.append(
        "Eq. (1) cap for RS(12,8) on the default testbed: "
        f"{ErasureCodingService(8, 4).admission.capacity_threads} threads "
        "(nthreads * k * 256B * ceil(d_max/(k+m)) <= 96KB read buffer).")
    return fig


ALL_SCENARIOS = {
    "service": service_scenario,
}
