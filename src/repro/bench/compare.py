"""One-call library comparison — the README's "which library should I
use for this workload" entry point.

>>> from repro.bench.compare import compare_libraries
>>> from repro import Workload
>>> table = compare_libraries(Workload(k=8, m=4, block_bytes=1024))
>>> print(table)                                    # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import run_libraries, standard_libraries
from repro.libs.base import LibraryResult
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


@dataclass
class Comparison:
    """Result of :func:`compare_libraries`."""

    workload: Workload
    results: dict[str, LibraryResult | None]

    @property
    def winner(self) -> str:
        """Fastest library for this workload."""
        best = max((r.throughput_gbps, n) for n, r in self.results.items()
                   if r is not None)
        return best[1]

    def speedup_over(self, baseline: str = "ISA-L") -> dict[str, float | None]:
        """Throughput of each library relative to ``baseline``."""
        base = self.results.get(baseline)
        if base is None:
            raise ValueError(f"baseline {baseline!r} missing from results")
        return {
            n: (r.throughput_gbps / base.throughput_gbps if r else None)
            for n, r in self.results.items()
        }

    def __str__(self) -> str:
        lines = [f"workload: k={self.workload.k} m={self.workload.m} "
                 f"block={self.workload.block_bytes}B "
                 f"threads={self.workload.nthreads} op={self.workload.op}"]
        width = max(len(n) for n in self.results)
        for name, r in sorted(self.results.items(),
                              key=lambda kv: -(kv[1].throughput_gbps if kv[1] else -1)):
            if r is None:
                lines.append(f"  {name:<{width}}     n/a  (unsupported)")
                continue
            mark = "  <- winner" if name == self.winner else ""
            amp = r.sim.counters.media_read_amplification
            lines.append(f"  {name:<{width}}  {r.throughput_gbps:6.2f} GB/s  "
                         f"media x{amp:.2f}{mark}")
        return "\n".join(lines)


def compare_libraries(wl: Workload, hw: HardwareConfig | None = None,
                      include=("ISA-L", "ISA-L-D", "Zerasure", "Cerasure",
                               "DIALGA")) -> Comparison:
    """Run the paper's comparison set on one workload.

    Returns a :class:`Comparison` whose ``str()`` is a ready-to-print
    ranking table.
    """
    libs = standard_libraries(wl.k, wl.m, include=include)
    return Comparison(workload=wl, results=run_libraries(wl, libs, hw))
