"""Result containers and table rendering for figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field


def fmt_value(v) -> str:
    """Render one table cell."""
    if v is None:
        return "n/a"
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


@dataclass
class Check:
    """One paper-shape acceptance check.

    ``description`` states the paper's claim; ``passed`` whether the
    measured series reproduces it; ``detail`` the measured numbers.
    """

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" [{self.detail}]" if self.detail else ""
        return f"  [{mark}] {self.description}{suffix}"


@dataclass
class FigureResult:
    """Measured reproduction of one paper figure."""

    fig_id: str
    title: str
    columns: list[str]
    rows: list[tuple[str, dict]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, **values) -> None:
        """Append one sweep point."""
        self.rows.append((label, values))

    def check(self, description: str, passed: bool, detail: str = "") -> None:
        """Record one shape check."""
        self.checks.append(Check(description, bool(passed), detail))

    def value(self, label: str, column: str):
        """Look up one cell (None when missing)."""
        for lab, vals in self.rows:
            if lab == label:
                return vals.get(column)
        raise KeyError(f"no row {label!r} in {self.fig_id}")

    def series(self, column: str) -> list:
        """One column across all rows (missing cells -> None)."""
        return [vals.get(column) for _, vals in self.rows]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def pass_fraction(self) -> float:
        return (sum(c.passed for c in self.checks) / len(self.checks)
                if self.checks else 1.0)

    def table_str(self) -> str:
        """Fixed-width table of the measured series."""
        headers = ["point"] + self.columns
        cells = [[label] + [fmt_value(vals.get(c)) for c in self.columns]
                 for label, vals in self.rows]
        widths = [max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render(self) -> str:
        """Full report block: title, table, checks, notes."""
        out = [f"== {self.fig_id}: {self.title} ==", self.table_str(), ""]
        out += [str(c) for c in self.checks]
        for n in self.notes:
            out.append(f"  note: {n}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the CLI's --json)."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "columns": self.columns,
            "rows": [{"point": label, **values} for label, values in self.rows],
            "checks": [
                {"description": c.description, "passed": c.passed,
                 "detail": c.detail}
                for c in self.checks
            ],
            "notes": list(self.notes),
        }

    def history_metrics(self) -> dict:
        """Gateable numbers for the ``BENCH_history.jsonl`` ledger.

        Column means across rows (only cells that are plain numbers,
        skipping bools) plus the shape-check ``pass_fraction`` — the
        regression gate in :mod:`repro.obs.regress` compares these
        against each experiment's rolling baseline.
        """
        metrics: dict = {"pass_fraction": self.pass_fraction}
        for column in self.columns:
            values = [v for v in self.series(column)
                      if isinstance(v, (int, float))
                      and not isinstance(v, bool)]
            if values:
                metrics[f"mean_{column}"] = sum(values) / len(values)
        return metrics

    def to_csv(self) -> str:
        """The measured series as CSV (header + one line per point)."""
        import csv
        import io
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["point"] + self.columns)
        for label, values in self.rows:
            writer.writerow([label] + [values.get(c) for c in self.columns])
        return buf.getvalue()
