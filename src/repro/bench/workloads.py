"""Named production workload presets.

The paper grounds its parameter choices in deployed systems (§3.2,
§5.1): Facebook's f4 uses 12-wide stripes, Azure uses LRC, VAST runs
154-wide stripes, object sizes in cache clusters range from hundreds of
bytes to a few KB (Twitter's production study). These presets bundle
those shapes so examples and user code can sweep realistic points
without re-deriving them.
"""

from __future__ import annotations

from repro.trace.workload import Workload

#: Named (description, workload) production configurations.
PRODUCTION_WORKLOADS: dict[str, tuple[str, Workload]] = {
    "f4": (
        "Facebook f4 warm-BLOB storage: RS(14,10)-class narrow stripe",
        Workload(k=10, m=4, block_bytes=4096),
    ),
    "f4_smallobj": (
        "f4 geometry with cache-cluster object sizes (~1KB)",
        Workload(k=10, m=4, block_bytes=1024),
    ),
    "azure_lrc": (
        "Azure-style LRC(12,2,2) with local reconstruction groups",
        Workload(k=12, m=2, lrc_l=2, block_bytes=4096),
    ),
    "vast_wide": (
        "VAST wide stripe (k=154): minimal space overhead archival",
        Workload(k=154, m=4, block_bytes=1024),
    ),
    "ceph_default": (
        "Ceph erasure-coded pool default profile: k=4, m=2",
        Workload(k=4, m=2, block_bytes=4096),
    ),
    "pm_kv_burst": (
        "PM KV-store write burst: small blocks, high concurrency",
        Workload(k=8, m=4, block_bytes=1024, nthreads=16),
    ),
    "degraded_read": (
        "Degraded-read storm: decode path, one failed device",
        Workload(k=10, m=4, block_bytes=4096, op="decode", erasures=1),
    ),
}


def get_workload(name: str) -> Workload:
    """Look up a production workload preset by name."""
    try:
        return PRODUCTION_WORKLOADS[name][1]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(PRODUCTION_WORKLOADS)}"
        ) from None
