"""Audit scenario: decision ledger + counterfactual regret replay.

Not a paper figure — the decision-observability counterpart of the
crash/chaos scenarios. Two fig-10-style adaptive episodes run under a
:class:`~repro.obs.audit.DecisionLedger`:

* a **pressure** episode (10 threads, probe off) where the §4.1.2
  thresholds fire and the coordinator switches to the high-pressure
  policy mid-job;
* a **probe** episode (low pressure, probe on) whose initial decision
  carries a hill-climb distance-search trajectory.

Each ledger is then scored by the counterfactual oracle replay
(:func:`~repro.obs.replay.replay_decisions`): every decision window is
re-simulated under every candidate policy through the cached
:func:`repro.simulate` facade, yielding per-switch regret and an
episode-level oracle-normalized score. The shape checks pin:

* the pressure episode switches at least once, with the contention and
  inefficient-prefetcher predicates both recorded as fired;
* every decision carries its evidence (counter deltas, threshold
  evaluations, a non-empty candidate set);
* the probe episode's initial decision recorded a hill-climb
  trajectory ending at the chosen distance;
* the replay's content cache engaged (candidate windows recur);
* the whole scenario is **byte-identical** for a given ``--seed`` (the
  ledger JSONL and the regret table are compared verbatim across a
  rerun).
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.obs import ledger_from_coordinator, replay_decisions
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


def _episode(*, nthreads: int, stripes: int, use_probe: bool, seed: int):
    """One adaptive encode episode -> (ledger, regret report, lines).

    ``lines`` is the verbatim evidence (ledger JSONL + regret table)
    used by the byte-identity gate.
    """
    wl = Workload(k=8, m=4, block_bytes=1024, nthreads=nthreads)
    wl = wl.with_(data_bytes_per_thread=stripes * wl.stripe_data_bytes)
    hw = HardwareConfig()
    enc = DialgaEncoder(8, 4, config=DialgaConfig(
        use_probe=use_probe, chunks=6))
    enc.run(wl, hw)
    ledger = ledger_from_coordinator(enc.last_coordinator)
    report = replay_decisions(ledger)
    lines = ledger.to_jsonl().splitlines() + report.render().splitlines()
    return ledger, report, lines


def audit_scenario(volume: int | None = None, seed: int = 0) -> FigureResult:
    """Decision ledger + counterfactual oracle replay of two adaptive
    episodes (per-switch regret, oracle-normalized score, byte-identical
    reruns).

    ``volume`` is accepted for CLI uniformity but unused (episode sizes
    are part of the scenario definition); ``seed`` perturbs the
    pressure episode's stripe count, so distinct seeds audit distinct
    decision sequences.
    """
    fig = FigureResult(
        "audit_scenario",
        f"coordinator decision audit vs per-window oracle (seed {seed})",
        ["decisions", "switches", "fired", "oracle_score", "optimal_pct",
         "regret_ns_per_byte", "cache_hits", "cache_misses"])

    # Pressure episode: thresholds fire, the coordinator switches.
    stripes = 160 + (seed % 4) * 12
    led_p, rep_p, lines_p = _episode(
        nthreads=10, stripes=stripes, use_probe=False, seed=seed)
    fired_p = sorted({c["name"] for r in led_p.records for c in r.checks
                      if c["fired"]})
    fig.add_row(
        "pressure (10 threads)",
        decisions=len(led_p.records),
        switches=len(led_p.switches),
        fired=",".join(fired_p) or "-",
        oracle_score=rep_p.oracle_score,
        optimal_pct=100.0 * rep_p.optimal_fraction,
        regret_ns_per_byte=rep_p.total_regret_ns_per_byte,
        cache_hits=rep_p.cache_stats.get("hits", 0),
        cache_misses=rep_p.cache_stats.get("misses", 0))

    # Probe episode: low pressure, hill-climb distance search on.
    led_q, rep_q, _ = _episode(
        nthreads=2, stripes=24, use_probe=True, seed=seed)
    fired_q = sorted({c["name"] for r in led_q.records for c in r.checks
                      if c["fired"]})
    fig.add_row(
        "probe (2 threads)",
        decisions=len(led_q.records),
        switches=len(led_q.switches),
        fired=",".join(fired_q) or "-",
        oracle_score=rep_q.oracle_score,
        optimal_pct=100.0 * rep_q.optimal_fraction,
        regret_ns_per_byte=rep_q.total_regret_ns_per_byte,
        cache_hits=rep_q.cache_stats.get("hits", 0),
        cache_misses=rep_q.cache_stats.get("misses", 0))

    fig.check(
        "pressure episode: the coordinator switched policy at least "
        "once, with both Section-4.1.2 predicates (contention, "
        "inefficient prefetcher) recorded as fired",
        len(led_p.switches) >= 1 and "contention" in fired_p
        and "inefficient" in fired_p,
        f"{len(led_p.switches)} switch(es), fired={fired_p}")
    fig.check(
        "every decision carries full evidence: threshold evaluations "
        "and a non-empty candidate set",
        all(r.checks and r.candidates for r in
            led_p.records + led_q.records)
        and all(len(r.candidates) >= 2 for r in led_p.records
                if r.kind == "observe"),
        f"{len(led_p.records) + len(led_q.records)} decisions audited")
    climb = led_q.records[0].climb if led_q.records else []
    fig.check(
        "probe episode: the initial decision recorded a hill-climb "
        "trajectory ending at the chosen software-prefetch distance",
        led_q.records and led_q.records[0].kind == "initial"
        and len(climb) >= 1
        and climb[-1][1] == led_q.records[0].chosen.sw_distance,
        f"{len(climb)} accepted move(s) -> d={climb[-1][1] if climb else '-'}")
    fig.check(
        "oracle-normalized scores are well-formed (0 < score <= 1) and "
        "every chosen window costs at least the oracle's",
        0.0 < rep_p.oracle_score <= 1.0 and 0.0 < rep_q.oracle_score <= 1.0
        and all(d.regret_ns_per_byte >= 0.0
                for d in rep_p.decisions + rep_q.decisions),
        f"pressure={rep_p.oracle_score:.4f} probe={rep_q.oracle_score:.4f}")
    fig.check(
        "the replay's content-addressed simulate() cache engaged "
        "(candidate windows recur across decisions)",
        rep_p.cache_stats.get("hits", 0) > 0
        and rep_p.cache_stats.get("hits", 0)
        > rep_p.cache_stats.get("misses", 0),
        f"pressure replay: {rep_p.cache_stats}")

    # Byte-identity gate: the full pressure episode replayed must
    # produce the very same ledger JSONL and regret-table lines.
    _, rerun_rep, rerun_lines = _episode(
        nthreads=10, stripes=stripes, use_probe=False, seed=seed)
    fig.check(
        "audit episode is byte-identical across reruns (same seed, "
        "same ledger JSONL, same regret table)",
        rerun_lines == lines_p
        and rerun_rep.oracle_score == rep_p.oracle_score,
        f"{len(rerun_lines)} evidence lines compared verbatim")

    # Lay the decisions down on the ambient tracer (no-op unless the
    # CLI installed one via --trace).
    emitted = led_p.emit_events() + led_q.emit_events()
    if emitted:
        fig.notes.append(f"emitted {emitted} decision.* trace events")

    fig.notes.append("pressure ledger:\n" + led_p.render())
    fig.notes.append("pressure replay:\n" + rep_p.render())
    fig.notes.append("probe ledger:\n" + led_q.render())
    return fig


ALL_AUDIT_SCENARIOS = {
    "audit": audit_scenario,
}
