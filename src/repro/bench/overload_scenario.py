"""Overload scenario: graceful degradation under flash crowds, slow
devices and retry storms.

Not a paper figure — the overload-resilience counterpart of the chaos
scenario. Every row runs a canned overload campaign (or a direct
deadline-admission demo) against a service with
:class:`~repro.service.overload.OverloadConfig` enabled, and the shape
checks pin the properties ISSUE 9 demands:

* with retry budgets on, **goodput under the retry storm stays within
  80% of the storm-free baseline**, while the no-budget counterfactual
  collapses into metastable backlog (the `retry_storm_nobudget` row);
* **zero acked-byte durability violations** across every overload
  campaign, per the :class:`~repro.chaos.audit.DurabilityAuditor`;
* **brownout engages AND disengages** — both transitions land as
  ``overload.brownout_enter`` / ``overload.brownout_exit`` trace
  events when a tracer is recording;
* deadline-infeasible arrivals are shed **fail-fast at enqueue**, and
  hedged reads cap the slow-device tail;
* the whole scenario is **byte-identical** for a given ``--seed``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.report import FigureResult
from repro.chaos import OVERLOAD_CAMPAIGNS, CampaignEngine
from repro.service import (
    ErasureCodingService,
    OverloadConfig,
    ServiceConfig,
    put_wave,
)
from repro.service.retry import RetryPolicy


def _overload_config(*, retry_budget: bool = True) -> OverloadConfig:
    """The scenario's controller tuning (shared across rows)."""
    return OverloadConfig(
        target_batch_latency_ns=200_000.0,
        aimd_increase=4.0,
        retry_budget_enabled=retry_budget,
        retry_budget_initial=2.0,
        retry_budget_ratio=0.05,
        retry_budget_cap=4.0,
        brownout_enter_after=3,
        brownout_exit_after=4,
        brownout_enter_pressure=0.6,
        brownout_exit_pressure=0.25,
    )


def _service_config(seed: int, *, retry_budget: bool = True) -> ServiceConfig:
    """Chaos-engine service knobs plus an aggressive retry schedule.

    The long exponential backoff (8 attempts, 2 ms base) is what makes
    *unbudgeted* retries dangerous: one storm-window batch can stack
    hundreds of milliseconds of backoff while holding its admission
    threads — exactly the amplification the budget caps.
    """
    return ServiceConfig(
        max_queue_depth=32, max_batch=8, verify_reads=True,
        retry=RetryPolicy(max_attempts=8, base_delay_ns=1e6, factor=2.0,
                          jitter=0.5, seed=seed),
        overload=_overload_config(retry_budget=retry_budget))


def _run_campaign(name: str, seed: int, *, retry_budget: bool = True,
                  drop_kinds: tuple = ()):
    """Run one overload campaign; returns the engine (service attached)."""
    campaign = OVERLOAD_CAMPAIGNS[name](seed=seed)
    if drop_kinds:
        campaign = replace(
            campaign,
            name=f"{campaign.name}_no_{'_'.join(drop_kinds)}",
            actions=tuple(a for a in campaign.actions
                          if a.kind not in drop_kinds))
    engine = CampaignEngine(
        campaign, config=_service_config(seed, retry_budget=retry_budget))
    engine.report = engine.run()
    return engine


def _row_from_engine(fig: FigureResult, label: str, engine) -> dict:
    """Add one campaign row; returns the numbers used by cross-checks."""
    rep = engine.report
    svc = engine.service
    c = svc.metrics.counters
    requests = rep.requests
    completed = rep.completed
    goodput = completed / requests if requests else 0.0
    shed = c.get("shed_total", 0)
    row = {
        "requests": requests,
        "completed": completed,
        "goodput_fraction": goodput,
        "shed": shed,
        "shed_rate": shed / requests if requests else 0.0,
        "p99_ms": (svc.metrics.latency["put"].p99 / 1e6
                   if "put" in svc.metrics.latency else 0.0),
        "deadline_misses": c.get("deadline_misses", 0),
        "retries": c.get("retries", 0),
        "hedges_won": c.get("hedges_won", 0),
        "brownouts": c.get("brownout_enters", 0),
        "acked": rep.audit.acknowledged,
        "lost": len(rep.audit.lost),
    }
    fig.add_row(label, **row)
    return row


def overload_scenario(volume: int | None = None, seed: int = 0) -> FigureResult:
    """Overload campaigns: deadline admission, retry budgets, brownout,
    hedged reads — with a no-budget metastability counterfactual.

    ``volume`` is accepted for CLI uniformity but unused (campaign
    traffic shapes are part of the campaign definition); ``seed`` picks
    the deterministic variant of every campaign.
    """
    fig = FigureResult(
        "overload_scenario",
        f"overload resilience: shed / adapt / degrade gracefully "
        f"(seed {seed})",
        ["requests", "completed", "goodput_fraction", "shed", "shed_rate",
         "p99_ms", "deadline_misses", "retries", "hedges_won", "brownouts",
         "acked", "lost"])

    # -- retry-storm metastability: baseline vs budget vs counterfactual --
    baseline_eng = _run_campaign("retry_storm_overload", seed,
                                 drop_kinds=("retry_storm",))
    budget_eng = _run_campaign("retry_storm_overload", seed)
    nobudget_eng = _run_campaign("retry_storm_overload", seed,
                                 retry_budget=False)
    base = _row_from_engine(fig, "storm_free_baseline", baseline_eng)
    with_budget = _row_from_engine(fig, "retry_storm_budget", budget_eng)
    no_budget = _row_from_engine(fig, "retry_storm_nobudget", nobudget_eng)

    fig.check(
        "retry budget holds goodput within 80% of the storm-free "
        "baseline under the retry storm",
        with_budget["goodput_fraction"]
        >= 0.8 * base["goodput_fraction"] > 0,
        f"baseline={base['goodput_fraction']:.3f} "
        f"budget={with_budget['goodput_fraction']:.3f}")
    fig.check(
        "no-budget counterfactual collapses (metastable retry "
        "amplification: goodput below 60% of the budgeted run)",
        no_budget["goodput_fraction"]
        < 0.6 * with_budget["goodput_fraction"],
        f"nobudget={no_budget['goodput_fraction']:.3f} "
        f"budget={with_budget['goodput_fraction']:.3f}")
    budget = budget_eng.service.overload.retry_budget
    fig.check(
        "retry spend never exceeded the token-bucket bound "
        "(spent <= initial + ratio * successes)",
        budget.spent <= budget.budget_bound,
        f"spent={budget.spent} bound={budget.budget_bound:.2f} "
        f"denied={budget.denied}")

    # -- flash crowd: bounded shed, reverse-priority order ----------------
    crowd_eng = _run_campaign("flash_crowd", seed)
    crowd = _row_from_engine(fig, "flash_crowd", crowd_eng)
    fig.check(
        "flash crowd: shed rate bounded (some load shed, most served)",
        0 < crowd["shed_rate"] <= 0.5,
        f"shed_rate={crowd['shed_rate']:.3f}")

    # -- slow device: hedged reads cap the tail ---------------------------
    slow_eng = _run_campaign("slow_device_tail", seed)
    slow = _row_from_engine(fig, "slow_device_hedge", slow_eng)
    slow_c = slow_eng.service.metrics.counters
    fig.check(
        "slow device: hedges issued and won against the degraded path",
        slow_c.get("hedges_issued", 0) > 0
        and slow_c.get("hedges_won", 0) > 0,
        f"issued={slow_c.get('hedges_issued', 0)} "
        f"won={slow_c.get('hedges_won', 0)} "
        f"cancelled={slow_c.get('hedges_cancelled', 0)}")

    # -- brownout: engaged AND disengaged ---------------------------------
    transitions = []
    for eng in (budget_eng, nobudget_eng, crowd_eng, slow_eng):
        transitions.extend(kind for _, kind
                           in eng.service.overload.brownout.transitions)
    fig.check(
        "brownout engaged and disengaged during the campaigns "
        "(enter + exit transitions observed)",
        "enter" in transitions and "exit" in transitions,
        f"transitions={transitions}")

    # -- deadline admission: fail-fast shed at enqueue --------------------
    # Few wide slots (16 threads/job over the 48-thread cap = 3 batch
    # slots), so a saturated queue translates into real, *estimable*
    # queue wait — the regime deadline admission is built for.
    svc = ErasureCodingService(4, 3, block_bytes=512,
                               config=replace(_service_config(seed),
                                              threads_per_job=16))
    # Warmup wave (no deadlines) teaches the queue-wait estimator what
    # a saturated batch costs; the tight-deadline wave that follows is
    # then *provably* infeasible at enqueue and shed fail-fast.
    svc.submit_many(put_wave(10, 4, payload_bytes=900, mean_gap_ns=250.0,
                             seed=seed))
    svc.drain()
    svc.submit_many(put_wave(20, 4, payload_bytes=900, mean_gap_ns=250.0,
                             start_ns=svc.clock_ns, seed=seed + 1,
                             deadline_slack_ns=20_000.0))
    results = svc.drain()
    shed = [r for r in results if r.status.value == "shed"]
    c = svc.metrics.counters
    fig.add_row(
        "tight_deadlines",
        requests=len(results),
        completed=sum(r.ok for r in results),
        goodput_fraction=(sum(r.ok for r in results) / len(results)
                          if results else 0.0),
        shed=len(shed),
        shed_rate=len(shed) / len(results) if results else 0.0,
        p99_ms=svc.metrics.latency["put"].p99 / 1e6
        if "put" in svc.metrics.latency else 0.0,
        deadline_misses=c.get("deadline_misses", 0),
        retries=c.get("retries", 0),
        hedges_won=0, brownouts=c.get("brownout_enters", 0),
        acked=0, lost=0)
    fig.check(
        "infeasible deadlines are shed fail-fast at enqueue "
        "(no decode work spent on them)",
        c.get("shed_deadline", 0) > 0
        and all(r.latency_ns is None for r in shed),
        f"shed_deadline={c.get('shed_deadline', 0)} "
        f"expired_in_queue={c.get('deadline_expired_queued', 0)}")
    fig.check(
        "adaptive concurrency never exceeded the Eq. (1) cap",
        svc.overload.concurrency.limit
        <= svc.admission.capacity_threads
        and svc.admission.peak_threads <= svc.admission.capacity_threads,
        f"limit={svc.overload.concurrency.limit} "
        f"cap={svc.admission.capacity_threads} "
        f"peak={svc.admission.peak_threads}")

    # -- durability: zero acked-byte loss everywhere ----------------------
    for label, eng in (("storm_free_baseline", baseline_eng),
                       ("retry_storm_budget", budget_eng),
                       ("retry_storm_nobudget", nobudget_eng),
                       ("flash_crowd", crowd_eng),
                       ("slow_device_hedge", slow_eng)):
        fig.check(
            f"{label}: durability audit clean (every acked byte "
            "readable across the overload episode)",
            eng.report.audit.clean and eng.report.audit.acknowledged > 0,
            eng.report.audit.summary())

    # -- determinism: byte-identical rerun --------------------------------
    rerun = _run_campaign("retry_storm_overload", seed)
    fig.check(
        "campaign reports are byte-identical across replays "
        "(same seed, same bytes)",
        rerun.report.render() == budget_eng.report.render(),
        "retry_storm_overload rendered twice")

    for label, eng in (("flash_crowd", crowd_eng),
                       ("slow_device_tail", slow_eng),
                       ("retry_storm_overload", budget_eng)):
        fig.notes.append("campaign report:\n" + eng.report.render())
    return fig


ALL_OVERLOAD_SCENARIOS = {
    "overload": overload_scenario,
}
