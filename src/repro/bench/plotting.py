"""Terminal (ASCII) charts for figure results.

No plotting stack is available offline, and the reproduction's outputs
are small series — a calibrated ASCII chart in the benchmark logs is
genuinely more useful here than a PNG nobody renders. Used by the CLI's
``--plot`` flag.
"""

from __future__ import annotations

from repro.bench.report import FigureResult

_MARKS = "ox+*#@%&"


def ascii_chart(fig: FigureResult, columns: list[str] | None = None,
                height: int = 12, width: int | None = None) -> str:
    """Render selected columns of a figure as an ASCII line chart.

    Rows become the x axis (in order); each column gets a mark from
    ``o x + * ...``. Missing values (unsupported workloads) leave gaps.
    """
    columns = columns or fig.columns
    columns = [c for c in columns if any(
        isinstance(vals.get(c), (int, float)) for _, vals in fig.rows)]
    if not columns or not fig.rows:
        return "(no numeric series to plot)"
    values = {c: fig.series(c) for c in columns}
    flat = [v for series in values.values() for v in series if v is not None]
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0
    n = len(fig.rows)
    width = width or max(2 * n, 24)
    xstep = (width - 1) / max(1, n - 1)
    grid = [[" "] * width for _ in range(height)]
    for ci, col in enumerate(columns):
        mark = _MARKS[ci % len(_MARKS)]
        for i, v in enumerate(values[col]):
            if v is None:
                continue
            x = round(i * xstep)
            y = height - 1 - round((v - lo) / (hi - lo) * (height - 1))
            grid[y][x] = mark
    label_w = 8
    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:7.2f} "
        elif r == height - 1:
            label = f"{lo:7.2f} "
        else:
            label = " " * label_w
        lines.append(label + "|" + "".join(row))
    lines.append(" " * label_w + "+" + "-" * width)
    first, last = fig.rows[0][0], fig.rows[-1][0]
    pad = max(1, width - len(first) - len(last))
    lines.append(" " * (label_w + 1) + first + " " * pad + last)
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={c}"
                       for i, c in enumerate(columns))
    lines.append(" " * label_w + " " + legend)
    return "\n".join(lines)
