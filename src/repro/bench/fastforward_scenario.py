"""Fast-forward acceptance scenario: exactness and speedup gates.

``python -m repro.bench fastforward`` runs representative workloads
twice — plain interpretation vs steady-state fast-forward
(:mod:`repro.simulator.fastforward`) — and gates the contract:

* **byte-identical** results on every workload (full counter set,
  makespan, data volume — ``SimResult`` equality);
* **>= 5x wall-clock speedup** on a fig-10-style long encode, where
  thousands of stripe periods collapse into a handful of exact jumps;
* **graceful decline** on aperiodic work (the parity-update trace has
  a per-stripe rotating layout with no constant stride): detection
  falls back to plain interpretation and skips nothing.

The speedup and engagement gates only apply at full volume
(``REPRO_BENCH_SCALE`` >= 1): below ~:data:`GATE_STRIPES` stripes the
run is dominated by the warmup periods every path must interpret, so
shrunk smoke runs check exactness only.
"""

from __future__ import annotations

import time

from repro.bench.report import FigureResult
from repro.bench.runner import scaled
from repro.simulator import HardwareConfig, simulate
from repro.trace import IsalVariant, Workload, isal_trace
from repro.trace.update_gen import update_trace

#: Required wall-clock advantage on the long periodic encode.
MIN_SPEEDUP = 5.0
#: Stripes the long encode needs before the speedup gate applies
#: (below this, warmup periods dominate both paths).
GATE_STRIPES = 4800
#: Stripes the secondary periodic rows need before their engagement
#: gate applies (steady state needs the cache warm: ~130 stripes).
ENGAGE_STRIPES = 300


def _stripe_volume(stripes: int, wl_k: int = 8,
                   block_bytes: int = 1024) -> int:
    return stripes * wl_k * block_bytes


def _encode_trace(cpu, stripes: int, *, op: str = "encode",
                  erasures: int = 0, swpf: int = 0):
    wl = Workload(k=8, m=4, block_bytes=1024,
                  data_bytes_per_thread=_stripe_volume(stripes),
                  op=op, erasures=erasures)
    return isal_trace(wl, cpu, variant=IsalVariant(sw_prefetch_distance=swpf))


def _row(fig: FigureResult, label: str, trace, hw) -> dict:
    """Run one workload both ways; returns the numbers for checks."""
    t0 = time.perf_counter()
    plain = simulate(trace, hw, fastforward=False)
    t1 = time.perf_counter()
    fast = simulate(trace, hw, fastforward=True)
    t2 = time.perf_counter()
    interp_s, ff_s = t1 - t0, t2 - t1
    stats = fast.fastforward or {}
    out = {
        "identical": (plain == fast
                      and plain.counters == fast.counters
                      and plain.makespan_ns == fast.makespan_ns),
        "interp_s": interp_s,
        "ff_s": ff_s,
        "speedup": interp_s / ff_s if ff_s > 0 else float("inf"),
        "skipped": stats.get("periods_skipped", 0),
        "total": stats.get("periods_total", 0),
        "jumps": stats.get("jumps", 0),
        "reason": stats.get("reason"),
    }
    fig.add_row(label, interp_s=interp_s, ff_s=ff_s,
                speedup=out["speedup"], skipped=out["skipped"],
                total=out["total"], jumps=out["jumps"],
                identical=out["identical"])
    return out


def fastforward_scenario(volume: int | None = None,
                         seed: int = 0) -> FigureResult:
    """Fast-forward vs interpretation: byte-identity, >=5x long-encode
    speedup, aperiodic fallback."""
    hw = HardwareConfig()
    long_bytes = volume if volume is not None else scaled(
        _stripe_volume(9600))
    long_stripes = max(1, long_bytes // _stripe_volume(1))
    side_stripes = max(1, min(2400, long_stripes // 4))

    fig = FigureResult(
        fig_id="fastforward_scenario",
        title="Steady-state fast-forward: exactness and speedup",
        columns=["interp_s", "ff_s", "speedup", "skipped", "total",
                 "jumps", "identical"])

    rows = {
        "encode_long": _row(fig, "encode_long",
                            _encode_trace(hw.cpu, long_stripes), hw),
        "encode_swpf": _row(fig, "encode_swpf",
                            _encode_trace(hw.cpu, side_stripes, swpf=4),
                            hw),
        "decode_degraded": _row(fig, "decode_degraded",
                                _encode_trace(hw.cpu, side_stripes,
                                              op="decode", erasures=2),
                                hw),
    }
    wl_update = Workload(k=8, m=4, block_bytes=1024,
                         data_bytes_per_thread=scaled(_stripe_volume(64)))
    rows["update_aperiodic"] = _row(fig, "update_aperiodic",
                                    update_trace(wl_update, hw.cpu), hw)

    fig.check(
        "fast-forward is byte-identical to interpretation on every "
        "workload (counters, makespan, SimResult equality)",
        all(r["identical"] for r in rows.values()),
        ", ".join(f"{k}={'ok' if r['identical'] else 'DIFFERS'}"
                  for k, r in rows.items()))

    long_row = rows["encode_long"]
    if long_stripes >= GATE_STRIPES:
        fig.check(
            f"long encode fast-forward speedup >= {MIN_SPEEDUP:.0f}x",
            long_row["speedup"] >= MIN_SPEEDUP,
            f"{long_row['speedup']:.2f}x over {long_stripes} stripes")
        fig.check(
            "long encode skips >= 90% of stripe periods",
            long_row["skipped"] >= 0.9 * long_row["total"],
            f"{long_row['skipped']}/{long_row['total']} in "
            f"{long_row['jumps']} jumps")
    else:
        fig.notes.append(
            f"speedup/skip gates need >= {GATE_STRIPES} stripes "
            f"(got {long_stripes}; volume shrunk) — exactness still "
            "checked")
    for label in ("encode_swpf", "decode_degraded"):
        r = rows[label]
        if r["total"] >= ENGAGE_STRIPES:
            fig.check(
                f"{label} engages steady-state skipping",
                r["skipped"] > 0,
                f"{r['skipped']}/{r['total']} periods, "
                f"{r['jumps']} jumps")

    upd = rows["update_aperiodic"]
    fig.check(
        "aperiodic update trace never engages (exact fallback)",
        upd["skipped"] == 0 and upd["jumps"] == 0,
        f"reason={upd['reason']!r}")

    fig.notes.append(
        "fast-forward wall time is nearly flat in trace length: binade "
        "re-validations grow logarithmically, so speedup scales with "
        "volume")
    return fig


ALL_FASTFORWARD_SCENARIOS = {
    "fastforward": fastforward_scenario,
}
