"""Sweep helpers: build library sets and run them over workloads."""

from __future__ import annotations

import os

from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.libs import ISAL, ISALDecompose, Zerasure, Cerasure
from repro.libs.base import CodingLibrary, LibraryResult, UnsupportedWorkload
from repro.parallel import SweepResult, SweepSpec, run_sweep
from repro.simulator import HardwareConfig
from repro.trace import Workload


def scaled(nbytes: int) -> int:
    """Apply the ``REPRO_BENCH_SCALE`` volume multiplier (min 8 KiB)."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(8 * 1024, int(nbytes * factor))


def standard_libraries(k: int, m: int,
                       include=("ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA"),
                       dialga_kwargs: dict | None = None) -> list[CodingLibrary]:
    """The paper's §5.1 comparison set for one code geometry.

    ``dialga_kwargs`` maps :class:`~repro.core.dialga.DialgaConfig`
    field names to values for the DIALGA entry.
    """
    out: list[CodingLibrary] = []
    dialga_config = DialgaConfig(**(dialga_kwargs or {}))
    for name in include:
        if name == "ISA-L":
            out.append(ISAL(k, m))
        elif name == "ISA-L-D":
            out.append(ISALDecompose(k, m))
        elif name == "Zerasure":
            out.append(Zerasure(k, m))
        elif name == "Cerasure":
            out.append(Cerasure(k, m))
        elif name == "DIALGA":
            out.append(DialgaEncoder(k, m, config=dialga_config))
        else:
            raise ValueError(f"unknown library {name!r}")
    return out


def run_libraries(wl: Workload, libs: list[CodingLibrary],
                  hw: HardwareConfig | None = None) -> dict[str, LibraryResult | None]:
    """Run every library on the workload; unsupported ones map to None
    (rendered as the paper's "missing results")."""
    hw = hw or HardwareConfig()
    out: dict[str, LibraryResult | None] = {}
    for lib in libs:
        try:
            out[lib.name] = lib.run(wl, hw)
        except UnsupportedWorkload:
            out[lib.name] = None
    return out


def sweep_spec(workloads, libraries=("ISA-L", "ISA-L-D", "Zerasure",
                                     "Cerasure", "DIALGA"),
               hardware: HardwareConfig | tuple | None = None,
               dialga_kwargs: dict | None = None) -> SweepSpec:
    """Build a :class:`~repro.parallel.SweepSpec` from bench vocabulary.

    Same axes the per-figure loops iterate — the paper's library set
    crossed with workloads and (optionally several) hardware configs —
    expressed as one declarative grid that :func:`run_spec` can fan out
    over a process pool or memoize.
    """
    if isinstance(workloads, Workload):
        workloads = (workloads,)
    kwargs = {"DIALGA": dialga_kwargs} if dialga_kwargs else ()
    return SweepSpec(libraries=tuple(libraries), workloads=tuple(workloads),
                     hardware=hardware or (), library_kwargs=kwargs)


def run_spec(spec: SweepSpec, workers: int = 1,
             cache=None) -> SweepResult:
    """Run a sweep grid; thin alias of :func:`repro.parallel.run_sweep`
    so bench callers stay within one import."""
    return run_sweep(spec, workers=workers, cache=cache)


def sweep_results_table(result: SweepResult) -> dict[str, list[float | None]]:
    """Per-library throughput series (grid order) from a sweep result —
    the shape the figure renderers consume; unsupported cells are None."""
    return {
        lib: [r.throughput_gbps if r.supported and r.error is None else None
              for r in rows]
        for lib, rows in result.by_library().items()
    }


def best_other(results: dict[str, LibraryResult | None],
               exclude: str = "DIALGA") -> float | None:
    """Best non-DIALGA throughput (the paper's comparison baseline)."""
    vals = [r.throughput_gbps for name, r in results.items()
            if r is not None and name != exclude]
    return max(vals) if vals else None
