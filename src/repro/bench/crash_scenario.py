"""Crash scenario: exhaustive crash-point enumeration + recovery gate.

Not a paper figure — the crash-consistency counterpart of the chaos
scenario. For each :class:`~repro.crash.scenarios.CrashScenario` the
:class:`~repro.crash.injector.CrashInjector` cuts power at *every*
flush/fence boundary (plus seeded adversarial line-tearing rounds),
recovers through the stripe WAL, and asserts the four invariants —
acked-write durability, stripe data/parity consistency, checksum
validity, idempotent double-replay. The shape checks pin:

* every enumerated crash point of every scenario passes all four
  invariants (the write hole stays closed at each of the >100
  boundaries the acceptance gate demands);
* the adversarial tear rounds — where any pending line may persist
  whole, revert whole, or tear at an 8 B store boundary — pass too;
* the service-level ``power_cycle`` chaos campaign ends with a clean
  durability audit after two mid-run power cuts;
* the whole scenario is **byte-identical** for a given ``--seed`` (the
  per-crash-point report lines are compared verbatim across a rerun).
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.chaos import CANNED_CAMPAIGNS
from repro.chaos.engine import CampaignEngine
from repro.crash import CrashInjector, degraded_scenario, smoke_scenario


def _sweep(scenario, seed: int):
    """One full campaign over a scenario, with per-point report lines."""
    lines: list[str] = []
    injector = CrashInjector(scenario)
    report = injector.enumerate_all(on_point=lambda r: lines.append(
        r.summary()))
    injector.tear_points(25, seed=seed, report=report,
                         on_point=lambda r: lines.append(r.summary()))
    return report, lines


def crash_scenario(volume: int | None = None, seed: int = 0) -> FigureResult:
    """Exhaustive crash-point enumeration vs the stripe WAL recovery.

    ``volume`` is accepted for CLI uniformity but unused (scenario op
    sequences are part of the scenario definition); ``seed`` picks the
    deterministic payloads and tear rounds.
    """
    fig = FigureResult(
        "crash_scenario",
        f"crash-point enumeration vs WAL recovery (seed {seed})",
        ["boundaries", "points", "tears", "passed", "rolled_forward",
         "damaged_lines", "failures"])
    reports = {}
    lines_by_name = {}
    for scenario in (smoke_scenario(seed), degraded_scenario(seed)):
        report, lines = _sweep(scenario, seed)
        reports[scenario.name] = report
        lines_by_name[scenario.name] = lines
        fig.add_row(
            scenario.name,
            boundaries=report.boundaries_total,
            points=report.points_run,
            tears=report.tear_rounds,
            passed=report.points_passed,
            rolled_forward=report.rolled_forward_total,
            damaged_lines=report.damaged_lines_total,
            failures=len(report.failures))
        fig.check(
            f"{scenario.name}: every crash point passes all four "
            "invariants (acked durability, data/parity consistency, "
            "checksum validity, idempotent replay)",
            report.all_passed,
            report.summary())

    smoke = reports[smoke_scenario(seed).name]
    fig.check(
        "smoke enumeration is exhaustive and large enough "
        "(every flush/fence boundary, >= 100 crash points)",
        smoke.boundaries_total >= 100
        and smoke.points_run >= smoke.boundaries_total,
        f"{smoke.boundaries_total} boundaries, "
        f"{smoke.points_run} points run")
    fig.check(
        "crashes actually damaged state before recovery "
        "(the sweep is not vacuous)",
        smoke.damaged_lines_total > 0
        and smoke.rolled_forward_total > 0,
        f"damaged={smoke.damaged_lines_total} "
        f"rolled_forward={smoke.rolled_forward_total}")

    # Byte-identity gate: the full sweep replayed must produce the very
    # same per-crash-point report lines.
    rerun_report, rerun_lines = _sweep(smoke_scenario(seed), seed)
    fig.check(
        "crash sweep is byte-identical across reruns "
        "(same seed, same report lines)",
        rerun_lines == lines_by_name[smoke_scenario(seed).name]
        and rerun_report.summary() == smoke.summary(),
        f"{len(rerun_lines)} report lines compared verbatim")

    # Service-level gate: the power_cycle chaos campaign (two mid-run
    # cuts, WAL recovery, re-queue, auditor reconciliation).
    campaign = CampaignEngine(CANNED_CAMPAIGNS["power_cycle"](seed=seed)).run()
    fig.check(
        "power_cycle campaign: two power cuts recovered with a clean "
        "durability audit (no acknowledged byte lost)",
        campaign.durability_clean
        and campaign.faults.get("power_cut", 0) == 2
        and campaign.counters.get("wal_txns_replayed", 0) > 0,
        campaign.audit.summary())

    for name in sorted(reports):
        fig.notes.append(f"{name}: {reports[name].summary()}")
    fig.notes.append("power_cycle campaign report:\n" + campaign.render())
    return fig


ALL_CRASH_SCENARIOS = {
    "crash": crash_scenario,
}
