"""Chaos scenario: canned fault campaigns against the self-healing service.

Not a paper figure — the robustness counterpart of the service
scenario. Each canned campaign from :mod:`repro.chaos` runs its timed
fault schedule (device loss, corruption waves, transient-fault storms,
traffic bursts) against a service with the self-healing loop attached,
and the shape checks pin the system-level guarantees:

* every campaign ends with a **clean durability audit** — no
  acknowledged write lost or silently corrupted;
* the kitchen-sink campaign really did suffer a device loss, a
  corruption wave and a retry storm mid-run, concurrently;
* the system **settles** — loss marks repaired, breakers closed —
  within the simulated window;
* the whole scenario is **byte-identical** for a given ``--seed``
  (campaign reports are embedded in the output verbatim).
"""

from __future__ import annotations

from repro.bench.report import FigureResult
from repro.chaos import CANNED_CAMPAIGNS, CampaignEngine


def _run_campaign(name: str, seed: int):
    return CampaignEngine(CANNED_CAMPAIGNS[name](seed=seed)).run()


def chaos_scenario(volume: int | None = None, seed: int = 0) -> FigureResult:
    """Canned chaos campaigns: fault schedules vs the self-healing service.

    ``volume`` is accepted for CLI uniformity but unused (campaign
    traffic shapes are part of the campaign definition); ``seed`` picks
    the deterministic variant of every campaign.
    """
    fig = FigureResult(
        "chaos_scenario",
        f"chaos campaigns vs self-healing EC service (seed {seed})",
        ["requests", "completed", "availability", "faults", "trips",
         "repairs", "mttr_ms", "acked", "lost", "corrupted"])
    reports = {}
    for name in sorted(CANNED_CAMPAIGNS):
        rep = _run_campaign(name, seed)
        reports[name] = rep
        fig.add_row(
            name,
            requests=rep.requests,
            completed=rep.completed,
            availability=rep.availability,
            faults=sum(rep.faults.values()),
            trips=rep.counters.get("health_trips", 0),
            repairs=rep.counters.get("repair_blocks_rebuilt", 0),
            mttr_ms=rep.mean_mttr_ns / 1e6,
            acked=rep.audit.acknowledged,
            lost=len(rep.audit.lost),
            corrupted=len(rep.audit.corrupted))
        fig.check(
            f"{name}: durability audit clean (no acknowledged byte "
            "lost or silently corrupted)",
            rep.durability_clean and rep.audit.acknowledged > 0,
            rep.audit.summary())
        fig.check(
            f"{name}: system settled (losses repaired, breakers closed)",
            rep.settled_at_ns is not None,
            f"settled_at={rep.settled_at_ns}")
        fig.check(
            f"{name}: rejections only at the Eq. (1) cap",
            rep.counters.get("rejected_below_cap", 0) == 0,
            f"below_cap={rep.counters.get('rejected_below_cap', 0)}")

    ks = reports["kitchen_sink"]
    fig.check(
        "kitchen-sink suffered a device loss, a corruption wave AND a "
        "retry storm mid-run",
        ks.faults.get("device_loss", 0) >= 1
        and (ks.faults.get("bit_flip", 0) + ks.faults.get("scribble", 0)) >= 3
        and ks.faults.get("transient", 0) >= 3,
        f"faults={dict(sorted(ks.faults.items()))}")
    fig.check(
        "kitchen-sink self-healed: breaker tripped, repairs rebuilt "
        "blocks, device recovered",
        ks.counters.get("health_trips", 0) >= 1
        and ks.counters.get("repair_blocks_rebuilt", 0) >= 1
        and ks.counters.get("health_recoveries", 0) >= 1,
        f"trips={ks.counters.get('health_trips', 0)} "
        f"rebuilt={ks.counters.get('repair_blocks_rebuilt', 0)} "
        f"recoveries={ks.counters.get('health_recoveries', 0)}")
    rerun = _run_campaign("kitchen_sink", seed)
    fig.check(
        "campaign reports are byte-identical across replays "
        "(same seed, same bytes)",
        rerun.render() == ks.render(),
        "kitchen_sink rendered twice")
    for name in sorted(reports):
        fig.notes.append("campaign report:\n" + reports[name].render())
    return fig


ALL_CHAOS_SCENARIOS = {
    "chaos": chaos_scenario,
}
