"""``python -m repro.bench sweep`` — the grid benchmark.

Runs one declarative :class:`~repro.parallel.SweepSpec` three ways —
serial cold, parallel cold (``--workers N``), and warm from a
content-addressed cache — asserts all three produce bit-identical
results, and reports the wall-clocks. The JSON payload doubles as the
repo's parallel-speedup perf baseline (``BENCH_sweep.json``, written
by ``scripts/run_all.sh``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.bench.runner import scaled, sweep_spec
from repro.parallel import ContentCache, SweepSpec, fingerprint, run_sweep
from repro.trace import Workload


def smoke_grid(volume: int | None = None) -> SweepSpec:
    """Small CI grid: 3 libraries × 4 workloads, one hardware config.

    Sized so the serial pass stays in single-digit seconds while the
    cells are heavy enough for the pool to beat process start-up cost.
    """
    vol = volume if volume is not None else scaled(1 << 20)
    return sweep_spec(
        workloads=[
            Workload(k=4, m=2, block_bytes=1024, data_bytes_per_thread=vol),
            Workload(k=6, m=3, block_bytes=1024, data_bytes_per_thread=vol),
            Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=vol),
            Workload(k=10, m=4, block_bytes=4096, data_bytes_per_thread=vol),
        ],
        libraries=("ISA-L", "Zerasure", "DIALGA"),
    )


def full_grid(volume: int | None = None) -> SweepSpec:
    """The paper's §5.1 comparison set over the figure geometries."""
    vol = volume if volume is not None else scaled(1 << 20)
    return sweep_spec(
        workloads=[
            Workload(k=k, m=m, block_bytes=bb, data_bytes_per_thread=vol)
            for k, m in ((4, 2), (6, 3), (8, 4), (10, 4), (12, 4))
            for bb in (1024, 4096)
        ],
    )


GRIDS = {"smoke": smoke_grid, "full": full_grid}


def benchmark_sweep(spec: SweepSpec, workers: int = 2,
                    cache: ContentCache | None = None) -> dict:
    """Serial-cold / parallel-cold / warm comparison over one grid.

    Returns a JSON-able report: the three wall-clocks, the speedups,
    the bit-identity verdicts, and a content fingerprint of the result
    payload (so perf baselines also pin the *numbers*).
    """
    cache = cache or ContentCache()

    t0 = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(spec, workers=workers, cache=cache)
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_sweep(spec, workers=1, cache=cache)
    warm_s = time.perf_counter() - t0

    identical = serial == parallel
    warm_identical = serial == warm
    all_cached = all(r.cached for r in warm.results)
    payload_digest = fingerprint(serial.to_dict())

    return {
        "grid": {
            "cells": len(spec),
            "libraries": list(spec.libraries),
            "workloads": len(spec.workloads),
            "hardware": len(spec.hardware),
        },
        "workers": workers,
        # Pool speedup is bounded by the machine: on a 1-CPU container
        # the parallel pass is pure overhead and the warm-cache pass
        # carries the end-to-end win.
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_parallel": round(serial_s / parallel_s, 2)
        if parallel_s else None,
        "speedup_warm": round(serial_s / warm_s, 2) if warm_s else None,
        "identical_serial_parallel": identical,
        "identical_serial_warm": warm_identical,
        "warm_all_cached": all_cached,
        "cache": warm.cache_stats,
        "result_digest": payload_digest,
        "results": serial.to_dict(),
    }


def render_report(report: dict) -> str:
    """Human-readable summary of a :func:`benchmark_sweep` report."""
    g = report["grid"]
    lines = [
        f"sweep: {g['cells']} cells "
        f"({g['workloads']} workloads x {len(g['libraries'])} libraries "
        f"x {g['hardware']} hardware)",
        f"  serial cold     {report['serial_s']:8.3f} s",
        f"  parallel cold   {report['parallel_s']:8.3f} s   "
        f"(workers={report['workers']}, {report['cpus']} cpu(s), "
        f"{report['speedup_parallel']}x"
        + (", informational: single CPU)" if (report["cpus"] or 0) < 2
           else ")"),
        f"  warm cache      {report['warm_s']:8.3f} s   "
        f"({report['speedup_warm']}x)",
        f"  serial == parallel: "
        f"{'PASS' if report['identical_serial_parallel'] else 'FAIL'}",
        f"  serial == warm:     "
        f"{'PASS' if report['identical_serial_warm'] else 'FAIL'}",
        f"  result digest: {report['result_digest'][:16]}...",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench sweep`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench sweep",
        description="Run a benchmark grid serial / parallel / warm-cache "
                    "and verify bit-identical results.")
    parser.add_argument("--grid", choices=sorted(GRIDS), default="smoke",
                        help="which predefined grid to run")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for the parallel pass")
    parser.add_argument("--volume", type=int, default=None,
                        help="override per-point simulated volume (bytes)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the full report (incl. per-cell "
                             "results) to this path")
    parser.add_argument("--disk-cache", action="store_true",
                        help="persist the content cache under "
                             "~/.cache/repro (REPRO_CACHE_DIR)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending this run to the benchmark "
                             "history ledger (BENCH_history.jsonl or "
                             "$REPRO_BENCH_HISTORY)")
    args = parser.parse_args(argv)

    spec = GRIDS[args.grid](args.volume)
    cache = ContentCache(disk=args.disk_cache)
    report = benchmark_sweep(spec, workers=args.workers, cache=cache)
    print(render_report(report))

    if not args.no_history:
        from repro.obs.regress import BenchHistory
        metrics = {"serial_s": report["serial_s"],
                   "warm_s": report["warm_s"],
                   "speedup_warm": report["speedup_warm"]}
        meta = {"cells": report["grid"]["cells"],
                "workers": report["workers"],
                "cpus": report["cpus"],
                "result_digest": report["result_digest"]}
        if (report["cpus"] or 0) >= 2:
            metrics["parallel_s"] = report["parallel_s"]
            metrics["speedup_parallel"] = report["speedup_parallel"]
        else:
            # A 1-CPU runner makes the pool pure overhead; record the
            # numbers as context, not as gated perf metrics (the
            # regression gate also skips *parallel* metrics when the
            # entry's meta says cpus < 2 — belt and braces).
            meta["parallel_s"] = report["parallel_s"]
            meta["speedup_parallel"] = report["speedup_parallel"]
        BenchHistory().append(f"sweep:{args.grid}", metrics, meta=meta)

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  report -> {args.json}")

    ok = (report["identical_serial_parallel"]
          and report["identical_serial_warm"])
    if not ok:
        print("sweep results diverged between execution modes",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via cli
    raise SystemExit(main())
