"""Command-line harness: ``python -m repro.bench <experiment>``.

Runs one (or all) figure/ablation experiments on the simulated testbed
and prints — optionally persists — the measured series with the
paper-shape checks.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time


def _experiments() -> dict:
    from repro.bench.ablations import ALL_ABLATIONS
    from repro.bench.audit_scenario import ALL_AUDIT_SCENARIOS
    from repro.bench.chaos_scenario import ALL_CHAOS_SCENARIOS
    from repro.bench.crash_scenario import ALL_CRASH_SCENARIOS
    from repro.bench.fastforward_scenario import ALL_FASTFORWARD_SCENARIOS
    from repro.bench.figures import ALL_FIGURES
    from repro.bench.overload_scenario import ALL_OVERLOAD_SCENARIOS
    from repro.bench.service_scenario import ALL_SCENARIOS
    out = dict(ALL_FIGURES)
    out.update(ALL_ABLATIONS)
    out.update(ALL_SCENARIOS)
    out.update(ALL_CHAOS_SCENARIOS)
    out.update(ALL_CRASH_SCENARIOS)
    out.update(ALL_AUDIT_SCENARIOS)
    out.update(ALL_OVERLOAD_SCENARIOS)
    out.update(ALL_FASTFORWARD_SCENARIOS)
    return out


def _run_experiment(func, volume, seed):
    """Call one experiment, forwarding ``seed`` only where supported."""
    import inspect
    if "seed" in inspect.signature(func).parameters:
        return func(volume, seed=seed)
    return func(volume)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        # Grid benchmark subcommand (own option surface) — see
        # repro.bench.sweep for --grid/--workers/--json.
        from repro.bench.sweep import main as sweep_main
        return sweep_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated testbed.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig10 ablation_shuffle) "
                             "or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write <id>.txt reports into")
    parser.add_argument("--volume", type=int, default=None,
                        help="override per-point simulated volume (bytes)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed for seeded scenarios "
                             "(e.g. the chaos campaigns)")
    parser.add_argument("--plot", action="store_true",
                        help="append an ASCII chart of the measured series")
    parser.add_argument("--json", action="store_true",
                        help="also write <id>.json next to the text report "
                             "(requires --out)")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record every simulator phase, coordinator "
                             "decision and service request span, then write "
                             "a Chrome trace_event JSON (or a JSONL span "
                             "log if the path ends in .jsonl)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each experiment and print the "
                             "top-20 cumulative hotspots (with --out, "
                             "also dump <id>.prof for snakeviz/pstats)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending this run to the benchmark "
                             "history ledger (BENCH_history.jsonl or "
                             "$REPRO_BENCH_HISTORY)")
    args = parser.parse_args(argv)

    table = _experiments()
    if args.list or not args.experiments:
        width = max(len(n) for n in table)
        for name, func in table.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<{width}}  {doc}")
        print(f"{'sweep':<{width}}  Grid benchmark: serial vs parallel vs "
              "warm-cache (see 'sweep --help')")
        return 0

    names = list(table) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in table]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see what is available", file=sys.stderr)
        return 2

    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer, set_tracer
        tracer = Tracer("repro.bench")
        set_tracer(tracer)

    failed = 0
    try:
        for name in names:
            t0 = time.time()
            # Experiment marker spans live detached on their own track:
            # the runs inside sequence themselves onto the timeline.
            mark = (tracer.begin(f"bench.{name}", tracer.max_ts,
                                 detached=True, track="bench")
                    if tracer is not None else None)
            profiler = None
            if args.profile:
                import cProfile
                profiler = cProfile.Profile()
                profiler.enable()
            try:
                result = _run_experiment(table[name], args.volume, args.seed)
            finally:
                if profiler is not None:
                    profiler.disable()
            if mark is not None:
                mark.end(tracer.max_ts)
            if not args.no_history:
                # Every runner invocation extends the perf trajectory the
                # regression gate (scripts/check_regression.py) compares
                # against.
                from repro.obs.regress import BenchHistory
                metrics = result.history_metrics()
                metrics["wall_s"] = time.time() - t0
                BenchHistory().append(
                    f"bench:{name}", metrics,
                    meta={"seed": args.seed, "volume": args.volume})
            text = result.render()
            if args.plot:
                from repro.bench.plotting import ascii_chart
                text += "\n\n" + ascii_chart(result)
            print(text)
            print(f"  ({time.time() - t0:.1f}s)\n")
            if profiler is not None:
                import io
                import pstats
                buf = io.StringIO()
                stats = pstats.Stats(profiler, stream=buf)
                stats.sort_stats("cumulative").print_stats(20)
                print(f"-- profile: {name} (top 20 by cumulative) --")
                print(buf.getvalue())
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{result.fig_id}.txt").write_text(text + "\n")
                if args.json:
                    import json
                    (args.out / f"{result.fig_id}.json").write_text(
                        json.dumps(result.to_dict(), indent=2) + "\n")
                if profiler is not None:
                    profiler.dump_stats(args.out / f"{result.fig_id}.prof")
            if not result.all_passed:
                failed += 1
    finally:
        if tracer is not None:
            from repro.obs import set_tracer, write_trace
            set_tracer(None)
            path = write_trace(tracer, args.trace)
            print(f"trace: {len(tracer.spans)} spans, "
                  f"{len(tracer.events)} events -> {path}")
    if failed:
        print(f"{failed} experiment(s) had failing shape checks",
              file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
