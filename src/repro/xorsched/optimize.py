"""Common-subexpression elimination for XOR schedules ("smart scheduling").

Implements the pair-extraction scheduling of Luo et al. (IEEE TC'14),
which Zerasure and Cerasure both build on: repeatedly find the pair of
source packets that co-occurs in the most output rows, compute it once
into a temporary, and substitute. Each extraction of a pair appearing
in ``c`` rows saves ``c - 1`` XORs.

Pair counting is vectorized (per the HPC guide): with the row/column
incidence matrix ``R``, the co-occurrence counts are ``R.T @ R``, so
each extraction round costs one small matmul instead of a Python loop
over all pairs — this is what keeps wide-stripe (k ~ 48) schedule
construction tractable.
"""

from __future__ import annotations

import numpy as np

from repro.xorsched.schedule import XorSchedule


def cse_optimize(bitmatrix: np.ndarray, k: int, m: int, w: int,
                 max_temps: int | None = None) -> XorSchedule:
    """Build a CSE-optimized schedule from a parity bitmatrix.

    Parameters
    ----------
    bitmatrix:
        ``(m*w, k*w)`` binary parity bitmatrix.
    k, m, w:
        Code geometry (validated against the bitmatrix shape).
    max_temps:
        Optional cap on temporaries (models bounded scratch space).

    Returns
    -------
    XorSchedule
        Schedule whose execution is bit-identical to the naive one but
        with fewer XORs whenever shared pairs exist.
    """
    mw, kw = bitmatrix.shape
    if mw != m * w or kw != k * w:
        raise ValueError(f"bitmatrix shape {bitmatrix.shape} != ({m*w}, {k*w})")
    # Incidence matrix with room for temporary columns. float32 so the
    # co-occurrence product below hits BLAS; entries are 0/1 and the
    # counts it accumulates stay far below 2**24, so every value is
    # exact and the greedy argmax choice is unchanged.
    cap = max_temps if max_temps is not None else kw  # temps rarely exceed kw
    R = np.zeros((mw, kw + cap), dtype=np.float32)
    R[:, :kw] = bitmatrix != 0
    ncols = kw
    temp_defs: list[tuple[int, int, int]] = []  # (temp_id, a, b)
    while max_temps is None or len(temp_defs) < max_temps:
        if len(temp_defs) >= cap:  # safety for the default sizing
            break
        view = R[:, :ncols]
        co = view.T @ view
        np.fill_diagonal(co, 0)
        flat = int(np.argmax(co))
        a, b = divmod(flat, ncols)
        if co[a, b] < 2:
            break
        if a > b:
            a, b = b, a
        t = kw + mw + len(temp_defs)
        temp_defs.append((t, _packet_id(a, kw, mw), _packet_id(b, kw, mw)))
        both = (R[:, a] == 1) & (R[:, b] == 1)
        R[both, a] = 0
        R[both, b] = 0
        R[both, ncols] = 1
        ncols += 1
    sched = XorSchedule(k=k, m=m, w=w, num_temps=len(temp_defs))
    for t, a, b in temp_defs:
        sched.ops.append(("copy", t, a))
        sched.ops.append(("xor", t, b))
    for r in range(mw):
        dst = kw + r
        first = True
        for c in np.nonzero(R[r, :ncols])[0]:
            sched.ops.append(("copy" if first else "xor", dst, _packet_id(int(c), kw, mw)))
            first = False
    return sched


def _packet_id(col: int, kw: int, mw: int) -> int:
    """Map an incidence-matrix column to a schedule packet id.

    Columns ``0..kw-1`` are data packets (ids unchanged); columns from
    ``kw`` on are temporaries, whose packet ids start after the parity
    range at ``kw + mw``.
    """
    return col if col < kw else col + mw
