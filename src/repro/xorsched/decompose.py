"""Wide-stripe decomposition (Cerasure / ISA-L-D strategy).

Encoding RS(k, m) with k beyond the hardware stream-prefetcher's
tracking capacity (~32 streams) disables prefetching entirely. The
*decompose* workaround splits the k data columns into groups of at most
``group_size`` and encodes each group as a partial parity, XOR-folding
partials into the final parity:

    p_i = sum_j g[i, j] d_j = XOR over groups ( sum_{j in group} g[i, j] d_j )

The win: each pass touches few streams, so the prefetcher re-engages.
The cost (measured by Fig. 10/13/17 of the paper): the parity blocks
are re-read and re-written once per group — amplified write traffic and
"parity reloading" — which the trace generators reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF


def decompose_generator(parity_rows: np.ndarray, group_size: int) -> list[tuple[list[int], np.ndarray]]:
    """Split an ``(m, k)`` parity matrix into column groups.

    Returns a list of ``(column_indices, submatrix)`` pairs covering all
    k columns in order; every group has at most ``group_size`` columns.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    parity_rows = np.asarray(parity_rows)
    k = parity_rows.shape[1]
    groups = []
    for start in range(0, k, group_size):
        cols = list(range(start, min(start + group_size, k)))
        groups.append((cols, parity_rows[:, cols]))
    return groups


def encode_decomposed(field: GF, parity_rows: np.ndarray, data: np.ndarray,
                      group_size: int) -> np.ndarray:
    """Encode by group-wise partial parities (functionally identical).

    Verifiable invariant: the result equals the direct single-pass
    encode for every group size.
    """
    data = np.asarray(data, dtype=field.dtype)
    m = parity_rows.shape[0]
    parity = np.zeros((m, data.shape[1]), dtype=field.dtype)
    for cols, sub in decompose_generator(parity_rows, group_size):
        # The re-load of `parity` here is implicit in `mul_block_accumulate`;
        # the performance model charges it explicitly per group.
        for i in range(m):
            acc = parity[i]
            for jj, col in enumerate(cols):
                field.mul_block_accumulate(acc, int(sub[i, jj]), data[col])
    return parity
