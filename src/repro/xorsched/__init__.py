"""XOR-schedule machinery for bitmatrix (CRS-style) erasure codes.

This package implements the computational core of the paper's two
XOR-based baselines:

* **Zerasure** (Zhou & Tian, FAST'19) — simulated-annealing search over
  Cauchy matrix point sets, plus XOR scheduling, to minimize XOR count.
* **Cerasure** (Niu et al., ICCD'23) — greedy bitmatrix construction
  with cache-friendly scheduling and wide-stripe *decomposition*.

A schedule is an explicit list of copy/XOR operations on bit-sliced
packets; executing it on real data must (and, per the tests, does)
produce byte-identical parity to the table-lookup RS encoder.
"""

from repro.xorsched.schedule import (
    XorSchedule,
    naive_schedule,
    bitslice,
    unbitslice,
    encode_bitmatrix,
)
from repro.xorsched.optimize import cse_optimize
from repro.xorsched.anneal import anneal_cauchy_points, AnnealResult
from repro.xorsched.greedy import greedy_cauchy_points
from repro.xorsched.decompose import decompose_generator, encode_decomposed

__all__ = [
    "XorSchedule",
    "naive_schedule",
    "bitslice",
    "unbitslice",
    "encode_bitmatrix",
    "cse_optimize",
    "anneal_cauchy_points",
    "AnnealResult",
    "greedy_cauchy_points",
    "decompose_generator",
    "encode_decomposed",
]
