"""XOR schedules and bit-sliced execution.

A GF(2^w) coding matrix expands to a binary *bitmatrix* (see
:mod:`repro.gf.bitmatrix`); each output bit-row is the XOR of the input
bit-rows selected by its ones. At block granularity, a bit-row becomes
a *packet*: the bit-sliced transposition of a data block, so that XORing
whole packets performs the bit-level arithmetic on every symbol of the
block at once. This is exactly Jerasure/Zerasure/Cerasure's execution
model, and why those libraries re-read data packets many times per
block — the memory-access signature the paper measures on PM.

Packet id convention
--------------------
``0 .. k*w-1``              data packets (block-major: block j, bit b -> j*w+b)
``k*w .. (k+m)*w - 1``      parity packets
``(k+m)*w ..``              temporaries introduced by CSE optimization
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gf.arithmetic import GF


# -- bit-slicing -------------------------------------------------------


def bitslice(block: np.ndarray, w: int = 8) -> np.ndarray:
    """Transpose a symbol block into ``w`` bit-packed packets.

    ``block`` has L symbols (uint8 for w=8, uint16/uint32 for w=16,
    L % 8 == 0); the result is ``(w, L // 8)`` uint8 where packet ``b``
    packs bit ``b`` (LSB-first) of every symbol.
    """
    if w not in (8, 16):
        raise NotImplementedError("bit-sliced execution implemented for w=8/16")
    block = np.asarray(block)
    if block.ndim != 1 or block.size % 8:
        raise ValueError("block must be 1-D with length divisible by 8")
    nbytes = w // 8
    as_bytes = np.ascontiguousarray(
        block.astype(f"<u{nbytes}")
    ).view(np.uint8).reshape(-1, nbytes)
    # bits[s, byte, 7-i] = bit i of byte `byte` of symbol s
    bits = np.unpackbits(as_bytes, axis=1).reshape(block.size, w // 8, 8)
    out = np.empty((w, block.size // 8), dtype=np.uint8)
    for b in range(w):
        out[b] = np.packbits(bits[:, b // 8, 7 - (b % 8)])
    return out


def unbitslice(packets: np.ndarray, w: int = 8) -> np.ndarray:
    """Inverse of :func:`bitslice`: packets ``(w, L//8)`` -> block ``(L,)``."""
    if w not in (8, 16):
        raise NotImplementedError("bit-sliced execution implemented for w=8/16")
    packets = np.asarray(packets, dtype=np.uint8)
    nsym = packets.shape[1] * 8
    bits = np.zeros((nsym, w // 8, 8), dtype=np.uint8)
    for b in range(w):
        bits[:, b // 8, 7 - (b % 8)] = np.unpackbits(packets[b])
    by = np.packbits(bits.reshape(nsym, -1), axis=1)
    if w == 8:
        return by.reshape(nsym)
    return by.view("<u2").reshape(nsym).astype(np.uint32)


# -- schedules ---------------------------------------------------------


@dataclass
class XorSchedule:
    """An executable XOR program.

    Attributes
    ----------
    k, m, w:
        Code geometry.
    ops:
        List of ``(opcode, dst, src)`` with opcode ``"copy"`` or
        ``"xor"``; packet ids follow the module convention.
    num_temps:
        Number of temporary packets the program uses.
    """

    k: int
    m: int
    w: int
    ops: list[tuple[str, int, int]] = field(default_factory=list)
    num_temps: int = 0

    @property
    def xor_count(self) -> int:
        """Number of XOR (not copy) operations — the libraries' cost metric."""
        return sum(1 for op, _, _ in self.ops if op == "xor")

    @property
    def total_ops(self) -> int:
        """All operations including copies."""
        return len(self.ops)

    def source_reads(self) -> int:
        """Total packet reads — proxy for the memory-load footprint."""
        # copy reads 1 src; xor reads src and dst
        return sum(1 if op == "copy" else 2 for op, _, _ in self.ops)

    def execute(self, data_packets: np.ndarray) -> np.ndarray:
        """Run the program on bit-sliced data.

        ``data_packets`` is ``(k*w, plen)``; returns parity packets
        ``(m*w, plen)``.
        """
        kw, plen = data_packets.shape
        if kw != self.k * self.w:
            raise ValueError(f"expected {self.k * self.w} data packets, got {kw}")
        n_out = self.m * self.w
        buf = np.zeros((kw + n_out + self.num_temps, plen), dtype=np.uint8)
        buf[:kw] = data_packets
        for op, dst, src in self.ops:
            if op == "copy":
                buf[dst] = buf[src]
            elif op == "xor":
                np.bitwise_xor(buf[dst], buf[src], out=buf[dst])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown opcode {op!r}")
        return buf[kw : kw + n_out]


def naive_schedule(bitmatrix: np.ndarray, k: int, m: int, w: int) -> XorSchedule:
    """Straight-line schedule: each output row = copy + XORs of its ones."""
    mw, kw = bitmatrix.shape
    if mw != m * w or kw != k * w:
        raise ValueError(
            f"bitmatrix shape {bitmatrix.shape} does not match (m*w={m*w}, k*w={k*w})")
    sched = XorSchedule(k=k, m=m, w=w)
    for r in range(mw):
        dst = kw + r
        srcs = np.nonzero(bitmatrix[r])[0]
        first = True
        for c in srcs:
            sched.ops.append(("copy" if first else "xor", dst, int(c)))
            first = False
    return sched


def encode_bitmatrix(field: GF, parity_bitmatrix: np.ndarray,
                     data: np.ndarray,
                     schedule: XorSchedule | None = None) -> np.ndarray:
    """Encode ``(k, L)`` data via a bitmatrix (or a prepared schedule).

    Returns ``(m, L)`` parity, byte-identical to table-lookup RS with
    the same generator. Convenience wrapper: bit-slices the data, runs
    the schedule, un-slices the parity.
    """
    data = np.asarray(data, dtype=field.dtype)
    k = data.shape[0]
    w = field.w
    if schedule is None:
        m = parity_bitmatrix.shape[0] // w
        schedule = naive_schedule(parity_bitmatrix, k, m, w)
    packets = np.vstack([bitslice(blk, w) for blk in data])
    out = schedule.execute(packets)
    m = schedule.m
    return np.vstack([unbitslice(out[i * w : (i + 1) * w], w)[None, :]
                      for i in range(m)])
