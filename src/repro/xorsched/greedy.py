"""Greedy Cauchy-matrix construction (the Cerasure strategy).

Cerasure (Niu et al., ICCD'23) replaces Zerasure's global stochastic
search with a cheap greedy pass: grow the data point set Y one column
at a time, always picking the unused field element whose Cauchy column
(against the fixed parity points X) adds the fewest bitmatrix ones,
then apply row scaling. Deterministic, fast, and usually within a few
percent of annealing — at the cost of a denser decode matrix (the
effect Figure 14 of the paper measures).
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF
from repro.gf.bitmatrix import element_bitmatrix
from repro.matrix.cauchy import cauchy_matrix, optimize_cauchy_ones


def greedy_cauchy_points(field: GF, k: int, m: int,
                         candidate_limit: int | None = None) -> tuple[list[int], list[int], np.ndarray]:
    """Greedily pick Cauchy points minimizing incremental bitmatrix ones.

    Parameters
    ----------
    candidate_limit:
        Optionally restrict the per-column candidate pool (Cerasure
        bounds its search for very wide stripes). ``None`` = scan all
        unused elements.

    Returns
    -------
    (x_points, y_points, parity)
        Parity is the row-scaled ``(m, k)`` GF matrix.
    """
    if k + m > field.order:
        raise ValueError(f"k+m={k+m} exceeds field order")
    ones = np.array(
        [int(element_bitmatrix(field, e).sum()) for e in range(field.order)],
        dtype=np.int64,
    )
    # Low-valued parity points keep their bitmatrices sparse; Y is then
    # drawn greedily from everything else.
    x = list(range(m))
    y_pool = [e for e in range(field.order) if e not in set(x)]
    y: list[int] = []
    xs = np.array(x, dtype=field.dtype)
    for _ in range(k):
        pool = [e for e in y_pool if e not in y]
        if candidate_limit is not None:
            pool = pool[:candidate_limit]
        best_e, best_cost = None, None
        for e in pool:
            col = field.inv(np.bitwise_xor(xs, field.dtype(e)))
            # Normalize column by its first entry (free scaling).
            d = int(col[0])
            if d not in (0, 1):
                col = field.div(col, d)
            cost = int(ones[col].sum())
            if best_cost is None or cost < best_cost:
                best_e, best_cost = e, cost
        y.append(best_e)
    parity = cauchy_matrix(field, x, y)
    for j in range(k):
        d = int(parity[0, j])
        if d not in (0, 1):
            parity[:, j] = field.div(parity[:, j], d)
    parity = optimize_cauchy_ones(field, parity)
    return x, y, parity
