"""Simulated-annealing Cauchy-matrix search (the Zerasure strategy).

Zerasure (Zhou & Tian, FAST'19) searches the space of Cauchy point sets
(X for parity rows, Y for data columns) to minimize the XOR cost of the
resulting bitmatrix, then applies scheduling. We reproduce that with a
classic Metropolis annealer whose energy is the total bitmatrix ones of
the column-normalized Cauchy matrix.

The paper notes that for wide stripes (k > 32) "Zerasure's encoding
matrix search space is too large for its search algorithm to converge";
we reproduce this honestly with a fixed evaluation budget — the result
carries a ``converged`` flag and wide stripes exhaust the budget while
still improving.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.gf.arithmetic import GF
from repro.gf.bitmatrix import element_bitmatrix
from repro.matrix.cauchy import cauchy_matrix


@dataclass
class AnnealResult:
    """Outcome of the annealing search.

    Attributes
    ----------
    x_points, y_points:
        Best point sets found.
    parity:
        The ``(m, k)`` GF parity matrix for those points.
    energy:
        Total bitmatrix ones of ``parity`` (lower = fewer XORs).
    converged:
        False when the evaluation budget ran out while the search was
        still finding improvements (the wide-stripe failure mode).
    evaluations:
        Number of candidate matrices evaluated.
    """

    x_points: list[int]
    y_points: list[int]
    parity: np.ndarray
    energy: int
    converged: bool
    evaluations: int


def _ones_cache(field: GF) -> np.ndarray:
    """Bit weight of each field element's w x w bitmatrix."""
    return np.array(
        [int(element_bitmatrix(field, e).sum()) for e in range(field.order)],
        dtype=np.int64,
    )


def _energy(field: GF, ones: np.ndarray, x: list[int], y: list[int]) -> tuple[int, np.ndarray]:
    P = cauchy_matrix(field, x, y)
    # Column normalization (divide by row-0 entry) is free and always helps.
    for j in range(P.shape[1]):
        d = int(P[0, j])
        if d not in (0, 1):
            P[:, j] = field.div(P[:, j], d)
    return int(ones[P].sum()), P


def anneal_cauchy_points(field: GF, k: int, m: int, *,
                         budget: int = 1500,
                         t0: float = 30.0,
                         cooling: float = 0.995,
                         plateau: int = 150,
                         coverage_factor: int = 40,
                         seed: int = 0) -> AnnealResult:
    """Search Cauchy point sets minimizing bitmatrix ones.

    Parameters
    ----------
    budget:
        Maximum candidate evaluations (the FAST'19 search is similarly
        budgeted; wide stripes exhaust it before plateauing).
    plateau:
        Consecutive non-improving evaluations that count as converged.
    coverage_factor:
        A search is only *trusted* (converged) when the budget allows at
        least ``coverage_factor * (k + m)`` evaluations — the search
        space grows combinatorially with the stripe width, which is why
        wide stripes (k > ~32 at the default budget) report
        non-convergence, matching the paper's missing Zerasure results.
    """
    if k + m > field.order:
        raise ValueError(f"k+m={k+m} exceeds field order")
    rng = random.Random(seed)
    ones = _ones_cache(field)
    y = list(range(k))
    x = list(range(k, k + m))
    energy, parity = _energy(field, ones, x, y)
    best = AnnealResult(list(x), list(y), parity, energy, False, 1)
    temp = t0
    since_improve = 0
    evals = 1
    while evals < budget and since_improve < plateau:
        # Move: swap one point (from x or y) for an unused field element.
        used = set(x) | set(y)
        candidates = [e for e in range(field.order) if e not in used]
        if not candidates:
            break
        side, idx = (x, rng.randrange(m)) if rng.random() < 0.5 else (y, rng.randrange(k))
        old = side[idx]
        side[idx] = rng.choice(candidates)
        new_energy, new_parity = _energy(field, ones, x, y)
        evals += 1
        delta = new_energy - energy
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-9)):
            energy = new_energy
            if energy < best.energy:
                best = AnnealResult(list(x), list(y), new_parity, energy, False, evals)
                since_improve = 0
            else:
                since_improve += 1
        else:
            side[idx] = old
            since_improve += 1
        temp *= cooling
    best.converged = (since_improve >= plateau
                      and coverage_factor * (k + m) <= budget)
    best.evaluations = evals
    # Final deterministic polish: the same row-scaling normalization the
    # greedy search applies (dividing a parity row by a constant
    # preserves MDS and often sheds bitmatrix ones).
    from repro.matrix.cauchy import optimize_cauchy_ones
    best.parity = optimize_cauchy_ones(field, best.parity)
    best.energy = int(ones[best.parity].sum())
    return best
