"""Functional erasure codecs (bit-exact, NumPy-vectorized).

These classes do *real* coding — they are used both to verify
correctness (tests encode/corrupt/decode round-trips) and as the
functional halves of the library facades in :mod:`repro.libs`, whose
performance halves emit memory-access traces for the simulator.
"""

from repro.codes.stripe import Stripe, split_blocks, join_blocks
from repro.codes.rs import RSCode
from repro.codes.lrc import LRCCode

__all__ = ["Stripe", "split_blocks", "join_blocks", "RSCode", "LRCCode"]
