"""Reed-Solomon RS(k+m, k) codec over GF(2^w).

The table-lookup encode path (one pass over each data block, multiply-
accumulate into parity accumulators) mirrors ISA-L's
``ec_encode_data``; decode inverts the surviving rows of the generator
matrix, exactly like ``gf_gen_decode_matrix`` in ISA-L's examples.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF, gf8
from repro.matrix.invert import gf_invert_matrix
from repro.matrix.vandermonde import systematic_vandermonde
from repro.matrix.cauchy import systematic_cauchy
from repro.codes.stripe import Stripe


class RSCode:
    """Systematic Reed-Solomon code.

    Parameters
    ----------
    k:
        Number of data blocks per stripe.
    m:
        Number of parity blocks per stripe.
    field:
        GF instance; defaults to GF(2^8) (the paper's field).
    matrix:
        ``"vandermonde"`` (ISA-L's default) or ``"cauchy"``.

    Examples
    --------
    >>> code = RSCode(4, 2)
    >>> data = np.arange(4 * 8, dtype=np.uint8).reshape(4, 8)
    >>> stripe = code.encode(data)
    >>> survivors = stripe.erase([0, 5])
    >>> recovered = code.decode(survivors, erased=[0, 5])
    >>> bool(np.array_equal(recovered[0], data[0]))
    True
    """

    def __init__(self, k: int, m: int, field: GF | None = None,
                 matrix: str = "vandermonde"):
        if k < 1 or m < 1:
            raise ValueError(f"k and m must be positive, got k={k} m={m}")
        self.field = field or gf8
        if k + m > self.field.order:
            raise ValueError(
                f"RS({k + m},{k}) needs k+m <= {self.field.order} in GF(2^{self.field.w})"
            )
        self.k = k
        self.m = m
        self.matrix_kind = matrix
        if matrix == "vandermonde":
            self.generator = systematic_vandermonde(self.field, k, m)
        elif matrix == "cauchy":
            self.generator = systematic_cauchy(self.field, k, m)
        else:
            raise ValueError(f"unknown matrix kind {matrix!r}")
        #: The m x k parity-coefficient block (bottom of the generator).
        self.parity_rows = self.generator[k:]

    # -- encode ---------------------------------------------------------

    def encode(self, data: np.ndarray) -> Stripe:
        """Encode ``(k, block_len)`` data into a full stripe.

        Single pass over each data block: ``parity[i] ^= g[i,j] * data[j]``.
        """
        data = np.asarray(data, dtype=self.field.dtype)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(f"expected (k={self.k}, block_len) data, got {data.shape}")
        parity = self.field.matmul(self.parity_rows, data)
        return Stripe(data=data, parity=parity)

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Return only the parity matrix for ``(k, block_len)`` data."""
        return self.encode(data).parity

    def update_parity(self, parity: np.ndarray, index: int,
                      old_block: np.ndarray, new_block: np.ndarray) -> np.ndarray:
        """Incremental parity update after overwriting one data block.

        Uses RS linearity: ``p' = p + g[:, index] * (old ^ new)``. This
        is the delta-update path PM stores use for small writes.
        """
        if not 0 <= index < self.k:
            raise IndexError(f"data block index {index} out of range")
        delta = np.bitwise_xor(
            np.asarray(old_block, dtype=self.field.dtype),
            np.asarray(new_block, dtype=self.field.dtype),
        )
        out = np.array(parity, dtype=self.field.dtype, copy=True)
        for i in range(self.m):
            self.field.mul_block_accumulate(out[i], int(self.parity_rows[i, index]), delta)
        return out

    # -- decode ---------------------------------------------------------

    def decode_matrix(self, survivors: list[int], erased: list[int]) -> np.ndarray:
        """Rows that rebuild ``erased`` blocks from ``survivors[:k]``.

        ``survivors`` and ``erased`` are stripe-global indices
        (0..k-1 data, k..k+m-1 parity). Returns ``(len(erased), k)``.
        """
        sub = self.generator[survivors[: self.k]]
        inv = gf_invert_matrix(self.field, sub)
        rows = []
        for e in erased:
            if e < self.k:
                rows.append(inv[e])
            else:
                # Erased parity: re-encode from decoded data rows.
                rows.append(self.field.matmul(
                    self.generator[e][None, :], inv)[0])
        return np.vstack(rows)

    def decode(self, available: dict[int, np.ndarray], erased) -> dict[int, np.ndarray]:
        """Recover the ``erased`` blocks from any >= k surviving blocks.

        Parameters
        ----------
        available:
            Mapping stripe-global index -> block array.
        erased:
            Iterable of stripe-global indices to rebuild.

        Returns
        -------
        dict mapping each erased index to its reconstructed block.
        """
        erased = list(erased)
        if len(erased) > self.m:
            raise ValueError(
                f"cannot repair {len(erased)} erasures with m={self.m}")
        survivors = sorted(available)
        if len(survivors) < self.k:
            raise ValueError(
                f"need at least k={self.k} surviving blocks, have {len(survivors)}")
        use = survivors[: self.k]
        D = self.decode_matrix(use, erased)
        src = np.vstack([available[i] for i in use])
        out = self.field.matmul(D, src)
        return {e: out[i] for i, e in enumerate(erased)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(k={self.k}, m={self.m}, matrix={self.matrix_kind!r})"
