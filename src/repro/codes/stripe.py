"""Stripe and block layout helpers.

A *stripe* is ``k`` data blocks plus ``m`` parity blocks of equal size.
These helpers slice flat byte buffers into block matrices (views where
possible, per the HPC guide's no-copies advice) and back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def split_blocks(data: np.ndarray | bytes, k: int, pad: bool = True) -> np.ndarray:
    """Reshape a flat byte buffer into a ``(k, block_len)`` uint8 matrix.

    If ``pad`` and the length is not divisible by ``k``, zero-pads the
    tail (standard stripe padding); otherwise raises ``ValueError``.
    Returns a view when no padding is needed.
    """
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8).ravel()
    rem = len(buf) % k
    if rem:
        if not pad:
            raise ValueError(f"length {len(buf)} not divisible by k={k}")
        buf = np.concatenate([buf, np.zeros(k - rem, dtype=np.uint8)])
    return buf.reshape(k, -1)


def join_blocks(blocks: np.ndarray, length: int | None = None) -> bytes:
    """Flatten a block matrix back to bytes, truncating padding."""
    flat = np.asarray(blocks, dtype=np.uint8).reshape(-1)
    if length is not None:
        flat = flat[:length]
    return flat.tobytes()


@dataclass
class Stripe:
    """One erasure-coded stripe: ``k`` data + ``m`` parity blocks.

    Attributes
    ----------
    data:
        ``(k, block_len)`` uint8 array.
    parity:
        ``(m, block_len)`` uint8 array.
    """

    data: np.ndarray
    parity: np.ndarray

    def __post_init__(self):
        # Preserve the symbol dtype (uint8 for GF(2^8), uint32 for GF(2^16)).
        self.data = np.asarray(self.data)
        self.parity = np.asarray(self.parity)
        if self.data.ndim != 2 or self.parity.ndim != 2:
            raise ValueError("data and parity must be 2-D block matrices")
        if self.data.shape[1] != self.parity.shape[1]:
            raise ValueError("data and parity block lengths differ")

    @property
    def k(self) -> int:
        """Number of data blocks."""
        return self.data.shape[0]

    @property
    def m(self) -> int:
        """Number of parity blocks."""
        return self.parity.shape[0]

    @property
    def block_len(self) -> int:
        """Block length in bytes."""
        return self.data.shape[1]

    def blocks(self) -> np.ndarray:
        """All ``k+m`` blocks stacked data-first."""
        return np.vstack([self.data, self.parity])

    def erase(self, indices) -> dict[int, np.ndarray]:
        """Return surviving blocks as ``{index: block}``, dropping ``indices``.

        Indices are stripe-global: ``0..k-1`` data, ``k..k+m-1`` parity.
        """
        erased = set(indices)
        all_blocks = self.blocks()
        return {i: all_blocks[i] for i in range(self.k + self.m) if i not in erased}
