"""Locally Repairable Codes LRC(k, m, l) (Azure-style).

``k`` data blocks are split into ``l`` local groups; each group gets one
XOR local parity, and ``m`` global RS parities cover all data. Single
erasures repair locally (reading only the group), matching the paper's
§4.1.2 "Other Coding Tasks" discussion: LRC encoding still reads all
``k`` data blocks, so its load bottleneck is the same as RS — plus
extra stores for the local parities (the effect Figure 16 measures).
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF, gf8
from repro.codes.rs import RSCode


class LRCCode:
    """LRC(k, m, l): k data, m global parities, l local XOR parities.

    Block index layout (stripe-global):
    ``0..k-1`` data, ``k..k+m-1`` global parity, ``k+m..k+m+l-1`` local
    parity (one per group, groups are contiguous runs of data blocks).
    """

    def __init__(self, k: int, m: int, l: int, field: GF | None = None):
        if l < 1 or l > k:
            raise ValueError(f"need 1 <= l <= k, got l={l} k={k}")
        if k % l:
            raise ValueError(f"k={k} must divide evenly into l={l} groups")
        self.k, self.m, self.l = k, m, l
        self.group_size = k // l
        self.field = field or gf8
        self.rs = RSCode(k, m, field=self.field)

    @property
    def total_blocks(self) -> int:
        """k + m + l blocks per stripe."""
        return self.k + self.m + self.l

    def group_of(self, data_index: int) -> int:
        """Local group that data block ``data_index`` belongs to."""
        if not 0 <= data_index < self.k:
            raise IndexError(f"data index {data_index} out of range")
        return data_index // self.group_size

    def group_members(self, group: int) -> list[int]:
        """Data block indices of one local group."""
        if not 0 <= group < self.l:
            raise IndexError(f"group {group} out of range")
        start = group * self.group_size
        return list(range(start, start + self.group_size))

    def encode(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode data into ``(global_parity, local_parity)`` matrices.

        ``data`` is ``(k, block_len)``; returns ``(m, block_len)`` and
        ``(l, block_len)`` arrays.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[0] != self.k:
            raise ValueError(f"expected k={self.k} data blocks, got {data.shape[0]}")
        global_parity = self.rs.encode_blocks(data)
        local_parity = np.zeros((self.l, data.shape[1]), dtype=np.uint8)
        for g in range(self.l):
            np.bitwise_xor.reduce(
                data[g * self.group_size : (g + 1) * self.group_size],
                axis=0,
                out=local_parity[g],
            )
        return global_parity, local_parity

    def repair_local(self, group: int, available: dict[int, np.ndarray]) -> np.ndarray:
        """Repair one erased block of ``group`` using only that group.

        ``available`` maps stripe-global indices to blocks and must
        contain all but one of the group's members plus (or including)
        the group's local parity at index ``k + m + group``.
        """
        members = self.group_members(group)
        lp_index = self.k + self.m + group
        needed = [i for i in members if i in available]
        if lp_index not in available:
            raise ValueError(f"local parity block {lp_index} unavailable")
        if len(needed) != len(members) - 1:
            raise ValueError("local repair needs exactly one erasure in the group")
        acc = np.array(available[lp_index], dtype=np.uint8, copy=True)
        for i in needed:
            acc ^= available[i]
        return acc

    def decode(self, available: dict[int, np.ndarray], erased) -> dict[int, np.ndarray]:
        """Repair erasures, preferring local repair when possible.

        Falls back to global RS decoding for multi-erasure groups or
        erased global parities. Local parities are re-encoded last.
        """
        erased = list(erased)
        out: dict[int, np.ndarray] = {}
        work = dict(available)
        # Pass 1: local repairs of singly-erased data blocks.
        remaining = []
        for e in sorted(erased):
            if e < self.k:
                group = self.group_of(e)
                members = self.group_members(e // self.group_size)
                missing = [i for i in members if i not in work]
                if missing == [e] and (self.k + self.m + group) in work:
                    out[e] = self.repair_local(group, work)
                    work[e] = out[e]
                    continue
            remaining.append(e)
        # Pass 2: global repairs through RS.
        rs_remaining = [e for e in remaining if e < self.k + self.m]
        if rs_remaining:
            rs_avail = {i: b for i, b in work.items() if i < self.k + self.m}
            recovered = self.rs.decode(rs_avail, rs_remaining)
            out.update(recovered)
            work.update(recovered)
        # Pass 3: rebuild erased local parities from (now complete) data.
        for e in remaining:
            if e >= self.k + self.m:
                g = e - self.k - self.m
                members = self.group_members(g)
                if any(i not in work for i in members):
                    raise ValueError("cannot rebuild local parity: data missing")
                acc = np.zeros_like(work[members[0]])
                for i in members:
                    acc ^= work[i]
                out[e] = acc
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LRCCode(k={self.k}, m={self.m}, l={self.l})"
