"""Deterministic chaos campaigns (``repro.chaos``).

The paper's reliability story (§2.1 error taxonomy) assumes a system
that keeps serving correct data while media faults, device loss and
overload happen *concurrently*. This package is the adversarial half of
that demonstration: a fault-campaign engine that drives timed schedules
of bit flips, scribbles, block/device loss, transient-fault storms and
traffic bursts — all on the simulated clock, all seeded — against a
running :class:`~repro.service.service.ErasureCodingService` with the
self-healing loop (:mod:`repro.service.healing`) attached, and audits
at the end that **no acknowledged write was lost or silently
corrupted**.

* :class:`~repro.chaos.campaign.Campaign` /
  :class:`~repro.chaos.campaign.ChaosAction` — a declarative, seeded
  fault schedule; canned campaigns in
  :data:`~repro.chaos.campaign.CANNED_CAMPAIGNS`.
* :class:`~repro.chaos.engine.CampaignEngine` — interleaves traffic,
  faults and self-healing deterministically; trace-instrumented via
  :mod:`repro.obs`.
* :class:`~repro.chaos.audit.DurabilityAuditor` — records every
  acknowledged write and verifies all of them at campaign end.
* :class:`~repro.chaos.report.CampaignReport` — MTTR, availability and
  durability statistics, rendered byte-identically for a given seed.

Run one from the CLI: ``python -m repro.bench chaos --seed 0``.
"""

from repro.chaos.audit import AuditReport, DurabilityAuditor
from repro.chaos.campaign import (
    CANNED_CAMPAIGNS,
    OVERLOAD_CAMPAIGNS,
    Campaign,
    ChaosAction,
    corruption_wave,
    flash_crowd,
    kitchen_sink,
    retry_storm,
    retry_storm_overload,
    single_device_loss,
    slow_device_tail,
)
from repro.chaos.engine import CampaignEngine
from repro.chaos.report import CampaignReport

__all__ = [
    "ChaosAction",
    "Campaign",
    "CANNED_CAMPAIGNS",
    "OVERLOAD_CAMPAIGNS",
    "single_device_loss",
    "corruption_wave",
    "retry_storm",
    "retry_storm_overload",
    "flash_crowd",
    "slow_device_tail",
    "kitchen_sink",
    "CampaignEngine",
    "DurabilityAuditor",
    "AuditReport",
    "CampaignReport",
]
