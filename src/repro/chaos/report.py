"""Campaign outcome: MTTR, availability and durability statistics.

Everything in a :class:`CampaignReport` is derived from simulated-clock
quantities and seeded randomness, so :meth:`CampaignReport.render` is
byte-identical across runs of the same campaign + seed — the property
the reproducibility acceptance check pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.audit import AuditReport


@dataclass
class CampaignReport:
    """Everything a finished campaign measured."""

    name: str
    seed: int
    duration_ns: float
    #: ``ChaosAction.describe()`` lines, in firing order.
    action_log: list[str] = field(default_factory=list)
    #: Injected-fault counts by kind (from the injector's event log).
    faults: dict = field(default_factory=dict)
    #: Service counters snapshot.
    counters: dict = field(default_factory=dict)
    #: Health summary (:meth:`~repro.service.health.HealthMonitor.summary`).
    health: dict = field(default_factory=dict)
    #: Per-operation latency summaries.
    latency: dict = field(default_factory=dict)
    audit: AuditReport = field(default_factory=AuditReport)
    #: Simulated instant the system was fully healed again (no loss
    #: marks, empty repair backlog, breakers closed); None if never.
    settled_at_ns: float | None = None
    notes: list[str] = field(default_factory=list)

    # -- derived statistics ------------------------------------------------

    @property
    def requests(self) -> int:
        return self.counters.get("requests", 0)

    @property
    def completed(self) -> int:
        return self.counters.get("completed", 0)

    @property
    def availability(self) -> float:
        """Completed fraction of all requests that reached the service."""
        total = self.requests
        return self.completed / total if total else 1.0

    @property
    def mean_mttr_ns(self) -> float:
        """Mean breaker OPEN -> CLOSED repair time (0 when no incident)."""
        return self.health.get("mean_mttr_ns", 0.0)

    @property
    def durability_clean(self) -> bool:
        return self.audit.clean

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_ns": self.duration_ns,
            "actions": list(self.action_log),
            "faults": dict(sorted(self.faults.items())),
            "counters": dict(sorted(self.counters.items())),
            "health": self.health,
            "latency": self.latency,
            "availability": self.availability,
            "mean_mttr_ns": self.mean_mttr_ns,
            "settled_at_ns": self.settled_at_ns,
            "audit": {
                "acknowledged": self.audit.acknowledged,
                "intact": self.audit.intact,
                "lost": list(self.audit.lost),
                "corrupted": list(self.audit.corrupted),
                "read_checks": self.audit.read_checks,
                "read_mismatches": self.audit.read_mismatches,
                "clean": self.audit.clean,
            },
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """The campaign report block (deterministic for a given seed)."""
        lines = [
            f"== chaos campaign: {self.name} (seed {self.seed}) ==",
            f"  simulated duration  {self.duration_ns / 1e6:.2f} ms",
            "  -- schedule --",
        ]
        lines += [f"    {entry}" for entry in self.action_log]
        lines.append("  -- faults injected --")
        for kind in sorted(self.faults):
            lines.append(f"    {kind:<15} {self.faults[kind]}")
        lines.append("  -- service --")
        for name in sorted(self.counters):
            lines.append(f"    {name:<28} {self.counters[name]}")
        for op in sorted(self.latency):
            s = self.latency[op]
            lines.append(
                f"    {op + ' latency':<28} n={s['count']} "
                f"p50={s['p50_ns'] / 1e3:.1f}us p99={s['p99_ns'] / 1e3:.1f}us")
        lines.append(f"    {'availability':<28} {self.availability:.4f}")
        lines.append("  -- health --")
        lines.append(f"    transitions={self.health.get('transitions', 0)} "
                     f"incidents_resolved="
                     f"{self.health.get('incidents_resolved', 0)} "
                     f"mean_mttr={self.mean_mttr_ns / 1e6:.2f}ms")
        for dev in sorted(self.health.get("devices", {})):
            d = self.health["devices"][dev]
            lines.append(f"    device {dev}: state={d['state']} "
                         f"errors={d['errors']}")
        settled = (f"{self.settled_at_ns / 1e6:.2f} ms"
                   if self.settled_at_ns is not None else "NEVER")
        lines.append(f"    fully healed at {settled}")
        lines.append("  -- durability --")
        lines.append(f"    {self.audit.summary()}")
        for key in self.audit.lost:
            lines.append(f"    lost: {key}")
        for key in self.audit.corrupted:
            lines.append(f"    corrupted: {key}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
