"""Campaign and action schemas, plus the canned campaigns.

A :class:`Campaign` is pure data: geometry, base-traffic shape, a seed
and a tuple of timed :class:`ChaosAction` entries. The
:class:`~repro.chaos.engine.CampaignEngine` owns all behavior, so
campaigns are trivially serializable, comparable and replayable —
the same campaign (same seed) produces a byte-identical report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Action kinds the engine knows how to apply.
ACTION_KINDS = frozenset({
    "bit_flip",         # silent media corruption (count random blocks)
    "scribble",         # silent software wild-write (count blocks)
    "block_loss",       # detected erasure of count random blocks
    "device_loss",      # correlated loss of one block position
    "transient_storm",  # window of operation-level transient faults
    "traffic_burst",    # extra put or get wave starting at the action
    "power_cut",        # power dies; WAL recovery brings the store back
    "flash_crowd",      # oversized deadline-bearing burst (overload)
    "slow_device",      # one device serves reads slowly for a window
    "retry_storm",      # harsh per-key repeated transient faults
})


@dataclass(frozen=True, kw_only=True)
class ChaosAction:
    """One timed entry of a fault schedule.

    Attributes
    ----------
    at_ns:
        When the action fires, on the service's simulated clock.
    kind:
        One of :data:`ACTION_KINDS`.
    device:
        Target block position (``device_loss``; random targets
        otherwise).
    count:
        How many faults to inject (``bit_flip`` / ``scribble`` /
        ``block_loss``).
    length:
        Scribble run length in bytes.
    duration_ns, rate:
        Storm window length and per-operation fault probability
        (``transient_storm``).
    op, nclients, objects_per_client, payload_bytes, mean_gap_ns:
        Burst shape (``traffic_burst``; ``op`` is ``put`` or ``get`` —
        a get burst re-reads the base traffic's keys).
    policy:
        Crash outcome model (``power_cut``): ``drop`` (every unfenced
        line lost — the guaranteed minimum), ``keep`` (flushed lines
        survive the dying power), or ``tear`` (seeded adversarial
        keep/revert/tear per pending line).
    penalty_ns:
        Per-read stall a slow device adds (``slow_device``).
    deadline_slack_ns:
        Deadline budget given to every burst request (``flash_crowd``;
        also honored by ``traffic_burst``): absolute deadline =
        arrival + slack. ``inf`` (default) = no deadlines.
    note:
        Free-form label echoed in the campaign report.
    """

    at_ns: float
    kind: str
    device: int = 0
    count: int = 1
    length: int = 64
    duration_ns: float = 0.0
    rate: float = 0.8
    op: str = "put"
    policy: str = "drop"
    nclients: int = 4
    objects_per_client: int = 2
    payload_bytes: int = 1024
    mean_gap_ns: float = 2_000.0
    penalty_ns: float = 0.0
    deadline_slack_ns: float = math.inf
    note: str = ""

    def __post_init__(self):
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown action kind {self.kind!r}; "
                f"expected one of {sorted(ACTION_KINDS)}")
        if self.at_ns < 0:
            raise ValueError("actions cannot fire before t=0")
        if self.kind in ("transient_storm", "retry_storm") \
                and self.duration_ns <= 0:
            raise ValueError("a storm needs duration_ns > 0")
        if self.kind in ("traffic_burst", "flash_crowd") \
                and self.op not in ("put", "get"):
            raise ValueError(f"burst op must be put|get, got {self.op!r}")
        if self.kind == "slow_device":
            if self.duration_ns <= 0:
                raise ValueError("slow_device needs duration_ns > 0")
            if self.penalty_ns <= 0:
                raise ValueError("slow_device needs penalty_ns > 0")
        if self.kind == "power_cut" and self.policy not in (
                "drop", "keep", "tear"):
            raise ValueError(
                f"power_cut policy must be drop|keep|tear, "
                f"got {self.policy!r}")

    def describe(self) -> str:
        """One deterministic log line for the campaign report."""
        ms = self.at_ns / 1e6
        if self.kind == "device_loss":
            detail = f"device={self.device}"
        elif self.kind == "transient_storm":
            detail = (f"rate={self.rate:.2f} "
                      f"for {self.duration_ns / 1e6:.2f}ms")
        elif self.kind == "retry_storm":
            detail = (f"rate={self.rate:.2f} x{self.count}/key "
                      f"for {self.duration_ns / 1e6:.2f}ms")
        elif self.kind == "traffic_burst":
            detail = (f"{self.op} x{self.nclients}c"
                      f"x{self.objects_per_client}")
        elif self.kind == "flash_crowd":
            slack = ("inf" if math.isinf(self.deadline_slack_ns)
                     else f"{self.deadline_slack_ns / 1e6:.2f}ms")
            detail = (f"{self.op} x{self.nclients}c"
                      f"x{self.objects_per_client} slack={slack}")
        elif self.kind == "slow_device":
            detail = (f"device={self.device} "
                      f"+{self.penalty_ns / 1e6:.2f}ms "
                      f"for {self.duration_ns / 1e6:.2f}ms")
        elif self.kind == "scribble":
            detail = f"count={self.count} len={self.length}B"
        elif self.kind == "power_cut":
            detail = f"policy={self.policy}"
        else:
            detail = f"count={self.count}"
        note = f"  ({self.note})" if self.note else ""
        return f"t={ms:8.2f}ms  {self.kind:<15} {detail}{note}"


@dataclass(frozen=True, kw_only=True)
class Campaign:
    """A complete, replayable chaos schedule.

    Base traffic is generated from ``seed``: every client PUTs its
    objects early in the run, then reads them back across the rest of
    the window — so there is always acknowledged data on the line when
    the faults land.
    """

    name: str
    description: str = ""
    seed: int = 0
    k: int = 4
    m: int = 3
    block_bytes: int = 512
    duration_ns: float = 1e8
    base_clients: int = 6
    objects_per_client: int = 3
    payload_bytes: int = 900
    mean_gap_ns: float = 20_000.0
    actions: tuple[ChaosAction, ...] = field(default=())

    def __post_init__(self):
        if self.duration_ns <= 0:
            raise ValueError("campaign needs duration_ns > 0")
        late = [a for a in self.actions if a.at_ns > self.duration_ns]
        if late:
            raise ValueError(
                f"{len(late)} action(s) scheduled past the campaign "
                f"duration {self.duration_ns} ns")

    def with_seed(self, seed: int) -> "Campaign":
        """The same schedule under a different seed."""
        return replace(self, seed=seed)

    def schedule(self) -> list[ChaosAction]:
        """Actions in firing order (stable for equal times)."""
        return sorted(self.actions, key=lambda a: a.at_ns)


def single_device_loss(seed: int = 0) -> Campaign:
    """One device dies mid-run; reads degrade, the breaker trips, the
    repair queue rebuilds every stripe and the device recovers."""
    return Campaign(
        name="single_device_loss",
        description="one correlated device failure, self-healed",
        seed=seed,
        actions=(
            ChaosAction(at_ns=3e7, kind="device_loss", device=1,
                        note="device 1 dies"),
            ChaosAction(at_ns=3.2e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="clients read through the loss"),
        ),
    )


def corruption_wave(seed: int = 0) -> Campaign:
    """A burst of silent corruption (bit flips + scribbles) that only
    checksum scrubbing can find."""
    return Campaign(
        name="corruption_wave",
        description="silent media corruption wave, scrub-detected",
        seed=seed,
        actions=(
            ChaosAction(at_ns=2.5e7, kind="bit_flip", count=5,
                        note="media flips"),
            ChaosAction(at_ns=3e7, kind="scribble", count=3, length=96,
                        note="wild writes"),
            ChaosAction(at_ns=5e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="read-back under corruption"),
        ),
    )


def retry_storm(seed: int = 0) -> Campaign:
    """A transient-fault storm during a traffic burst: every operation
    hiccups, jittered backoff de-synchronizes the retries."""
    return Campaign(
        name="retry_storm",
        description="transient-fault storm absorbed by jittered retry",
        seed=seed,
        actions=(
            ChaosAction(at_ns=3e7, kind="transient_storm",
                        duration_ns=3e7, rate=0.7,
                        note="controller hiccups"),
            ChaosAction(at_ns=3.2e7, kind="traffic_burst", op="put",
                        nclients=5, objects_per_client=2,
                        note="burst inside the storm"),
        ),
    )


def kitchen_sink(seed: int = 0) -> Campaign:
    """Everything at once: device loss, then a corruption wave, then a
    retry storm under burst load, plus stray block losses — the
    acceptance campaign that must still end durability-clean."""
    return Campaign(
        name="kitchen_sink",
        description="device loss + corruption wave + retry storm, "
                    "concurrently self-healed",
        seed=seed,
        duration_ns=2e8,
        actions=(
            ChaosAction(at_ns=2.5e7, kind="device_loss", device=2,
                        note="device 2 dies"),
            ChaosAction(at_ns=3e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="degraded read wave"),
            ChaosAction(at_ns=6e7, kind="bit_flip", count=4,
                        note="corruption wave begins"),
            ChaosAction(at_ns=6.5e7, kind="scribble", count=2, length=80,
                        note="corruption wave continues"),
            ChaosAction(at_ns=9e7, kind="block_loss", count=2,
                        note="stray region losses"),
            ChaosAction(at_ns=1.1e8, kind="transient_storm",
                        duration_ns=3e7, rate=0.6,
                        note="retry storm"),
            ChaosAction(at_ns=1.15e8, kind="traffic_burst", op="put",
                        nclients=5, objects_per_client=2,
                        note="burst inside the storm"),
            ChaosAction(at_ns=1.5e8, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="final read wave"),
        ),
    )


def power_cycle(seed: int = 0) -> Campaign:
    """Power dies twice mid-run — once under the adversarial tearing
    model, once between waves — and WAL recovery must bring every
    acknowledged write back, re-queue in-flight requests and keep the
    read-back waves durability-clean."""
    return Campaign(
        name="power_cycle",
        description="two power cuts, WAL-recovered, durability-clean",
        seed=seed,
        actions=(
            ChaosAction(at_ns=2.5e7, kind="power_cut", policy="tear",
                        note="power dies mid-ingest, caches tear"),
            ChaosAction(at_ns=3e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="read-back after first recovery"),
            ChaosAction(at_ns=5.5e7, kind="traffic_burst", op="put",
                        nclients=4, objects_per_client=2,
                        note="fresh writes between cuts"),
            ChaosAction(at_ns=7e7, kind="power_cut", policy="drop",
                        note="second cut: guaranteed-minimum outcome"),
            ChaosAction(at_ns=8e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        note="final read-back"),
        ),
    )


#: The canned campaign library, by name.
CANNED_CAMPAIGNS = {
    "single_device_loss": single_device_loss,
    "corruption_wave": corruption_wave,
    "retry_storm": retry_storm,
    "kitchen_sink": kitchen_sink,
    "power_cycle": power_cycle,
}


def flash_crowd(seed: int = 0) -> Campaign:
    """A deadline-bearing crowd ~10x the base load slams the service
    mid-run: shed rate must stay bounded, brownout must engage under
    the sustained pressure and disengage once the crowd passes, and
    every acked byte must survive."""
    return Campaign(
        name="flash_crowd",
        description="10x deadline-bearing crowd; bounded shed, "
                    "brownout cycle, zero acked loss",
        seed=seed,
        actions=(
            ChaosAction(at_ns=3e7, kind="flash_crowd", op="put",
                        nclients=30, objects_per_client=4,
                        mean_gap_ns=400.0, deadline_slack_ns=4e6,
                        note="crowd of deadline writes"),
            ChaosAction(at_ns=3.4e7, kind="flash_crowd", op="get",
                        nclients=6, objects_per_client=3,
                        mean_gap_ns=600.0, deadline_slack_ns=4e6,
                        note="crowd re-reads under pressure"),
            ChaosAction(at_ns=7e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        mean_gap_ns=50_000.0,
                        note="calm read-back after the crowd"),
        ),
    )


def slow_device_tail(seed: int = 0) -> Campaign:
    """One device turns slow (not dead) for a long window while clients
    read: hedged reads must cap the tail by racing the degraded path
    against the stalled primary."""
    return Campaign(
        name="slow_device_tail",
        description="slow device window; hedged reads cap the tail",
        seed=seed,
        actions=(
            ChaosAction(at_ns=2.5e7, kind="slow_device", device=1,
                        penalty_ns=3e6, duration_ns=5e7,
                        note="device 1 turns slow"),
            ChaosAction(at_ns=3e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        mean_gap_ns=20_000.0,
                        note="reads into the slow window"),
            ChaosAction(at_ns=8.5e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        mean_gap_ns=20_000.0,
                        note="reads after recovery"),
        ),
    )


def retry_storm_overload(seed: int = 0) -> Campaign:
    """A harsh correlated-fault window (every key fails repeatedly)
    under burst load — the metastability scenario. With retry budgets
    the storm is absorbed; the no-budget counterfactual collapses."""
    return Campaign(
        name="retry_storm_overload",
        description="harsh per-key fault storm under load; retry "
                    "budget prevents metastable collapse",
        seed=seed,
        actions=(
            ChaosAction(at_ns=3e7, kind="retry_storm",
                        duration_ns=1e7, rate=1.0, count=5,
                        note="every key fails repeatedly"),
            ChaosAction(at_ns=3.1e7, kind="traffic_burst", op="put",
                        nclients=6, objects_per_client=2,
                        mean_gap_ns=2_000.0,
                        note="writes inside the storm"),
            ChaosAction(at_ns=4.2e7, kind="flash_crowd", op="put",
                        nclients=25, objects_per_client=4,
                        mean_gap_ns=1_000.0, deadline_slack_ns=3e7,
                        note="deadline crowd lands on the backlog"),
            ChaosAction(at_ns=7e7, kind="traffic_burst", op="get",
                        nclients=6, objects_per_client=3,
                        mean_gap_ns=30_000.0,
                        note="post-storm read-back"),
        ),
    )


#: Overload-control campaigns (separate library: these are meant to run
#: with ``ServiceConfig.overload`` set, and keeping them out of
#: :data:`CANNED_CAMPAIGNS` leaves the classic chaos bench scenario —
#: and its regression-gated history metrics — untouched).
OVERLOAD_CAMPAIGNS = {
    "flash_crowd": flash_crowd,
    "slow_device_tail": slow_device_tail,
    "retry_storm_overload": retry_storm_overload,
}
