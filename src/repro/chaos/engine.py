"""The campaign engine: traffic + faults + self-healing, interleaved.

Runs one :class:`~repro.chaos.campaign.Campaign` against a freshly
built :class:`~repro.service.service.ErasureCodingService` with a
:class:`~repro.service.healing.SelfHealer` attached:

1. Base traffic (seeded puts early, read-backs across the window) is
   merged with any ``traffic_burst`` actions into one arrival stream.
2. The stream is drained *window by window* between scheduled actions,
   so every fault lands at its exact simulated instant relative to the
   requests around it; the service spends request gaps on self-healing.
3. After the last arrival the engine keeps granting maintenance windows
   until the system *settles* — no loss marks, empty repair backlog,
   every breaker closed — or a bounded patience runs out.
4. A final full scrub plus the :class:`~repro.chaos.audit.
   DurabilityAuditor` verdict close the loop: campaign reports carry
   MTTR, availability and durability, and are byte-identical per seed.

The engine is trace-instrumented: each campaign is a ``chaos.campaign``
span, every applied action a ``chaos.<kind>`` event on the service
timeline (visible alongside request and healer spans under
``python -m repro.bench chaos --trace out.json``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.chaos.audit import DurabilityAuditor
from repro.chaos.campaign import Campaign, ChaosAction
from repro.chaos.report import CampaignReport
from repro.crash.recovery import ServiceRecovery
from repro.obs import get_tracer
from repro.pmstore.faults import FaultEvent, FaultInjector
from repro.pmstore.pmem import keep_flushed, seeded_line_policy
from repro.pmstore.scrubber import Scrubber
from repro.service import (
    ErasureCodingService,
    SelfHealer,
    ServiceConfig,
    get_wave,
    put_wave,
)
from repro.service.retry import RetryPolicy


class CampaignEngine:
    """Drives one campaign; :meth:`run` returns the report.

    Parameters
    ----------
    campaign:
        The schedule to execute.
    config:
        Service knobs (default: jittered retries, roomy queue).
    healer:
        Self-healing loop (default: stock :class:`SelfHealer`).
    settle_patience:
        Maintenance windows (of ``settle_window_ns`` each) granted
        after the last arrival before giving up on full healing.
    """

    def __init__(self, campaign: Campaign, *,
                 config: ServiceConfig | None = None,
                 healer: SelfHealer | None = None,
                 settle_window_ns: float = 2e6,
                 settle_patience: int = 400):
        self.campaign = campaign
        # verify_reads: a chaos run must never serve silent corruption
        # to a client — reads checksum-verify (and repair) their stripe
        # first, closing the window between a corruption action and the
        # next scheduled scrub slice.
        self.config = config or ServiceConfig(
            max_queue_depth=32, max_batch=8, verify_reads=True,
            retry=RetryPolicy(jitter=0.5, seed=campaign.seed))
        self.healer = healer or SelfHealer()
        self.settle_window_ns = settle_window_ns
        self.settle_patience = settle_patience
        self.service: ErasureCodingService | None = None
        self.injector: FaultInjector | None = None
        self.auditor = DurabilityAuditor()
        #: Power-cut executor (``power_cut`` actions); built in :meth:`run`.
        self.recovery: ServiceRecovery | None = None

    # -- traffic -----------------------------------------------------------

    def _base_traffic(self) -> list:
        """Seeded puts early, read-backs spread across the window."""
        c = self.campaign
        puts = put_wave(c.base_clients, c.objects_per_client,
                        payload_bytes=c.payload_bytes,
                        mean_gap_ns=c.mean_gap_ns, seed=c.seed)
        gets = get_wave(c.base_clients, c.objects_per_client,
                        mean_gap_ns=c.duration_ns / 10,
                        start_ns=c.duration_ns * 0.15, seed=c.seed + 1)
        return sorted(puts + gets, key=lambda r: (r.arrival_ns, r.key))

    def _burst_traffic(self, action: ChaosAction, index: int) -> list:
        """Extra wave started by a ``traffic_burst``/``flash_crowd``
        action (a flash crowd is just a burst that carries deadlines)."""
        c = self.campaign
        if action.op == "put":
            reqs = put_wave(action.nclients, action.objects_per_client,
                            payload_bytes=action.payload_bytes,
                            mean_gap_ns=action.mean_gap_ns,
                            start_ns=action.at_ns,
                            seed=c.seed + 100 + index,
                            deadline_slack_ns=action.deadline_slack_ns)
            # Burst keys live in their own namespace so durability
            # accounting never races a base-traffic overwrite.
            return [replace(r, key=f"burst{index}/{r.key}") for r in reqs]
        return get_wave(action.nclients, action.objects_per_client,
                        mean_gap_ns=action.mean_gap_ns,
                        start_ns=action.at_ns, seed=c.seed + 100 + index,
                        deadline_slack_ns=action.deadline_slack_ns)

    # -- fault application -------------------------------------------------

    def _apply(self, action: ChaosAction, pending: list) -> None:
        svc, inj = self.service, self.injector
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(f"chaos.{action.kind}", svc._ts(svc.clock_ns),
                         note=action.note)
        random_target = action.kind in ("bit_flip", "scribble", "block_loss")
        if random_target and svc.store.num_stripes == 0:
            return  # nothing written yet: a fault needs a target
        if action.kind == "bit_flip":
            for _ in range(action.count):
                inj.bit_flip()
        elif action.kind == "scribble":
            for _ in range(action.count):
                inj.scribble(length=action.length)
        elif action.kind == "block_loss":
            for _ in range(action.count):
                inj.block_loss()
        elif action.kind == "device_loss":
            svc.store.mark_device_lost(action.device)
            inj.events.append(FaultEvent(
                "device_loss", -1, action.device,
                f"all {svc.store.num_stripes} stripes"))
        elif action.kind == "transient_storm":
            svc.store.add_fault_hook(inj.storm_hook(
                lambda: svc.clock_ns,
                start_ns=action.at_ns,
                end_ns=action.at_ns + action.duration_ns,
                rate=action.rate))
        elif action.kind == "retry_storm":
            # Harsher than transient_storm: the same key keeps failing
            # (count times), so unbudgeted retry-with-backoff stacks —
            # the metastable-amplification scenario retry budgets cap.
            svc.store.add_fault_hook(inj.storm_hook(
                lambda: svc.clock_ns,
                start_ns=action.at_ns,
                end_ns=action.at_ns + action.duration_ns,
                rate=action.rate,
                max_failures_per_key=action.count))
            inj.events.append(FaultEvent(
                "retry_storm", -1, -1,
                f"rate={action.rate:.2f} x{action.count}/key "
                f"for {action.duration_ns / 1e6:.2f}ms"))
        elif action.kind == "slow_device":
            svc.set_device_slow(action.device, action.penalty_ns,
                                until_ns=action.at_ns + action.duration_ns)
            inj.events.append(FaultEvent(
                "slow_device", -1, action.device,
                f"+{action.penalty_ns / 1e6:.2f}ms per read "
                f"for {action.duration_ns / 1e6:.2f}ms"))
        elif action.kind in ("traffic_burst", "flash_crowd"):
            index = len(self._bursts)
            self._bursts.append(action)
            burst = self._burst_traffic(action, index)
            pending.extend(burst)
            pending.sort(key=lambda r: (r.arrival_ns, r.key))
        elif action.kind == "power_cut":
            if action.policy == "keep":
                policy = keep_flushed
            elif action.policy == "tear":
                # Deterministic per (campaign seed, cut instant).
                policy = seeded_line_policy(np.random.default_rng(
                    [self.campaign.seed, 0x9C, int(action.at_ns)]))
            else:
                policy = None  # drop every unfenced line
            episode = self.recovery.power_cut(policy)
            inj.events.append(FaultEvent(
                "power_cut", -1, -1, episode.summary()))

    # -- the run loop ------------------------------------------------------

    def _drain_until(self, pending: list, until_ns: float) -> list:
        """Feed the service every arrival up to ``until_ns``; drain."""
        svc = self.service
        due = [r for r in pending if r.arrival_ns <= until_ns]
        del pending[:len(due)]
        if due:
            svc.submit_many(due)
            results = svc.drain()
            self.auditor.observe(results)
            return results
        return []

    def _settle(self) -> float | None:
        """Grant maintenance windows until fully healed; returns the
        simulated settle instant (None when patience ran out)."""
        svc, healer = self.service, self.healer

        def healed() -> bool:
            return (not svc.store.stripes_with_losses()
                    and healer.backlog() == 0
                    and not healer.monitor.open_devices())

        for _ in range(self.settle_patience):
            if healed():
                return svc.clock_ns
            end = svc.clock_ns + self.settle_window_ns
            svc.run_maintenance(end)
            svc.clock_ns = max(svc.clock_ns, end)
        return svc.clock_ns if healed() else None

    def run(self) -> CampaignReport:
        """Execute the campaign end-to-end and report."""
        c = self.campaign
        svc = ErasureCodingService(c.k, c.m, block_bytes=c.block_bytes,
                                   config=self.config)
        svc.attach_healer(self.healer)
        self.service = svc
        self.injector = FaultInjector(svc.store, seed=c.seed)
        self.recovery = ServiceRecovery(svc, auditor=self.auditor)
        self._bursts: list[ChaosAction] = []

        tracer = get_tracer()
        campaign_span = (tracer.begin("chaos.campaign", svc._ts(0.0),
                                      detached=True, track="chaos",
                                      campaign=c.name, seed=c.seed)
                         if tracer.enabled else None)

        pending = self._base_traffic()
        action_log: list[str] = []
        for action in c.schedule():
            self._drain_until(pending, action.at_ns)
            # Spend any remaining quiet time before the action on
            # maintenance, then place the clock at the fault instant.
            svc.run_maintenance(action.at_ns)
            svc.clock_ns = max(svc.clock_ns, action.at_ns)
            self._apply(action, pending)
            action_log.append(action.describe())
        self._drain_until(pending, float("inf"))
        svc.run_maintenance(c.duration_ns)
        svc.clock_ns = max(svc.clock_ns, c.duration_ns)

        settled_at = self._settle()

        # Final full scrub: anything silent the paced slices had not
        # reached yet is found, converted and repaired here (and lands
        # in the same scrub_* service counters).
        final_scrub = Scrubber(svc.store, metrics=svc.metrics).scrub()
        audit = self.auditor.verify(svc.store)

        if campaign_span is not None:
            campaign_span.end(svc._ts(svc.clock_ns),
                              durability_clean=audit.clean)

        faults: dict[str, int] = {}
        for ev in self.injector.events:
            faults[ev.kind] = faults.get(ev.kind, 0) + 1
        snap = svc.metrics.snapshot()
        report = CampaignReport(
            name=c.name, seed=c.seed, duration_ns=c.duration_ns,
            action_log=action_log, faults=faults,
            counters=snap["counters"], latency=snap["latency"],
            health=self.healer.monitor.summary(), audit=audit,
            settled_at_ns=settled_at)
        report.notes.append(
            f"final scrub: {final_scrub.stripes_scanned} stripes, "
            f"{len(final_scrub.corrupt_blocks)} residual corrupt, "
            f"{final_scrub.repaired_blocks} repaired, "
            f"{len(final_scrub.unrepairable_stripes)} unrepairable")
        return report
