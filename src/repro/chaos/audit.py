"""Durability auditing: every acknowledged byte must survive.

The auditor sits beside the service and watches request results: each
acknowledged PUT is recorded as ``key -> sha256(payload)``; each
successful GET is checked against the recorded digest (catching *silent*
corruption the moment it reaches a client). At campaign end
:meth:`DurabilityAuditor.verify` reads every acknowledged key straight
from the store and classifies it intact / corrupted / lost — the
campaign's ground-truth durability verdict.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.service.request import RequestKind


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


@dataclass
class AuditReport:
    """End-of-campaign durability verdict."""

    acknowledged: int = 0
    intact: int = 0
    corrupted: list[str] = field(default_factory=list)
    lost: list[str] = field(default_factory=list)
    #: Mid-campaign GETs whose payload was checked against the digest.
    read_checks: int = 0
    #: Mid-campaign GETs that returned wrong bytes (served-silent
    #: corruption — a durability escape even if later scrubbed).
    read_mismatches: int = 0

    @property
    def clean(self) -> bool:
        """True when every acknowledged write survived, bit-exact, and
        no client was ever served corrupt bytes."""
        return (not self.corrupted and not self.lost
                and self.read_mismatches == 0)

    def summary(self) -> str:
        """One deterministic report line."""
        verdict = "CLEAN" if self.clean else "DIRTY"
        return (f"acknowledged={self.acknowledged} intact={self.intact} "
                f"lost={len(self.lost)} corrupted={len(self.corrupted)} "
                f"read_checks={self.read_checks} "
                f"read_mismatches={self.read_mismatches}  [{verdict}]")


class DurabilityAuditor:
    """Records acknowledged writes; verifies them against the store."""

    def __init__(self):
        #: Latest acknowledged digest per key (overwrites supersede).
        self._acked: dict[str, str] = {}
        self.read_checks = 0
        self.read_mismatches = 0
        self.mismatched_keys: list[str] = []

    @property
    def acknowledged_keys(self) -> list[str]:
        """Keys with at least one acknowledged write (sorted)."""
        return sorted(self._acked)

    def observe(self, results) -> None:
        """Ingest one drain's :class:`~repro.service.request.
        RequestResult` list: record acked PUTs, check served GETs."""
        for res in results:
            if not res.ok:
                continue
            if res.request.kind is RequestKind.PUT:
                self._acked[res.request.key] = _digest(res.request.payload)
            elif res.request.kind is RequestKind.GET:
                expect = self._acked.get(res.request.key)
                if expect is None:
                    continue
                self.read_checks += 1
                if _digest(res.value) != expect:
                    self.read_mismatches += 1
                    self.mismatched_keys.append(res.request.key)

    def verify(self, store) -> AuditReport:
        """Read every acknowledged key back and classify it.

        Reads go straight to the store (not through the service) so the
        verdict covers the *data*, independent of service availability.
        """
        report = AuditReport(acknowledged=len(self._acked),
                             read_checks=self.read_checks,
                             read_mismatches=self.read_mismatches)
        for key in self.acknowledged_keys:
            try:
                value = store.get(key)
            except (KeyError, ValueError):
                report.lost.append(key)
                continue
            if _digest(value) == self._acked[key]:
                report.intact += 1
            else:
                report.corrupted.append(key)
        return report
