"""Service-level power-cut recovery.

:class:`ServiceRecovery` is what a ``power_cut`` chaos action invokes:
it cuts power on the service's store (volatile metadata and every
unfenced line are gone), replays the WAL, charges the simulated clock
for the recovery work, re-queues the requests that were submitted but
never acknowledged (a client that got no ack retries), reconciles the
rebuilt store against the :class:`~repro.chaos.audit.DurabilityAuditor`
ledger of acknowledged writes, and emits a ``service.recover`` span
plus recovery metrics — so an outage is a *measured, traced* event in
the campaign timeline rather than silent state surgery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.obs import get_tracer
from repro.pmstore.pmem import CrashPolicy


@dataclass
class ServiceRecoveryReport:
    """One power-cut + recovery episode, as the campaign sees it."""

    at_ns: float = 0.0
    recovery_ns: float = 0.0
    damaged_lines: int = 0
    txns_replayed: int = 0
    rolled_forward: int = 0
    wal_bytes_scanned: int = 0
    lines_redone: int = 0
    objects_recovered: int = 0
    requests_requeued: int = 0
    #: Auditor reconciliation of the rebuilt store: every key the
    #: auditor saw acknowledged, read back and classified.
    acked_checked: int = 0
    acked_intact: int = 0
    acked_lost: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every acknowledged write survived the cut."""
        return not self.acked_lost

    def summary(self) -> str:
        """One deterministic report line."""
        verdict = "CLEAN" if self.clean else "DATA LOSS"
        return (f"power cut @ {self.at_ns / 1e6:.2f}ms: "
                f"recovered in {self.recovery_ns / 1e6:.3f}ms, "
                f"txns={self.txns_replayed} fwd={self.rolled_forward} "
                f"objects={self.objects_recovered} "
                f"requeued={self.requests_requeued} "
                f"acked {self.acked_intact}/{self.acked_checked} intact "
                f"[{verdict}]")


class ServiceRecovery:
    """Cuts power on a running service and brings it back, accountably.

    Parameters
    ----------
    service:
        The :class:`~repro.service.service.ErasureCodingService` to cut.
    auditor:
        Optional :class:`~repro.chaos.audit.DurabilityAuditor`; when
        given, recovery reconciles every acknowledged key against the
        rebuilt store (hooks bypassed: this audits the *media*).
    restart_ns:
        Fixed restart overhead (firmware + process boot) charged on top
        of the WAL-scan and line-redo transfer time.
    """

    def __init__(self, service, *, auditor=None, restart_ns: float = 5e5):
        self.service = service
        self.auditor = auditor
        self.restart_ns = restart_ns
        self.reports: list[ServiceRecoveryReport] = []

    def _recovery_cost_ns(self, report) -> float:
        """Simulated outage length: restart + scan + redo transfers."""
        svc = self.service
        redo_bytes = report.lines_redone * svc.store.domain.line_bytes
        return (self.restart_ns
                + svc._transfer_ns(report.wal_bytes_scanned + redo_bytes))

    def power_cut(self, policy: CrashPolicy | None = None
                  ) -> ServiceRecoveryReport:
        """Cut power now; recover; re-queue; reconcile. Returns the
        episode report (also appended to ``reports``)."""
        svc = self.service
        start = svc.clock_ns
        episode = ServiceRecoveryReport(at_ns=start)

        # Submitted-but-undrained requests lost their queue entries with
        # the cut; their clients never got an ack and will retry.
        unacked = list(svc._pending)
        svc._pending = []

        episode.damaged_lines = svc.store.crash(policy)
        rec = svc.store.recover()
        episode.txns_replayed = rec.txns_seen
        episode.rolled_forward = rec.rolled_forward
        episode.wal_bytes_scanned = rec.wal_bytes_scanned
        episode.lines_redone = rec.lines_redone
        episode.objects_recovered = rec.objects_recovered
        episode.recovery_ns = self._recovery_cost_ns(rec)
        svc.clock_ns = start + episode.recovery_ns

        # Client retries arrive once the service is back up.
        for req in unacked:
            svc.submit(replace(req, arrival_ns=max(req.arrival_ns,
                                                   svc.clock_ns)))
        episode.requests_requeued = len(unacked)

        if self.auditor is not None:
            audit = None
            hooks, svc.store.fault_hooks = svc.store.fault_hooks, []
            try:
                audit = self.auditor.verify(svc.store)
            finally:
                svc.store.fault_hooks = hooks
            episode.acked_checked = audit.acknowledged
            episode.acked_intact = audit.intact
            episode.acked_lost = sorted(audit.lost + audit.corrupted)

        svc.metrics.inc("power_cuts")
        svc.metrics.inc("wal_txns_replayed", episode.txns_replayed)
        svc.metrics.inc("wal_rolled_forward", episode.rolled_forward)
        svc.metrics.inc("recovery_requeued", episode.requests_requeued)
        svc.metrics.observe_latency("recover", episode.recovery_ns)

        tracer = get_tracer()
        if tracer.enabled:
            span = tracer.begin(
                "service.recover", svc._ts(start), detached=True,
                track="service", damaged_lines=episode.damaged_lines,
                txns_replayed=episode.txns_replayed,
                rolled_forward=episode.rolled_forward)
            span.event("service.wal_scanned", svc._ts(start + 0.5 *
                                                      episode.recovery_ns),
                       wal_bytes=episode.wal_bytes_scanned)
            span.end(svc._ts(svc.clock_ns),
                     recovery_ns=episode.recovery_ns,
                     requeued=episode.requests_requeued,
                     acked_intact=episode.acked_intact,
                     acked_checked=episode.acked_checked)

        self.reports.append(episode)
        return episode
