"""The four crash-consistency invariants a recovered store must hold.

These are the oracle of the crash harness: after *any* power cut — at
any flush/fence boundary, under any tearing policy — and one
:meth:`~repro.pmstore.store.PMStore.recover`, all four must pass:

1. **Acked durability** — every write acknowledged before the cut reads
   back bit-exact; a key with an operation *in flight* at the cut is in
   either its old or its new state (the client never got an ack, so
   both are correct), never anything else.
2. **Data/parity consistency** — re-encoding each stripe's data yields
   exactly its stored parity: the write hole is closed (stripes marked
   with erasures are skipped; their blocks are untrustworthy by
   definition and belong to the repair path).
3. **Checksum validity** — every non-lost block matches its recovered
   CRC: recovery never launders torn bytes into "verified" state.
4. **Idempotent replay** — recovering a second time changes nothing:
   the durable state plus rebuilt metadata is a fixed point, so a crash
   *during recovery* is no worse than the original crash.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sentinel for "key not stored" in acceptable-outcome sets.
ABSENT = None


@dataclass(frozen=True)
class InvariantResult:
    """One invariant's verdict at one crash point."""

    name: str
    passed: bool
    detail: str = ""

    def summary(self) -> str:
        mark = "ok " if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _read(store, key: str):
    """Read ``key`` or :data:`ABSENT`, bypassing fault hooks."""
    hooks, store.fault_hooks = store.fault_hooks, []
    try:
        return store.get(key)
    except (KeyError, ValueError):
        return ABSENT
    finally:
        store.fault_hooks = hooks


def check_acked_durability(store, settled: dict[str, bytes],
                           inflight=None) -> InvariantResult:
    """Invariant 1. ``settled`` maps key -> last acknowledged value;
    ``inflight`` is the op tuple interrupted by the crash (or None)."""
    inflight_key = inflight[1] if (
        inflight and inflight[0] in ("put", "update", "delete")) else None
    bad: list[str] = []
    for key, want in settled.items():
        if key == inflight_key:
            continue
        got = _read(store, key)
        if got != want:
            state = "missing" if got is ABSENT else f"{len(got)} B mismatch"
            bad.append(f"{key}:{state}")
    if inflight_key is not None:
        old = settled.get(inflight_key, ABSENT)
        new = ABSENT if inflight[0] == "delete" else inflight[2]
        got = _read(store, inflight_key)
        if got != old and got != new:
            bad.append(f"{inflight_key}:neither-old-nor-new")
    return InvariantResult(
        "acked_durability", not bad,
        f"{len(settled)} acked keys"
        + (f"; violations: {', '.join(bad[:4])}" if bad else " intact"))


def check_stripe_consistency(store) -> InvariantResult:
    """Invariant 2: parity re-encoded from data equals stored parity."""
    bad, skipped = [], 0
    for sid in range(store.num_stripes):
        if store.lost_blocks(sid):
            skipped += 1
            continue
        stripe = store._stripes[sid]
        expect = store._compute_parity(stripe.data)
        if not np.array_equal(np.asarray(expect, dtype=np.uint8),
                              stripe.parity):
            bad.append(sid)
    return InvariantResult(
        "data_parity_consistency", not bad,
        f"{store.num_stripes} stripes, {skipped} skipped (erasures)"
        + (f"; write hole in stripes {bad}" if bad else ""))


def check_checksum_validity(store) -> InvariantResult:
    """Invariant 3: every non-lost block matches its recovered CRC."""
    bad = []
    for sid in range(store.num_stripes):
        stripe = store._stripes[sid]
        blocks = store.blocks_of(sid)
        for i in range(len(blocks)):
            if i in stripe.lost:
                continue
            if store._checksum(blocks[i]) != stripe.checksums[i]:
                bad.append((sid, i))
    return InvariantResult(
        "checksum_validity", not bad,
        f"{store.num_stripes} stripes verified"
        + (f"; CRC mismatches at {bad[:4]}" if bad else ""))


def check_idempotent_replay(store) -> InvariantResult:
    """Invariant 4: a second recovery reaches the identical state."""
    first = store.state_digest()
    store.recover()
    second = store.state_digest()
    return InvariantResult(
        "idempotent_replay", first == second,
        f"digest {first[:12]}.. "
        + ("stable" if first == second else f"!= {second[:12]}.."))


def check_all(store, settled: dict[str, bytes],
              inflight=None) -> tuple[InvariantResult, ...]:
    """All four invariants, in order (replay idempotence runs last —
    it recovers the store again)."""
    return (
        check_acked_durability(store, settled, inflight),
        check_stripe_consistency(store),
        check_checksum_validity(store),
        check_idempotent_replay(store),
    )
