"""Crash consistency and recovery: the deterministic crash-point harness.

The subsystem ties the :mod:`repro.pmstore` persistence-domain model
(256 B-line flush/fence durability, WAL-logged transactions) to
provable recovery:

* :class:`CrashInjector` enumerates every flush/fence boundary of a
  :class:`CrashScenario`, cuts power there (plus seeded adversarial
  line-tearing), recovers, and checks the four crash
  :mod:`~repro.crash.invariants`;
* :class:`ServiceRecovery` is the service/chaos face of the same
  machinery: a ``power_cut`` chaos action crashes the running service's
  store, replays the WAL on the simulated clock, re-queues unacked
  requests and reconciles the durability auditor's ledger.

``python -m repro.bench crash --seed 0`` runs the whole gate.
"""

from repro.crash.injector import (
    CrashCampaignReport,
    CrashInjector,
    CrashPointResult,
    PowerCut,
)
from repro.crash.invariants import (
    InvariantResult,
    check_acked_durability,
    check_all,
    check_checksum_validity,
    check_idempotent_replay,
    check_stripe_consistency,
)
from repro.crash.recovery import ServiceRecovery, ServiceRecoveryReport
from repro.crash.scenarios import (
    CrashScenario,
    degraded_scenario,
    smoke_scenario,
    soak_scenario,
)

__all__ = [
    "CrashCampaignReport",
    "CrashInjector",
    "CrashPointResult",
    "CrashScenario",
    "InvariantResult",
    "PowerCut",
    "ServiceRecovery",
    "ServiceRecoveryReport",
    "check_acked_durability",
    "check_all",
    "check_checksum_validity",
    "check_idempotent_replay",
    "check_stripe_consistency",
    "degraded_scenario",
    "smoke_scenario",
    "soak_scenario",
]
