"""Crash scenarios: deterministic op sequences the harness interrupts.

A :class:`CrashScenario` is pure data — geometry plus a tuple of store
operations — so a crash point is fully identified by (scenario, seed,
boundary index, policy): the harness can enumerate every flush/fence
boundary of the sequence and replay any single one bit-exactly.

Supported ops (tuples, first element is the kind):

=====================  ==================================================
``("put", k, v)``      store ``v`` under ``k`` (one WAL transaction)
``("update", k, v)``   in-place delta-parity overwrite (same length)
``("delete", k)``      logged delete
``("mark_lost", s, b)``declare block ``b`` of stripe ``s`` erased
``("device_loss", d)`` correlated loss of block position ``d``
``("repair",)``        rebuild every lost block (``repair_all``)
``("restore", d)``     bring device ``d`` back (bulk rebuild)
=====================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CrashScenario:
    """A replayable op sequence over one store geometry."""

    name: str
    k: int = 3
    m: int = 2
    block_bytes: int = 256
    lrc_l: int | None = None
    ops: tuple[tuple, ...] = field(default=())

    def payload_ops(self) -> int:
        """How many ops carry client-visible writes."""
        return sum(1 for op in self.ops
                   if op[0] in ("put", "update", "delete"))


def _payload(rng: np.random.Generator, nbytes: int) -> bytes:
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


def smoke_scenario(seed: int = 0) -> CrashScenario:
    """The default harness workload: puts filling two stripes, delta
    updates re-touching them (the write-hole shape), an overwrite, a
    delete — every transaction kind, small enough that exhaustive
    boundary enumeration stays a smoke test (still >100 crash points).
    """
    rng = np.random.default_rng([seed, 0x5C])
    ops: list[tuple] = []
    sizes = (700, 300, 512, 640, 200)
    for i, nbytes in enumerate(sizes):
        ops.append(("put", f"obj-{i}", _payload(rng, nbytes)))
    # Delta updates: same length, new bytes — the small-write path.
    ops.append(("update", "obj-1", _payload(rng, sizes[1])))
    ops.append(("update", "obj-3", _payload(rng, sizes[3])))
    # Overwrite (a put superseding an acked put) and a delete.
    ops.append(("put", "obj-0", _payload(rng, 450)))
    ops.append(("delete", "obj-4"))
    ops.append(("update", "obj-1", _payload(rng, sizes[1])))
    return CrashScenario(name=f"smoke(seed={seed})", ops=tuple(ops))


def degraded_scenario(seed: int = 0) -> CrashScenario:
    """Crashes composed with erasures: a device dies between writes,
    repair runs, more writes land — recovery must preserve loss marks
    and repair progress alike."""
    rng = np.random.default_rng([seed, 0xD6])
    ops: list[tuple] = [
        ("put", "a", _payload(rng, 600)),
        ("put", "b", _payload(rng, 500)),
        ("device_loss", 1),
        ("put", "c", _payload(rng, 300)),
        ("update", "a", _payload(rng, 600)),
        ("restore", 1),
        ("put", "d", _payload(rng, 640)),
        ("delete", "b"),
    ]
    return CrashScenario(name=f"degraded(seed={seed})", ops=tuple(ops))


def soak_scenario(seed: int = 0, rounds: int = 6) -> CrashScenario:
    """A larger mixed workload for the full-enumeration soak (``slow``
    marker): several stripes, repeated update/overwrite churn."""
    rng = np.random.default_rng([seed, 0x50AC])
    ops: list[tuple] = []
    sizes = {}
    for r in range(rounds):
        for i in range(4):
            key = f"o{r % 3}-{i}"
            if key in sizes and rng.integers(2):
                ops.append(("update", key, _payload(rng, sizes[key])))
            else:
                sizes[key] = int(rng.integers(128, 700))
                ops.append(("put", key, _payload(rng, sizes[key])))
        if r == rounds // 2:
            ops.append(("mark_lost", 0, 1))
            ops.append(("repair",))
    return CrashScenario(name=f"soak(seed={seed})", ops=tuple(ops))
