"""The deterministic crash-point harness.

A store run makes an exact, enumerable sequence of *ordering
boundaries*: every ``flush(line)`` and every ``fence()`` on either
persistence domain (stripes and WAL) fires a persist hook before the
operation takes effect. :class:`CrashInjector` replays one
:class:`~repro.crash.scenarios.CrashScenario` with a hook armed to
raise :class:`PowerCut` at boundary *i* — so the power dies exactly
*before* the i-th flush or fence lands — then resolves the pending
lines through a crash policy, recovers, and checks the four
:mod:`~repro.crash.invariants`.

:meth:`CrashInjector.enumerate_all` sweeps *every* boundary (the
exhaustive proof for one scenario); :meth:`CrashInjector.tear_points`
adds seeded adversarial rounds where a random boundary is hit under
:func:`~repro.pmstore.pmem.seeded_line_policy` — any pending line may
persist whole, revert whole, or tear at an 8 B store boundary. Both are
bit-deterministic per seed, which is what lets the bench gate demand
byte-identical reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crash.invariants import InvariantResult, check_all
from repro.crash.scenarios import CrashScenario
from repro.pmstore.pmem import CrashPolicy, keep_flushed, seeded_line_policy
from repro.pmstore.store import PMStore, RecoveryReport


class PowerCut(BaseException):
    """Raised at an armed ordering boundary: power died *here*.

    A ``BaseException`` so no store- or service-level handler can
    accidentally swallow it — nothing survives a power cut.
    """


class _Boundary:
    """The shared persist hook: counts boundaries, cuts at the target."""

    def __init__(self, target: int | None = None):
        self.count = 0
        self.target = target
        self.armed = target is not None

    def __call__(self, kind: str, line: int) -> None:
        if self.armed and self.count == self.target:
            self.armed = False
            raise PowerCut(f"boundary {self.count} ({kind})")
        self.count += 1


@dataclass
class CrashPointResult:
    """One crash point: where, under which policy, and the verdicts."""

    boundary: int
    policy: str
    crashed: bool
    damaged_lines: int = 0
    inflight_op: str = ""
    recovery: RecoveryReport | None = None
    invariants: tuple[InvariantResult, ...] = ()

    @property
    def passed(self) -> bool:
        return all(inv.passed for inv in self.invariants)

    def summary(self) -> str:
        """One deterministic report line."""
        verdict = "PASS" if self.passed else "FAIL"
        inv = " ".join(
            ("+" if r.passed else "-") + r.name for r in self.invariants)
        rec = (f" txns={self.recovery.txns_seen}"
               f" fwd={self.recovery.rolled_forward}"
               if self.recovery else "")
        return (f"[{verdict}] boundary={self.boundary:<4} "
                f"policy={self.policy:<13} damaged={self.damaged_lines:<3}"
                f" inflight={self.inflight_op or '-':<10}{rec}  {inv}")


@dataclass
class CrashCampaignReport:
    """Aggregate over a sweep of crash points."""

    scenario: str
    boundaries_total: int = 0
    points_run: int = 0
    tear_rounds: int = 0
    points_passed: int = 0
    rolled_forward_total: int = 0
    damaged_lines_total: int = 0
    failures: list[str] = field(default_factory=list)
    invariant_failures: dict[str, int] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return self.points_run > 0 and self.points_passed == self.points_run

    def absorb(self, result: CrashPointResult) -> None:
        self.points_run += 1
        self.damaged_lines_total += result.damaged_lines
        if result.recovery is not None:
            self.rolled_forward_total += result.recovery.rolled_forward
        if result.passed:
            self.points_passed += 1
        else:
            self.failures.append(result.summary())
            for inv in result.invariants:
                if not inv.passed:
                    self.invariant_failures[inv.name] = \
                        self.invariant_failures.get(inv.name, 0) + 1

    def summary(self) -> str:
        """One deterministic report line."""
        verdict = "ALL PASS" if self.all_passed else "FAILURES"
        return (f"{self.scenario}: {self.points_passed}/{self.points_run} "
                f"crash points pass ({self.boundaries_total} boundaries, "
                f"{self.tear_rounds} tear rounds, "
                f"{self.rolled_forward_total} txns rolled forward, "
                f"{self.damaged_lines_total} lines damaged)  [{verdict}]")


class CrashInjector:
    """Enumerates and replays crash points of one scenario.

    Parameters
    ----------
    scenario:
        The op sequence to interrupt.
    pm_capacity_bytes, wal_capacity_bytes:
        Store sizing (small defaults keep digests cheap: the harness
        hashes the allocated region at every point).
    """

    def __init__(self, scenario: CrashScenario, *,
                 pm_capacity_bytes: int = 1 << 20,
                 wal_capacity_bytes: int = 1 << 20):
        self.scenario = scenario
        self.pm_capacity_bytes = pm_capacity_bytes
        self.wal_capacity_bytes = wal_capacity_bytes

    # -- scenario execution --------------------------------------------------

    def _fresh_store(self) -> PMStore:
        s = self.scenario
        return PMStore(s.k, s.m, block_bytes=s.block_bytes, lrc_l=s.lrc_l,
                       pm_capacity_bytes=self.pm_capacity_bytes,
                       wal_capacity_bytes=self.wal_capacity_bytes)

    @staticmethod
    def _apply_op(store: PMStore, op: tuple) -> None:
        kind = op[0]
        if kind == "put":
            store.put(op[1], op[2])
        elif kind == "update":
            store.update(op[1], op[2])
        elif kind == "delete":
            store.delete(op[1])
        elif kind == "mark_lost":
            store.mark_lost(op[1], op[2])
        elif kind == "device_loss":
            store.mark_device_lost(op[1])
        elif kind == "repair":
            store.repair_all()
        elif kind == "restore":
            store.restore_device(op[1])
        else:
            raise ValueError(f"unknown scenario op {kind!r}")

    @staticmethod
    def _settle_op(settled: dict[str, bytes], op: tuple) -> None:
        if op[0] in ("put", "update"):
            settled[op[1]] = op[2]
        elif op[0] == "delete":
            settled.pop(op[1], None)

    def _run(self, store: PMStore, boundary: _Boundary,
             settled: dict[str, bytes]) -> tuple | None:
        """Replay the scenario; returns the op in flight when the cut
        hit (None if the scenario completed)."""
        store.domain.persist_hooks.append(boundary)
        store.wal.domain.persist_hooks.append(boundary)
        try:
            for op in self.scenario.ops:
                try:
                    self._apply_op(store, op)
                except PowerCut:
                    return op
                self._settle_op(settled, op)
            return None
        finally:
            boundary.armed = False  # recovery must not re-trip the cut

    def count_boundaries(self) -> int:
        """Flush/fence boundaries in one uninterrupted scenario run."""
        boundary = _Boundary(target=None)
        self._run(self._fresh_store(), boundary, {})
        return boundary.count

    # -- single crash point --------------------------------------------------

    def run_point(self, boundary_index: int,
                  policy: CrashPolicy | None = None,
                  policy_name: str = "drop_unfenced") -> CrashPointResult:
        """Crash at one boundary, recover, check all four invariants."""
        store = self._fresh_store()
        boundary = _Boundary(target=boundary_index)
        settled: dict[str, bytes] = {}
        inflight = self._run(store, boundary, settled)
        crashed = inflight is not None
        result = CrashPointResult(
            boundary=boundary_index, policy=policy_name, crashed=crashed,
            inflight_op=f"{inflight[0]}:{inflight[1]}"
            if crashed and len(inflight) > 1 else
            (inflight[0] if crashed else ""))
        result.damaged_lines = store.crash(policy)
        result.recovery = store.recover()
        result.invariants = check_all(store, settled,
                                      inflight if crashed else None)
        return result

    # -- sweeps --------------------------------------------------------------

    def enumerate_all(self, report: CrashCampaignReport | None = None,
                      limit: int | None = None,
                      on_point=None) -> CrashCampaignReport:
        """Crash at *every* boundary under the guaranteed-minimum
        policy (all unfenced lines dropped) — the exhaustive sweep.

        ``limit`` caps the sweep for smoke use (the first ``limit``
        boundaries); ``on_point`` is an optional callback per result.
        """
        total = self.count_boundaries()
        report = report or CrashCampaignReport(scenario=self.scenario.name)
        report.boundaries_total = total
        for i in range(total if limit is None else min(limit, total)):
            result = self.run_point(i)
            report.absorb(result)
            if on_point is not None:
                on_point(result)
        return report

    def tear_points(self, rounds: int, seed: int = 0,
                    report: CrashCampaignReport | None = None,
                    on_point=None) -> CrashCampaignReport:
        """Seeded adversarial rounds: a random boundary is cut under
        the line-tearing policy (keep / revert / tear per pending
        line), plus ``keep_flushed`` rounds — deterministic per seed.
        """
        total = self.count_boundaries()
        report = report or CrashCampaignReport(scenario=self.scenario.name)
        report.boundaries_total = total
        report.tear_rounds += rounds
        for r in range(rounds):
            rng = np.random.default_rng([seed, 0x7EA2, r])
            i = int(rng.integers(total))
            if r % 3 == 2:
                result = self.run_point(i, keep_flushed, "keep_flushed")
            else:
                result = self.run_point(i, seeded_line_policy(rng),
                                        "seeded_tear")
            report.absorb(result)
            if on_point is not None:
                on_point(result)
        return report

    def campaign(self, *, tear_rounds: int = 25, seed: int = 0,
                 limit: int | None = None) -> CrashCampaignReport:
        """Exhaustive enumeration plus adversarial tear rounds."""
        report = self.enumerate_all(limit=limit)
        if tear_rounds:
            self.tear_points(tear_rounds, seed=seed, report=report)
        return report
