"""DIALGA — the paper's contribution (§4).

An adaptive hardware/software prefetcher scheduler for erasure coding
on persistent memory, layered over the ISA-L kernel model:

* :class:`~repro.core.coordinator.AdaptiveCoordinator` (§4.1) — samples
  PMU-style counters and I/O patterns, switches strategy by thresholds.
* :mod:`repro.core.operator` (§4.2) — the lightweight operator: static
  shuffle mapping (fine-grained hardware-prefetcher switch) and
  branchless pipelined software-prefetch pointer construction.
* :mod:`repro.core.buffer_friendly` (§4.3) — PM read-buffer-friendly
  distances, XPLine-granularity expansion and the Eq. (1) distance cap.
* :class:`~repro.core.dialga.DialgaEncoder` — the public library facade
  (same interface as the baselines in :mod:`repro.libs`).
"""

from repro.core.policy import Policy
from repro.core.hillclimb import HillClimber
from repro.core.buffer_friendly import eq1_max_distance, bf_distances, thrash_thread_bound
from repro.core.coordinator import AdaptiveCoordinator, CoordinatorConfig, PolicySwitch
from repro.core.operator import static_shuffle_mapping, build_prefetch_pointers
from repro.core.dialga import DialgaConfig, DialgaEncoder

__all__ = [
    "Policy",
    "HillClimber",
    "eq1_max_distance",
    "bf_distances",
    "thrash_thread_bound",
    "AdaptiveCoordinator",
    "CoordinatorConfig",
    "PolicySwitch",
    "static_shuffle_mapping",
    "build_prefetch_pointers",
    "DialgaConfig",
    "DialgaEncoder",
]
