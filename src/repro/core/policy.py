"""DIALGA scheduling policy.

A :class:`Policy` is the coordinator's output: which prefetching
strategy the kernel should run *right now*. It maps one-to-one onto the
static ISA-L kernel entry points the paper describes (§4.1.2 — "each
entry point corresponds to a distinct strategy, while the prefetch
distance is adjusted via parameters").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.trace.isal_gen import IsalVariant


@dataclass(frozen=True)
class Policy:
    """Current prefetcher-scheduling decision.

    Attributes
    ----------
    hw_prefetch:
        True = let the L2 streamer run; False = defeat it with the
        static shuffle mapping (the fine-grained off switch, §4.2.2).
    sw_distance:
        Pipelined software-prefetch distance d in sequence elements
        (cachelines); None disables software prefetching.
    bf_first_distance:
        Read-buffer-friendly longer distance for XPLine-leading lines
        (§4.3.2); None = uniform distance.
    xpline_granularity:
        Expand the loop task to 256 B (§4.3.3, high-pressure only).
    """

    hw_prefetch: bool = True
    sw_distance: int | None = None
    bf_first_distance: int | None = None
    xpline_granularity: bool = False

    def to_variant(self) -> IsalVariant:
        """The kernel entry point implementing this policy."""
        return IsalVariant(
            sw_prefetch_distance=self.sw_distance,
            bf_first_line_distance=self.bf_first_distance,
            shuffle=not self.hw_prefetch,
            xpline_granularity=self.xpline_granularity,
        )

    def with_(self, **kwargs) -> "Policy":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Short human-readable strategy tag (for logs/benchmarks)."""
        bits = [f"hw={'on' if self.hw_prefetch else 'off(shuffle)'}"]
        bits.append(f"sw_d={self.sw_distance}")
        if self.bf_first_distance is not None:
            bits.append(f"bf_d1={self.bf_first_distance}")
        if self.xpline_granularity:
            bits.append("xpline")
        return " ".join(bits)
