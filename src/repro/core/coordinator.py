"""DIALGA's adaptive coordinator (§4.1).

Combines two signal sources, exactly as the paper describes:

* **I/O access pattern** (collected at the library interface): stripe
  width k, block size, thread count. These set the *initial* policy —
  e.g. wide stripes need no hardware-prefetcher management (the
  streamer self-disables past its tracking capacity), thread counts
  beyond the threshold get the high-pressure strategy.
* **Cache events** (sampled from PMU-style counters at 1 kHz): average
  load latency vs. a low-pressure baseline (contention if > 110%), and
  useless-L2-prefetch growth (inefficient prefetcher if > 150%). Both
  firing together disables the hardware prefetcher via the shuffle
  mapping; recovery re-enables it.

The software-prefetch distance starts at ``d = k`` and is refined by
hill climbing (§4.1.2) whenever performance fluctuates by more than
10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

from repro.core.buffer_friendly import (
    bf_distances,
    eq1_max_distance,
    thrash_thread_bound,
)
from repro.core.hillclimb import HillClimber
from repro.core.policy import Policy
from repro.obs import get_tracer
from repro.simulator.counters import Counters
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


@dataclass(frozen=True)
class CoordinatorConfig:
    """Thresholds for the adaptive switching heuristics (paper §4.1.2)."""

    #: Contention: avg load latency above this factor of the baseline.
    latency_factor: float = 1.10
    #: Inefficiency: useless-prefetch count growth above this factor.
    useless_growth_factor: float = 1.50
    #: Concurrency beyond this disables the hardware prefetcher.
    thread_threshold: int = 12
    #: Counter sampling period (1 kHz of simulated time).
    sample_period_ns: float = 1_000_000.0
    #: Throughput fluctuation that retriggers the distance search.
    perf_fluctuation: float = 0.10
    #: Stripes wider than this overflow the streamer (Obs. 3).
    wide_stripe_k: int = 32
    #: Hill-climb neighborhood size.
    neighborhood: int = 16


class PolicySwitch(NamedTuple):
    """One dynamic policy change (sample index + before/after)."""

    sample: int
    old: Policy
    new: Policy


class ThresholdCheck(NamedTuple):
    """One §4.1.2 predicate evaluation: the measured value, the limit it
    was compared against, and whether it fired."""

    name: str
    value: float
    limit: float
    fired: bool

    def describe(self) -> str:
        mark = "FIRED" if self.fired else "ok"
        return f"{self.name}: {self.value:.4g} vs {self.limit:.4g} [{mark}]"


class DecisionEvidence(NamedTuple):
    """Everything the coordinator saw and weighed for one decision.

    Recorded on :attr:`AdaptiveCoordinator.decision_log` for every
    initial-policy derivation and every :meth:`~AdaptiveCoordinator.
    observe` sample — the raw material for the
    :class:`repro.obs.audit.DecisionLedger` and the counterfactual
    regret replay (:mod:`repro.obs.replay`).
    """

    #: ``"initial"`` (I/O-pattern decision at construction) or
    #: ``"observe"`` (one counter-delta sample).
    kind: str
    #: Sample index (0 for the initial decision).
    sample: int
    #: Timestamp on the simulated timeline the decision applies from.
    now_ns: float
    #: Non-zero counter deltas the decision saw (empty for initial).
    delta: dict
    #: Every threshold predicate evaluated, in evaluation order.
    checks: tuple
    #: Candidate policies weighed (always includes ``chosen``).
    candidates: tuple
    #: Policy in force before the decision (None for initial).
    old: Policy | None
    #: Policy in force after the decision.
    chosen: Policy
    #: Whether the decision changed the policy.
    switched: bool
    #: Hill-climb trajectory ``(step, distance, ns_per_byte)`` when a
    #: distance search ran as part of this decision.
    climb: tuple
    #: Chunk throughput observed with the sample (None when unknown).
    throughput_gbps: float | None

    def fired(self, name: str) -> bool:
        """Whether the named predicate fired in this decision."""
        return any(c.fired for c in self.checks if c.name == name)


class AdaptiveCoordinator:
    """Decides and adapts the prefetcher-scheduling policy for one job."""

    def __init__(self, wl: Workload, hw: HardwareConfig,
                 config: CoordinatorConfig | None = None,
                 probe: Callable[[int], float] | None = None,
                 policy_probe: Callable[["Policy"], float] | None = None,
                 on_switch: Callable[[PolicySwitch], None] | None = None,
                 on_decision: Callable[[DecisionEvidence], None] | None = None):
        self.wl = wl
        self.hw = hw
        self.config = config or CoordinatorConfig()
        self.probe = probe
        self.policy_probe = policy_probe
        self.on_switch = on_switch
        self.on_decision = on_decision
        #: Full evidence trail, one entry per decision (the initial
        #: I/O-pattern decision plus every observe() sample) — consumed
        #: by :class:`repro.obs.audit.DecisionLedger`.
        self.decision_log: list[DecisionEvidence] = []
        #: Stripes per adaptation window of the enclosing run, set by
        #: the DIALGA chunk loop — the counterfactual replay's default
        #: window size.
        self.window_stripes: int | None = None
        self.policy = self._initial_policy()
        #: Low-pressure references (paper: "110% of the average latency
        #: under low pressure"). Set via :meth:`set_baseline` from a
        #: calibration run, else learned from the first sample.
        self.baseline_latency_ns: float | None = None
        self.baseline_useless_per_load: float | None = None
        self._saved_policy: Policy | None = None
        self._prev_throughput: float | None = None
        self.switches = 0  # policy flips (observability/tests)
        #: Every dynamic flip, in order — the service layer's metrics
        #: registry consumes these (and on_switch fires per event).
        self.switch_events: list[PolicySwitch] = []
        self._samples_seen = 0

    def set_baseline(self, sample: Counters) -> None:
        """Install low-pressure reference levels from a calibration run."""
        if sample.loads:
            self.baseline_latency_ns = sample.avg_load_latency_ns
            self.baseline_useless_per_load = sample.hwpf_useless / sample.loads

    def _record(self, evidence: DecisionEvidence) -> None:
        """Append one decision to the evidence trail, notifying any
        attached ledger."""
        self.decision_log.append(evidence)
        if self.on_decision is not None:
            self.on_decision(evidence)

    # -- initial decision from the I/O access pattern ---------------------

    def _search_distance(self, start: int, upper: int) -> tuple[int, tuple]:
        """Hill-climb the distance; returns (best, accepted trajectory)."""
        if self.probe is None:
            return start, ()
        tracer = get_tracer()
        on_step = None
        if tracer.enabled:
            # Each accepted move becomes a timeline event; the probe
            # simulations it ran land just before it, so max_ts is the
            # natural "when" for a search that has no simulated clock
            # of its own.
            def on_step(step: int, x: int, value: float) -> None:
                tracer.event("coordinator.hillclimb_step", tracer.max_ts,
                             track="coordinator", step=step, distance=x,
                             probe_ns_per_byte=value)
        climber = HillClimber(self.probe, lower=1, upper=upper,
                              neighborhood=self.config.neighborhood,
                              on_step=on_step)
        best, _ = climber.search(start)
        if tracer.enabled:
            tracer.event("coordinator.hillclimb_done", tracer.max_ts,
                         track="coordinator", start=start, best=best,
                         evaluations=climber.evaluations)
        return best, tuple(climber.trajectory)

    def _high_pressure_policy(self) -> Policy:
        """§4.1.2 + §4.3.3: disable the streamer (shuffle), expand the
        loop to XPLine granularity, cap the distance by Eq. (1)."""
        wl = self.wl
        lines_per_block = max(1, wl.block_bytes // 64)
        elems = lines_per_block * wl.k
        cap = eq1_max_distance(wl.nthreads, wl.k, wl.m, self.hw.pm)
        d = min(wl.k, cap, max(1, elems - 1))
        return Policy(hw_prefetch=False, sw_distance=d,
                      bf_first_distance=None, xpline_granularity=True)

    def _initial_policy(self) -> Policy:
        wl, cfg = self.wl, self.config
        lines_per_block = max(1, wl.block_bytes // 64)
        elems = lines_per_block * wl.k
        # The fixed 12-thread threshold comes from the paper's testbed
        # observations (k=24); Eq.-(1) reasoning generalizes it: the
        # read buffer holds capacity/k concurrent stream sets, so wide
        # stripes hit pressure earlier (§5.3's 8 x 48 bound).
        threshold = min(cfg.thread_threshold,
                        thrash_thread_bound(wl.k, self.hw.pm))
        checks = [ThresholdCheck("thread_pressure", wl.nthreads, threshold,
                                 wl.nthreads > threshold),
                  ThresholdCheck("wide_stripe", wl.k, cfg.wide_stripe_k,
                                 wl.k > cfg.wide_stripe_k),
                  ThresholdCheck("large_block", wl.block_bytes, 4096,
                                 wl.block_bytes >= 4096)]

        def decide(chosen: Policy, candidates: tuple, climb: tuple) -> Policy:
            self._record(DecisionEvidence(
                kind="initial", sample=0, now_ns=0.0, delta={},
                checks=tuple(checks), candidates=candidates, old=None,
                chosen=chosen, switched=False, climb=climb,
                throughput_gbps=None))
            return chosen

        if wl.nthreads > threshold:
            high = self._high_pressure_policy()
            return decide(high, (high,), ())
        d, climb = self._search_distance(
            wl.k, upper=max(2, min(elems - 1, 8 * wl.k)))
        d_first, d = bf_distances(wl.k, base=d) if self.probe is not None \
            else bf_distances(wl.k)
        d = min(d, max(1, elems - 1))
        if d_first >= elems:  # tiny stripes: no room for the long distance
            d_first = None
        if wl.block_bytes >= 4096:
            # §4.1.2: for blocks of 4 KB and up the hardware prefetcher
            # is kept fully engaged (it covers whole pages accurately);
            # the non-uniform BF distances are for the small-block
            # regime where XPLine-leading lines pay the media latency.
            d_first = None
        candidates: tuple = ()
        if d_first is not None and self.policy_probe is not None:
            # §4.3.2: the coordinator *adjusts* the buffer-friendly
            # distances — including backing off to uniform when the
            # split does not pay (narrow stripes with good locality).
            uniform = Policy(hw_prefetch=True, sw_distance=d)
            split = Policy(hw_prefetch=True, sw_distance=d,
                           bf_first_distance=d_first)
            candidates = (uniform, split)
            u_cost, s_cost = self.policy_probe(uniform), self.policy_probe(split)
            checks.append(ThresholdCheck("bf_split_pays", s_cost, u_cost,
                                         s_cost < u_cost))
            if u_cost <= s_cost:
                d_first = None
        # Low thread pressure: keep the streamer on regardless of
        # stripe width (wide stripes self-disable it; narrow stripes'
        # extra traffic is harmless) plus pipelined SW prefetch with
        # buffer-friendly distances.
        chosen = Policy(hw_prefetch=True, sw_distance=d,
                        bf_first_distance=d_first)
        if chosen not in candidates:
            candidates = candidates + (chosen,)
        return decide(chosen, candidates, climb)

    # -- runtime adaptation from sampled cache events ----------------------

    def observe(self, sample: Counters, throughput_gbps: float | None = None,
                now_ns: float | None = None) -> Policy:
        """Feed one counter-delta sample; returns the (possibly new) policy.

        ``sample`` is the delta since the previous sample (what a 1 kHz
        PMU reader hands the coordinator). ``now_ns`` stamps any policy
        switch on the tracer timeline; without it the sample index
        times the sampling period stands in.
        """
        cfg = self.config
        self._samples_seen += 1
        if sample.loads == 0:
            return self.policy
        ts = (now_ns if now_ns is not None
              else self._samples_seen * cfg.sample_period_ns)
        avg_lat = sample.avg_load_latency_ns
        useless_per_load = sample.hwpf_useless / sample.loads
        if self.baseline_latency_ns is None:
            self.baseline_latency_ns = avg_lat
            self.baseline_useless_per_load = useless_per_load
        lat_limit = cfg.latency_factor * self.baseline_latency_ns
        contention = avg_lat > lat_limit
        ref = self.baseline_useless_per_load or 0.0
        if ref > 1e-6:
            useless_limit = cfg.useless_growth_factor * ref
        else:
            useless_limit = 0.05
        inefficient = useless_per_load > useless_limit
        checks = [ThresholdCheck("contention", avg_lat, lat_limit, contention),
                  ThresholdCheck("inefficient", useless_per_load,
                                 useless_limit, inefficient)]
        old, climb = self.policy, ()
        candidates = [self.policy]
        new = self.policy
        if self.policy.hw_prefetch and contention and inefficient:
            # Both signals firing means prefetch-driven buffer thrash:
            # switch to the full high-pressure strategy and remember
            # what we ran before so relief can restore it.
            self._saved_policy = self.policy
            new = self._high_pressure_policy()
            candidates.append(new)
        elif not self.policy.hw_prefetch and not contention \
                and self._saved_policy is not None:
            # Pressure relieved on a policy we switched dynamically.
            candidates.append(self._saved_policy)
            new = self._saved_policy
            self._saved_policy = None
        elif self.policy.hw_prefetch:
            # The high-pressure alternative was on the table but the
            # evidence kept the current policy.
            candidates.append(self._high_pressure_policy())
        elif self._saved_policy is not None:
            candidates.append(self._saved_policy)
        # Performance fluctuation retriggers the distance search.
        if throughput_gbps is not None and self._prev_throughput:
            swing = abs(throughput_gbps - self._prev_throughput) / self._prev_throughput
            fluctuated = swing > cfg.perf_fluctuation
            checks.append(ThresholdCheck("fluctuation", swing,
                                         cfg.perf_fluctuation, fluctuated))
            if fluctuated and self.probe is not None:
                lines = max(1, self.wl.block_bytes // 64)
                upper = max(2, min(lines * self.wl.k - 1, 8 * self.wl.k))
                d, climb = self._search_distance(
                    new.sw_distance or self.wl.k, upper)
                if d != new.sw_distance:
                    new = new.with_(sw_distance=d)
                    candidates.append(new)
        if throughput_gbps is not None:
            self._prev_throughput = throughput_gbps
        self._record(DecisionEvidence(
            kind="observe", sample=self._samples_seen, now_ns=ts,
            delta=sample.nonzero_dict(), checks=tuple(checks),
            candidates=tuple(dict.fromkeys(candidates)), old=old,
            chosen=new, switched=new != old, climb=climb,
            throughput_gbps=throughput_gbps))
        if new != self.policy:
            self.switches += 1
            event = PolicySwitch(self._samples_seen, self.policy, new)
            self.switch_events.append(event)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("coordinator.policy_switch", ts,
                             track="coordinator", sample=event.sample,
                             old=self.policy.describe(),
                             new=new.describe(),
                             contention=contention,
                             inefficient=inefficient)
            self.policy = new
            if self.on_switch is not None:
                self.on_switch(event)
        return self.policy
