"""DIALGA's public encoder — the paper's system, end to end.

``DialgaEncoder`` implements the same :class:`~repro.libs.base.
CodingLibrary` interface as the baselines, so benchmarks treat it
uniformly. Functionally it *is* ISA-L (table-lookup RS — DIALGA is
"implemented within ISA-L", §1); the difference is the performance
path: the adaptive coordinator picks a kernel entry point (policy) from
the I/O pattern, hill-climbs the software-prefetch distance on a probe,
and re-decides between chunks from sampled counters.

Tuning knobs live in one keyword-only :class:`DialgaConfig`; the
pre-1.1 loose constructor keywords still work behind deprecation shims
for one release.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._deprecation import warn_deprecated
from repro.codes.rs import RSCode
from repro.core.coordinator import AdaptiveCoordinator, CoordinatorConfig
from repro.core.policy import Policy
from repro.gf.arithmetic import GF
from repro.libs.base import CodingLibrary, GeometryMismatch, LibraryResult
from repro.obs import get_tracer
from repro.simulator import HardwareConfig, SimResult, simulate
from repro.simulator.engine import ThreadContext
from repro.simulator.multicore import make_backends
from repro.simulator.counters import Counters, CounterSampler
from repro.trace import Trace, Workload, isal_trace


@dataclass(frozen=True, kw_only=True)
class DialgaConfig:
    """All of :class:`DialgaEncoder`'s tuning knobs in one place.

    Keyword-only by design: every field names itself at the call site,
    and `run`-time code receives one immutable object instead of six
    loose parameters.

    Attributes
    ----------
    field:
        GF instance (default GF(2^8)).
    adaptive:
        If False, run the initial policy for the whole job (no
        between-chunk adaptation) — used by the Fig. 18 ablations.
    chunks:
        How many chunks the job is split into for adaptation/sampling.
    policy_override:
        Pin a specific policy (ablation variants).
    use_probe:
        Hill-climb the software-prefetch distance on a small simulated
        probe before starting (§4.1.2, on by default as in the paper).
        Disable to pin d = k.
    coordinator:
        Threshold overrides for the adaptive coordinator.
    """

    field: GF | None = None
    adaptive: bool = True
    chunks: int = 6
    policy_override: Policy | None = None
    use_probe: bool = True
    coordinator: CoordinatorConfig | None = None

    def with_(self, **kwargs) -> "DialgaConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


#: Pre-1.1 constructor keywords, in their old positional order, mapped
#: to the DialgaConfig field that replaced each.
_LEGACY_FIELDS = (
    ("field", "field"),
    ("adaptive", "adaptive"),
    ("chunks", "chunks"),
    ("policy_override", "policy_override"),
    ("use_probe", "use_probe"),
    ("coordinator_config", "coordinator"),
)


class DialgaEncoder(CodingLibrary):
    """Adaptive prefetcher-scheduled erasure coding on PM.

    Parameters
    ----------
    k, m:
        Code geometry.
    config:
        Keyword-only :class:`DialgaConfig` with every tuning knob.

    The pre-1.1 spelling — ``DialgaEncoder(k, m, adaptive=...,
    chunks=..., policy_override=..., use_probe=...,
    coordinator_config=...)`` — still works but emits a
    :class:`~repro._deprecation.ReproDeprecationWarning`.
    """

    name = "DIALGA"
    supports_policy = True

    def __init__(self, k: int, m: int, *legacy_args,
                 config: DialgaConfig | None = None, **legacy_kwargs):
        legacy = self._fold_legacy(legacy_args, legacy_kwargs)
        if legacy:
            if config is not None:
                raise TypeError(
                    f"pass either config= or the deprecated keywords "
                    f"{sorted(legacy)}, not both")
            warn_deprecated(
                "DialgaEncoder(..., "
                + ", ".join(f"{k}=..." for k in sorted(legacy))
                + ") is deprecated; pass config=DialgaConfig(...) instead")
            config = DialgaConfig(**legacy)
        self.config = config or DialgaConfig()
        self.code = RSCode(k, m, field=self.config.field)
        self.k, self.m = k, m
        #: Policies applied per chunk in the last run (observability).
        self.policy_log: list[Policy] = []
        #: Coordinator of the last adaptive run (None before any run or
        #: after a pinned/non-adaptive run) — exposes policy-switch
        #: events to the service layer.
        self.last_coordinator: AdaptiveCoordinator | None = None

    @staticmethod
    def _fold_legacy(args: tuple, kwargs: dict) -> dict:
        """Map old positional/keyword constructor knobs onto DialgaConfig
        field names; raises on unknown keywords."""
        if len(args) > len(_LEGACY_FIELDS):
            raise TypeError(
                f"DialgaEncoder takes at most {2 + len(_LEGACY_FIELDS)} "
                f"positional arguments")
        legacy: dict = {}
        for (old, new), value in zip(_LEGACY_FIELDS, args):
            legacy[new] = value
        for old, new in _LEGACY_FIELDS:
            if old in kwargs:
                if new in legacy:
                    raise TypeError(f"duplicate value for {old!r}")
                legacy[new] = kwargs.pop(old)
        if kwargs:
            raise TypeError(
                f"DialgaEncoder got unexpected keyword argument(s) "
                f"{sorted(kwargs)}")
        return legacy

    # -- config attribute compatibility (pre-1.1 public attributes) --------

    @property
    def adaptive(self) -> bool:
        """Whether between-chunk adaptation is enabled (from config)."""
        return self.config.adaptive

    @property
    def chunks(self) -> int:
        """Adaptation chunk count (from config, at least 1)."""
        return max(1, self.config.chunks)

    @property
    def policy_override(self) -> Policy | None:
        """Pinned policy, if any (from config)."""
        return self.config.policy_override

    @property
    def use_probe(self) -> bool:
        """Whether the hill-climbing probe is enabled (from config)."""
        return self.config.use_probe

    @property
    def coordinator_config(self) -> CoordinatorConfig | None:
        """Coordinator threshold overrides (from config)."""
        return self.config.coordinator

    @property
    def policy_switches(self) -> int:
        """Dynamic policy switches in the last adaptive run (0 when the
        run was pinned or non-adaptive) — service-layer observability."""
        return self.last_coordinator.switches if self.last_coordinator else 0

    # -- functional (bit-exact ISA-L RS) ----------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """One-pass RS parity (identical bytes to ISA-L)."""
        return self.code.encode_blocks(data)

    def decode(self, available, erased):
        """RS decode via survivor-matrix inversion."""
        return self.code.decode(available, erased)

    # -- performance model --------------------------------------------------

    def _make_probe(self, wl: Workload, hw: HardwareConfig):
        """Probe objective for hill climbing: simulated ns/byte of a
        short single-thread run at distance d (the paper's 128 B
        sub-task latency target)."""
        probe_wl = wl.with_(nthreads=1,
                            data_bytes_per_thread=4 * wl.stripe_data_bytes)

        def policy_objective(policy: Policy) -> float:
            trace = isal_trace(probe_wl, hw.cpu, policy.to_variant())
            res = simulate([trace], hw)
            return res.makespan_ns / max(1, trace.data_bytes)

        def objective(d: int) -> float:
            return policy_objective(Policy(hw_prefetch=True, sw_distance=d))

        return objective, policy_objective

    def coordinator_for(self, wl: Workload, hw: HardwareConfig) -> AdaptiveCoordinator:
        """Build the coordinator (exposed for tests/examples)."""
        probe = policy_probe = None
        if self.use_probe:
            probe, policy_probe = self._make_probe(wl, hw)
        return AdaptiveCoordinator(wl, hw, config=self.coordinator_config,
                                   probe=probe, policy_probe=policy_probe)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int,
              policy: Policy | None = None, stripe_offset: int = 0,
              stripes: int | None = None) -> Trace:
        """One thread's trace under ``policy`` (default: initial policy)."""
        if policy is None:
            policy = (self.policy_override
                      or AdaptiveCoordinator(wl, hw).policy)
        if stripes is not None:
            wl = wl.with_(data_bytes_per_thread=stripes * wl.stripe_data_bytes)
        return isal_trace(wl, hw.cpu, policy.to_variant(), thread=thread,
                          stripe_offset=stripe_offset)

    def run(self, workload: Workload | None = None,
            hardware: HardwareConfig | None = None, *,
            policy: Policy | None = None, **legacy) -> LibraryResult:
        """Simulate the workload with the full adaptive pipeline.

        ``policy`` pins a scheduling policy for this run only (it
        behaves like a per-call ``policy_override``).
        """
        workload, hardware = self._resolve_run_args(workload, hardware, legacy)
        hw = hardware or HardwareConfig()
        wl = self.effective_workload(workload)
        hw = hw.with_cpu(simd=wl.simd)
        if wl.k != self.k or wl.m != self.m:
            raise GeometryMismatch(
                f"workload geometry ({wl.k},{wl.m}) != encoder ({self.k},{self.m})")
        self.policy_log = []
        self.last_coordinator = None
        pinned = policy or self.policy_override
        if pinned is not None or not self.adaptive:
            run_policy = pinned or AdaptiveCoordinator(
                wl, hw, config=self.coordinator_config).policy
            self.policy_log.append(run_policy)
            traces = [self.trace(wl, hw, t, policy=run_policy)
                      for t in range(wl.nthreads)]
            sim = simulate(traces, hw)
            return LibraryResult(self.name, wl, sim)
        return LibraryResult(self.name, wl, self._run_adaptive(wl, hw))

    def _calibrate_baseline(self, coord: AdaptiveCoordinator,
                            wl: Workload, hw: HardwareConfig) -> None:
        """Measure the low-pressure reference the thresholds compare
        against (the paper calibrates '110% of the average latency under
        low pressure'): a short single-thread run of the low-pressure
        kernel."""
        lp_wl = wl.with_(nthreads=1,
                         data_bytes_per_thread=3 * wl.stripe_data_bytes)
        lp_policy = AdaptiveCoordinator(lp_wl, hw,
                                        config=self.coordinator_config).policy
        trace = isal_trace(lp_wl, hw.cpu, lp_policy.to_variant())
        res = simulate([trace], hw)
        coord.set_baseline(res.counters)

    def _run_adaptive(self, wl: Workload, hw: HardwareConfig) -> SimResult:
        """Chunked execution: simulate, sample counters, re-decide."""
        tracer = get_tracer()
        with tracer.sequenced(0.0):
            run_span = tracer.begin("dialga.run", 0.0, k=self.k, m=self.m,
                                    nthreads=wl.nthreads,
                                    block_bytes=wl.block_bytes)
            result = self._run_adaptive_chunks(wl, hw, tracer)
            tracer.end(run_span, result.makespan_ns,
                       data_bytes=result.data_bytes,
                       switches=self.policy_switches)
        return result

    def _run_adaptive_chunks(self, wl: Workload, hw: HardwareConfig,
                             tracer) -> SimResult:
        coord = self.coordinator_for(wl, hw)
        self.last_coordinator = coord
        if wl.nthreads > 1:
            self._calibrate_baseline(coord, wl, hw)
        counters = Counters()
        load_b, store_b = make_backends(hw, counters)
        contexts = [ThreadContext(hw, counters, load_b, store_b)
                    for _ in range(wl.nthreads)]
        total_stripes = wl.stripes_per_thread
        per_chunk = max(1, total_stripes // self.chunks)
        # The replayer's default counterfactual window: one adaptation
        # chunk, exactly what each decision governed.
        coord.window_stripes = per_chunk
        done = 0
        # The chunk loop is the paper's PMU sampler: one delta per
        # chunk boundary, handed to the coordinator and attached to
        # the chunk's phase span.
        sampler = CounterSampler(
            counters, period_ns=coord.config.sample_period_ns)
        last_makespan = 0.0
        chunk_idx = 0
        while done < total_stripes:
            n = min(per_chunk, total_stripes - done)
            policy = coord.policy
            self.policy_log.append(policy)
            chunk_span = None
            if tracer.enabled:
                chunk_span = tracer.begin("sim.chunk", last_makespan,
                                          chunk=chunk_idx, stripes=n,
                                          policy=policy.describe())
            chunk_wl = wl.with_(data_bytes_per_thread=n * wl.stripe_data_bytes)
            for t, ctx in enumerate(contexts):
                ctx.trace.extend(isal_trace(chunk_wl, hw.cpu,
                                            policy.to_variant(), thread=t,
                                            stripe_offset=done))
            done += n
            res = simulate([], hw, contexts=contexts,
                           drain=done >= total_stripes)
            delta = sampler.sample_now(res.makespan_ns)
            chunk_ns = res.makespan_ns - last_makespan
            chunk_tput = (n * wl.stripe_data_bytes * wl.nthreads
                          / chunk_ns) if chunk_ns > 0 else None
            last_makespan = res.makespan_ns
            if chunk_span is not None:
                tracer.end(chunk_span, res.makespan_ns,
                           throughput_gbps=chunk_tput,
                           **delta.nonzero_dict("d_"))
            coord.observe(delta, throughput_gbps=chunk_tput,
                          now_ns=res.makespan_ns)
            chunk_idx += 1
        times = [ctx.clock for ctx in contexts]
        data = sum(ctx.trace.data_bytes for ctx in contexts)
        return SimResult(makespan_ns=max(times), thread_times_ns=times,
                         counters=counters, data_bytes=data)
