"""DIALGA's public encoder — the paper's system, end to end.

``DialgaEncoder`` implements the same :class:`~repro.libs.base.
CodingLibrary` interface as the baselines, so benchmarks treat it
uniformly. Functionally it *is* ISA-L (table-lookup RS — DIALGA is
"implemented within ISA-L", §1); the difference is the performance
path: the adaptive coordinator picks a kernel entry point (policy) from
the I/O pattern, hill-climbs the software-prefetch distance on a probe,
and re-decides between chunks from sampled counters.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rs import RSCode
from repro.core.coordinator import AdaptiveCoordinator, CoordinatorConfig
from repro.core.policy import Policy
from repro.gf.arithmetic import GF
from repro.libs.base import CodingLibrary, LibraryResult
from repro.simulator import HardwareConfig, SimResult, simulate
from repro.simulator.engine import ThreadContext
from repro.simulator.multicore import make_backends
from repro.simulator.counters import Counters
from repro.trace import Trace, Workload, isal_trace


class DialgaEncoder(CodingLibrary):
    """Adaptive prefetcher-scheduled erasure coding on PM.

    Parameters
    ----------
    k, m:
        Code geometry.
    field:
        GF instance (default GF(2^8)).
    adaptive:
        If False, run the initial policy for the whole job (no
        between-chunk adaptation) — used by the Fig. 18 ablations.
    chunks:
        How many chunks the job is split into for adaptation/sampling.
    policy_override:
        Pin a specific policy (ablation variants).
    use_probe:
        Hill-climb the software-prefetch distance on a small simulated
        probe before starting (§4.1.2, on by default as in the paper).
        Disable to pin d = k.
    """

    name = "DIALGA"

    def __init__(self, k: int, m: int, field: GF | None = None,
                 adaptive: bool = True, chunks: int = 6,
                 policy_override: Policy | None = None,
                 use_probe: bool = True,
                 coordinator_config: CoordinatorConfig | None = None):
        self.code = RSCode(k, m, field=field)
        self.k, self.m = k, m
        self.adaptive = adaptive
        self.chunks = max(1, chunks)
        self.policy_override = policy_override
        self.use_probe = use_probe
        self.coordinator_config = coordinator_config
        #: Policies applied per chunk in the last run (observability).
        self.policy_log: list[Policy] = []

    # -- functional (bit-exact ISA-L RS) ----------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """One-pass RS parity (identical bytes to ISA-L)."""
        return self.code.encode_blocks(data)

    def decode(self, available, erased):
        """RS decode via survivor-matrix inversion."""
        return self.code.decode(available, erased)

    # -- performance model --------------------------------------------------

    def _make_probe(self, wl: Workload, hw: HardwareConfig):
        """Probe objective for hill climbing: simulated ns/byte of a
        short single-thread run at distance d (the paper's 128 B
        sub-task latency target)."""
        probe_wl = wl.with_(nthreads=1,
                            data_bytes_per_thread=4 * wl.stripe_data_bytes)

        def policy_objective(policy: Policy) -> float:
            trace = isal_trace(probe_wl, hw.cpu, policy.to_variant())
            res = simulate([trace], hw)
            return res.makespan_ns / max(1, trace.data_bytes)

        def objective(d: int) -> float:
            return policy_objective(Policy(hw_prefetch=True, sw_distance=d))

        return objective, policy_objective

    def coordinator_for(self, wl: Workload, hw: HardwareConfig) -> AdaptiveCoordinator:
        """Build the coordinator (exposed for tests/examples)."""
        probe = policy_probe = None
        if self.use_probe:
            probe, policy_probe = self._make_probe(wl, hw)
        return AdaptiveCoordinator(wl, hw, config=self.coordinator_config,
                                   probe=probe, policy_probe=policy_probe)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int,
              policy: Policy | None = None, stripe_offset: int = 0,
              stripes: int | None = None) -> Trace:
        """One thread's trace under ``policy`` (default: initial policy)."""
        if policy is None:
            policy = (self.policy_override
                      or AdaptiveCoordinator(wl, hw).policy)
        if stripes is not None:
            wl = wl.with_(data_bytes_per_thread=stripes * wl.stripe_data_bytes)
        return isal_trace(wl, hw.cpu, policy.to_variant(), thread=thread,
                          stripe_offset=stripe_offset)

    def run(self, wl: Workload, hw: HardwareConfig | None = None) -> LibraryResult:
        """Simulate the workload with the full adaptive pipeline."""
        hw = hw or HardwareConfig()
        wl = self.effective_workload(wl)
        hw = hw.with_cpu(simd=wl.simd)
        if wl.k != self.k or wl.m != self.m:
            raise ValueError(
                f"workload geometry ({wl.k},{wl.m}) != encoder ({self.k},{self.m})")
        self.policy_log = []
        if self.policy_override is not None or not self.adaptive:
            policy = self.policy_override or AdaptiveCoordinator(
                wl, hw, config=self.coordinator_config).policy
            self.policy_log.append(policy)
            traces = [self.trace(wl, hw, t, policy=policy)
                      for t in range(wl.nthreads)]
            sim = simulate(traces, hw)
            return LibraryResult(self.name, wl, sim)
        return LibraryResult(self.name, wl, self._run_adaptive(wl, hw))

    def _calibrate_baseline(self, coord: AdaptiveCoordinator,
                            wl: Workload, hw: HardwareConfig) -> None:
        """Measure the low-pressure reference the thresholds compare
        against (the paper calibrates '110% of the average latency under
        low pressure'): a short single-thread run of the low-pressure
        kernel."""
        lp_wl = wl.with_(nthreads=1,
                         data_bytes_per_thread=3 * wl.stripe_data_bytes)
        lp_policy = AdaptiveCoordinator(lp_wl, hw,
                                        config=self.coordinator_config).policy
        trace = isal_trace(lp_wl, hw.cpu, lp_policy.to_variant())
        res = simulate([trace], hw)
        coord.set_baseline(res.counters)

    def _run_adaptive(self, wl: Workload, hw: HardwareConfig) -> SimResult:
        """Chunked execution: simulate, sample counters, re-decide."""
        coord = self.coordinator_for(wl, hw)
        if wl.nthreads > 1:
            self._calibrate_baseline(coord, wl, hw)
        counters = Counters()
        load_b, store_b = make_backends(hw, counters)
        contexts = [ThreadContext(hw, counters, load_b, store_b)
                    for _ in range(wl.nthreads)]
        total_stripes = wl.stripes_per_thread
        per_chunk = max(1, total_stripes // self.chunks)
        done = 0
        last_snap = counters.snapshot()
        last_makespan = 0.0
        while done < total_stripes:
            n = min(per_chunk, total_stripes - done)
            policy = coord.policy
            self.policy_log.append(policy)
            chunk_wl = wl.with_(data_bytes_per_thread=n * wl.stripe_data_bytes)
            for t, ctx in enumerate(contexts):
                ctx.trace.extend(isal_trace(chunk_wl, hw.cpu,
                                            policy.to_variant(), thread=t,
                                            stripe_offset=done))
            done += n
            res = simulate([], hw, contexts=contexts,
                           drain=done >= total_stripes)
            delta = counters.delta(last_snap)
            last_snap = counters.snapshot()
            chunk_ns = res.makespan_ns - last_makespan
            chunk_tput = (n * wl.stripe_data_bytes * wl.nthreads
                          / chunk_ns) if chunk_ns > 0 else None
            last_makespan = res.makespan_ns
            coord.observe(delta, throughput_gbps=chunk_tput)
        times = [ctx.clock for ctx in contexts]
        data = sum(ctx.trace.data_bytes for ctx in contexts)
        return SimResult(makespan_ns=max(times), thread_times_ns=times,
                         counters=counters, data_bytes=data)
