"""DIALGA's lightweight operator (§4.2).

Two mechanisms, both branch-free at kernel run time:

* **Static shuffle mapping** — a fixed permutation of the cacheline
  processing order that presents no ascending pattern to the L2
  streamer, so its confidence never builds: a function-level,
  privilege-free hardware-prefetcher *off* switch. Deactivating the
  mapping (processing in natural order) re-trains the streamer — the
  *on* switch. Row independence of the coding kernel makes any order
  bit-exact.

* **Branchless prefetch pointers** — the software-prefetch targets are
  pre-computed as an address table parallel to the load sequence
  (vectorized pre-processing in the paper), so the kernel needs no
  bounds branches; tail elements simply have no pointer and revert to
  the plain kernel.

The trace generator (:mod:`repro.trace.isal_gen`) embeds both; this
module exposes them directly for inspection, tests and reuse.
"""

from __future__ import annotations

import numpy as np

from repro.trace.isal_gen import _row_order
from repro.trace.layout import StripeLayout


def static_shuffle_mapping(lines: int) -> list[int]:
    """The static permutation used to defeat the L2 streamer.

    Deterministic (a *static* mapping): every call returns the same
    order for a given length, with no two consecutive rows within
    +-2 lines of each other (the streamer's sequential window)
    whenever the length allows it.
    """
    return _row_order(lines, shuffle=True)


def verify_shuffle_defeats_streamer(order: list[int],
                                    train_threshold: int = 4) -> bool:
    """Check the invariants the mapping must satisfy.

    Two criteria (see :func:`repro.trace.isal_gen._row_order`):

    1. no two consecutive accesses within the +-2 sequential window
       (defeats naive adjacent-delta detection), and
    2. a head-tracking streamer (confidence +1 on a +1/+2 head advance,
       neutral behind the head, -2 on forward jumps) never reaches the
       training threshold.

    Below 8 lines no permutation can keep every consecutive gap > 2
    (pigeonhole), so tiny streams are exempt — they are too short to
    train the streamer anyway (its threshold exceeds their length).
    """
    if len(order) <= 7:
        return True
    diffs = np.abs(np.diff(np.asarray(order)))
    if bool(np.any(diffs <= 2)):
        return False
    head, conf = order[0], 0
    for line in order[1:]:
        if line in (head + 1, head + 2):
            conf += 1
            head = line
            if conf >= train_threshold:
                return False
        elif line > head:
            conf = max(0, conf - 2)
            head = line
    return True


def build_prefetch_pointers(layout: StripeLayout, stripe: int,
                            order: list[int], d: int,
                            d_first: int | None = None) -> list[list[int]]:
    """Pre-compute the software-prefetch address table (§4.2.2).

    Element ``n`` of the load sequence (row-major over ``order`` rows x
    k blocks) gets the addresses to prefetch while it executes — empty
    for tail elements, which revert to the standard kernel. With
    ``d_first`` set (§4.3.2), XPLine-leading targets are prefetched from
    ``d_first`` elements back and the others from ``d``, so an element
    can carry up to two pointers (the paper's two vectorized pointer
    groups). Semantics match the trace generator exactly (tests assert
    this).
    """
    k = layout.k
    total = len(order) * k

    def addr(n: int) -> int:
        rp, j = divmod(n, k)
        return layout.line_addr(stripe, j, order[rp])

    def is_first(a: int) -> bool:
        return (a // 64) % 4 == 0

    table: list[list[int]] = []
    for n in range(total):
        targets: list[int] = []
        t = n + d
        if t < total:
            a = addr(t)
            if d_first is None or not is_first(a):
                targets.append(a)
        if d_first is not None:
            t2 = n + d_first
            if t2 < total:
                a2 = addr(t2)
                if is_first(a2):
                    targets.append(a2)
        table.append(targets)
    return table
