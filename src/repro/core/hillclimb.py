"""Hill-climbing search for the software-prefetch distance (§4.1.2).

The paper: start at ``d = k``, iteratively explore a neighborhood of
size 16 around the current distance, move to the best neighbor, stop at
a local optimum. The objective is the measured latency of short 128 B
sub-tasks — here, the simulated time of a small probe workload.
"""

from __future__ import annotations

from typing import Callable


class HillClimber:
    """Generic integer hill climber with a fixed-size neighborhood.

    Parameters
    ----------
    objective:
        Function to *minimize* (e.g. probe latency in ns). Evaluations
        are memoized, so re-visiting a distance is free.
    lower, upper:
        Inclusive bounds of the search domain.
    neighborhood:
        How many neighbors to examine per step (paper: 16 — the
        nearest 8 on each side).
    max_steps:
        Safety bound on climb iterations.
    on_step:
        Optional observer called after the initial evaluation and each
        accepted move with ``(step, x, value)`` — the coordinator wires
        this to tracer events so the climb is visible on the timeline.
    """

    def __init__(self, objective: Callable[[int], float],
                 lower: int = 1, upper: int = 4096,
                 neighborhood: int = 16, max_steps: int = 64,
                 on_step: Callable[[int, int, float], None] | None = None):
        if lower > upper:
            raise ValueError("lower bound exceeds upper bound")
        self.objective = objective
        self.lower, self.upper = lower, upper
        self.neighborhood = neighborhood
        self.max_steps = max_steps
        self.on_step = on_step
        self._cache: dict[int, float] = {}
        self.evaluations = 0
        #: Accepted moves of the last :meth:`search` as ``(step, x,
        #: value)`` tuples — the decision ledger records this trajectory
        #: as the §4.1.2 search evidence.
        self.trajectory: list[tuple[int, int, float]] = []

    def _eval(self, x: int) -> float:
        if x not in self._cache:
            self._cache[x] = self.objective(x)
            self.evaluations += 1
        return self._cache[x]

    def _neighbors(self, x: int) -> list[int]:
        half = self.neighborhood // 2
        out = []
        for step in range(1, half + 1):
            for cand in (x - step, x + step):
                if self.lower <= cand <= self.upper:
                    out.append(cand)
        return out

    def search(self, start: int) -> tuple[int, float]:
        """Climb from ``start``; returns ``(best_x, best_value)``."""
        x = min(max(start, self.lower), self.upper)
        best = self._eval(x)
        self.trajectory = [(0, x, best)]
        if self.on_step is not None:
            self.on_step(0, x, best)
        for step in range(1, self.max_steps + 1):
            candidates = self._neighbors(x)
            if not candidates:
                break
            vals = [(self._eval(c), c) for c in candidates]
            v, c = min(vals)
            if v < best:
                best, x = v, c
                self.trajectory.append((step, x, best))
                if self.on_step is not None:
                    self.on_step(step, x, best)
            else:
                break  # local optimum
        return x, best
