"""PM read-buffer-friendly prefetching math (§4.3).

Implements the paper's Eq. (1) distance cap and the non-uniform
distance rule: the *first* cacheline of each XPLine is prefetched from
further back (it pays the media latency; its implicit load then makes
the XPLine's remaining lines cheap), while the rest use the base
distance.
"""

from __future__ import annotations

import math

from repro.simulator.params import PMConfig


def bf_distances(k: int, base: int | None = None) -> tuple[int, int]:
    """(first-line distance, remaining-lines distance).

    The paper initializes the XPLine-leading distance to ``k + 4`` and
    lets the coordinator adjust it upward; the leading line pays the
    media latency while the rest hit the read buffer, so once the
    coordinator has a tuned base distance it doubles it for the leading
    line (lead time scales with distance) and keeps the base for the
    remaining lines.
    """
    if base is None:
        return k + 4, k
    return 2 * base, base


def eq1_max_distance(nthreads: int, k: int, m: int, pm: PMConfig,
                     nt_stores: bool = True) -> int:
    """Largest prefetch distance satisfying the paper's Eq. (1).

    ``nthread * k * 256B * ceil(max(d) / (k + m)) <= buffer_size``,
    with m = 0 when parity is written non-temporally (it never occupies
    the read buffer). Returns at least 1 — below that the read buffer
    cannot even hold the demand streams and prefetching should back off
    entirely.
    """
    if nthreads < 1 or k < 1:
        raise ValueError("nthreads and k must be positive")
    buffer_bytes = pm.read_buffer_kb * 1024
    denom = k if nt_stores else k + m
    xplines_budget = buffer_bytes // (nthreads * k * pm.xpline_bytes)
    # ceil(d / denom) <= xplines_budget  =>  d <= denom * xplines_budget
    return max(1, denom * xplines_budget)


def thrash_thread_bound(k: int, pm: PMConfig, streams_per_thread_factor: float = 1.0) -> int:
    """Thread count at which the read buffer starts thrashing.

    With each thread holding ~``k`` live XPLines (one per stream;
    more with aggressive prefetching — raise the factor), thrashing
    begins when ``nthreads * k * factor`` exceeds the buffer's XPLine
    capacity. For the paper's testbed this gives the 12-thread
    coordinator threshold (§4.1.2) and the 8 x 48-stream bound (§5.3).
    """
    capacity = pm.buffer_capacity_lines
    return max(1, int(capacity / (k * streams_per_thread_factor)))
