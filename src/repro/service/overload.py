"""Overload resilience: what the service does when it cannot do everything.

The paper's coordinator (§4.1) is a feedback controller: it watches
hardware counters and adapts prefetch policy to observed pressure. This
module applies the same adaptive-feedback discipline one layer up, to
*service admission* — four cooperating mechanisms, all deterministic on
the simulated clock:

* **Deadline-aware admission** — every :class:`~repro.service.request.
  Request` may carry a deadline; an arrival whose estimated completion
  (queue-wait estimate + service-time EWMA) already misses it is shed
  at *enqueue* (fail-fast), before it consumes any decode work.
  Deadlines propagate into batches: requests that expire while queued
  are dropped at dispatch instead of occupying an encode job.
* **Adaptive concurrency** — an AIMD controller
  (:class:`ConcurrencyController`) tracks observed batch latency
  against a target and adjusts the effective in-flight thread limit,
  always composing with — never exceeding — the Eq. (1) admission cap.
* **Retry budgets** — a token bucket (:class:`RetryBudget`) refilled
  by a fraction of *successful* traffic caps total retry volume, so a
  correlated transient-fault window cannot amplify into a metastable
  retry storm.
* **Priority classes and brownout** — foreground reads > writes >
  background work, shed in strict reverse-priority order (a full queue
  evicts the lowest class first), plus a :class:`BrownoutController`
  state machine that, under *sustained* saturation, proactively serves
  degraded reads (skipping slow or breaker-open devices) and sheds
  background work outright, reverting when pressure clears.

Everything here is policy; the mechanisms live in
:class:`~repro.service.service.ErasureCodingService`, which consults an
:class:`OverloadManager` when ``ServiceConfig.overload`` is set and
behaves exactly as before when it is not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.service.request import Priority, Request


@dataclass(frozen=True, kw_only=True)
class OverloadConfig:
    """Tuning knobs for the overload-control layer (all keyword-only).

    Attributes
    ----------
    deadline_admission:
        Shed deadline-infeasible arrivals at enqueue.
    target_batch_latency_ns:
        Batch service-time target the AIMD controller steers toward.
    aimd_increase:
        Additive thread-limit increase per on-target batch.
    aimd_decrease:
        Multiplicative limit factor applied per over-target batch.
    min_concurrency:
        Floor of the adaptive limit (the service must keep moving).
    retry_budget_enabled:
        Cap retries with the token bucket (off = unbudgeted retries,
        the metastability counterfactual).
    retry_budget_initial / retry_budget_ratio / retry_budget_cap:
        Token bucket: starting balance, tokens earned per successful
        operation, and balance cap.
    brownout_enter_pressure / brownout_exit_pressure:
        Queue-depth fractions (of ``max_queue_depth``) read as
        saturated / clear.
    brownout_latency_factor:
        A batch slower than ``factor * target`` also reads saturated.
    brownout_enter_after / brownout_exit_after:
        Consecutive saturated / clear observations required to flip
        the brownout state machine (hysteresis).
    hedge_enabled:
        Re-issue stalled reads against the degraded path.
    hedge_quantile:
        GET-latency quantile (0..1) that arms the hedge timer.
    hedge_min_delay_ns:
        Hedge-delay floor, also used before enough samples exist.
    hedge_min_samples:
        GET latencies observed before the quantile is trusted.
    ewma_alpha:
        Weight of the newest batch in the service-time EWMA.
    """

    deadline_admission: bool = True
    target_batch_latency_ns: float = 8_000_000.0
    aimd_increase: float = 1.0
    aimd_decrease: float = 0.5
    min_concurrency: int = 1
    retry_budget_enabled: bool = True
    retry_budget_initial: float = 8.0
    retry_budget_ratio: float = 0.1
    retry_budget_cap: float = 40.0
    brownout_enter_pressure: float = 0.75
    brownout_exit_pressure: float = 0.25
    brownout_latency_factor: float = 3.0
    brownout_enter_after: int = 3
    brownout_exit_after: int = 4
    hedge_enabled: bool = True
    hedge_quantile: float = 0.95
    hedge_min_delay_ns: float = 250_000.0
    hedge_min_samples: int = 8
    ewma_alpha: float = 0.3

    def __post_init__(self):
        if self.target_batch_latency_ns <= 0:
            raise ValueError("target_batch_latency_ns must be positive")
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ValueError("aimd_decrease must be in (0, 1)")
        if self.aimd_increase <= 0:
            raise ValueError("aimd_increase must be positive")
        if self.min_concurrency < 1:
            raise ValueError("min_concurrency must be >= 1")
        if (self.retry_budget_initial < 0 or self.retry_budget_ratio < 0
                or self.retry_budget_cap < self.retry_budget_initial):
            raise ValueError("retry budget needs 0 <= initial <= cap and "
                             "ratio >= 0")
        if not (0.0 <= self.brownout_exit_pressure
                <= self.brownout_enter_pressure <= 1.0):
            raise ValueError("brownout pressures need "
                             "0 <= exit <= enter <= 1")
        if self.brownout_enter_after < 1 or self.brownout_exit_after < 1:
            raise ValueError("brownout hysteresis counts must be >= 1")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class RetryBudget:
    """Token bucket capping retries to a fraction of successful traffic.

    Every successful operation deposits ``ratio`` tokens (up to
    ``cap``); every retry withdraws one whole token or is **denied**.
    The invariant property tests pin: lifetime retries spent never
    exceed ``initial + ratio * successes`` — so under a correlated
    fault storm the retry volume is bounded by the service's own
    goodput instead of amplifying it away.
    """

    def __init__(self, *, initial: float = 8.0, ratio: float = 0.1,
                 cap: float = 40.0):
        if initial < 0 or ratio < 0 or cap < initial:
            raise ValueError("retry budget needs 0 <= initial <= cap and "
                             "ratio >= 0")
        self.ratio = ratio
        self.cap = cap
        self.tokens = float(initial)
        #: Lifetime accounting (observability + the property tests).
        self.initial = float(initial)
        self.successes = 0
        self.spent = 0
        self.denied = 0

    def on_success(self) -> None:
        """Deposit the per-success fraction (saturating at the cap)."""
        self.successes += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False = retry denied."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    @property
    def budget_bound(self) -> float:
        """The invariant ceiling: ``initial + ratio * successes``."""
        return self.initial + self.ratio * self.successes


class ConcurrencyController:
    """AIMD controller over the effective in-flight thread limit.

    The limit lives in ``[min_concurrency, capacity]`` where
    ``capacity`` is the Eq. (1) cap — the adaptive limit *composes
    with* the paper's bound, it can only tighten it. Each completed
    batch reports its service latency: on-target batches earn an
    additive increase, over-target batches a multiplicative decrease
    (the classic TCP-shaped response that keeps the service at the
    knee instead of oscillating past it).
    """

    def __init__(self, capacity: int, *, target_ns: float,
                 increase: float = 1.0, decrease: float = 0.5,
                 floor: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if floor < 1 or floor > capacity:
            raise ValueError(f"floor must be in [1, {capacity}]")
        self.capacity = capacity
        self.target_ns = float(target_ns)
        self.increase = increase
        self.decrease = decrease
        self.floor = floor
        self._limit = float(capacity)
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """Current effective thread limit (never above the Eq. (1) cap)."""
        return max(self.floor, min(self.capacity, int(self._limit)))

    def observe(self, latency_ns: float) -> None:
        """Feed one batch's observed service latency."""
        if latency_ns <= self.target_ns:
            before = self.limit
            self._limit = min(float(self.capacity),
                              self._limit + self.increase)
            if self.limit > before:
                self.increases += 1
        else:
            before = self.limit
            self._limit = max(float(self.floor),
                              self._limit * self.decrease)
            if self.limit < before:
                self.decreases += 1


class BrownoutController:
    """Hysteresis state machine: NORMAL <-> BROWNOUT.

    ``enter_after`` consecutive saturated observations engage brownout;
    ``exit_after`` consecutive clear ones disengage it. While engaged
    the service proactively degrades: background work is shed at
    admission and reads skip slow/breaker-open devices through parity
    reconstruction instead of waiting on them.
    """

    def __init__(self, *, enter_after: int = 3, exit_after: int = 4):
        if enter_after < 1 or exit_after < 1:
            raise ValueError("hysteresis counts must be >= 1")
        self.enter_after = enter_after
        self.exit_after = exit_after
        self.active = False
        self._saturated_streak = 0
        self._clear_streak = 0
        #: ``(at_ns, "enter"|"exit")`` transitions, in clock order.
        self.transitions: list[tuple[float, str]] = []

    def observe(self, saturated: bool, now_ns: float) -> str | None:
        """Feed one pressure observation; returns a transition or None."""
        if saturated:
            self._saturated_streak += 1
            self._clear_streak = 0
            if not self.active and self._saturated_streak >= self.enter_after:
                self.active = True
                self.transitions.append((now_ns, "enter"))
                return "enter"
        else:
            self._clear_streak += 1
            self._saturated_streak = 0
            if self.active and self._clear_streak >= self.exit_after:
                self.active = False
                self.transitions.append((now_ns, "exit"))
                return "exit"
        return None


@dataclass
class ShedDecision:
    """Why an arrival was turned away (reason keys are metric names)."""

    reason: str            # "deadline" | "brownout" | "priority"
    detail: str = ""
    #: A lower-priority queued request evicted to make room (priority
    #: shedding on a full queue); None otherwise.
    victim: Request | None = field(default=None)


class OverloadManager:
    """Glue object consulted by the service's event loop.

    Owns the four controllers plus the queue-wait estimator; stateless
    toward the service otherwise — every method takes the observed
    quantities explicitly so the manager is unit-testable alone.
    """

    def __init__(self, config: OverloadConfig, *, capacity_threads: int,
                 base_latency_ns: float = 2_000.0):
        self.config = config
        self.concurrency = ConcurrencyController(
            capacity_threads,
            target_ns=config.target_batch_latency_ns,
            increase=config.aimd_increase,
            decrease=config.aimd_decrease,
            floor=config.min_concurrency)
        self.retry_budget = RetryBudget(
            initial=config.retry_budget_initial,
            ratio=config.retry_budget_ratio,
            cap=config.retry_budget_cap)
        self.brownout = BrownoutController(
            enter_after=config.brownout_enter_after,
            exit_after=config.brownout_exit_after)
        #: EWMA of observed batch service time; seeded optimistically
        #: so a cold service never sheds its first arrivals.
        self.ewma_batch_ns = float(base_latency_ns)
        self.batches_observed = 0

    # -- queue-wait estimation / deadline admission -------------------------

    def observe_batch(self, latency_ns: float) -> None:
        """Fold one completed batch into the EWMA + AIMD controller."""
        alpha = self.config.ewma_alpha
        self.ewma_batch_ns = (alpha * latency_ns
                              + (1.0 - alpha) * self.ewma_batch_ns)
        self.batches_observed += 1
        self.concurrency.observe(latency_ns)

    def estimate_finish_ns(self, now_ns: float, *, queue_depth: int,
                           max_batch: int, active_threads: int,
                           threads_per_job: int) -> float:
        """Estimated completion instant for an arrival enqueued now.

        Work ahead of the arrival = in-flight batches + the batches the
        queue will coalesce into; the effective drain rate is the
        adaptive limit in batch slots. Deliberately simple and
        deterministic — an *admission estimate*, not a simulation.
        """
        queued_batches = math.ceil((queue_depth + 1) / max(1, max_batch))
        active_batches = active_threads / max(1, threads_per_job)
        slots = max(1.0, self.concurrency.limit / max(1, threads_per_job))
        wait = self.ewma_batch_ns * (active_batches + queued_batches) / slots
        return now_ns + wait + self.ewma_batch_ns

    def admit(self, request: Request, now_ns: float, *, queue_depth: int,
              max_batch: int, active_threads: int,
              threads_per_job: int) -> ShedDecision | None:
        """Admission verdict for one arrival (None = let it queue)."""
        priority = request.resolved_priority
        if self.brownout.active and priority is Priority.BACKGROUND:
            return ShedDecision("brownout",
                                "background work shed while browned out")
        if (self.config.deadline_admission
                and math.isfinite(request.deadline_ns)):
            est = self.estimate_finish_ns(
                now_ns, queue_depth=queue_depth, max_batch=max_batch,
                active_threads=active_threads,
                threads_per_job=threads_per_job)
            if est > request.deadline_ns:
                return ShedDecision(
                    "deadline",
                    f"estimated finish {est:.0f}ns past deadline "
                    f"{request.deadline_ns:.0f}ns")
        return None

    # -- brownout pressure --------------------------------------------------

    def pressure_observation(self, *, queue_depth: int, max_queue_depth: int,
                             batch_latency_ns: float) -> bool:
        """Whether this completion instant reads as *saturated*."""
        cfg = self.config
        pressure = queue_depth / max(1, max_queue_depth)
        return (pressure >= cfg.brownout_enter_pressure
                or batch_latency_ns > (cfg.brownout_latency_factor
                                       * cfg.target_batch_latency_ns))

    # -- hedging ------------------------------------------------------------

    def hedge_delay_ns(self, get_histogram) -> float:
        """The armed hedge delay: a GET-latency quantile with a floor.

        ``get_histogram`` is the service's ``latency["get"]``
        :class:`~repro.service.metrics.LatencyHistogram` (or None
        before any GET completed).
        """
        cfg = self.config
        if (get_histogram is None
                or get_histogram.count < cfg.hedge_min_samples):
            return cfg.hedge_min_delay_ns
        return max(cfg.hedge_min_delay_ns,
                   get_histogram.percentile(cfg.hedge_quantile * 100.0))
