"""Self-healing: background scrub, priority repair, device recovery.

The service's event loop (:meth:`~repro.service.service.
ErasureCodingService.drain`) hands its *idle gaps* — simulated
intervals where no request is queued or in flight — to an attached
:class:`SelfHealer`, which spends them on maintenance in priority
order:

1. **Repair queue** — stripes carrying loss marks, most-damaged first
   (a stripe one block short of the parity budget is one fault away
   from data loss, so it jumps the line).
2. **Background scrub** — a :class:`ScrubScheduler` walks the store in
   paced slices, converting silent corruption to erasures and feeding
   the repair queue and the :class:`~repro.service.health.
   HealthMonitor`.
3. **Breaker recovery** — devices whose circuit breaker cooled down are
   probed (restore + checksum scan); clean probes close the breaker.

Every unit of maintenance work is charged simulated time through the
service's own cost model and only starts if it both fits the idle gap
and can reserve its thread budget from the Eq. (1)
:class:`~repro.service.admission.AdmissionController` — scrubbing can
never thrash the read buffer that foreground traffic depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import get_tracer, use_tracer
from repro.pmstore.scrubber import Scrubber
from repro.service.health import HealthMonitor, HealthState


class RepairQueue:
    """Pending stripe repairs, popped most-damaged-first.

    Priorities are computed against the store's *current* loss marks at
    pop time (damage evolves while work waits), with stripe id as the
    deterministic tie-break. Stripes that fail repair (losses beyond
    the parity budget) are parked in :attr:`unrepairable` instead of
    being retried forever.
    """

    def __init__(self):
        self._pending: set[int] = set()
        self.unrepairable: set[int] = set()
        #: Lifetime counters (observability).
        self.tasks_done = 0
        self.blocks_rebuilt = 0

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, sid: int) -> None:
        """Add one stripe to the backlog (idempotent)."""
        if sid not in self.unrepairable:
            self._pending.add(sid)

    def enqueue_backlog(self, store) -> int:
        """Queue every stripe currently carrying loss marks."""
        added = 0
        for sid in store.stripes_with_losses():
            if sid not in self._pending and sid not in self.unrepairable:
                self._pending.add(sid)
                added += 1
        return added

    def pop_most_urgent(self, store) -> int | None:
        """Remove and return the most-damaged pending stripe."""
        while self._pending:
            sid = max(self._pending,
                      key=lambda s: (len(store.lost_blocks(s)), -s))
            self._pending.discard(sid)
            if store.lost_blocks(sid):
                return sid
            # Healed in the meantime (e.g. a write-path verify): skip.
        return None


@dataclass
class ScrubScheduler:
    """Paces background scrubbing over the simulated clock.

    Every ``period_ns`` the scheduler releases one slice of
    ``stripes_per_slice`` stripes, walking the store round-robin — a
    full pass over ``N`` stripes therefore takes
    ``ceil(N / stripes_per_slice) * period_ns``, independent of load
    spikes (slices skipped under pressure are made up later).
    """

    period_ns: float = 500_000.0
    stripes_per_slice: int = 4

    def __post_init__(self):
        if self.period_ns <= 0 or self.stripes_per_slice < 1:
            raise ValueError("scrub pace must be positive")
        self._cursor = 0
        self._next_due_ns = 0.0
        self.slices_run = 0

    def due(self, now_ns: float) -> bool:
        """Whether a slice may start at ``now_ns``."""
        return now_ns >= self._next_due_ns

    def next_slice(self, num_stripes: int, now_ns: float) -> list[int]:
        """Claim the next slice of stripe ids (empty store -> empty)."""
        if num_stripes == 0:
            self._next_due_ns = now_ns + self.period_ns
            return []
        sids = [(self._cursor + i) % num_stripes
                for i in range(min(self.stripes_per_slice, num_stripes))]
        self._cursor = (self._cursor + len(sids)) % num_stripes
        self._next_due_ns = now_ns + self.period_ns
        self.slices_run += 1
        return sids


class SelfHealer:
    """Drives repair, scrubbing and breaker recovery in idle gaps.

    Attach to a service with :meth:`~repro.service.service.
    ErasureCodingService.attach_healer`; the service then calls
    :meth:`run_window` from its event loop whenever simulated time
    would otherwise pass idle.

    Parameters
    ----------
    monitor:
        Health monitor (default: one sized to the service's stripe
        geometry at attach time).
    scrub:
        Scrub pacing (default :class:`ScrubScheduler`).
    maintenance_threads:
        Eq. (1) thread budget one maintenance task reserves.
    """

    def __init__(self, *, monitor: HealthMonitor | None = None,
                 scrub: ScrubScheduler | None = None,
                 maintenance_threads: int = 1):
        if maintenance_threads < 1:
            raise ValueError("maintenance needs at least one thread")
        self.monitor = monitor
        self.scrub = scrub or ScrubScheduler()
        self.maintenance_threads = maintenance_threads
        self.repairs = RepairQueue()
        self.service = None
        self._scrubber: Scrubber | None = None
        #: Per-erasure-count decode makespans (geometry is fixed, so a
        #: repair's simulated cost is a pure function of its erasures).
        self._repair_cost_ns: dict[int, float] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, service) -> None:
        """Bind to a service (called by ``attach_healer``)."""
        self.service = service
        devices = service.k + service.store.parity_blocks
        if self.monitor is None:
            self.monitor = HealthMonitor(devices)
        self._scrubber = Scrubber(service.store, metrics=service.metrics)

    # -- symptom intake (called from the service's request path) -----------

    def on_transient(self, now_ns: float) -> None:
        """A retried operation-level fault happened."""
        self.monitor.record_transient(now_ns)

    def on_degraded_read(self, key: str, now_ns: float) -> None:
        """A GET was served through parity; attribute the erasures."""
        store = self.service.store
        meta = store.meta_of(key)
        if meta.stripe == -1:      # shard manifest: shards report alone
            return
        for device in sorted(store.lost_blocks(meta.stripe)):
            self._record_device_error(device, now_ns, "degraded_read")
        self.repairs.enqueue(meta.stripe)

    def on_corruption(self, sid: int, device: int, now_ns: float) -> None:
        """Scrub located silent corruption at (stripe, device)."""
        self._record_device_error(device, now_ns, "corruption")
        self.repairs.enqueue(sid)

    def _record_device_error(self, device: int, now_ns: float,
                             kind: str) -> None:
        before = self.monitor.state(device)
        after = self.monitor.record_error(device, now_ns, kind)
        if before is HealthState.CLOSED and after is HealthState.OPEN:
            self._on_trip(device, now_ns)

    def _on_trip(self, device: int, now_ns: float) -> None:
        """Breaker tripped: isolate the device (when parity allows)."""
        svc = self.service
        svc.metrics.inc("health_trips")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("service.breaker_open", svc._ts(now_ns),
                         device=device)
        store = svc.store
        # Isolating a device converts every stripe's block at that
        # position into an erasure. Refuse when that would push any
        # stripe past the parity budget — a tripped breaker must never
        # *cause* data loss.
        for sid in range(store.num_stripes):
            lost = store.lost_blocks(sid)
            if device not in lost and len(lost) + 1 > store.m:
                svc.metrics.inc("health_isolation_refused")
                self.repairs.enqueue_backlog(store)
                return
        store.mark_device_lost(device)
        svc.metrics.inc("health_isolations")
        self.repairs.enqueue_backlog(store)

    # -- the maintenance loop ----------------------------------------------

    def backlog(self) -> int:
        """Pending repair tasks (unrepairable stripes not included)."""
        return len(self.repairs)

    def run_window(self, service, start_ns: float, end_ns: float) -> float:
        """Spend the idle gap ``[start_ns, end_ns)`` on maintenance.

        Advances the service clock past each completed unit of work and
        returns the instant maintenance stopped (never past ``end_ns``).
        Work only starts when its simulated cost fits the remaining gap
        *and* the admission controller grants the thread budget.
        """
        now = max(start_ns, service.clock_ns)
        while True:
            self._recover_devices(service, now)
            did = self._repair_one(service, now, end_ns)
            if did is None and self.scrub.due(now):
                did = self._scrub_slice(service, now, end_ns)
            if did is None:
                break
            now = did
            service.clock_ns = max(service.clock_ns, now)
        return now

    def _admit(self, service) -> bool:
        return service.admission.try_admit(self.maintenance_threads)

    def _decode_cost_ns(self, service, erasures: int) -> float:
        """Simulated one-stripe decode makespan (memoized, untraced —
        a cost *estimate* must not emit simulator spans)."""
        if erasures not in self._repair_cost_ns:
            with use_tracer(None):
                self._repair_cost_ns[erasures] = service._coding_makespan(
                    1, op="decode", erasures=erasures)
        return self._repair_cost_ns[erasures]

    def _repair_one(self, service, now: float,
                    end_ns: float) -> float | None:
        """Repair the most urgent stripe if it fits; returns new now."""
        store = service.store
        sid = self.repairs.pop_most_urgent(store)
        if sid is None:
            return None
        lost = store.lost_blocks(sid)
        erasures = min(len(lost), store.m, service.k)
        cost = (self._decode_cost_ns(service, erasures)
                + service._transfer_ns(len(lost) * service.block_bytes))
        if now + cost > end_ns or not self._admit(service):
            self.repairs.enqueue(sid)           # try again next gap
            return None
        tracer = get_tracer()
        span = (tracer.begin("service.repair", service._ts(now),
                             track="healer", stripe=sid, lost=len(lost))
                if tracer.enabled else None)
        try:
            rebuilt = store.repair(sid)
            self.repairs.tasks_done += 1
            self.repairs.blocks_rebuilt += rebuilt
            service.metrics.inc("repair_tasks_done")
            service.metrics.inc("repair_blocks_rebuilt", rebuilt)
        except ValueError:
            self.repairs.unrepairable.add(sid)
            service.metrics.inc("repair_unrepairable_stripes")
        finally:
            service.admission.release(self.maintenance_threads)
        now += cost
        if span is not None:
            span.end(service._ts(now))
        return now

    def _scrub_slice(self, service, now: float,
                     end_ns: float) -> float | None:
        """Scan one scheduled slice of stripes if it fits the gap."""
        store = service.store
        nblocks = service.k + store.parity_blocks
        slice_size = min(self.scrub.stripes_per_slice, store.num_stripes)
        cost = service._transfer_ns(
            max(1, slice_size) * nblocks * service.block_bytes)
        if now + cost > end_ns or not self._admit(service):
            return None
        sids = self.scrub.next_slice(store.num_stripes, now)
        tracer = get_tracer()
        span = (tracer.begin("service.scrub", service._ts(now),
                             track="healer", stripes=len(sids))
                if tracer.enabled else None)
        corrupt_found = 0
        for sid in sids:
            for device in self._scrubber.locate(sid):
                store.mark_lost(sid, device)
                corrupt_found += 1
                self.on_corruption(sid, device, now)
            if store.lost_blocks(sid):
                self.repairs.enqueue(sid)
        service.metrics.inc("scrub_stripes_scanned", len(sids))
        service.metrics.inc("scrub_corrupt_blocks", corrupt_found)
        service.admission.release(self.maintenance_threads)
        now += cost
        if span is not None:
            span.end(service._ts(now), corrupt=corrupt_found)
        return now

    def _recover_devices(self, service, now: float) -> None:
        """Half-open cooled breakers and probe them for recovery."""
        for device in self.monitor.tick(now):
            service.metrics.inc("health_probes")
        for device in list(self.monitor.open_devices()):
            if self.monitor.state(device) is not HealthState.HALF_OPEN:
                continue
            store = service.store
            if any(device in store.lost_blocks(sid)
                   for sid in store.stripes_with_losses()):
                # Still erased somewhere: let the repair queue finish
                # first; the breaker stays half-open until it has.
                self.repairs.enqueue_backlog(store)
                continue
            if device in store.lost_devices:
                # Its blocks were already rebuilt stripe-by-stripe by
                # the repair queue; only the device flag remains.
                store.unmark_device(device)
            clean = all(device not in self._scrubber.locate(sid)
                        for sid in range(store.num_stripes))
            self.monitor.probe_result(device, now, clean)
            if clean:
                service.metrics.inc("health_recoveries")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event("service.breaker_close",
                                 service._ts(now), device=device)
