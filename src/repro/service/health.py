"""Per-device health tracking and circuit breaking.

The service sees the §2.1 error taxonomy only as symptoms: degraded
reads (detected erasures), checksum mismatches surfaced by scrubbing
(silent corruption, located), and transient operation faults. A
:class:`HealthMonitor` aggregates those symptoms per *device* (stripe-
global block position — one simulated PM region per position) inside a
sliding window on the simulated clock, and runs one classic circuit
breaker per device:

``CLOSED`` --(errors >= trip_threshold in window)--> ``OPEN``
--(cooldown with no new errors)--> ``HALF_OPEN``
--(clean probe)--> ``CLOSED``  (a dirty probe re-opens)

While a breaker is OPEN the device is treated as failed: the
self-healing loop (:mod:`repro.service.healing`) marks it lost so reads
stop trusting it and reconstruct through parity instead, and queues its
stripes for repair. The OPEN->CLOSED interval is the repair clock that
the chaos campaign report turns into MTTR.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class HealthState(str, enum.Enum):
    """Circuit-breaker state of one device."""

    CLOSED = "closed"          # healthy, trusted
    OPEN = "open"              # tripped: treated as lost, repairs queued
    HALF_OPEN = "half_open"    # cooled down, awaiting a clean probe


@dataclass
class HealthTransition:
    """One breaker state change (the campaign report's MTTR source)."""

    device: int
    at_ns: float
    old: HealthState
    new: HealthState
    reason: str = ""


@dataclass
class _DeviceHealth:
    state: HealthState = HealthState.CLOSED
    errors: deque = field(default_factory=deque)   # error timestamps (ns)
    opened_at_ns: float | None = None
    last_error_ns: float = float("-inf")
    total_errors: int = 0


class HealthMonitor:
    """Sliding-window error rates + one circuit breaker per device.

    Parameters
    ----------
    num_devices:
        Stripe-global block positions (``k + parity_blocks``).
    window_ns:
        Sliding window over which errors count toward tripping.
    trip_threshold:
        Errors within the window that flip CLOSED -> OPEN.
    cooldown_ns:
        Error-free interval after which an OPEN breaker half-opens.
    """

    def __init__(self, num_devices: int, *, window_ns: float = 5e6,
                 trip_threshold: int = 3, cooldown_ns: float = 2e7):
        if num_devices < 1:
            raise ValueError("need at least one device")
        if trip_threshold < 1:
            raise ValueError("trip_threshold must be >= 1")
        self.num_devices = num_devices
        self.window_ns = float(window_ns)
        self.trip_threshold = trip_threshold
        self.cooldown_ns = float(cooldown_ns)
        self._devices = [_DeviceHealth() for _ in range(num_devices)]
        #: Every breaker transition, in simulated-clock order.
        self.transitions: list[HealthTransition] = []
        #: Operation-level transient faults (not device-attributable).
        self.transient_faults = 0

    # -- recording ---------------------------------------------------------

    def _transition(self, device: int, now_ns: float, new: HealthState,
                    reason: str) -> None:
        dev = self._devices[device]
        old, dev.state = dev.state, new
        if new is HealthState.OPEN:
            dev.opened_at_ns = now_ns
        self.transitions.append(
            HealthTransition(device, now_ns, old, new, reason))

    def record_error(self, device: int, now_ns: float,
                     kind: str = "error") -> HealthState:
        """Count one device-attributable error; may trip the breaker.

        Returns the (possibly new) state so callers can react to the
        CLOSED -> OPEN edge.
        """
        dev = self._devices[device]
        dev.errors.append(now_ns)
        dev.total_errors += 1
        dev.last_error_ns = max(dev.last_error_ns, now_ns)
        while dev.errors and dev.errors[0] < now_ns - self.window_ns:
            dev.errors.popleft()
        if (dev.state is HealthState.CLOSED
                and len(dev.errors) >= self.trip_threshold):
            self._transition(device, now_ns, HealthState.OPEN,
                             f"{len(dev.errors)} {kind} errors in window")
        elif dev.state is HealthState.HALF_OPEN:
            # A dirty probe window: straight back to OPEN.
            self._transition(device, now_ns, HealthState.OPEN,
                             f"{kind} error while half-open")
        return dev.state

    def record_transient(self, now_ns: float) -> None:
        """Count one operation-level transient fault (no device)."""
        self.transient_faults += 1

    # -- state machine driving --------------------------------------------

    def tick(self, now_ns: float) -> list[int]:
        """Advance cooldowns; returns devices that just half-opened."""
        probes = []
        for device, dev in enumerate(self._devices):
            if (dev.state is HealthState.OPEN
                    and now_ns - dev.last_error_ns >= self.cooldown_ns):
                self._transition(device, now_ns, HealthState.HALF_OPEN,
                                 "cooldown elapsed")
                probes.append(device)
        return probes

    def probe_result(self, device: int, now_ns: float, clean: bool) -> None:
        """Report a half-open probe: clean closes, dirty re-opens."""
        dev = self._devices[device]
        if dev.state is not HealthState.HALF_OPEN:
            return
        if clean:
            dev.errors.clear()
            self._transition(device, now_ns, HealthState.CLOSED,
                             "clean probe")
        else:
            dev.last_error_ns = now_ns
            self._transition(device, now_ns, HealthState.OPEN,
                             "dirty probe")

    # -- reading -----------------------------------------------------------

    def state(self, device: int) -> HealthState:
        """Current breaker state of ``device``."""
        return self._devices[device].state

    def error_count(self, device: int) -> int:
        """Lifetime error count of ``device``."""
        return self._devices[device].total_errors

    def open_devices(self) -> list[int]:
        """Devices whose breaker is currently OPEN or HALF_OPEN."""
        return [d for d, dev in enumerate(self._devices)
                if dev.state is not HealthState.CLOSED]

    def mttr_ns(self) -> list[float]:
        """OPEN -> CLOSED repair times, one per completed incident.

        Consecutive OPEN/HALF_OPEN flapping within one incident counts
        from the *first* OPEN to the final CLOSED.
        """
        out: list[float] = []
        opened: dict[int, float] = {}
        for tr in self.transitions:
            if tr.new is HealthState.OPEN and tr.device not in opened:
                opened[tr.device] = tr.at_ns
            elif tr.new is HealthState.CLOSED and tr.device in opened:
                out.append(tr.at_ns - opened.pop(tr.device))
        return out

    def summary(self) -> dict:
        """JSON-ready health snapshot."""
        mttr = self.mttr_ns()
        return {
            "devices": {
                str(d): {"state": dev.state.value,
                         "errors": dev.total_errors}
                for d, dev in enumerate(self._devices) if dev.total_errors
                or dev.state is not HealthState.CLOSED
            },
            "transitions": len(self.transitions),
            "transient_faults": self.transient_faults,
            "incidents_resolved": len(mttr),
            "mean_mttr_ns": sum(mttr) / len(mttr) if mttr else 0.0,
        }
