"""Bounded request queue with stripe-geometry batch coalescing.

Requests wait in FIFO order; when the dispatcher pulls work, every
queued request sharing the head's batch key (operation kind + stripe
geometry — the service is single-geometry, so in practice the kind) is
merged into one :class:`Batch` that the service simulates as a *single*
encode job. Coalescing is sound because RS/LRC coding is column-wise
over bytes: encoding the horizontal concatenation of stripes is
bit-exact to encoding each stripe alone (see :func:`encode_coalesced`,
property-tested in ``tests/test_service_property.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.service.request import Request, RequestKind


@dataclass(frozen=True)
class BatchKey:
    """What makes two requests mergeable into one simulated job."""

    kind: RequestKind
    k: int
    m: int
    block_bytes: int


@dataclass
class Batch:
    """A coalesced unit of work pulled from the queue."""

    key: BatchKey
    requests: list[Request]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def coalesced(self) -> bool:
        """Whether more than one request was merged."""
        return len(self.requests) > 1


class RequestQueue:
    """FIFO queue with a depth bound and same-geometry batch pulls."""

    def __init__(self, max_depth: int = 16):
        if max_depth < 1:
            raise ValueError("queue needs max_depth >= 1")
        self.max_depth = max_depth
        self._items: deque[tuple[BatchKey, Request]] = deque()
        #: High-water mark (observability).
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.max_depth

    def push(self, key: BatchKey, request: Request) -> bool:
        """Enqueue; returns False when the queue is full (caller
        rejects — the admission controller's decision, not ours)."""
        if self.full:
            return False
        self._items.append((key, request))
        self.peak_depth = max(self.peak_depth, len(self._items))
        return True

    def pop_batch(self, max_batch: int = 8) -> Batch | None:
        """Dequeue the head request plus up to ``max_batch - 1`` later
        requests sharing its batch key (FIFO order among the rest is
        preserved)."""
        if not self._items:
            return None
        head_key, head = self._items.popleft()
        taken = [head]
        if max_batch > 1:
            kept: deque[tuple[BatchKey, Request]] = deque()
            while self._items:
                key, req = self._items.popleft()
                if key == head_key and len(taken) < max_batch:
                    taken.append(req)
                else:
                    kept.append((key, req))
            self._items = kept
        return Batch(key=head_key, requests=taken)

    def __len__(self) -> int:
        return len(self._items)


def encode_coalesced(code, stripes: list[np.ndarray]) -> list[np.ndarray]:
    """Encode many (k, width_i) stripes as ONE coding call, bit-exact.

    RS/XOR parity is computed independently per byte column, so the
    horizontal concatenation of the stripes encodes to the horizontal
    concatenation of their parities. This is the kernel-level fact that
    makes queue coalescing safe; the service uses it to turn a batch
    into a single simulated job, and the property tests verify the
    bit-exactness claim against sequential encodes.
    """
    if not stripes:
        return []
    widths = [s.shape[1] for s in stripes]
    parity = code.encode_blocks(np.hstack(stripes))
    out, at = [], 0
    for w in widths:
        out.append(parity[:, at:at + w])
        at += w
    return out
