"""Bounded request queue with stripe-geometry batch coalescing.

Requests wait in FIFO order; when the dispatcher pulls work, every
queued request sharing the head's batch key (operation kind + stripe
geometry — the service is single-geometry, so in practice the kind) is
merged into one :class:`Batch` that the service simulates as a *single*
encode job. Coalescing is sound because RS/LRC coding is column-wise
over bytes: encoding the horizontal concatenation of stripes is
bit-exact to encoding each stripe alone (see :func:`encode_coalesced`,
property-tested in ``tests/test_service_property.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.service.request import Request, RequestKind


@dataclass(frozen=True)
class BatchKey:
    """What makes two requests mergeable into one simulated job."""

    kind: RequestKind
    k: int
    m: int
    block_bytes: int


@dataclass
class Batch:
    """A coalesced unit of work pulled from the queue."""

    key: BatchKey
    requests: list[Request]
    #: Simulated instant the dispatcher pulled this batch (queue-wait
    #: accounting; 0.0 until stamped by the service).
    dispatched_ns: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def coalesced(self) -> bool:
        """Whether more than one request was merged."""
        return len(self.requests) > 1

    @property
    def min_deadline_ns(self) -> float:
        """Tightest deadline across the batch (deadline propagation:
        the batch as a whole inherits its most urgent member)."""
        return min((r.deadline_ns for r in self.requests),
                   default=float("inf"))


class RequestQueue:
    """FIFO queue with a depth bound and same-geometry batch pulls."""

    def __init__(self, max_depth: int = 16):
        if max_depth < 1:
            raise ValueError("queue needs max_depth >= 1")
        self.max_depth = max_depth
        self._items: deque[tuple[BatchKey, Request]] = deque()
        #: High-water mark (observability).
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.max_depth

    def push(self, key: BatchKey, request: Request) -> bool:
        """Enqueue; returns False when the queue is full (caller
        rejects — the admission controller's decision, not ours)."""
        if self.full:
            return False
        self._items.append((key, request))
        self.peak_depth = max(self.peak_depth, len(self._items))
        return True

    def evict_lower_priority(self, than) -> tuple[BatchKey, Request] | None:
        """Evict the least-important queued request strictly below
        priority ``than`` (reverse-priority shedding on a full queue).

        Victim selection: the *lowest* priority class present, and the
        latest-arrived request within it (it has waited least, so
        dropping it wastes the least queue time). Returns the evicted
        ``(key, request)`` entry, or None when nothing queued is below
        ``than`` — the arrival itself is then the least important.
        """
        victim_idx = -1
        victim_pri = than
        for idx, (_, req) in enumerate(self._items):
            pri = req.resolved_priority
            # Strictly-lower classes only; ties go to the later arrival
            # (>= keeps scanning to the newest of the worst class).
            if pri > victim_pri or (victim_idx >= 0 and pri == victim_pri):
                victim_idx = idx
                victim_pri = max(victim_pri, pri)
        if victim_idx < 0:
            return None
        entry = self._items[victim_idx]
        del self._items[victim_idx]
        return entry

    def pop_batch(self, max_batch: int = 8) -> Batch | None:
        """Dequeue the head request plus up to ``max_batch - 1`` later
        requests sharing its batch key (FIFO order among the rest is
        preserved)."""
        if not self._items:
            return None
        head_key, head = self._items.popleft()
        taken = [head]
        if max_batch > 1:
            kept: deque[tuple[BatchKey, Request]] = deque()
            while self._items:
                key, req = self._items.popleft()
                if key == head_key and len(taken) < max_batch:
                    taken.append(req)
                else:
                    kept.append((key, req))
            self._items = kept
        return Batch(key=head_key, requests=taken)

    def __len__(self) -> int:
        return len(self._items)


def encode_coalesced(code, stripes: list[np.ndarray]) -> list[np.ndarray]:
    """Encode many (k, width_i) stripes as ONE coding call, bit-exact.

    RS/XOR parity is computed independently per byte column, so the
    horizontal concatenation of the stripes encodes to the horizontal
    concatenation of their parities. This is the kernel-level fact that
    makes queue coalescing safe; the service uses it to turn a batch
    into a single simulated job, and the property tests verify the
    bit-exactness claim against sequential encodes.
    """
    if not stripes:
        return []
    widths = [s.shape[1] for s in stripes]
    parity = code.encode_blocks(np.hstack(stripes))
    out, at = [], 0
    for w in widths:
        out.append(parity[:, at:at + w])
        at += w
    return out
