"""Eq. (1) read-buffer admission control.

The paper bounds useful prefetching by the PM read buffer (§4.3,
Eq. (1)): with ``nthreads`` concurrent encode streams of geometry
(k, m) prefetching up to distance ``d``, the buffer must hold

    nthreads * k * 256 B * ceil(d / (k + m))  <=  buffer_size

Past that point additional concurrency *thrashes* the buffer — every
thread gets slower (the 12-thread knee of §4.1.2). A service therefore
gains nothing by admitting more simultaneous encode threads than the
cap; it should queue (or shed) the excess instead. That is exactly what
:class:`AdmissionController` enforces: it is the paper's equation
turned into a concurrency limiter.
"""

from __future__ import annotations

import math

from repro.simulator.params import PMConfig


def eq1_thread_cap(k: int, m: int, d_max: int, pm: PMConfig) -> int:
    """Largest concurrent encode-thread count satisfying Eq. (1).

    The inverse of :func:`repro.core.buffer_friendly.eq1_max_distance`:
    solve ``T * k * xpline * ceil(d_max / (k + m)) <= buffer`` for T.
    Always at least 1 — a service that can admit nothing is dead.
    """
    if k < 1 or m < 0 or d_max < 1:
        raise ValueError(f"bad geometry k={k} m={m} d_max={d_max}")
    buffer_bytes = pm.read_buffer_kb * 1024
    per_thread = k * pm.xpline_bytes * math.ceil(d_max / (k + m))
    return max(1, buffer_bytes // per_thread)


class AdmissionController:
    """Caps in-flight encode threads at the Eq. (1) bound.

    Parameters
    ----------
    k, m:
        Service stripe geometry.
    pm:
        The PM backend whose read buffer is being protected.
    d_max:
        Worst-case software-prefetch distance the kernels may use.
        Defaults to ``2 * k`` — the buffer-friendly first-line distance
        the coordinator doubles the base to (§4.3.2).
    """

    def __init__(self, k: int, m: int, pm: PMConfig, *,
                 d_max: int | None = None):
        self.k, self.m = k, m
        self.d_max = d_max if d_max is not None else 2 * k
        self.capacity_threads = eq1_thread_cap(k, m, self.d_max, pm)
        self.active_threads = 0
        #: High-water mark of concurrently admitted threads.
        self.peak_threads = 0

    @property
    def at_capacity(self) -> bool:
        """No further thread fits under the cap."""
        return self.active_threads >= self.capacity_threads

    def would_exceed(self, threads: int) -> bool:
        """Whether admitting ``threads`` more would violate Eq. (1)."""
        return self.active_threads + threads > self.capacity_threads

    def try_admit(self, threads: int) -> bool:
        """Reserve ``threads`` if the cap allows; False otherwise."""
        if threads < 1:
            raise ValueError("jobs need at least one thread")
        if self.would_exceed(threads):
            return False
        self.active_threads += threads
        self.peak_threads = max(self.peak_threads, self.active_threads)
        return True

    def release(self, threads: int) -> None:
        """Return threads reserved by :meth:`try_admit`."""
        if threads > self.active_threads:
            raise ValueError(
                f"releasing {threads} threads but only "
                f"{self.active_threads} active")
        self.active_threads -= threads

    @property
    def utilization(self) -> float:
        """Fraction of the Eq. (1) budget currently in use."""
        return self.active_threads / self.capacity_threads
