"""Synthetic multi-client traffic generation (deterministic).

Builds request streams shaped like sustained object-store traffic:
``nclients`` simulated clients each issuing a burst of puts, then later
reading their own objects back. Everything is seeded, so a replay is
bit-for-bit reproducible — the property the service tests and the
traffic-replay demo rely on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.service.request import Priority, Request


def client_key(client: int, i: int) -> str:
    """Canonical object key for client ``client``'s ``i``-th object."""
    return f"c{client:03d}/obj{i:03d}"


def put_wave(nclients: int, objects_per_client: int = 2, *,
             payload_bytes: int = 1024, mean_gap_ns: float = 5_000.0,
             start_ns: float = 0.0, seed: int = 0,
             deadline_slack_ns: float = math.inf,
             priority: Priority | None = None) -> list[Request]:
    """A near-simultaneous burst of puts from every client.

    Arrival jitter is exponential with mean ``mean_gap_ns`` so bursts
    overlap heavily — the regime where the Eq. (1) admission cap and
    the queue actually engage. ``deadline_slack_ns`` gives every
    request an absolute deadline of ``arrival + slack`` (``inf`` =
    no deadline); ``priority`` overrides the kind-derived class.
    """
    rng = np.random.default_rng(seed)
    out = []
    for c in range(nclients):
        t = start_ns + float(rng.exponential(mean_gap_ns))
        for i in range(objects_per_client):
            payload = rng.integers(0, 256, payload_bytes,
                                   dtype=np.uint8).tobytes()
            out.append(Request.put(client_key(c, i), payload, client=c,
                                   arrival_ns=t,
                                   deadline_ns=t + deadline_slack_ns,
                                   priority=priority))
            t += float(rng.exponential(mean_gap_ns))
    return sorted(out, key=lambda r: r.arrival_ns)


def get_wave(nclients: int, objects_per_client: int = 2, *,
             mean_gap_ns: float = 5_000.0, start_ns: float = 0.0,
             seed: int = 1, deadline_slack_ns: float = math.inf,
             priority: Priority | None = None) -> list[Request]:
    """Every client reading its own objects back (keys from
    :func:`put_wave` with the same shape arguments)."""
    rng = np.random.default_rng(seed)
    out = []
    for c in range(nclients):
        t = start_ns + float(rng.exponential(mean_gap_ns))
        for i in range(objects_per_client):
            out.append(Request.get(client_key(c, i), client=c, arrival_ns=t,
                                   deadline_ns=t + deadline_slack_ns,
                                   priority=priority))
            t += float(rng.exponential(mean_gap_ns))
    return sorted(out, key=lambda r: r.arrival_ns)
