"""Service metrics: latency histograms, gauges and counters.

A :class:`MetricsRegistry` is the one observability surface of the
service layer — tests, the bench CLI scenario and the traffic-replay
demo all read the same :meth:`~MetricsRegistry.snapshot`. Everything is
plain Python (no numpy) so snapshots are cheap and JSON-ready.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

#: Default Prometheus-style bucket upper bounds (ns): 1us..100ms in a
#: 1-2.5-5 ladder. Service latencies are simulated-ns, so the ladder
#: spans the whole regime the scenarios produce.
DEFAULT_BUCKET_BOUNDS_NS = tuple(
    base * mult
    for base in (1e3, 1e4, 1e5, 1e6, 1e7)
    for mult in (1.0, 2.5, 5.0)
) + (1e8,)


class LatencyHistogram:
    """Exact-percentile latency recorder (ns).

    The service handles thousands of simulated requests, not millions,
    so we keep every sample and compute exact nearest-rank percentiles
    rather than bucketing.
    """

    def __init__(self):
        self._values: list[float] = []
        #: Sorted copy, built lazily and invalidated on record — the
        #: recording order of ``_values`` is never disturbed, and
        #: repeated percentile reads share one sort.
        self._sorted_cache: list[float] | None = None

    def record(self, value_ns: float) -> None:
        """Add one latency sample."""
        self._values.append(float(value_ns))
        self._sorted_cache = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean_ns(self) -> float:
        return sum(self._values) / len(self._values) if self._values else 0.0

    @property
    def max_ns(self) -> float:
        return max(self._values) if self._values else 0.0

    def sorted_values(self) -> list[float]:
        """Snapshot-stable ascending copy of every sample.

        Built once per recording burst; callers may read it freely but
        must not mutate it.
        """
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._values)
        return self._sorted_cache

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        values = self.sorted_values()
        rank = max(1, round(p / 100 * len(values)))
        return values[min(rank, len(values)) - 1]

    @property
    def p50(self) -> float:
        """Median latency (ns)."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency (ns)."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency (ns)."""
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """99.9th-percentile tail latency (ns)."""
        return self.percentile(99.9)

    def cumulative_buckets(self, bounds=None) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs.

        Each entry counts samples ``<= le``; the implicit ``+Inf``
        bucket is :attr:`count`. Exact (we keep every sample), so the
        exposition's ``_bucket`` series is never an approximation.
        """
        if bounds is None:
            bounds = DEFAULT_BUCKET_BOUNDS_NS
        values = self.sorted_values()
        return [(float(le), bisect.bisect_right(values, float(le)))
                for le in sorted(bounds)]

    def summary(self) -> dict:
        """count/mean/percentiles/max in one JSON-ready dict."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "p50_ns": self.p50,
            "p90_ns": self.percentile(90),
            "p95_ns": self.p95,
            "p99_ns": self.p99,
            "p999_ns": self.p999,
            "max_ns": self.max_ns,
            "buckets": [[le, n] for le, n in self.cumulative_buckets()],
        }


class MetricsRegistry:
    """Counters + per-operation latency histograms + queue-depth gauge."""

    def __init__(self):
        self.counters: dict[str, int] = defaultdict(int)
        self.latency: dict[str, LatencyHistogram] = defaultdict(LatencyHistogram)
        self._queue_depths: list[int] = []

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        """Bump a counter."""
        self.counters[name] += by

    def observe_latency(self, op: str, latency_ns: float) -> None:
        """Record one request latency under operation label ``op``."""
        self.latency[op].record(latency_ns)

    def sample_queue_depth(self, depth: int) -> None:
        """Record the queue depth at a dispatch/arrival instant."""
        self._queue_depths.append(depth)

    # -- reading -----------------------------------------------------------

    @property
    def max_queue_depth(self) -> int:
        return max(self._queue_depths) if self._queue_depths else 0

    @property
    def mean_queue_depth(self) -> float:
        return (sum(self._queue_depths) / len(self._queue_depths)
                if self._queue_depths else 0.0)

    def count(self, name: str) -> int:
        """Read one counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> dict:
        """Everything, as one nested JSON-ready dict."""
        return {
            "counters": dict(self.counters),
            "latency": {op: h.summary() for op, h in self.latency.items()},
            "queue": {
                "samples": len(self._queue_depths),
                "max_depth": self.max_queue_depth,
                "mean_depth": self.mean_queue_depth,
            },
        }

    def render(self) -> str:
        """Human-readable snapshot block (used by the demo/CLI)."""
        snap = self.snapshot()
        lines = ["-- service metrics --"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name:<28} {snap['counters'][name]}")
        for op in sorted(snap["latency"]):
            s = snap["latency"][op]
            lines.append(
                f"  {op + ' latency':<28} n={s['count']}  "
                f"p50={s['p50_ns'] / 1e3:.1f}us  p90={s['p90_ns'] / 1e3:.1f}us  "
                f"p99={s['p99_ns'] / 1e3:.1f}us  max={s['max_ns'] / 1e3:.1f}us")
        q = snap["queue"]
        lines.append(f"  {'queue depth':<28} max={q['max_depth']}  "
                     f"mean={q['mean_depth']:.2f}  samples={q['samples']}")
        return "\n".join(lines)
