"""The erasure-coded PM object-storage service.

Ties every service-layer piece together into one deterministic
discrete-event loop over the *simulated* clock:

* arrivals enter the bounded :class:`~repro.service.queue.RequestQueue`
  (or are **rejected** when the queue is full — which, by the dispatch
  invariant, only happens while the Eq. (1) cap is saturated);
* the dispatcher pulls **coalesced** same-geometry batches whenever the
  :class:`~repro.service.admission.AdmissionController` has thread
  budget, and charges each batch a single simulated encode/decode job
  on the configured :class:`~repro.libs.base.CodingLibrary`;
* :class:`~repro.pmstore.faults.TransientFault` raised from the store's
  fault hooks is retried with exponential backoff on the simulated
  clock; reads of blocks on a lost device degrade through parity
  reconstruction instead of failing;
* everything lands in a :class:`~repro.service.metrics.MetricsRegistry`
  (latency percentiles, queue depth, rejections, retries, coordinator
  policy switches) snapshotable from tests and the bench CLI.

The loop is single-threaded Python simulating many concurrent clients —
the same substitution the testbed makes for hardware (DESIGN.md §2).
"""

from __future__ import annotations

import heapq
import math
import zlib
from dataclasses import dataclass, field

from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.libs.base import CodingLibrary, GeometryMismatch
from repro.obs import get_tracer, use_tracer
from repro.pmstore.faults import TransientFault
from repro.pmstore.store import PMStore
from repro.service.admission import AdmissionController
from repro.service.metrics import MetricsRegistry
from repro.service.overload import OverloadConfig, OverloadManager
from repro.service.queue import BatchKey, Batch, RequestQueue
from repro.service.request import Request, RequestKind, RequestResult, RequestStatus
from repro.service.retry import RetryPolicy
from repro.simulator.params import HardwareConfig
from repro.trace.workload import Workload


@dataclass(frozen=True, kw_only=True)
class ServiceConfig:
    """Service-level tuning knobs (all keyword-only).

    Attributes
    ----------
    threads_per_job:
        Simulated encode threads one dispatched batch occupies — the
        unit the admission controller accounts in.
    max_batch:
        Most requests coalesced into one simulated job.
    max_queue_depth:
        Queue bound; arrivals beyond it (while at the Eq. (1) cap) are
        rejected.
    d_max:
        Worst-case prefetch distance assumed by admission control
        (default ``2 * k``, the buffer-friendly first-line distance).
    retry:
        Exponential-backoff schedule for transient faults.
    base_latency_ns:
        Fixed per-request service overhead (parse, index, commit).
    verify_reads:
        Checksum-verify (and repair) every stripe touched by a GET
        before serving it. Off by default — it trades read cost for
        the guarantee that silent corruption can never reach a client;
        the chaos engine turns it on.
    overload:
        Optional :class:`~repro.service.overload.OverloadConfig`
        enabling deadline-aware admission, AIMD concurrency, retry
        budgets, hedged reads and brownout. ``None`` (the default)
        keeps the pre-overload behavior bit-for-bit.
    """

    threads_per_job: int = 1
    max_batch: int = 8
    max_queue_depth: int = 16
    d_max: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    base_latency_ns: float = 2_000.0
    verify_reads: bool = False
    overload: OverloadConfig | None = None


class ErasureCodingService:
    """A concurrent EC object service over the simulated PM testbed.

    Parameters
    ----------
    k, m:
        Stripe geometry (one service serves one geometry; this is what
        makes queue coalescing and Eq.-(1) accounting exact).
    block_bytes:
        Stripe block size.
    library:
        Coding library charged for simulated encode/decode time
        (default: a probe-less :class:`DialgaEncoder`). Must match
        (k, m) or :class:`GeometryMismatch` is raised.
    hw:
        Simulated testbed.
    config:
        :class:`ServiceConfig` knobs.
    """

    def __init__(self, k: int, m: int, *, block_bytes: int = 1024,
                 library: CodingLibrary | None = None,
                 hw: HardwareConfig | None = None,
                 config: ServiceConfig | None = None):
        self.k, self.m = k, m
        self.block_bytes = block_bytes
        self.config = config or ServiceConfig()
        self.hw = hw or HardwareConfig()
        if library is None:
            library = DialgaEncoder(k, m, config=DialgaConfig(
                use_probe=False, chunks=2))
        if getattr(library, "k", k) != k or getattr(library, "m", m) != m:
            raise GeometryMismatch(
                f"library geometry ({library.k},{library.m}) != service "
                f"({k},{m})")
        self.library = library
        self.store = PMStore(k, m, block_bytes=block_bytes,
                             verify_reads=self.config.verify_reads)
        self.queue = RequestQueue(self.config.max_queue_depth)
        self.admission = AdmissionController(k, m, self.hw.pm,
                                             d_max=self.config.d_max)
        self.metrics = MetricsRegistry()
        #: Overload-control layer (None unless ``config.overload`` is
        #: set — the hot path stays byte-identical without it).
        self.overload: OverloadManager | None = None
        if self.config.overload is not None:
            self.overload = OverloadManager(
                self.config.overload,
                capacity_threads=self.admission.capacity_threads,
                base_latency_ns=self.config.base_latency_ns)
        #: Devices currently serving slowly: device -> (penalty_ns,
        #: until_ns). Reads touching one pay the penalty unless the
        #: brownout / hedging paths route around it.
        self.slow_devices: dict[int, tuple[float, float]] = {}
        self._hedge_decode_memo: float | None = None
        #: Optional :class:`~repro.service.healing.SelfHealer` run in
        #: the event loop's idle gaps (see :meth:`attach_healer`).
        self.healer = None
        #: Simulated clock (ns); persists across :meth:`drain` calls.
        self.clock_ns = 0.0
        self.results: list[RequestResult] = []
        self._pending: list[Request] = []
        self._seq = 0
        #: Open tracer spans per in-flight request (id(request) keyed —
        #: requests are frozen and unique per submission).
        self._req_spans: dict[int, object] = {}
        self._req_seq = 0
        #: Rebase onto the ambient tracer timeline: every service
        #: clock starts at 0, so without this two services traced in
        #: sequence would overlap in a viewer.
        self._trace_base_ns = get_tracer().max_ts

    def _ts(self, ns: float) -> float:
        """A service-clock instant on the shared tracer timeline."""
        return ns + self._trace_base_ns

    # -- client surface ----------------------------------------------------

    def submit(self, request: Request) -> None:
        """Hand one request to the service (processed on :meth:`drain`)."""
        self._pending.append(request)

    def submit_many(self, requests) -> None:
        """Submit an iterable of requests."""
        for req in requests:
            self.submit(req)

    def set_device_slow(self, device: int, penalty_ns: float,
                        until_ns: float = math.inf) -> None:
        """Mark ``device`` as slow: reads touching it pay ``penalty_ns``
        until the simulated clock passes ``until_ns`` (chaos's
        ``slow_device`` action; the hedging/brownout paths exist to
        route around exactly this)."""
        if penalty_ns < 0:
            raise ValueError("penalty_ns must be >= 0")
        self.slow_devices[device] = (float(penalty_ns), float(until_ns))
        self.metrics.inc("slow_device_marks")

    def clear_device_slow(self, device: int) -> None:
        """Forget a slow-device mark (restored to full speed)."""
        self.slow_devices.pop(device, None)

    def _slow_penalty_ns(self) -> float:
        """Worst active slow-device penalty on a *data* device now."""
        worst = 0.0
        for dev, (penalty, until) in self.slow_devices.items():
            if dev < self.k and self.clock_ns < until:
                worst = max(worst, penalty)
        return worst

    def attach_healer(self, healer) -> None:
        """Attach a :class:`~repro.service.healing.SelfHealer`: from now
        on the event loop spends its idle simulated time on background
        scrubbing, priority repairs and breaker-driven device recovery."""
        healer.attach(self)
        self.healer = healer

    def run_maintenance(self, until_ns: float) -> float:
        """Let the attached healer work the idle clock up to
        ``until_ns`` (no-op without a healer); returns when it stopped.

        :meth:`drain` does this automatically inside request gaps; call
        it directly to model quiet periods between traffic waves.
        """
        if self.healer is None:
            return self.clock_ns
        return self.healer.run_window(self, self.clock_ns, until_ns)

    def drain(self) -> list[RequestResult]:
        """Run the event loop until every submitted request resolves.

        Returns this drain's results (also appended to ``results``).
        """
        arrivals = sorted(enumerate(self._pending),
                          key=lambda iv: (iv[1].arrival_ns, iv[0]))
        self._pending = []
        pending = [req for _, req in arrivals]
        active: list[tuple[float, int, Batch, int, list[RequestResult]]] = []
        out: list[RequestResult] = []
        i = 0
        while i < len(pending) or active:
            next_arrival = pending[i].arrival_ns if i < len(pending) else math.inf
            next_finish = active[0][0] if active else math.inf
            if (self.healer is not None and not active
                    and self.clock_ns < next_arrival < math.inf):
                # An idle gap on the simulated clock: no batch in
                # flight, next arrival still in the future. Hand it to
                # the self-healing loop (repairs, paced scrubbing,
                # breaker recovery) — "opportunistic maintenance
                # between requests".
                self.healer.run_window(self, self.clock_ns, next_arrival)
            if next_arrival <= next_finish:
                req = pending[i]
                i += 1
                self.clock_ns = max(self.clock_ns, req.arrival_ns)
                out.extend(self._on_arrival(req))
            else:
                finish, _, batch, threads, results = heapq.heappop(active)
                self.clock_ns = max(self.clock_ns, finish)
                self.admission.release(threads)
                for res in results:
                    res.latency_ns = finish - res.request.arrival_ns
                    self.metrics.observe_latency(res.request.kind.value,
                                                 res.latency_ns)
                    self.metrics.inc("completed" if res.ok else "failed")
                    if res.ok and finish > res.request.deadline_ns:
                        # Admission let it through but the estimate was
                        # optimistic — completed late, still served.
                        self.metrics.inc("deadline_misses")
                    span = self._req_spans.pop(id(res.request), None)
                    if span is not None:
                        span.end(self._ts(finish), status=res.status.value,
                                 latency_ns=res.latency_ns,
                                 retries=res.retries,
                                 degraded=res.degraded,
                                 batch_size=res.batch_size)
                out.extend(results)
                if self.overload is not None:
                    self._overload_observe(batch, finish)
            self._dispatch(active, out)
        self.results.extend(out)
        return out

    # -- event handlers ----------------------------------------------------

    def _batch_key(self, request: Request) -> BatchKey:
        return BatchKey(request.kind, self.k, self.m, self.block_bytes)

    def _shed(self, request: Request, reason: str, detail: str,
              at_ns: float) -> RequestResult:
        """Drop one request under overload control (fail-fast)."""
        self.metrics.inc("shed_total")
        self.metrics.inc(f"shed_{reason}")
        tracer = get_tracer()
        span = self._req_spans.pop(id(request), None)
        if tracer.enabled:
            tracer.event("overload.shed", self._ts(at_ns), span=span,
                         reason=reason, kind=request.kind.value,
                         key=request.key,
                         priority=request.resolved_priority.name.lower())
        if span is not None:
            span.end(self._ts(at_ns), status="shed", reason=reason)
        return RequestResult(request, RequestStatus.SHED,
                             error=f"shed ({reason}): {detail}")

    def _on_arrival(self, request: Request) -> list[RequestResult]:
        """Queue an arrival; returns any requests shed/rejected by it.

        Without overload control the only possible casualty is the
        arrival itself (REJECTED on a full queue). With it, the
        arrival may be shed fail-fast (infeasible deadline, brownout
        background shedding) or a *lower-priority queued* request may
        be evicted in its place — strict reverse-priority shedding.
        """
        self.metrics.inc("requests")
        self.metrics.sample_queue_depth(self.queue.depth)
        tracer = get_tracer()
        span = None
        if tracer.enabled:
            # Request spans interleave freely, so they live detached
            # from the nesting stack, one display track per client.
            self._req_seq += 1
            span = tracer.begin(
                "service.request", self._ts(request.arrival_ns),
                detached=True,
                request_id=f"{request.kind.value}-{self._req_seq}",
                kind=request.kind.value, key=request.key,
                client=request.client, track=f"client-{request.client}")
            span.event("service.enqueue", self._ts(request.arrival_ns),
                       queue_depth=self.queue.depth)
            self._req_spans[id(request)] = span
        if self.overload is not None:
            decision = self.overload.admit(
                request, self.clock_ns,
                queue_depth=self.queue.depth,
                max_batch=self.config.max_batch,
                active_threads=self.admission.active_threads,
                threads_per_job=self.config.threads_per_job)
            if decision is not None:
                return [self._shed(request, decision.reason,
                                   decision.detail, request.arrival_ns)]
        if not self.queue.push(self._batch_key(request), request):
            if self.overload is not None:
                # Reverse-priority shedding: evict the least-important
                # queued request strictly below this arrival's class.
                entry = self.queue.evict_lower_priority(
                    request.resolved_priority)
                if entry is not None:
                    _, victim = entry
                    shed = self._shed(
                        victim, "priority",
                        f"evicted for {request.resolved_priority.name} "
                        f"arrival", request.arrival_ns)
                    self.queue.push(self._batch_key(request), request)
                    return [shed]
                # Nothing below it queued: the arrival is the least
                # important thing in the building — it is the shed.
                return [self._shed(
                    request, "priority",
                    f"queue full at {self.queue.max_depth}, no "
                    f"lower-priority victim", request.arrival_ns)]
            # Dispatch invariant: the queue only backs up while the
            # admission controller is at the Eq. (1) cap, so a full
            # queue here IS the cap overflowing onto the client.
            self.metrics.inc("admission_rejected")
            if not self.admission.at_capacity:
                self.metrics.inc("rejected_below_cap")  # must stay 0
            if span is not None:
                self._req_spans.pop(id(request), None)
                span.end(self._ts(request.arrival_ns), status="rejected")
            return [RequestResult(
                request, RequestStatus.REJECTED,
                error=(f"Eq. (1) cap: {self.admission.active_threads}/"
                       f"{self.admission.capacity_threads} threads busy, "
                       f"queue full at {self.queue.max_depth}"))]
        return []

    def _overload_observe(self, batch: Batch, finish_ns: float) -> None:
        """Feed one batch completion to the overload controllers."""
        mgr = self.overload
        latency = finish_ns - batch.dispatched_ns
        mgr.observe_batch(latency)
        saturated = mgr.pressure_observation(
            queue_depth=self.queue.depth,
            max_queue_depth=self.queue.max_depth,
            batch_latency_ns=latency)
        transition = mgr.brownout.observe(saturated, finish_ns)
        if transition is not None:
            self.metrics.inc(f"brownout_{transition}s")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(f"overload.brownout_{transition}",
                             self._ts(finish_ns),
                             queue_depth=self.queue.depth,
                             concurrency_limit=mgr.concurrency.limit,
                             ewma_batch_ns=round(mgr.ewma_batch_ns, 1))

    def _dispatch(self, active: list, out: list) -> None:
        """Launch coalesced batches while the Eq. (1) budget allows.

        With overload control the AIMD limit gates dispatch *under* the
        Eq. (1) cap, and requests whose deadline already passed while
        queued are dropped here instead of occupying an encode job
        (deadline propagation into batches).
        """
        threads = self.config.threads_per_job
        tracer = get_tracer()
        while len(self.queue):
            if (self.overload is not None
                    and self.admission.active_threads + threads
                    > self.overload.concurrency.limit):
                break
            if not self.admission.try_admit(threads):
                break
            batch = self.queue.pop_batch(self.config.max_batch)
            if self.overload is not None:
                batch.dispatched_ns = self.clock_ns
                live = []
                for req in batch.requests:
                    if req.deadline_ns < self.clock_ns:
                        self.metrics.inc("deadline_expired_queued")
                        out.append(self._shed(
                            req, "deadline",
                            f"expired in queue ({self.clock_ns:.0f}ns > "
                            f"{req.deadline_ns:.0f}ns)", self.clock_ns))
                    else:
                        self.metrics.observe_latency(
                            "queue_wait", self.clock_ns - req.arrival_ns)
                        live.append(req)
                if not live:
                    self.admission.release(threads)
                    continue
                batch.requests = live
            self.metrics.inc("batches")
            if batch.coalesced:
                self.metrics.inc("coalesced_requests", len(batch) - 1)
            batch_span = None
            if tracer.enabled:
                batch_span = tracer.begin(
                    "service.batch", self._ts(self.clock_ns),
                    track="service",
                    kind=batch.key.kind.value, requests=len(batch),
                    coalesced=batch.coalesced,
                    active_threads=self.admission.active_threads)
                for req in batch.requests:
                    span = self._req_spans.get(id(req))
                    if span is not None:
                        span.event("service.admitted",
                                   self._ts(self.clock_ns),
                                   batch_size=len(batch))
            finish, results = self._execute(batch)
            if batch_span is not None:
                tracer.end(batch_span, self._ts(finish))
            for res in results:
                res.batch_size = len(batch)
            self._seq += 1
            heapq.heappush(active, (finish, self._seq, batch, threads, results))

    # -- batch execution ---------------------------------------------------

    def _with_retries(self, op, request: Request) -> tuple[RequestResult, float]:
        """Run a store operation under the retry policy.

        Returns the (partial) result plus the simulated backoff delay
        the retries consumed.
        """
        policy = self.config.retry
        span = self._req_spans.get(id(request))
        # Jitter de-sync token: stable per request identity, so the
        # same request jitters identically across replays while
        # different requests spread out (breaking retry storms).
        token = zlib.crc32(
            f"{request.kind.value}:{request.key}:{request.client}".encode())
        retries, delay = 0, 0.0
        while True:
            try:
                value = op()
                if self.overload is not None:
                    # Successful traffic refills the retry budget —
                    # retries stay a bounded *fraction* of goodput.
                    self.overload.retry_budget.on_success()
                result = RequestResult(request, RequestStatus.COMPLETED,
                                       retries=retries,
                                       value=value if isinstance(value, bytes) else b"")
                return result, delay
            except TransientFault as exc:
                self.metrics.inc("faults_transient")
                if self.healer is not None:
                    self.healer.on_transient(self.clock_ns + delay)
                if span is not None:
                    span.event("service.fault",
                               self._ts(self.clock_ns + delay),
                               error=str(exc), attempt=retries + 1)
                if retries + 1 >= policy.max_attempts:
                    return RequestResult(request, RequestStatus.FAILED,
                                         retries=retries, error=str(exc)), delay
                if (self.overload is not None
                        and self.overload.config.retry_budget_enabled
                        and not self.overload.retry_budget.try_spend()):
                    # Budget dry: fail fast instead of amplifying a
                    # correlated-fault window into a retry storm.
                    self.metrics.inc("retry_budget_denied")
                    if span is not None:
                        span.event("service.retry_denied",
                                   self._ts(self.clock_ns + delay),
                                   attempt=retries + 1)
                    return RequestResult(
                        request, RequestStatus.FAILED, retries=retries,
                        error=f"retry budget exhausted: {exc}"), delay
                retries += 1
                self.metrics.inc("retries")
                delay += policy.delay_ns(retries, token=token)
                if span is not None:
                    span.event("service.retry",
                               self._ts(self.clock_ns + delay),
                               attempt=retries, backoff_ns=delay)
            except KeyError:
                return RequestResult(request, RequestStatus.FAILED,
                                     retries=retries,
                                     error=f"no such key {request.key!r}"), delay
            except ValueError as exc:
                # Unrecoverable at request time (e.g. a degraded read
                # over a stripe whose losses exceed the parity budget).
                # Fail the request — never crash the event loop — and
                # leave the stripe to the repair queue / scrubber.
                self.metrics.inc("faults_unrecoverable")
                return RequestResult(request, RequestStatus.FAILED,
                                     retries=retries, error=str(exc)), delay

    def _coding_makespan(self, stripes: int, op: str = "encode",
                         erasures: int = 0) -> float:
        """Simulate one coalesced coding job of ``stripes`` stripes."""
        if stripes < 1:
            return 0.0
        threads = self.config.threads_per_job
        per_thread = max(1, math.ceil(stripes / threads)) * \
            self.k * self.block_bytes
        wl = Workload(k=self.k, m=self.m, block_bytes=self.block_bytes,
                      nthreads=threads, data_bytes_per_thread=per_thread,
                      op=op, erasures=erasures)
        tracer = get_tracer()
        if tracer.enabled:
            # The coding job simulates on [0, makespan]; rebase it onto
            # the service clock so simulator spans and request spans
            # share one timeline.
            with tracer.shifted(self._ts(self.clock_ns)):
                res = self.library.run(wl, self.hw)
                coord = getattr(self.library, "last_coordinator", None)
                if coord is not None and getattr(coord, "decision_log", None):
                    # Coordinator decisions land as decision.* instants
                    # on the same rebased timeline as the job's spans.
                    from repro.obs.audit import ledger_from_coordinator
                    ledger_from_coordinator(coord).emit_events(tracer)
        else:
            res = self.library.run(wl, self.hw)
        switches = getattr(self.library, "policy_switches", 0)
        if switches:
            self.metrics.inc("policy_switches", switches)
        return res.sim.makespan_ns

    def _transfer_ns(self, nbytes: int) -> float:
        """DDR-T transfer time for ``nbytes`` (GB/s == bytes/ns)."""
        return nbytes / self.hw.pm.ctrl_bw_gbps

    def _execute(self, batch: Batch) -> tuple[float, list[RequestResult]]:
        """Run one batch; returns (finish time, per-request results)."""
        base = self.config.base_latency_ns * len(batch)
        if batch.key.kind is RequestKind.PUT:
            return self._execute_puts(batch, base)
        if batch.key.kind is RequestKind.GET:
            return self._execute_gets(batch, base)
        stripes = sum(req.stripes for req in batch.requests)
        makespan = self._coding_makespan(stripes)
        results = [RequestResult(req, RequestStatus.COMPLETED)
                   for req in batch.requests]
        return self.clock_ns + base + makespan, results

    def _store_put(self, key: str, payload: bytes) -> None:
        """Store a payload, sharding across stripes when oversized."""
        if len(payload) > self.store.stripe_data_bytes:
            self.store.put_sharded(key, payload)
        else:
            self.store.put(key, payload)

    def _execute_puts(self, batch: Batch, base: float) -> tuple[float, list[RequestResult]]:
        results, delay, stripes = [], 0.0, 0
        cap = self.store.stripe_data_bytes
        for req in batch.requests:
            result, req_delay = self._with_retries(
                lambda r=req: self._store_put(r.key, r.payload), req)
            results.append(result)
            delay += req_delay
            if result.ok:
                stripes += max(1, math.ceil(len(req.payload) / cap))
        # The whole batch is ONE simulated encode job (coalescing): each
        # successful put re-encoded its stripes' parity.
        makespan = self._coding_makespan(stripes)
        transfer = self._transfer_ns(sum(len(r.payload)
                                         for r in batch.requests))
        return self.clock_ns + base + delay + transfer + makespan, results

    def _hedge_decode_cost_ns(self) -> float:
        """Memoized single-stripe decode estimate for hedge accounting.

        Computed once under a silenced tracer (the estimate is an
        accounting device, not a real simulated job — same pattern as
        ``SelfHealer._decode_cost_ns``).
        """
        if self._hedge_decode_memo is None:
            wl = Workload(k=self.k, m=self.m, block_bytes=self.block_bytes,
                          nthreads=1,
                          data_bytes_per_thread=self.k * self.block_bytes,
                          op="decode", erasures=1)
            with use_tracer(None):
                self._hedge_decode_memo = self.library.run(
                    wl, self.hw).sim.makespan_ns
        return self._hedge_decode_memo

    def _slow_read_extra_ns(self, penalty_ns: float) -> tuple[float, bool, bool]:
        """Extra per-read cost under an active slow device.

        Returns ``(extra_ns, served_degraded, charge_decode)`` —
        ``charge_decode`` asks the caller to add the read to the
        batch's coalesced decode (the hedge path instead bakes its own
        decode estimate into ``extra_ns``). Three regimes:

        * brownout active → proactively reconstruct through parity,
          skipping the slow device entirely;
        * hedging enabled → primary waits ``hedge_delay``; if still
          stalled, a degraded-path hedge races it. The cheaper path
          wins and the loser is cancelled;
        * neither → eat the full penalty.
        """
        mgr = self.overload
        if mgr is not None and mgr.brownout.active:
            self.metrics.inc("brownout_degraded_reads")
            return 0.0, True, True
        if mgr is not None and mgr.config.hedge_enabled:
            hedge_delay = mgr.hedge_delay_ns(
                self.metrics.latency.get("get"))
            if penalty_ns <= hedge_delay:
                # Primary answered before the hedge timer fired.
                self.metrics.inc("hedges_cancelled")
                return penalty_ns, False, False
            self.metrics.inc("hedges_issued")
            hedge_cost = hedge_delay + self._hedge_decode_cost_ns()
            if hedge_cost < penalty_ns:
                self.metrics.inc("hedges_won")
                return hedge_cost, True, False
            self.metrics.inc("hedges_lost")
            return penalty_ns, False, False
        return penalty_ns, False, False

    def _execute_gets(self, batch: Batch, base: float) -> tuple[float, list[RequestResult]]:
        results, delay, nbytes, degraded_stripes = [], 0.0, 0, 0
        slow_penalty = self._slow_penalty_ns()
        for req in batch.requests:
            degraded = (req.key in self.store.keys()
                        and self.store.is_degraded(req.key))
            result, req_delay = self._with_retries(
                lambda r=req: self.store.get(r.key), req)
            result.degraded = degraded and result.ok
            if result.degraded:
                degraded_stripes += 1
                self.metrics.inc("degraded_reads")
                if self.healer is not None:
                    self.healer.on_degraded_read(req.key, self.clock_ns)
            if slow_penalty > 0.0 and result.ok and not result.degraded:
                extra, hedged, charge = self._slow_read_extra_ns(slow_penalty)
                req_delay += extra
                if hedged:
                    # Served through parity reconstruction around the
                    # slow device — degraded from the client's view.
                    result.degraded = True
                if charge:
                    degraded_stripes += 1
            results.append(result)
            delay += req_delay
            nbytes += len(result.value)
        # Degraded reads pay a coalesced RS decode on top of the
        # transfer (one erasure per stripe: the lost device's block).
        erasures = min(self.m, self.k, max(1, len(self.store.lost_devices)))
        makespan = self._coding_makespan(degraded_stripes, op="decode",
                                         erasures=erasures)
        return (self.clock_ns + base + delay + self._transfer_ns(nbytes)
                + makespan, results)
