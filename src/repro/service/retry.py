"""Deterministic retry policy with exponential backoff.

Backoff is computed on the *simulated* clock (the service has no real
time), so runs are bit-for-bit reproducible: attempt ``i`` after a
failure waits ``base_delay_ns * factor**(i - 1)``, capped.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Exponential-backoff schedule for transient faults.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (so ``max_attempts - 1``
        retries).
    base_delay_ns:
        Simulated wait before the first retry.
    factor:
        Multiplier per subsequent retry.
    max_delay_ns:
        Per-wait cap.
    """

    max_attempts: int = 4
    base_delay_ns: float = 100_000.0
    factor: float = 2.0
    max_delay_ns: float = 10_000_000.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ns < 0 or self.factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def delay_ns(self, retry: int) -> float:
        """Backoff before retry number ``retry`` (1-based)."""
        if retry < 1:
            raise ValueError("retries are numbered from 1")
        return min(self.base_delay_ns * self.factor ** (retry - 1),
                   self.max_delay_ns)

    def total_delay_ns(self, retries: int) -> float:
        """Cumulative backoff across the first ``retries`` retries."""
        return sum(self.delay_ns(i) for i in range(1, retries + 1))
