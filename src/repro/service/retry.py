"""Deterministic retry policy with exponential backoff.

Backoff is computed on the *simulated* clock (the service has no real
time), so runs are bit-for-bit reproducible: attempt ``i`` after a
failure waits ``base_delay_ns * factor**(i - 1)``, capped.

When many clients hit the same transient-fault window (a *retry
storm*), identical schedules make every retry land on the same instant
and the storm re-collides forever. Optional seeded jitter spreads each
caller's waits over ``[1 - jitter/2, 1 + jitter/2]`` of the nominal
delay, keyed by a caller-supplied ``token`` (e.g. a hash of the request
key) — deterministic across runs, de-synchronized across callers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Exponential-backoff schedule for transient faults.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (so ``max_attempts - 1``
        retries).
    base_delay_ns:
        Simulated wait before the first retry.
    factor:
        Multiplier per subsequent retry.
    max_delay_ns:
        Per-wait cap; must be at least ``base_delay_ns``.
    jitter:
        Fraction of each wait randomized (0 = none, the default; 1 =
        waits spread over [0.5x, 1.5x] of nominal). Deterministic: the
        spread is a pure function of ``(seed, token, retry)``.
    seed:
        Jitter seed (only meaningful when ``jitter > 0``).
    """

    max_attempts: int = 4
    base_delay_ns: float = 100_000.0
    factor: float = 2.0
    max_delay_ns: float = 10_000_000.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ns < 0 or self.factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.max_delay_ns < 0:
            raise ValueError(
                f"max_delay_ns must be non-negative, got {self.max_delay_ns}")
        if self.max_delay_ns < self.base_delay_ns:
            raise ValueError(
                f"max_delay_ns ({self.max_delay_ns}) must be >= "
                f"base_delay_ns ({self.base_delay_ns})")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def _jitter_factor(self, retry: int, token: int) -> float:
        """Deterministic multiplier in [1 - jitter/2, 1 + jitter/2].

        Uses CRC32 (not ``hash()``, which is salted per process) so the
        same (seed, token, retry) triple jitters identically run-to-run.
        """
        u = zlib.crc32(f"{self.seed}:{token}:{retry}".encode()) / 2 ** 32
        return 1.0 + self.jitter * (u - 0.5)

    def delay_ns(self, retry: int, *, token: int = 0) -> float:
        """Backoff before retry number ``retry`` (1-based).

        ``token`` identifies the retrying caller for jitter de-sync;
        ignored when ``jitter`` is 0.
        """
        if retry < 1:
            raise ValueError("retries are numbered from 1")
        delay = min(self.base_delay_ns * self.factor ** (retry - 1),
                    self.max_delay_ns)
        if self.jitter:
            delay = min(delay * self._jitter_factor(retry, token),
                        self.max_delay_ns)
        return delay

    def total_delay_ns(self, retries: int, *, token: int = 0) -> float:
        """Cumulative backoff across the first ``retries`` retries."""
        return sum(self.delay_ns(i, token=token)
                   for i in range(1, retries + 1))
