"""Service request/response types.

A :class:`Request` is one client operation arriving at the service at a
simulated instant; a :class:`RequestResult` is its final disposition
with latency accounting. Both are plain data — the event loop in
:mod:`repro.service.service` owns all behavior.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class RequestKind(str, enum.Enum):
    """What the client asked for."""

    PUT = "put"          # store an object (payload bytes)
    GET = "get"          # read an object back
    ENCODE = "encode"    # raw encode job of `stripes` full stripes


class Priority(enum.IntEnum):
    """Service priority class (lower value = more important).

    Under overload the service sheds in strict *reverse*-priority
    order: BACKGROUND work goes first, NORMAL writes next, FOREGROUND
    reads last — the graceful-degradation ladder of
    :mod:`repro.service.overload`.
    """

    FOREGROUND = 0   # interactive reads
    NORMAL = 1       # writes
    BACKGROUND = 2   # bulk encode / repair-adjacent work

    @staticmethod
    def default_for(kind: "RequestKind") -> "Priority":
        """Default class per operation kind (reads > writes > bulk)."""
        if kind is RequestKind.GET:
            return Priority.FOREGROUND
        if kind is RequestKind.PUT:
            return Priority.NORMAL
        return Priority.BACKGROUND


class RequestStatus(str, enum.Enum):
    """Final disposition of a request."""

    COMPLETED = "completed"
    REJECTED = "rejected"    # admission controller turned it away
    FAILED = "failed"        # retries exhausted / unrecoverable
    SHED = "shed"            # overload control dropped it (fail-fast)


@dataclass(frozen=True)
class Request:
    """One client operation.

    Attributes
    ----------
    kind:
        ``put``, ``get`` or ``encode``.
    key:
        Object key (ignored for ``encode``).
    client:
        Simulated client id (observability only).
    arrival_ns:
        When the request reaches the service, on the simulated clock.
    payload:
        Object bytes for ``put``.
    stripes:
        Volume of an ``encode`` job, in full stripes.
    deadline_ns:
        Absolute simulated instant by which the client needs the
        answer; ``inf`` (the default) means "no deadline". The
        overload layer sheds requests that cannot meet their deadline
        at *enqueue* time instead of letting them time out after
        consuming decode work.
    priority:
        Service class; ``None`` derives the default from ``kind``
        (reads > writes > bulk encode) via :meth:`Priority.default_for`.
    """

    kind: RequestKind
    key: str = ""
    client: int = 0
    arrival_ns: float = 0.0
    payload: bytes = b""
    stripes: int = 1
    deadline_ns: float = math.inf
    priority: Priority | None = None

    @property
    def resolved_priority(self) -> Priority:
        """The effective priority class (explicit or kind-derived)."""
        if self.priority is not None:
            return Priority(self.priority)
        return Priority.default_for(self.kind)

    @staticmethod
    def put(key: str, payload: bytes, *, client: int = 0,
            arrival_ns: float = 0.0, deadline_ns: float = math.inf,
            priority: Priority | None = None) -> "Request":
        """Convenience constructor for a PUT."""
        return Request(RequestKind.PUT, key, client, arrival_ns, payload,
                       deadline_ns=deadline_ns, priority=priority)

    @staticmethod
    def get(key: str, *, client: int = 0, arrival_ns: float = 0.0,
            deadline_ns: float = math.inf,
            priority: Priority | None = None) -> "Request":
        """Convenience constructor for a GET."""
        return Request(RequestKind.GET, key, client, arrival_ns,
                       deadline_ns=deadline_ns, priority=priority)

    @staticmethod
    def encode(stripes: int = 1, *, client: int = 0,
               arrival_ns: float = 0.0, deadline_ns: float = math.inf,
               priority: Priority | None = None) -> "Request":
        """Convenience constructor for a raw encode job."""
        return Request(RequestKind.ENCODE, "", client, arrival_ns,
                       b"", stripes, deadline_ns=deadline_ns,
                       priority=priority)


@dataclass
class RequestResult:
    """Outcome of one request after the service drained it."""

    request: Request
    status: RequestStatus
    #: Arrival-to-completion time on the simulated clock (None when
    #: rejected at admission).
    latency_ns: float | None = None
    #: Transient-fault retries this request consumed.
    retries: int = 0
    #: Whether a GET was served through parity reconstruction.
    degraded: bool = False
    #: Payload handed back to the client (GET only).
    value: bytes = b""
    error: str = ""
    #: Size of the batch this request was coalesced into (1 = alone).
    batch_size: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the request completed (possibly degraded)."""
        return self.status is RequestStatus.COMPLETED
