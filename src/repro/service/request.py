"""Service request/response types.

A :class:`Request` is one client operation arriving at the service at a
simulated instant; a :class:`RequestResult` is its final disposition
with latency accounting. Both are plain data — the event loop in
:mod:`repro.service.service` owns all behavior.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RequestKind(str, enum.Enum):
    """What the client asked for."""

    PUT = "put"          # store an object (payload bytes)
    GET = "get"          # read an object back
    ENCODE = "encode"    # raw encode job of `stripes` full stripes


class RequestStatus(str, enum.Enum):
    """Final disposition of a request."""

    COMPLETED = "completed"
    REJECTED = "rejected"    # admission controller turned it away
    FAILED = "failed"        # retries exhausted / unrecoverable


@dataclass(frozen=True)
class Request:
    """One client operation.

    Attributes
    ----------
    kind:
        ``put``, ``get`` or ``encode``.
    key:
        Object key (ignored for ``encode``).
    client:
        Simulated client id (observability only).
    arrival_ns:
        When the request reaches the service, on the simulated clock.
    payload:
        Object bytes for ``put``.
    stripes:
        Volume of an ``encode`` job, in full stripes.
    """

    kind: RequestKind
    key: str = ""
    client: int = 0
    arrival_ns: float = 0.0
    payload: bytes = b""
    stripes: int = 1

    @staticmethod
    def put(key: str, payload: bytes, *, client: int = 0,
            arrival_ns: float = 0.0) -> "Request":
        """Convenience constructor for a PUT."""
        return Request(RequestKind.PUT, key, client, arrival_ns, payload)

    @staticmethod
    def get(key: str, *, client: int = 0, arrival_ns: float = 0.0) -> "Request":
        """Convenience constructor for a GET."""
        return Request(RequestKind.GET, key, client, arrival_ns)

    @staticmethod
    def encode(stripes: int = 1, *, client: int = 0,
               arrival_ns: float = 0.0) -> "Request":
        """Convenience constructor for a raw encode job."""
        return Request(RequestKind.ENCODE, "", client, arrival_ns,
                       b"", stripes)


@dataclass
class RequestResult:
    """Outcome of one request after the service drained it."""

    request: Request
    status: RequestStatus
    #: Arrival-to-completion time on the simulated clock (None when
    #: rejected at admission).
    latency_ns: float | None = None
    #: Transient-fault retries this request consumed.
    retries: int = 0
    #: Whether a GET was served through parity reconstruction.
    degraded: bool = False
    #: Payload handed back to the client (GET only).
    value: bytes = b""
    error: str = ""
    #: Size of the batch this request was coalesced into (1 = alone).
    batch_size: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the request completed (possibly degraded)."""
        return self.status is RequestStatus.COMPLETED
