"""The concurrent erasure-coding service layer (``repro.service``).

The paper's point is that DIALGA lets erasure coding on PM serve *more
concurrent work* before the read buffer thrashes (the Eq. (1) cap and
the 12-thread knee). This package turns that into a system: an
erasure-coded PM object-storage *service* over :mod:`repro.pmstore`
and :mod:`repro.core` modeling sustained multi-client traffic —

* :class:`~repro.service.service.ErasureCodingService` — the
  deterministic discrete-event service loop;
* :class:`~repro.service.queue.RequestQueue` — bounded FIFO with
  same-geometry batch coalescing (bit-exact, see
  :func:`~repro.service.queue.encode_coalesced`);
* :class:`~repro.service.admission.AdmissionController` — the paper's
  Eq. (1) read-buffer bound as a concurrency limiter;
* :class:`~repro.service.retry.RetryPolicy` — exponential backoff for
  injected transient faults;
* :class:`~repro.service.metrics.MetricsRegistry` — latency
  percentiles, queue depth, rejections, retries, policy switches;
* :mod:`repro.service.traffic` — seeded multi-client request streams;
* :mod:`repro.service.overload` — overload resilience: deadline-aware
  admission, AIMD adaptive concurrency under the Eq. (1) cap, retry
  budgets, priority shedding, hedged reads and brownout
  (:class:`~repro.service.overload.OverloadManager`);
* :mod:`repro.service.health` / :mod:`repro.service.healing` — the
  self-healing loop: per-device circuit breakers
  (:class:`~repro.service.health.HealthMonitor`), a priority
  :class:`~repro.service.healing.RepairQueue`, paced background
  scrubbing and breaker-driven device recovery, all run in the event
  loop's idle gaps under the Eq. (1) thread budget.
"""

from repro.service.admission import AdmissionController, eq1_thread_cap
from repro.service.health import (
    HealthMonitor,
    HealthState,
    HealthTransition,
)
from repro.service.healing import RepairQueue, ScrubScheduler, SelfHealer
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.overload import (
    BrownoutController,
    ConcurrencyController,
    OverloadConfig,
    OverloadManager,
    RetryBudget,
    ShedDecision,
)
from repro.service.queue import Batch, BatchKey, RequestQueue, encode_coalesced
from repro.service.request import (
    Priority,
    Request,
    RequestKind,
    RequestResult,
    RequestStatus,
)
from repro.service.retry import RetryPolicy
from repro.service.service import ErasureCodingService, ServiceConfig
from repro.service.traffic import client_key, get_wave, put_wave

__all__ = [
    "HealthMonitor",
    "HealthState",
    "HealthTransition",
    "RepairQueue",
    "ScrubScheduler",
    "SelfHealer",
    "AdmissionController",
    "eq1_thread_cap",
    "LatencyHistogram",
    "MetricsRegistry",
    "BrownoutController",
    "ConcurrencyController",
    "OverloadConfig",
    "OverloadManager",
    "RetryBudget",
    "ShedDecision",
    "Batch",
    "BatchKey",
    "RequestQueue",
    "encode_coalesced",
    "Priority",
    "Request",
    "RequestKind",
    "RequestResult",
    "RequestStatus",
    "RetryPolicy",
    "ErasureCodingService",
    "ServiceConfig",
    "client_key",
    "get_wave",
    "put_wave",
]
