"""Deprecation machinery for the API redesign.

Legacy call shapes (pre-1.1 constructor knobs, the ``wl``/``hw``
parameter names) keep working for one release, but funnel through
:func:`warn_deprecated` so they are visible — and *allowlistable*: the
strict-warnings CI job runs ``-W error::DeprecationWarning`` with
``-W default::repro._deprecation.ReproDeprecationWarning``, so our own
shims never mask third-party deprecations while still being loud.
"""

from __future__ import annotations

import warnings


class ReproDeprecationWarning(DeprecationWarning):
    """A repro API surface scheduled for removal in the next release."""


def warn_deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit a :class:`ReproDeprecationWarning` pointing at the caller."""
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)
