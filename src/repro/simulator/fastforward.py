"""Exact steady-state fast-forward for single-thread simulation.

EC traces repeat one per-stripe kernel thousands of times with every
address shifted by a constant stride (:mod:`repro.trace.period`). Once
the simulator reaches *steady state* — the LRU structures are full and
each period leaves the machine in the same state merely relocated by
one stripe — interpreting the remaining periods recomputes information
we already have. :func:`run_fastforward` detects that fixed point and
skips ahead by exact extrapolation, producing output **byte-identical**
to plain interpretation:

1. **Detect** the periodic region with pure array arithmetic.
2. **Interpret** period by period (through the engine's inlined fast
   path, chunked via ``ThreadContext.run(until=...)``), taking a cheap
   fingerprint at every period boundary: elapsed ns, the full counter
   delta, and the model occupancy sizes. Only when consecutive cheap
   fingerprints agree is the full **shift-invariant digest** computed —
   the exact content of the cache, stream table, read buffer and
   bandwidth pipes, with addresses rebased by the per-period stride and
   *live* times (later than the clock) as offsets from the clock.
   Times already in the past are behaviorally dead (every consumer
   clamps or ignores them) and digest as a sentinel.
3. **Jump**: after two consecutive boundary pairs with identical cheap
   fingerprints, the latest digest-certified, the next N periods are
   pure translations. The jump applies ``counters += N*delta``,
   ``clock += N*dt`` and relabels every model by ``N*stride`` /
   ``N*dt``. While validated, later boundaries are certified by the
   cheap fingerprint alone (exact float equality of every counter
   accumulator pins the behavior; unconsumed state cannot diverge
   silently), so the O(cache) digest is recomputed only after a jump
   or a fingerprint break.

Exactness under IEEE-754 rests on a binade argument: floats within one
binade are exactly the multiples of one ulp ``u``, so translating the
clock by a multiple of ``u`` shifts every downstream rounding decision
exactly — the measured ``dt`` *is* such a multiple, and the validated
periods certify there is no round-half-to-even tie flipping with the
shift parity (a tie would make consecutive deltas differ). The jump
length is therefore bounded so that the clock, every live time and
every float counter accumulator stays inside its current binade; at a
binade crossing the per-period rounding legitimately changes, so the
loop re-interprets a few periods and re-validates before jumping again
(a handful of crossings per run — binades double in width).

Anything non-periodic — update traces, chaos faults, adaptive policy
switches, subclassed models — fails detection or never converges, and
the trace runs under plain interpretation, bit-for-bit as before.
"""

from __future__ import annotations

import math
from dataclasses import fields

from repro.simulator.cache import CoreCache
from repro.simulator.counters import Counters
from repro.simulator.engine import ThreadContext
from repro.simulator.memory import DRAMBackend, PMBackend
from repro.simulator.readbuffer import PMReadBuffer
from repro.simulator.streamprefetcher import StreamPrefetcher
from repro.trace.period import detect_period

__all__ = ["run_fastforward", "MIN_PERIODS", "CONFIRM_PERIODS"]

#: Minimum complete periods for detection to bother reporting.
MIN_PERIODS = 4
#: Consecutive identical cheap boundary pairs (elapsed ns + exact
#: counter deltas + occupancies), the latest also digest-certified,
#: required before extrapolating — two pairs span three boundaries
#: and screen parity-alternating rounding ties.
CONFIRM_PERIODS = 2
#: Extra periods of headroom kept below every binade top (absorbs the
#: float rounding of the bound computation itself).
BINADE_MARGIN = 4
#: Smallest jump worth the relabel cost (rebuilding the cache's
#: OrderedDict costs a few interpreted periods' worth of time).
MIN_JUMP = 16

_INT_FIELDS = tuple(f.name for f in fields(Counters)
                    if isinstance(f.default, int))
_FLOAT_FIELDS = tuple(f.name for f in fields(Counters)
                      if isinstance(f.default, float))


def _stats(engaged: bool, reason: str | None = None, **extra) -> dict:
    out = {"engaged": engaged, "reason": reason,
           "periods_total": 0, "periods_interpreted": 0,
           "periods_skipped": 0, "jumps": 0, "converged_at_op": None,
           "period_ops": 0, "stride": 0}
    out.update(extra)
    return out


def _unsupported(ctx: ThreadContext) -> str | None:
    """Reason the context cannot be fast-forwarded, or None."""
    if type(ctx) is not ThreadContext:
        return "subclassed context"
    if type(ctx.counters) is not Counters:
        return "subclassed counters"
    if type(ctx.cache) is not CoreCache:
        return "subclassed cache"
    if type(ctx.prefetcher) is not StreamPrefetcher:
        return "subclassed prefetcher"
    for backend in (ctx.load_backend, ctx.store_backend):
        if type(backend) not in (PMBackend, DRAMBackend):
            return "subclassed backend"
        if (type(backend) is PMBackend
                and type(backend.read_buffer) is not PMReadBuffer):
            return "subclassed read buffer"
    return None


def _pipes(ctx: ThreadContext) -> tuple:
    """Every bandwidth pipe of the run (backends may be one object)."""
    load, store = ctx.load_backend, ctx.store_backend
    if store is load:
        return load.pipes()
    return load.pipes() + store.pipes()


def _jump_bound(value: float, per_period: float, extra: float) -> int | None:
    """Periods ``value`` can advance by ``per_period`` within its binade.

    None means unbounded (nothing accumulates). 0 means no exact jump
    is currently possible — ``per_period`` is not a multiple of the
    value's ulp (it straddled a binade crossing) or the binade top is
    too close; interpretation continues and re-validates past it.
    ``extra`` reserves additional headroom below the top (the furthest
    live time offset, for the clock bound).
    """
    if per_period == 0.0:
        return None
    if per_period < 0.0 or value <= 0.0:
        return 0
    u = math.ulp(value)
    if not (per_period / u).is_integer():
        return 0
    top = math.ldexp(1.0, math.frexp(value)[1])
    headroom = top - value - extra - BINADE_MARGIN * per_period
    if headroom <= 0.0:
        return 0
    return int(headroom / per_period)


def run_fastforward(ctx: ThreadContext) -> dict:
    """Execute ``ctx``'s trace to completion, skipping steady periods.

    Byte-identical to ``ctx.run()`` in every counter and in the clock;
    returns a stats dict (``engaged``, ``periods_skipped``, ``jumps``,
    ``converged_at_op``, decline ``reason``, ...). Emits one
    ``sim.fastforward`` tracer event per jump.
    """
    from repro.obs import get_tracer

    reason = _unsupported(ctx)
    if reason is not None:
        ctx.run()
        return _stats(False, reason)
    info = detect_period(ctx.trace, start_pc=ctx.pc,
                         min_periods=MIN_PERIODS)
    if info is None:
        ctx.run()
        return _stats(False, "no periodic structure")
    stride = info.stride
    page_bytes = ctx.prefetcher.config.page_bytes
    grains = [64, page_bytes]
    pm = ctx.load_backend if type(ctx.load_backend) is PMBackend else None
    if pm is not None:
        grains.append(pm.config.xpline_bytes)
    if any(stride % g for g in grains):
        ctx.run()
        return _stats(False, "stride not model-aligned",
                      period_ops=info.period_ops, stride=stride,
                      periods_total=info.periods)

    tracer = get_tracer()
    counters = ctx.counters
    cache = ctx.cache
    prefetcher = ctx.prefetcher
    pipes = _pipes(ctx)
    rb = pm.read_buffer if pm is not None else None

    # Interpret up to the periodic region (prolog, if any).
    ctx.run(until=info.start)

    q = 0                      # period boundaries completed
    interpreted = 0
    skipped = 0
    jumps = 0
    converged_at = None
    prev_clock = ctx.clock
    prev_snap = counters.snapshot()
    prev_dt = None
    prev_delta = None
    prev_lens = None
    prev_digest = None
    streak = 0                 # consecutive equal cheap fingerprints
    validated = False          # digest-certified steady state
    live = 0.0                 # furthest live time offset at validation

    while q < info.periods:
        ctx.run(until=info.boundary(q + 1))
        q += 1
        interpreted += 1
        clock = ctx.clock
        dt = clock - prev_clock
        snap = counters.snapshot()
        delta = snap.delta(prev_snap)
        lens = (len(cache._lines), len(prefetcher._table),
                len(rb._entries) if rb is not None else 0)
        cheap_ok = (dt == prev_dt and delta == prev_delta
                    and lens == prev_lens)
        prev_clock, prev_snap = clock, snap
        prev_dt, prev_delta, prev_lens = dt, delta, lens
        if not cheap_ok:
            streak = 0
            validated = False
            prev_digest = None
            continue
        streak += 1
        if not validated:
            # Digesting is only worth it if a jump could follow: with
            # the most optimistic live offset (0), would the binade
            # bounds even allow MIN_JUMP periods? Just below a binade
            # top they do not — skip the O(cache) digest and keep
            # interpreting until past the crossing.
            optimistic = info.periods - q
            bound = _jump_bound(clock, dt, 0.0)
            if bound is not None and bound < optimistic:
                optimistic = bound
            for name in _FLOAT_FIELDS:
                bound = _jump_bound(getattr(counters, name),
                                    getattr(delta, name), 0.0)
                if bound is not None and bound < optimistic:
                    optimistic = bound
            if optimistic < MIN_JUMP:
                prev_digest = None
                continue
            # Cheap fingerprints agree: compare the full relocated
            # state. Validation needs CONFIRM_PERIODS consecutive
            # equal cheap pairs, the latest also digest-certified —
            # once it holds, live offsets are pinned by the digest and
            # every later boundary's exact counter/dt equality keeps
            # certifying steadiness, so the digest need not be redone
            # until a cheap fingerprint breaks (a binade crossing).
            shift = q * stride
            cache_digest, max_live = cache.state_digest(clock, shift)
            live = max_live
            pipe_digest = []
            for pipe in pipes:
                rel = pipe.rel_free(clock)
                pipe_digest.append(rel)
                if rel is not None and rel > live:
                    live = rel
            digest = (cache_digest, prefetcher.state_digest(shift),
                      rb.state_digest(shift) if rb is not None else (),
                      tuple(pipe_digest))
            if (streak >= CONFIRM_PERIODS and prev_digest is not None
                    and digest == prev_digest):
                validated = True
                if converged_at is None:
                    converged_at = ctx.pc
            prev_digest = digest
            if not validated:
                continue

        # Steady state confirmed: extrapolate as far as every float
        # stays inside its current binade.
        n = info.periods - q
        bound = _jump_bound(clock, dt, live)
        if bound is not None and bound < n:
            n = bound
        for name in _FLOAT_FIELDS:
            d = getattr(delta, name)
            bound = _jump_bound(getattr(counters, name), d, 0.0)
            if bound is not None and bound < n:
                n = bound
        if n < MIN_JUMP:
            # Too close to a binade top (or the trace end) to be worth
            # a relabel; keep interpreting and try again next boundary.
            continue

        time_shift = n * dt
        addr_shift = n * stride
        cache.relabel(addr_shift, time_shift, clock)
        prefetcher.relabel(addr_shift)
        if rb is not None:
            rb.relabel(addr_shift)
        for pipe in pipes:
            pipe.shift(time_shift, clock)
        for name in _INT_FIELDS:
            d = getattr(delta, name)
            if d:
                setattr(counters, name, getattr(counters, name) + n * d)
        for name in _FLOAT_FIELDS:
            d = getattr(delta, name)
            if d:
                setattr(counters, name, getattr(counters, name) + n * d)
        ctx.clock = clock + time_shift
        ctx.pc += n * info.period_ops
        q += n
        skipped += n
        jumps += 1
        tracer.event("sim.fastforward", ctx.clock,
                     periods_skipped=n, op_index=ctx.pc,
                     period_ops=info.period_ops, stride=stride,
                     converged_at_op=converged_at)
        # The skip ends near a binade top; re-validate from scratch so
        # the next jump measures the new binade's rounding.
        prev_clock = ctx.clock
        prev_snap = counters.snapshot()
        prev_dt = prev_delta = prev_lens = prev_digest = None
        streak = 0
        validated = False

    # Aperiodic tail (and anything detection left out).
    ctx.run()
    return _stats(skipped > 0, None if skipped else "never converged",
                  periods_total=info.periods,
                  periods_interpreted=interpreted,
                  periods_skipped=skipped, jumps=jumps,
                  converged_at_op=converged_at,
                  period_ops=info.period_ops, stride=stride)
