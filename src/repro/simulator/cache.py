"""Private-core cache presence model.

Coding kernels stream their inputs — every 64 B line is demanded
exactly once — so the interesting cache questions reduce to: *did a
prefetch land this line in L2 before its demand access, and was it
evicted (or never demanded) in between?* We therefore model the L1/L2
hierarchy as one LRU presence map with the L2's capacity, tracking for
each resident line its fill-completion time and whether it arrived via
hardware prefetch, software prefetch or demand.

Useless-prefetch accounting (the PMU 0xf2 analogue) covers all three
ways a prefetch can be wasted: evicted before use, never demanded
(block-end overshoot), or arriving after the demand already paid the
memory latency ("late", counted when the line is claimed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.simulator.counters import Counters

#: Line provenance markers.
DEMAND, HWPF, SWPF = 0, 1, 2


@dataclass(slots=True)
class _Line:
    arrival_ns: float
    source: int
    used: bool
    #: What a demand-priority fill of this line would have cost (ns);
    #: bounds the residual wait when a demand promotes a late prefetch.
    promo_ns: float = 0.0


class CoreCache:
    """LRU presence map over 64 B lines with prefetch bookkeeping."""

    def __init__(self, capacity_lines: int, counters: Counters):
        if capacity_lines < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_lines
        self.counters = counters
        self._lines: OrderedDict[int, _Line] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def lookup(self, line_addr: int) -> _Line | None:
        """Return the resident entry (refreshing LRU) or None."""
        ent = self._lines.get(line_addr)
        if ent is not None:
            self._lines.move_to_end(line_addr)
        return ent

    def insert(self, line_addr: int, arrival_ns: float, source: int,
               used: bool = False, promo_ns: float = 0.0) -> None:
        """Install a line, evicting LRU if full."""
        if line_addr in self._lines:
            ent = self._lines[line_addr]
            # Keep the earlier arrival; refresh LRU position.
            ent.arrival_ns = min(ent.arrival_ns, arrival_ns)
            ent.promo_ns = min(ent.promo_ns, promo_ns) if ent.promo_ns else promo_ns
            self._lines.move_to_end(line_addr)
            return
        if len(self._lines) >= self.capacity:
            _, evicted = self._lines.popitem(last=False)
            self._account_eviction(evicted)
        self._lines[line_addr] = _Line(arrival_ns, source, used, promo_ns)

    def _account_eviction(self, ent: _Line) -> None:
        if not ent.used:
            if ent.source == HWPF:
                self.counters.hwpf_useless += 1
            elif ent.source == SWPF:
                self.counters.swpf_useless += 1

    def drain(self) -> None:
        """End-of-run flush: account never-used prefetches as useless."""
        while self._lines:
            _, ent = self._lines.popitem(last=False)
            self._account_eviction(ent)

    # -- fast-forward hooks ------------------------------------------------

    def state_digest(self, now_ns: float,
                     addr_shift: int) -> tuple[tuple, float]:
        """Shift-invariant digest of the resident set.

        Entries are reported in LRU order with addresses rebased by
        ``addr_shift`` and arrivals as offsets from ``now_ns``.
        Arrivals already in the past are *settled*: every consumer
        compares them against future times, so their exact value is
        behaviorally dead and digests as ``None`` (their clock-relative
        offset changes every period, which would otherwise block
        convergence forever). Returns ``(digest, max_live_offset_ns)``.
        """
        out = [
            (addr - addr_shift, ent.source, ent.used, ent.promo_ns,
             ent.arrival_ns - now_ns if ent.arrival_ns > now_ns else None)
            for addr, ent in self._lines.items()
        ]
        max_live = max((t[4] for t in out if t[4] is not None), default=0.0)
        return tuple(out), max_live

    def relabel(self, addr_shift: int, time_shift: float,
                now_ns: float) -> None:
        """Translate the resident set by one fast-forward jump.

        Keys shift by ``addr_shift``; in-flight arrivals (later than
        the pre-jump clock ``now_ns``) shift by ``time_shift``; settled
        arrivals keep their (dead) values. LRU order is preserved.
        """
        shifted: OrderedDict[int, _Line] = OrderedDict()
        for addr, ent in self._lines.items():
            if ent.arrival_ns > now_ns:
                ent.arrival_ns += time_shift
            shifted[addr + addr_shift] = ent
        self._lines = shifted
