"""Private-core cache presence model.

Coding kernels stream their inputs — every 64 B line is demanded
exactly once — so the interesting cache questions reduce to: *did a
prefetch land this line in L2 before its demand access, and was it
evicted (or never demanded) in between?* We therefore model the L1/L2
hierarchy as one LRU presence map with the L2's capacity, tracking for
each resident line its fill-completion time and whether it arrived via
hardware prefetch, software prefetch or demand.

Useless-prefetch accounting (the PMU 0xf2 analogue) covers all three
ways a prefetch can be wasted: evicted before use, never demanded
(block-end overshoot), or arriving after the demand already paid the
memory latency ("late", counted when the line is claimed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.simulator.counters import Counters

#: Line provenance markers.
DEMAND, HWPF, SWPF = 0, 1, 2


@dataclass(slots=True)
class _Line:
    arrival_ns: float
    source: int
    used: bool
    #: What a demand-priority fill of this line would have cost (ns);
    #: bounds the residual wait when a demand promotes a late prefetch.
    promo_ns: float = 0.0


class CoreCache:
    """LRU presence map over 64 B lines with prefetch bookkeeping."""

    def __init__(self, capacity_lines: int, counters: Counters):
        if capacity_lines < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_lines
        self.counters = counters
        self._lines: OrderedDict[int, _Line] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def lookup(self, line_addr: int) -> _Line | None:
        """Return the resident entry (refreshing LRU) or None."""
        ent = self._lines.get(line_addr)
        if ent is not None:
            self._lines.move_to_end(line_addr)
        return ent

    def insert(self, line_addr: int, arrival_ns: float, source: int,
               used: bool = False, promo_ns: float = 0.0) -> None:
        """Install a line, evicting LRU if full."""
        if line_addr in self._lines:
            ent = self._lines[line_addr]
            # Keep the earlier arrival; refresh LRU position.
            ent.arrival_ns = min(ent.arrival_ns, arrival_ns)
            ent.promo_ns = min(ent.promo_ns, promo_ns) if ent.promo_ns else promo_ns
            self._lines.move_to_end(line_addr)
            return
        if len(self._lines) >= self.capacity:
            _, evicted = self._lines.popitem(last=False)
            self._account_eviction(evicted)
        self._lines[line_addr] = _Line(arrival_ns, source, used, promo_ns)

    def _account_eviction(self, ent: _Line) -> None:
        if not ent.used:
            if ent.source == HWPF:
                self.counters.hwpf_useless += 1
            elif ent.source == SWPF:
                self.counters.swpf_useless += 1

    def drain(self) -> None:
        """End-of-run flush: account never-used prefetches as useless."""
        while self._lines:
            _, ent = self._lines.popitem(last=False)
            self._account_eviction(ent)
