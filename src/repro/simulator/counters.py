"""PMU-style event counters.

These mirror the hardware events the paper samples with ``perf``:
L3-miss stall cycles, useless L2 hardware prefetches (event 0xf2),
prefetch issue counts, plus the three read-traffic layers of Fig. 19
(application bytes, controller 64 B transfers, PM-media 256 B fills).

DIALGA's coordinator consumes *deltas* between snapshots, exactly like
a 1 kHz PMU sampler (see :class:`CounterSampler`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class Counters:
    """Aggregate event counts for one simulation (or one thread).

    ``slots=True`` matters: the simulator bumps these attributes on
    every op, and slot access skips the per-instance dict.
    """

    # Demand-side events
    loads: int = 0
    load_cache_hits: int = 0          # served by L1/L2 (prefetched in time)
    load_late_prefetch: int = 0       # prefetch in flight, partial stall
    load_misses: int = 0              # full memory-latency demand misses
    stores: int = 0
    # Stall accounting (ns, not cycles: convert with cpu.freq)
    load_stall_ns: float = 0.0        # demand stall beyond cache-hit latency
    store_stall_ns: float = 0.0
    compute_ns: float = 0.0
    # Hardware prefetcher (PMU 0xf2 analogues)
    hwpf_issued: int = 0
    hwpf_useful: int = 0
    hwpf_useless: int = 0             # evicted/never demanded or late
    streams_allocated: int = 0
    streams_evicted_untrained: int = 0
    # Software prefetcher
    swpf_issued: int = 0
    swpf_late: int = 0
    swpf_useless: int = 0
    # Traffic layers (bytes) — Fig. 19
    app_read_bytes: int = 0           # what the kernel actually loads
    ctrl_read_bytes: int = 0          # 64 B lines over the memory bus
    media_read_bytes: int = 0         # 256 B XPLine fills from PM media
    write_bytes: int = 0
    # PM read buffer
    buffer_hits: int = 0
    buffer_misses: int = 0
    buffer_evictions: int = 0
    buffer_evictions_unused: int = 0  # thrash: filled but never re-read

    def snapshot(self) -> "Counters":
        """Copy of the current values (for delta computation)."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "Counters") -> "Counters":
        """Event counts accumulated since ``since``."""
        return Counters(**{
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in fields(self)
        })

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter set into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def nonzero_dict(self, prefix: str = "") -> dict:
        """Non-zero raw counters as a flat dict (span attributes).

        The tracer attaches these per-sample deltas to simulator phase
        spans — the reproduction's analogue of a ``perf`` sample row.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value:
                out[prefix + f.name] = value
        return out

    # -- derived metrics -------------------------------------------------

    @property
    def useless_hwpf_ratio(self) -> float:
        """Useless fraction of issued hardware prefetches (0 if none)."""
        return self.hwpf_useless / self.hwpf_issued if self.hwpf_issued else 0.0

    @property
    def hwpf_per_load(self) -> float:
        """L2 prefetch ratio: hardware prefetches per demand load."""
        return self.hwpf_issued / self.loads if self.loads else 0.0

    @property
    def avg_load_latency_ns(self) -> float:
        """Mean demand-load latency component beyond the cache hit."""
        return self.load_stall_ns / self.loads if self.loads else 0.0

    @property
    def media_read_amplification(self) -> float:
        """PM media bytes read per application byte read (Fig. 6/19)."""
        return self.media_read_bytes / self.app_read_bytes if self.app_read_bytes else 0.0

    @property
    def ctrl_read_amplification(self) -> float:
        """Controller-layer bytes per application byte (Fig. 19)."""
        return self.ctrl_read_bytes / self.app_read_bytes if self.app_read_bytes else 0.0


class CounterSampler:
    """Fixed-interval sampler over a live :class:`Counters` object.

    Models the paper's 1 kHz PMU sampling: the coordinator calls
    :meth:`maybe_sample` with the current simulated time; when at least
    one period elapsed, a delta since the previous sample is returned.
    """

    def __init__(self, counters: Counters, period_ns: float = 1_000_000.0):
        self.counters = counters
        self.period_ns = period_ns
        self._last_time = 0.0
        self._last_snap = counters.snapshot()

    def maybe_sample(self, now_ns: float) -> Counters | None:
        """Return a delta sample if a period has elapsed, else None."""
        if now_ns - self._last_time < self.period_ns:
            return None
        return self.sample_now(now_ns)

    def sample_now(self, now_ns: float) -> Counters:
        """Force a delta sample at ``now_ns``, resetting the period.

        The DIALGA chunk loop samples at chunk boundaries rather than
        on a fixed period; both paths share this delta/rebase step.
        """
        delta = self.counters.delta(self._last_snap)
        self._last_time = now_ns
        self._last_snap = self.counters.snapshot()
        return delta
