"""Hardware configuration for the simulated testbed.

Defaults model the paper's evaluation platform (§5.1): Intel Xeon Gold
6240 @ 3.3 GHz (32 KB L1d / 1 MB L2 / 24.75 MB LLC), 6 memory channels
of DDR4-2666 DRAM plus Intel Optane DCPMM 100-series (256 B XPLine,
16 KB on-DIMM read buffer per channel = 96 KB total).

Latency/bandwidth values are drawn from published Optane
characterization studies (Yang et al. FAST'20, Xiang et al. EuroSys'22)
and then *calibrated* so the observation figures (3-7) reproduce the
paper's shapes; every calibrated knob lives here, in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CPUConfig:
    """Core model: frequency, SIMD width and per-op costs (in cycles)."""

    freq_ghz: float = 3.3
    #: "avx512" or "avx256" — AVX256 doubles compute cycles per line.
    simd: str = "avx512"
    #: GF multiply-accumulate cycles per 64 B line per parity (AVX512:
    #: two nibble-table vpshufb + two vpxor plus port pressure).
    gf_cycles_per_parity_line: float = 3.5
    #: Pure-XOR cycles per 64 B line (bitmatrix codes).
    xor_cycles_per_line: float = 0.7
    #: Fixed per-line loop overhead (address generation, branch).
    loop_overhead_cycles: float = 3.0
    #: Cost of issuing one load / store / software-prefetch instruction.
    load_issue_cycles: float = 1.0
    store_issue_cycles: float = 1.5
    swpf_issue_cycles: float = 1.0
    #: Write-pending-queue backpressure threshold, in ns of write-pipe
    #: backlog (~one WPQ depth drained at PM write bandwidth).
    #: Non-temporal stores are posted; a store stalls only for the
    #: backlog *beyond* this allowance. Calibrated against the paper's
    #: store-heavy figures; sweeps may vary it per-cell.
    wpq_backpressure_ns: float = 2000.0

    @property
    def ns_per_cycle(self) -> float:
        return 1.0 / self.freq_ghz

    @property
    def simd_factor(self) -> float:
        """Compute-cycle multiplier for the configured SIMD width."""
        if self.simd == "avx512":
            return 1.0
        if self.simd == "avx256":
            return 2.0
        raise ValueError(f"unknown SIMD width {self.simd!r}")


@dataclass(frozen=True)
class CacheConfig:
    """Private-core cache model (presence-oriented, see DESIGN.md §4)."""

    line_bytes: int = 64
    l2_kb: int = 1024
    #: Latency of a load that hits in L1/L2 (ns).
    hit_latency_ns: float = 4.0

    @property
    def capacity_lines(self) -> int:
        return self.l2_kb * 1024 // self.line_bytes


@dataclass(frozen=True)
class PrefetcherConfig:
    """L2 stream ("streamer") hardware prefetcher model.

    The paper establishes (Obs. 3) that the Cascade Lake streamer
    tracks up to 32 *unidirectional* streams and stops prefetching
    entirely beyond that; 3rd-gen Xeon raises this to 64.
    """

    enabled: bool = True
    #: Stream-table entries (LRU-replaced). 32 = Cascade Lake per paper.
    max_streams: int = 32
    #: Sequential accesses on a page before prefetching starts. Short
    #: streams (small blocks) never reach this — Obs. 4.
    train_threshold: int = 4
    #: Prefetch-ahead distance cap, in 64 B lines.
    max_distance: int = 8
    #: Accesses per +1 of prefetch distance once trained:
    #: distance = min((conf - threshold) // ramp_div + 1, max_distance).
    #: A slow ramp is what makes prefetching less effective on PM (its
    #: 350 ns latency needs a long lead) than on DRAM — Obs. 1.
    ramp_div: int = 3
    page_bytes: int = 4096


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM backend (6 x DDR4-2666 in the paper's testbed)."""

    latency_ns: float = 80.0
    #: Aggregate read bandwidth, GB/s.
    read_bw_gbps: float = 75.0
    write_bw_gbps: float = 60.0
    #: Memory-level parallelism: outstanding demand misses the core
    #: overlaps. DRAM latency sits inside the OOO window, so higher.
    mlp: float = 6.0


@dataclass(frozen=True)
class PMConfig:
    """Optane-style persistent-memory backend."""

    #: Latency of a 64 B load whose XPLine misses the read buffer (ns).
    media_latency_ns: float = 350.0
    #: Latency when the XPLine is already in the on-DIMM read buffer (ns).
    buffer_hit_latency_ns: float = 160.0
    #: Media access granularity (the XPLine).
    xpline_bytes: int = 256
    #: Total on-DIMM read buffer (6 channels x 16 KB).
    read_buffer_kb: int = 96
    #: Aggregate media read bandwidth, GB/s (6 x ~2.4 GB/s DIMMs).
    media_read_bw_gbps: float = 14.0
    #: DDR-T bus (controller<->DIMM) bandwidth for 64 B transfers, GB/s.
    ctrl_bw_gbps: float = 40.0
    #: Non-temporal write bandwidth, GB/s.
    write_bw_gbps: float = 8.0
    #: PM read concurrency the core can overlap (shallower than DRAM).
    mlp: float = 4.0
    #: Prefetch fills complete slower than demand fills on Optane (the
    #: controller deprioritizes them and the media queues them behind
    #: demand): arrival = issue + media_latency * this factor. This is
    #: the Obs.-1 mechanism that makes hardware prefetching less
    #: effective on PM than on DRAM.
    prefetch_latency_factor: float = 2.0

    @property
    def buffer_capacity_lines(self) -> int:
        """Read-buffer capacity in XPLines (384 for the default 96 KB)."""
        return self.read_buffer_kb * 1024 // self.xpline_bytes


@dataclass(frozen=True)
class HardwareConfig:
    """Complete testbed description handed to the simulator."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    pm: PMConfig = field(default_factory=PMConfig)
    #: Where encode *loads* come from: "pm" (default) or "dram" (Fig. 3).
    load_source: str = "pm"
    #: Where parity stores go (non-temporal): "pm" or "dram".
    store_target: str = "pm"

    def with_(self, **kwargs) -> "HardwareConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    def with_prefetcher(self, **kwargs) -> "HardwareConfig":
        """Return a copy with prefetcher fields replaced."""
        return replace(self, prefetcher=replace(self.prefetcher, **kwargs))

    def with_cpu(self, **kwargs) -> "HardwareConfig":
        """Return a copy with CPU fields replaced."""
        return replace(self, cpu=replace(self.cpu, **kwargs))

    def with_pm(self, **kwargs) -> "HardwareConfig":
        """Return a copy with PM fields replaced."""
        return replace(self, pm=replace(self.pm, **kwargs))

    def with_dram(self, **kwargs) -> "HardwareConfig":
        """Return a copy with DRAM fields replaced."""
        return replace(self, dram=replace(self.dram, **kwargs))
