"""Memory-hierarchy simulator (the paper's hardware testbed, in Python).

This package is the substitution for the hardware the paper runs on
(DESIGN.md §2): an Intel Xeon with a trainable L2 stream prefetcher and
Intel Optane DCPMM with its 256B-XPLine on-DIMM read buffer. Coding
kernels are expressed as cacheline-granular op traces
(:mod:`repro.trace`); the engine executes them with cycle/ns accounting
against configurable cache, prefetcher, DRAM and PM models, exposing
PMU-style counters that DIALGA's coordinator consumes.

Public API
----------
``HardwareConfig`` and its sub-configs  — the testbed knobs
``Counters``                            — PMU-style event counters
``simulate`` / ``SimResult``            — run 1..N thread traces
``StreamPrefetcher``, ``CoreCache``, ``PMReadBuffer`` — inspectable parts
"""

from repro.simulator.params import (
    CPUConfig,
    CacheConfig,
    PrefetcherConfig,
    DRAMConfig,
    PMConfig,
    HardwareConfig,
)
from repro.simulator.counters import Counters
from repro.simulator.cache import CoreCache
from repro.simulator.streamprefetcher import StreamPrefetcher
from repro.simulator.readbuffer import PMReadBuffer
from repro.simulator.memory import DRAMBackend, PMBackend
from repro.simulator.engine import ThreadContext, run_single
from repro.simulator.fastforward import run_fastforward
from repro.simulator.multicore import SimResult
from repro.simulator.api import simulate
from repro.simulator.presets import PRESETS, get_preset
from repro.simulator.profiler import perf_report

__all__ = [
    "CPUConfig",
    "CacheConfig",
    "PrefetcherConfig",
    "DRAMConfig",
    "PMConfig",
    "HardwareConfig",
    "Counters",
    "CoreCache",
    "StreamPrefetcher",
    "PMReadBuffer",
    "DRAMBackend",
    "PMBackend",
    "ThreadContext",
    "run_single",
    "run_fastforward",
    "simulate",
    "SimResult",
    "PRESETS",
    "get_preset",
    "perf_report",
]
