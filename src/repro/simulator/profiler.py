"""A ``perf stat``-style report over a simulation.

The paper profiles its workloads with Linux ``perf`` (PMU sampling);
this module renders the simulator's counters the same way, so examples
and debugging sessions read like the methodology section. Rates are
derived, never stored — the single source of truth is
:class:`~repro.simulator.counters.Counters`.
"""

from __future__ import annotations

from repro.simulator.multicore import SimResult
from repro.simulator.params import HardwareConfig


def _compare_section(result: SimResult, baseline: SimResult) -> list[str]:
    """Per-counter deltas against a baseline run.

    Flags use the coordinator's §4.1.2 threshold language: average load
    latency above 110% of the baseline reads as *contention*, useless-
    prefetch growth above 150% as an *inefficient prefetcher*.
    """
    c, b = result.counters, baseline.counters

    def pct(cur: float, ref: float) -> str:
        if not ref:
            return "   (new)" if cur else "      --"
        return f"{(cur - ref) / ref:+8.1%}"

    rows = [
        ("makespan_ns", result.makespan_ns, baseline.makespan_ns),
        ("throughput_gbps", result.throughput_gbps, baseline.throughput_gbps),
        ("avg_load_latency_ns", c.avg_load_latency_ns, b.avg_load_latency_ns),
        ("loads", c.loads, b.loads),
        ("load_misses", c.load_misses, b.load_misses),
        ("load_stall_ns", c.load_stall_ns, b.load_stall_ns),
        ("hwpf_issued", c.hwpf_issued, b.hwpf_issued),
        ("hwpf_useless", c.hwpf_useless, b.hwpf_useless),
        ("swpf_issued", c.swpf_issued, b.swpf_issued),
        ("swpf_late", c.swpf_late, b.swpf_late),
        ("ctrl_read_bytes", c.ctrl_read_bytes, b.ctrl_read_bytes),
        ("media_read_bytes", c.media_read_bytes, b.media_read_bytes),
        ("buffer_evictions_unused", c.buffer_evictions_unused,
         b.buffer_evictions_unused),
    ]
    lines = ["", "vs baseline:"]
    for name, cur, ref in rows:
        lines.append(f"  {cur:>16,.0f}  {name:<28} {pct(cur, ref)}"
                     f"  (baseline {ref:,.0f})")
    # The coordinator's two dynamic-switch signals, applied verbatim.
    if b.loads and c.avg_load_latency_ns > 1.10 * b.avg_load_latency_ns:
        lines.append("  !! contention: avg load latency exceeds 110% "
                     "of the baseline (coordinator would flag this)")
    base_upl = (b.hwpf_useless / b.loads) if b.loads else 0.0
    cur_upl = (c.hwpf_useless / c.loads) if c.loads else 0.0
    if base_upl > 1e-6 and cur_upl > 1.50 * base_upl:
        lines.append("  !! inefficient prefetcher: useless-prefetch "
                     "rate exceeds 150% of the baseline (coordinator "
                     "would flag this)")
    return lines


def perf_report(result: SimResult, hw: HardwareConfig | None = None,
                title: str = "simulation",
                compare: SimResult | None = None) -> str:
    """Render a perf-stat-like text block for a finished simulation.

    ``compare`` adds a per-counter delta section against a baseline
    run, phrased with the coordinator's 110%/150% switching thresholds.
    """
    c = result.counters
    hw = hw or HardwareConfig()
    ms = result.makespan_ns / 1e6
    cycles = result.makespan_ns * hw.cpu.freq_ghz

    def row(value, label, extra=""):
        return f"  {value:>16,.0f}  {label:<32} {extra}"

    def pct(part, whole):
        return f"({part / whole:.1%})" if whole else ""

    lines = [
        f"Performance counter stats for '{title}':",
        "",
        row(cycles, "cycles", f"# {hw.cpu.freq_ghz:.1f} GHz"),
        row(c.compute_ns * hw.cpu.freq_ghz, "compute cycles",
            pct(c.compute_ns, result.makespan_ns)),
        row(c.load_stall_ns * hw.cpu.freq_ghz, "memory stall cycles",
            pct(c.load_stall_ns, result.makespan_ns * max(1, len(result.thread_times_ns)))),
        "",
        row(c.loads, "loads",
            f"# {c.avg_load_latency_ns:.1f} ns avg stall"),
        row(c.load_cache_hits, "  served by L1/L2", pct(c.load_cache_hits, c.loads)),
        row(c.load_late_prefetch, "  late prefetch (partial stall)",
            pct(c.load_late_prefetch, c.loads)),
        row(c.load_misses, "  demand misses", pct(c.load_misses, c.loads)),
        row(c.stores, "stores (non-temporal)"),
        "",
        row(c.hwpf_issued, "hw prefetches issued",
            f"# {c.hwpf_per_load:.2f} per load"),
        row(c.hwpf_useful, "  useful", pct(c.hwpf_useful, c.hwpf_issued)),
        row(c.hwpf_useless, "  useless (0xf2)",
            pct(c.hwpf_useless, c.hwpf_issued)),
        row(c.swpf_issued, "sw prefetches issued"),
        row(c.swpf_late, "  late", pct(c.swpf_late, c.swpf_issued)),
        "",
        row(c.app_read_bytes, "app bytes read"),
        row(c.ctrl_read_bytes, "controller bytes read",
            f"# x{c.ctrl_read_amplification:.2f}"),
        row(c.media_read_bytes, "PM media bytes read",
            f"# x{c.media_read_amplification:.2f}"),
        row(c.buffer_hits, "read-buffer hits",
            pct(c.buffer_hits, c.buffer_hits + c.buffer_misses)),
        row(c.buffer_evictions_unused, "read-buffer thrash evictions",
            pct(c.buffer_evictions_unused, max(1, c.buffer_evictions))),
        "",
        f"  {ms:.3f} ms simulated  "
        f"({result.throughput_gbps:.2f} GB/s over {len(result.thread_times_ns)} thread(s))",
    ]
    if compare is not None:
        lines += _compare_section(result, compare)
    return "\n".join(lines)
