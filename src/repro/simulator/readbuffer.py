"""The PM on-DIMM read buffer (XPLine-granular, shared across cores).

Optane DIMMs bridge the 64 B DDR-T interface to the 256 B internal
media granularity with a small on-chip buffer: any 64 B read pulls the
whole surrounding XPLine into the buffer (an *implicit load*, paper
§2.1/§4.3). The buffer is shared by all requesting cores, which is why
high thread counts thrash it (Obs. 5): entries are evicted before their
remaining lines are consumed, wasting media bandwidth.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.simulator.counters import Counters


class PMReadBuffer:
    """LRU buffer of XPLine addresses with thrash accounting.

    Parameters
    ----------
    capacity_lines:
        Number of XPLines the buffer holds (default testbed: 384).
    xpline_bytes:
        XPLine size (256 B).
    counters:
        Shared counter sink for hit/miss/eviction events.
    """

    def __init__(self, capacity_lines: int, xpline_bytes: int, counters: Counters):
        if capacity_lines < 1:
            raise ValueError("read buffer needs at least one XPLine slot")
        self.capacity = capacity_lines
        self.xpline_bytes = xpline_bytes
        self.counters = counters
        # xpline id -> number of 64 B accesses served since fill
        self._entries: OrderedDict[int, int] = OrderedDict()

    def xpline_of(self, addr: int) -> int:
        """XPLine id containing byte address ``addr``."""
        return addr // self.xpline_bytes

    def access(self, addr: int) -> bool:
        """Record a 64 B access; return True on buffer hit.

        On a miss the caller is responsible for charging the media fill
        (bandwidth + latency) and then calling :meth:`fill`.
        """
        xp = self.xpline_of(addr)
        if xp in self._entries:
            self._entries[xp] += 1
            self._entries.move_to_end(xp)
            self.counters.buffer_hits += 1
            return True
        self.counters.buffer_misses += 1
        return False

    def fill(self, addr: int) -> None:
        """Insert the XPLine containing ``addr`` (after a media fetch)."""
        xp = self.xpline_of(addr)
        if xp in self._entries:
            self._entries.move_to_end(xp)
            return
        if len(self._entries) >= self.capacity:
            _, used = self._entries.popitem(last=False)
            self.counters.buffer_evictions += 1
            if used <= 1:
                # Only the triggering access used it: the implicit load
                # of the other 3 lines was wasted media bandwidth.
                self.counters.buffer_evictions_unused += 1
        self._entries[xp] = 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return self.xpline_of(addr) in self._entries

    # -- fast-forward hooks ------------------------------------------------

    def state_digest(self, addr_shift: int) -> tuple:
        """Shift-invariant digest of the buffer (LRU order).

        ``addr_shift`` must be a multiple of the XPLine size.
        """
        xp_shift = addr_shift // self.xpline_bytes
        return tuple((xp - xp_shift, used)
                     for xp, used in self._entries.items())

    def relabel(self, addr_shift: int) -> None:
        """Translate every resident XPLine by ``addr_shift`` bytes."""
        xp_shift = addr_shift // self.xpline_bytes
        if not xp_shift:
            return
        self._entries = OrderedDict(
            (xp + xp_shift, used) for xp, used in self._entries.items())
