"""Single-thread trace execution with cycle/ns accounting.

The core model is in-order with bounded memory-level parallelism:
demand misses cost ``latency / mlp`` (the OOO window overlaps a few
outstanding misses — fewer on PM, whose long latency exceeds the
window) plus any bandwidth queueing, which is never discounted.
Hardware prefetches triggered by an access are issued *asynchronously*:
they record an arrival time in the cache; a later demand to that line
pays only the residual wait (or nothing, if it already arrived). This
is exactly the latency-hiding mechanism whose failure modes the paper
studies.

Two execution paths share the same arithmetic:

* :meth:`ThreadContext.step` — the generic batched stepper the
  multicore scheduler interleaves;
* :meth:`ThreadContext.run` — the single-thread fast path, the same
  per-op operations inlined into one loop with hot state in locals.
  Results are bit-identical by construction (same floating-point
  operations in the same order), which the determinism tests assert.
"""

from __future__ import annotations

from repro.simulator.cache import CoreCache, DEMAND, HWPF, SWPF as SWPF_SRC, _Line
from repro.simulator.counters import Counters
from repro.simulator.memory import DRAMBackend, PMBackend
from repro.simulator.params import HardwareConfig
from repro.simulator.streamprefetcher import StreamPrefetcher, _Stream
from repro.trace.ops import LOAD, STORE, SWPF, COMPUTE, FENCE, Trace


class ThreadContext:
    """Execution state of one simulated thread (one core).

    The caches and prefetcher are private (per-core); the memory
    backends may be shared between contexts (see
    :mod:`repro.simulator.multicore`).
    """

    def __init__(self, hw: HardwareConfig, counters: Counters,
                 load_backend, store_backend,
                 trace: Trace | None = None):
        self.hw = hw
        self.counters = counters
        self.load_backend = load_backend
        self.store_backend = store_backend
        self.cache = CoreCache(hw.cache.capacity_lines, counters)
        self.prefetcher = StreamPrefetcher(hw.prefetcher, counters)
        self.clock = 0.0
        self.trace = trace or Trace()
        self.pc = 0
        # hot-path constants
        self._ns_per_cycle = hw.cpu.ns_per_cycle
        self._simd_factor = hw.cpu.simd_factor
        self._hit_ns = hw.cache.hit_latency_ns
        self._load_issue_ns = hw.cpu.load_issue_cycles * self._ns_per_cycle
        self._store_issue_ns = hw.cpu.store_issue_cycles * self._ns_per_cycle
        self._swpf_issue_ns = hw.cpu.swpf_issue_cycles * self._ns_per_cycle
        self._wpq_ns = hw.cpu.wpq_backpressure_ns
        #: Software prefetches also train the hardware prefetcher
        #: (their "training effect", §5.9).
        self.swpf_trains_hwpf = True

    @property
    def done(self) -> bool:
        """True when the whole trace has executed."""
        return self.pc >= len(self.trace.opcodes)

    # -- internals -------------------------------------------------------

    def _issue_hw_prefetches(self, addr: int) -> None:
        for target in self.prefetcher.on_access(addr):
            qd, lat, dlat = self.load_backend.fill_line(
                target, self.clock, demand=False)
            self.cache.insert(target, self.clock + qd + lat, HWPF,
                              promo_ns=dlat / self.load_backend.mlp)

    def _do_load(self, addr: int) -> None:
        c = self.counters
        c.loads += 1
        c.app_read_bytes += 64
        now = self.clock + self._load_issue_ns
        line = addr & ~63
        ent = self.cache.lookup(line)
        if ent is not None:
            ent.used = True
            if ent.arrival_ns <= now:
                c.load_cache_hits += 1
                if ent.source == HWPF:
                    c.hwpf_useful += 1
                now += self._hit_ns
            else:
                # In-flight prefetch: the demand promotes the request to
                # demand priority, so the wait is the smaller of the
                # prefetch's remaining time and what the same fill would
                # have cost at demand priority.
                wait = min(ent.arrival_ns - now, ent.promo_ns)
                c.load_late_prefetch += 1
                c.load_stall_ns += wait
                if ent.source == SWPF_SRC:
                    c.swpf_late += 1
                elif ent.source == HWPF:
                    # Late hardware prefetch: mostly wasted (0xf2-ish).
                    c.hwpf_useless += 1
                now += wait + self._hit_ns
        else:
            qd, lat, _ = self.load_backend.fill_line(line, now, demand=True)
            stall = qd + lat / self.load_backend.mlp
            c.load_misses += 1
            c.load_stall_ns += stall
            now += stall + self._hit_ns
            self.cache.insert(line, now, DEMAND, used=True)
        self.clock = now
        # The demand access trains the streamer *after* being served.
        self._issue_hw_prefetches(line)

    def _do_store(self, addr: int) -> None:
        self.counters.stores += 1
        now = self.clock + self._store_issue_ns
        qd = self.store_backend.write_line(addr & ~63, now)
        # Non-temporal stores are posted; only severe backpressure
        # (write-pipe backlog beyond the configured WPQ allowance)
        # stalls the core.
        backlog = self.store_backend.write_pipe.free_at - now
        if backlog > self._wpq_ns:
            stall = backlog - self._wpq_ns
            self.counters.store_stall_ns += stall
            now += stall
        self.clock = now

    def _do_swpf(self, addr: int) -> None:
        c = self.counters
        c.swpf_issued += 1
        now = self.clock + self._swpf_issue_ns
        line = addr & ~63
        if self.cache.lookup(line) is None:
            qd, lat, dlat = self.load_backend.fill_line(line, now, demand=False)
            self.cache.insert(line, now + qd + lat, SWPF_SRC,
                              promo_ns=dlat / self.load_backend.mlp)
        self.clock = now
        if self.swpf_trains_hwpf:
            self._issue_hw_prefetches(line)

    # -- public stepping --------------------------------------------------

    def step(self, max_ops: int) -> int:
        """Execute up to ``max_ops`` ops; returns how many ran."""
        opcodes = self.trace.opcodes
        args = self.trace.args
        n = min(max_ops, len(opcodes) - self.pc)
        counters = self.counters
        for i in range(self.pc, self.pc + n):
            op = opcodes[i]
            if op == LOAD:
                self._do_load(int(args[i]))
            elif op == COMPUTE:
                ns = args[i] * self._ns_per_cycle * self._simd_factor
                counters.compute_ns += ns
                self.clock += ns
            elif op == STORE:
                self._do_store(int(args[i]))
            elif op == SWPF:
                self._do_swpf(int(args[i]))
            elif op == FENCE:
                self.clock = self.store_backend.drain_writes(self.clock)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown opcode {op}")
        self.pc += n
        return n

    def run(self, until: int | None = None) -> float:
        """Execute the trace (to ``until``, if given); returns the clock.

        Fast path: the per-op arithmetic of :meth:`step` *and* of the
        memory-model callees (backend fills, read buffer, streamer
        training, cache insertion) inlined into one loop with all hot
        state — counters included — in locals, one Python frame for the
        whole trace instead of five per op. Bit-identical to stepping
        by construction: the same floating-point operations in the same
        order, which the determinism tests assert. Falls back to
        :meth:`step` when the backends are not the stock PM/DRAM models
        (the inlining hard-codes their arithmetic).

        ``until`` is an absolute op index bound (clamped to the trace
        length): the fast-forward layer interprets period-by-period by
        chunking through here, which composes bit-identically with one
        full run because all hot state is written back at every return.
        """
        n = len(self.trace.opcodes)
        end = n if until is None else min(until, n)
        if self.pc >= end:
            return self.clock
        load_backend = self.load_backend
        store_backend = self.store_backend
        if (type(load_backend) not in (PMBackend, DRAMBackend)
                or type(store_backend) not in (PMBackend, DRAMBackend)):
            self.step(end - self.pc)
            return self.clock
        opcodes = self.trace.opcodes
        args = self.trace.args
        i = self.pc
        c = self.counters

        # Core-side hot state.
        lines = self.cache._lines
        cache_get = lines.get
        cache_mte = lines.move_to_end
        cache_pop = lines.popitem
        cache_cap = self.cache.capacity
        ns_per_cycle = self._ns_per_cycle
        simd_factor = self._simd_factor
        hit_ns = self._hit_ns
        load_issue_ns = self._load_issue_ns
        store_issue_ns = self._store_issue_ns
        swpf_issue_ns = self._swpf_issue_ns
        wpq_ns = self._wpq_ns
        swpf_trains = self.swpf_trains_hwpf

        # Streamer (per-core) hot state.
        pf = self.prefetcher
        pf_enabled = pf.enabled
        pf_cfg = pf.config
        pf_page_bytes = pf_cfg.page_bytes
        pf_max_streams = pf_cfg.max_streams
        pf_train = pf_cfg.train_threshold
        pf_max_dist = pf_cfg.max_distance
        pf_ramp = pf_cfg.ramp_div
        pf_last_line = pf_page_bytes // 64 - 1
        table = pf._table
        table_get = table.get
        table_mte = table.move_to_end
        table_pop = table.popitem

        # Load-side backend hot state. The PM and DRAM fill paths are
        # both inlined below, selected by ``pm_load``; the arithmetic
        # mirrors ``PMBackend.fill_line`` / ``DRAMBackend.fill_line``
        # exactly (precomputed products are constant-folded copies of
        # the same expressions, so the floats are identical).
        mlp = load_backend.mlp
        pm_load = type(load_backend) is PMBackend
        if pm_load:
            lb_cfg = load_backend.config
            ctrl_pipe = load_backend.ctrl_pipe
            media_pipe = load_backend.media_pipe
            ctrl_step = 64 * ctrl_pipe.ns_per_byte
            media_step = lb_cfg.xpline_bytes * media_pipe.ns_per_byte
            xpline_bytes = lb_cfg.xpline_bytes
            buffer_hit_ns = lb_cfg.buffer_hit_latency_ns
            media_ns = lb_cfg.media_latency_ns
            media_pf_ns = media_ns * lb_cfg.prefetch_latency_factor
            rb = load_backend.read_buffer
            rb_entries = rb._entries
            rb_mte = rb_entries.move_to_end
            rb_pop = rb_entries.popitem
            rb_cap = rb.capacity
        else:
            read_pipe = load_backend.read_pipe
            read_step = 64 * read_pipe.ns_per_byte
            dram_ns = load_backend.config.latency_ns

        # Store-side backend hot state (write path is identical for PM
        # and DRAM: a bandwidth pipe plus byte accounting).
        write_pipe = store_backend.write_pipe
        write_step = 64 * write_pipe.ns_per_byte

        # Counter fields hoisted into locals — slot access still pays
        # an attribute lookup per bump that a local avoids. All are
        # written back in the ``finally`` below, so chunked calls (the
        # fast-forward layer runs period-by-period via ``until``) see
        # consistent state at every boundary. Same adds in the same
        # order: bit-identical to bumping the attributes directly.
        c_loads = c.loads
        c_load_cache_hits = c.load_cache_hits
        c_load_late_prefetch = c.load_late_prefetch
        c_load_misses = c.load_misses
        c_stores = c.stores
        c_load_stall_ns = c.load_stall_ns
        c_store_stall_ns = c.store_stall_ns
        c_compute_ns = c.compute_ns
        c_hwpf_issued = c.hwpf_issued
        c_hwpf_useful = c.hwpf_useful
        c_hwpf_useless = c.hwpf_useless
        c_streams_allocated = c.streams_allocated
        c_streams_evicted_untrained = c.streams_evicted_untrained
        c_swpf_issued = c.swpf_issued
        c_swpf_late = c.swpf_late
        c_swpf_useless = c.swpf_useless
        c_app_read_bytes = c.app_read_bytes
        c_ctrl_read_bytes = c.ctrl_read_bytes
        c_media_read_bytes = c.media_read_bytes
        c_write_bytes = c.write_bytes
        c_buffer_hits = c.buffer_hits
        c_buffer_misses = c.buffer_misses
        c_buffer_evictions = c.buffer_evictions
        c_buffer_evictions_unused = c.buffer_evictions_unused

        clock = self.clock
        try:
            while i < end:
                op = opcodes[i]
                arg = args[i]
                i += 1
                if op == LOAD:
                    c_loads += 1
                    c_app_read_bytes += 64
                    now = clock + load_issue_ns
                    line = int(arg) & ~63
                    ent = cache_get(line)
                    if ent is not None:
                        cache_mte(line)
                        ent.used = True
                        if ent.arrival_ns <= now:
                            c_load_cache_hits += 1
                            if ent.source == HWPF:
                                c_hwpf_useful += 1
                            now += hit_ns
                        else:
                            wait = min(ent.arrival_ns - now, ent.promo_ns)
                            c_load_late_prefetch += 1
                            c_load_stall_ns += wait
                            if ent.source == SWPF_SRC:
                                c_swpf_late += 1
                            elif ent.source == HWPF:
                                c_hwpf_useless += 1
                            now += wait + hit_ns
                    else:
                        # Demand fill (inlined backend).
                        c_ctrl_read_bytes += 64
                        if pm_load:
                            start = ctrl_pipe.free_at
                            if start < now:
                                start = now
                            ctrl_pipe.free_at = start + ctrl_step
                            qd = start - now
                            xp = line // xpline_bytes
                            if xp in rb_entries:
                                rb_entries[xp] += 1
                                rb_mte(xp)
                                c_buffer_hits += 1
                                stall = qd + buffer_hit_ns / mlp
                            else:
                                c_buffer_misses += 1
                                t = now + qd
                                mstart = media_pipe.free_at
                                if mstart < t:
                                    mstart = t
                                media_pipe.free_at = mstart + media_step
                                c_media_read_bytes += xpline_bytes
                                if len(rb_entries) >= rb_cap:
                                    _, used = rb_pop(last=False)
                                    c_buffer_evictions += 1
                                    if used <= 1:
                                        c_buffer_evictions_unused += 1
                                rb_entries[xp] = 1
                                stall = qd + (mstart - t) + media_ns / mlp
                        else:
                            start = read_pipe.free_at
                            if start < now:
                                start = now
                            read_pipe.free_at = start + read_step
                            stall = (start - now) + dram_ns / mlp
                        c_load_misses += 1
                        c_load_stall_ns += stall
                        now += stall + hit_ns
                        # Insert (line was absent — cache_get returned
                        # None).
                        if len(lines) >= cache_cap:
                            _, ev = cache_pop(last=False)
                            if not ev.used:
                                if ev.source == HWPF:
                                    c_hwpf_useless += 1
                                elif ev.source == SWPF_SRC:
                                    c_swpf_useless += 1
                        lines[line] = _Line(now, DEMAND, True, 0.0)
                    clock = now
                    if not pf_enabled:
                        continue
                elif op == COMPUTE:
                    ns = arg * ns_per_cycle * simd_factor
                    c_compute_ns += ns
                    clock += ns
                    continue
                elif op == STORE:
                    c_stores += 1
                    now = clock + store_issue_ns
                    c_write_bytes += 64
                    start = write_pipe.free_at
                    if start < now:
                        start = now
                    free_at = start + write_step
                    write_pipe.free_at = free_at
                    backlog = free_at - now
                    if backlog > wpq_ns:
                        stall = backlog - wpq_ns
                        c_store_stall_ns += stall
                        now += stall
                    clock = now
                    continue
                elif op == SWPF:
                    c_swpf_issued += 1
                    now = clock + swpf_issue_ns
                    line = int(arg) & ~63
                    ent = cache_get(line)
                    if ent is None:
                        # Prefetch-priority fill (inlined backend).
                        c_ctrl_read_bytes += 64
                        if pm_load:
                            start = ctrl_pipe.free_at
                            if start < now:
                                start = now
                            ctrl_pipe.free_at = start + ctrl_step
                            qd = start - now
                            xp = line // xpline_bytes
                            if xp in rb_entries:
                                rb_entries[xp] += 1
                                rb_mte(xp)
                                c_buffer_hits += 1
                                arrival = now + qd + buffer_hit_ns
                                promo = buffer_hit_ns / mlp
                            else:
                                c_buffer_misses += 1
                                t = now + qd
                                mstart = media_pipe.free_at
                                if mstart < t:
                                    mstart = t
                                media_pipe.free_at = mstart + media_step
                                c_media_read_bytes += xpline_bytes
                                if len(rb_entries) >= rb_cap:
                                    _, used = rb_pop(last=False)
                                    c_buffer_evictions += 1
                                    if used <= 1:
                                        c_buffer_evictions_unused += 1
                                rb_entries[xp] = 1
                                arrival = now + (qd + (mstart - t)) + media_pf_ns
                                promo = media_ns / mlp
                        else:
                            start = read_pipe.free_at
                            if start < now:
                                start = now
                            read_pipe.free_at = start + read_step
                            arrival = now + (start - now) + dram_ns
                            promo = dram_ns / mlp
                        if len(lines) >= cache_cap:
                            _, ev = cache_pop(last=False)
                            if not ev.used:
                                if ev.source == HWPF:
                                    c_hwpf_useless += 1
                                elif ev.source == SWPF_SRC:
                                    c_swpf_useless += 1
                        lines[line] = _Line(arrival, SWPF_SRC, False, promo)
                    else:
                        cache_mte(line)
                    clock = now
                    if not (swpf_trains and pf_enabled):
                        continue
                elif op == FENCE:
                    free_at = write_pipe.free_at
                    if free_at > clock:
                        clock = free_at
                    continue
                else:  # pragma: no cover - defensive
                    i -= 1
                    raise ValueError(f"unknown opcode {op}")

                # Streamer training + hardware-prefetch issue (inlined
                # ``StreamPrefetcher.on_access``); reached after LOAD,
                # and after SWPF when software prefetches train the
                # streamer.
                page = line // pf_page_bytes
                pline = (line % pf_page_bytes) // 64
                stream = table_get(page)
                if stream is None:
                    if len(table) >= pf_max_streams:
                        _, evicted = table_pop(last=False)
                        if evicted.confidence < pf_train:
                            c_streams_evicted_untrained += 1
                    table[page] = _Stream(pline, 0, pline)
                    c_streams_allocated += 1
                    continue
                table_mte(page)
                last = stream.last_line
                if pline == last + 1 or pline == last + 2:
                    stream.confidence += 1
                    stream.last_line = pline
                elif pline <= last:
                    pass
                else:
                    conf = stream.confidence - 2
                    stream.confidence = conf if conf > 0 else 0
                    stream.last_line = pline
                    continue
                conf = stream.confidence
                if conf < pf_train:
                    continue
                distance = (conf - pf_train) // pf_ramp + 1
                if distance > pf_max_dist:
                    distance = pf_max_dist
                target = pline + distance
                if target > pf_last_line:
                    target = pf_last_line
                first = stream.max_prefetched + 1
                if first <= pline:
                    first = pline + 1
                if first > target:
                    continue
                stream.max_prefetched = target
                c_hwpf_issued += target - first + 1
                base = page * pf_page_bytes
                for l in range(first, target + 1):
                    tgt = base + l * 64
                    # Prefetch-priority fill (inlined backend) + insert.
                    c_ctrl_read_bytes += 64
                    if pm_load:
                        start = ctrl_pipe.free_at
                        if start < clock:
                            start = clock
                        ctrl_pipe.free_at = start + ctrl_step
                        qd = start - clock
                        xp = tgt // xpline_bytes
                        if xp in rb_entries:
                            rb_entries[xp] += 1
                            rb_mte(xp)
                            c_buffer_hits += 1
                            arrival = clock + qd + buffer_hit_ns
                            promo = buffer_hit_ns / mlp
                        else:
                            c_buffer_misses += 1
                            t = clock + qd
                            mstart = media_pipe.free_at
                            if mstart < t:
                                mstart = t
                            media_pipe.free_at = mstart + media_step
                            c_media_read_bytes += xpline_bytes
                            if len(rb_entries) >= rb_cap:
                                _, used = rb_pop(last=False)
                                c_buffer_evictions += 1
                                if used <= 1:
                                    c_buffer_evictions_unused += 1
                            rb_entries[xp] = 1
                            arrival = clock + (qd + (mstart - t)) + media_pf_ns
                            promo = media_ns / mlp
                    else:
                        start = read_pipe.free_at
                        if start < clock:
                            start = clock
                        read_pipe.free_at = start + read_step
                        arrival = clock + (start - clock) + dram_ns
                        promo = dram_ns / mlp
                    ent = cache_get(tgt)
                    if ent is not None:
                        if arrival < ent.arrival_ns:
                            ent.arrival_ns = arrival
                        ent.promo_ns = (min(ent.promo_ns, promo)
                                        if ent.promo_ns else promo)
                        cache_mte(tgt)
                    else:
                        if len(lines) >= cache_cap:
                            _, ev = cache_pop(last=False)
                            if not ev.used:
                                if ev.source == HWPF:
                                    c_hwpf_useless += 1
                                elif ev.source == SWPF_SRC:
                                    c_swpf_useless += 1
                        lines[tgt] = _Line(arrival, HWPF, False, promo)
        finally:
            self.pc = i
            self.clock = clock
            c.loads = c_loads
            c.load_cache_hits = c_load_cache_hits
            c.load_late_prefetch = c_load_late_prefetch
            c.load_misses = c_load_misses
            c.stores = c_stores
            c.load_stall_ns = c_load_stall_ns
            c.store_stall_ns = c_store_stall_ns
            c.compute_ns = c_compute_ns
            c.hwpf_issued = c_hwpf_issued
            c.hwpf_useful = c_hwpf_useful
            c.hwpf_useless = c_hwpf_useless
            c.streams_allocated = c_streams_allocated
            c.streams_evicted_untrained = c_streams_evicted_untrained
            c.swpf_issued = c_swpf_issued
            c.swpf_late = c_swpf_late
            c.swpf_useless = c_swpf_useless
            c.app_read_bytes = c_app_read_bytes
            c.ctrl_read_bytes = c_ctrl_read_bytes
            c.media_read_bytes = c_media_read_bytes
            c.write_bytes = c_write_bytes
            c.buffer_hits = c_buffer_hits
            c.buffer_misses = c_buffer_misses
            c.buffer_evictions = c_buffer_evictions
            c.buffer_evictions_unused = c_buffer_evictions_unused
        return clock


def run_single(trace: Trace, hw: HardwareConfig) -> tuple[float, Counters]:
    """Deprecated: execute one trace on a fresh private testbed.

    Pre-1.2 spelling of single-thread simulation; returns
    ``(finish_time_ns, counters)``. Use :func:`repro.simulate` —
    ``simulate(trace, hw)`` returns a :class:`~repro.simulator.
    multicore.SimResult` carrying the same finish time and counters.
    """
    from repro._deprecation import warn_deprecated
    warn_deprecated(
        "run_single(trace, hw) is deprecated; use repro.simulate(trace, "
        "hardware) and read .makespan_ns / .counters off the result")
    res = _run_single(trace, hw)
    return res.makespan_ns, res.counters


def _run_single(trace: Trace, hw: HardwareConfig):
    """Single-trace simulation on private backends (facade internal)."""
    from repro.simulator.multicore import simulate as _simulate
    return _simulate([trace], hw)
