"""Single-thread trace execution with cycle/ns accounting.

The core model is in-order with bounded memory-level parallelism:
demand misses cost ``latency / mlp`` (the OOO window overlaps a few
outstanding misses — fewer on PM, whose long latency exceeds the
window) plus any bandwidth queueing, which is never discounted.
Hardware prefetches triggered by an access are issued *asynchronously*:
they record an arrival time in the cache; a later demand to that line
pays only the residual wait (or nothing, if it already arrived). This
is exactly the latency-hiding mechanism whose failure modes the paper
studies.
"""

from __future__ import annotations

from repro.simulator.cache import CoreCache, DEMAND, HWPF, SWPF as SWPF_SRC
from repro.simulator.counters import Counters
from repro.simulator.params import HardwareConfig
from repro.simulator.streamprefetcher import StreamPrefetcher
from repro.trace.ops import LOAD, STORE, SWPF, COMPUTE, FENCE, Trace


class ThreadContext:
    """Execution state of one simulated thread (one core).

    The caches and prefetcher are private (per-core); the memory
    backends may be shared between contexts (see
    :mod:`repro.simulator.multicore`).
    """

    def __init__(self, hw: HardwareConfig, counters: Counters,
                 load_backend, store_backend,
                 trace: Trace | None = None):
        self.hw = hw
        self.counters = counters
        self.load_backend = load_backend
        self.store_backend = store_backend
        self.cache = CoreCache(hw.cache.capacity_lines, counters)
        self.prefetcher = StreamPrefetcher(hw.prefetcher, counters)
        self.clock = 0.0
        self.trace = trace or Trace()
        self.pc = 0
        # hot-path constants
        self._ns_per_cycle = hw.cpu.ns_per_cycle
        self._hit_ns = hw.cache.hit_latency_ns
        self._load_issue_ns = hw.cpu.load_issue_cycles * self._ns_per_cycle
        self._store_issue_ns = hw.cpu.store_issue_cycles * self._ns_per_cycle
        self._swpf_issue_ns = hw.cpu.swpf_issue_cycles * self._ns_per_cycle
        #: Software prefetches also train the hardware prefetcher
        #: (their "training effect", §5.9).
        self.swpf_trains_hwpf = True

    @property
    def done(self) -> bool:
        """True when the whole trace has executed."""
        return self.pc >= len(self.trace.ops)

    # -- internals -------------------------------------------------------

    def _issue_hw_prefetches(self, addr: int) -> None:
        for target in self.prefetcher.on_access(addr):
            qd, lat, dlat = self.load_backend.fill_line(
                target, self.clock, demand=False)
            self.cache.insert(target, self.clock + qd + lat, HWPF,
                              promo_ns=dlat / self.load_backend.mlp)

    def _do_load(self, addr: int) -> None:
        c = self.counters
        c.loads += 1
        c.app_read_bytes += 64
        now = self.clock + self._load_issue_ns
        line = addr & ~63
        ent = self.cache.lookup(line)
        if ent is not None:
            ent.used = True
            if ent.arrival_ns <= now:
                c.load_cache_hits += 1
                if ent.source == HWPF:
                    c.hwpf_useful += 1
                now += self._hit_ns
            else:
                # In-flight prefetch: the demand promotes the request to
                # demand priority, so the wait is the smaller of the
                # prefetch's remaining time and what the same fill would
                # have cost at demand priority.
                wait = min(ent.arrival_ns - now, ent.promo_ns)
                c.load_late_prefetch += 1
                c.load_stall_ns += wait
                if ent.source == SWPF_SRC:
                    c.swpf_late += 1
                elif ent.source == HWPF:
                    # Late hardware prefetch: mostly wasted (0xf2-ish).
                    c.hwpf_useless += 1
                now += wait + self._hit_ns
        else:
            qd, lat, _ = self.load_backend.fill_line(line, now, demand=True)
            stall = qd + lat / self.load_backend.mlp
            c.load_misses += 1
            c.load_stall_ns += stall
            now += stall + self._hit_ns
            self.cache.insert(line, now, DEMAND, used=True)
        self.clock = now
        # The demand access trains the streamer *after* being served.
        self._issue_hw_prefetches(line)

    def _do_store(self, addr: int) -> None:
        self.counters.stores += 1
        now = self.clock + self._store_issue_ns
        qd = self.store_backend.write_line(addr & ~63, now)
        # Non-temporal stores are posted; only severe backpressure stalls.
        backlog = self.store_backend.write_pipe.free_at - now
        if backlog > 2000.0:  # ~WPQ depth worth of ns
            stall = backlog - 2000.0
            self.counters.store_stall_ns += stall
            now += stall
        self.clock = now

    def _do_swpf(self, addr: int) -> None:
        c = self.counters
        c.swpf_issued += 1
        now = self.clock + self._swpf_issue_ns
        line = addr & ~63
        if self.cache.lookup(line) is None:
            qd, lat, dlat = self.load_backend.fill_line(line, now, demand=False)
            self.cache.insert(line, now + qd + lat, SWPF_SRC,
                              promo_ns=dlat / self.load_backend.mlp)
        self.clock = now
        if self.swpf_trains_hwpf:
            self._issue_hw_prefetches(line)

    # -- public stepping --------------------------------------------------

    def step(self, max_ops: int) -> int:
        """Execute up to ``max_ops`` ops; returns how many ran."""
        ops = self.trace.ops
        n = min(max_ops, len(ops) - self.pc)
        counters = self.counters
        for i in range(self.pc, self.pc + n):
            op, arg = ops[i]
            if op == LOAD:
                self._do_load(int(arg))
            elif op == COMPUTE:
                ns = arg * self._ns_per_cycle * self.hw.cpu.simd_factor
                counters.compute_ns += ns
                self.clock += ns
            elif op == STORE:
                self._do_store(int(arg))
            elif op == SWPF:
                self._do_swpf(int(arg))
            elif op == FENCE:
                self.clock = self.store_backend.drain_writes(self.clock)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown opcode {op}")
        self.pc += n
        return n

    def run(self) -> float:
        """Execute the entire trace; returns the finish time (ns)."""
        while not self.done:
            self.step(1 << 30)
        return self.clock


def run_single(trace: Trace, hw: HardwareConfig) -> tuple[float, Counters]:
    """Convenience: execute one trace on a fresh private testbed.

    Returns ``(finish_time_ns, counters)``. The load/store backends are
    chosen per ``hw.load_source`` / ``hw.store_target``.
    """
    from repro.obs import get_tracer
    from repro.simulator.memory import DRAMBackend, PMBackend

    counters = Counters()
    backends = {}

    def backend_for(kind: str):
        if kind not in backends:
            backends[kind] = (
                PMBackend(hw.pm, counters) if kind == "pm"
                else DRAMBackend(hw.dram, counters)
            )
        return backends[kind]

    ctx = ThreadContext(hw, counters,
                        load_backend=backend_for(hw.load_source),
                        store_backend=backend_for(hw.store_target),
                        trace=trace)
    tracer = get_tracer()
    if not tracer.enabled:
        finish = ctx.run()
        ctx.cache.drain()
        return finish, counters
    with tracer.sequenced(0.0):
        span = tracer.begin("sim.run", 0.0, threads=1, ops=len(trace.ops))
        finish = ctx.run()
        ctx.cache.drain()
        tracer.end(span, finish, data_bytes=trace.data_bytes,
                   **counters.nonzero_dict("d_"))
    return finish, counters
