"""Multi-thread simulation: interleaved execution over shared PM.

Threads run on private cores (own cache + streamer) but share the
memory backends — bandwidth pipes and, crucially, the PM read buffer.
The scheduler always advances the thread with the smallest local clock
(a conservative event ordering), stepping a small op batch at a time so
cross-thread interactions through the shared state happen in near-
causal order. This is where Obs. 5's read-buffer thrashing and the
scalability plateaus of Fig. 7/13 come from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.obs import get_tracer
from repro.simulator.counters import Counters
from repro.simulator.engine import ThreadContext
from repro.simulator.memory import DRAMBackend, PMBackend
from repro.simulator.params import HardwareConfig
from repro.trace.ops import Trace


@dataclass
class SimResult:
    """Outcome of a (possibly multi-thread) simulation.

    Attributes
    ----------
    makespan_ns:
        Finish time of the slowest thread.
    thread_times_ns:
        Per-thread finish times.
    counters:
        Aggregate counters across all threads (shared-memory events —
        buffer, media traffic — are inherently global).
    data_bytes:
        Total application data processed (all threads).
    """

    makespan_ns: float
    thread_times_ns: list[float]
    counters: Counters
    data_bytes: int = 0
    #: Steady-state fast-forward stats (``engaged``, ``periods_skipped``,
    #: ...) when the run went through :mod:`repro.simulator.fastforward`;
    #: None otherwise. Excluded from equality: fast-forwarded results
    #: are byte-identical to interpreted ones and must compare equal.
    fastforward: dict | None = field(default=None, compare=False,
                                     repr=False)

    @property
    def throughput_gbps(self) -> float:
        """Aggregate data throughput in GB/s (bytes/ns)."""
        return self.data_bytes / self.makespan_ns if self.makespan_ns else 0.0

    @property
    def throughput_mbps(self) -> float:
        """Aggregate data throughput in MB/s."""
        return self.throughput_gbps * 1000.0


def make_backends(hw: HardwareConfig, counters: Counters):
    """Build the (shared) load/store backends for a run."""
    backends = {}

    def backend_for(kind: str):
        if kind not in backends:
            backends[kind] = (
                PMBackend(hw.pm, counters) if kind == "pm"
                else DRAMBackend(hw.dram, counters)
            )
        return backends[kind]

    return backend_for(hw.load_source), backend_for(hw.store_target)


def simulate(traces: list[Trace], hw: HardwareConfig,
             batch_ops: int = 1,
             contexts: list[ThreadContext] | None = None,
             drain: bool = True,
             fastforward: bool = False) -> SimResult:
    """Run one trace per thread against a shared memory system.

    Parameters
    ----------
    traces:
        One op trace per thread.
    hw:
        Testbed description.
    batch_ops:
        Ops executed per scheduling turn. The default of 1 keeps global
        time monotonic across threads, which the busy-until bandwidth
        pipes require (a thread running ahead would otherwise charge
        phantom queue delays to threads behind it). Raise only for
        single-thread runs.
    contexts:
        Pre-built thread contexts (advanced use: the DIALGA coordinator
        re-enters the simulator with live contexts between chunks).
    drain:
        Flush core caches at the end, accounting still-resident unused
        prefetches as useless. Pass False for intermediate chunks of a
        longer run (the caches stay warm across re-entries).
    fastforward:
        Skip steady-state stripe periods by exact extrapolation (see
        :mod:`repro.simulator.fastforward`). Only takes effect when a
        single thread is live — multicore contention couples threads
        through the shared backends. Results are byte-identical either
        way; the stats land on ``SimResult.fastforward``.
    """
    if not traces and not contexts:
        raise ValueError("need at least one trace")
    counters = Counters()
    if contexts is None:
        load_b, store_b = make_backends(hw, counters)
        contexts = [
            ThreadContext(hw, counters, load_b, store_b, trace=t)
            for t in traces
        ]
    else:
        counters = contexts[0].counters
    tracer = get_tracer()
    if not tracer.enabled:
        return _run(contexts, counters, batch_ops, drain, fastforward)
    t0 = min(ctx.clock for ctx in contexts)
    before = counters.snapshot()
    with tracer.sequenced(t0):
        span = tracer.begin("sim.run", t0, threads=len(contexts),
                            drain=drain)
        result = _run(contexts, counters, batch_ops, drain, fastforward)
        tracer.end(span, result.makespan_ns,
                   data_bytes=result.data_bytes,
                   **counters.delta(before).nonzero_dict("d_"))
    return result


def _run(contexts: list[ThreadContext], counters: Counters,
         batch_ops: int, drain: bool,
         fastforward: bool = False) -> SimResult:
    """The scheduling loop proper (tracing handled by the caller)."""
    ff_stats = None
    heap: list[tuple[float, int]] = [
        (ctx.clock, i) for i, ctx in enumerate(contexts) if not ctx.done
    ]
    if len(heap) == 1:
        # One live thread: no cross-thread interleaving to arbitrate,
        # so take the engine's inlined fast path (bit-identical to
        # stepping — same operations, same order), optionally skipping
        # steady-state stripe periods by exact extrapolation.
        if fastforward:
            from repro.simulator.fastforward import run_fastforward
            ff_stats = run_fastforward(contexts[heap[0][1]])
        else:
            contexts[heap[0][1]].run()
        heap = []
    heapq.heapify(heap)
    while heap:
        _, idx = heapq.heappop(heap)
        ctx = contexts[idx]
        ctx.step(batch_ops)
        if not ctx.done:
            heapq.heappush(heap, (ctx.clock, idx))
    if drain:
        for ctx in contexts:
            ctx.cache.drain()
    times = [ctx.clock for ctx in contexts]
    data = sum(ctx.trace.data_bytes for ctx in contexts)
    return SimResult(
        makespan_ns=max(times),
        thread_times_ns=times,
        counters=counters,
        data_bytes=data,
        fastforward=ff_stats,
    )
