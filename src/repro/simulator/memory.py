"""Memory backends: DRAM and Optane-style PM.

Backends answer 64 B fill requests (demand or prefetch) with a
``(queue_delay_ns, service_latency_ns)`` pair and do the traffic
accounting. Bandwidth is modelled as busy-until pipes: each transfer
occupies its pipe for ``bytes / bandwidth`` and later requests queue
behind it — under high thread counts this is what saturates and bends
the scalability curves (Fig. 7 / 13).

The PM backend additionally runs the shared XPLine read buffer: a fill
whose XPLine is resident costs only the buffer-hit latency and no media
traffic; a miss charges a 256 B media transfer (the *implicit load*)
and inserts the XPLine, possibly thrash-evicting another.
"""

from __future__ import annotations

from repro.simulator.counters import Counters
from repro.simulator.params import DRAMConfig, PMConfig
from repro.simulator.readbuffer import PMReadBuffer

LINE_BYTES = 64


class _Pipe:
    """A busy-until bandwidth pipe."""

    __slots__ = ("ns_per_byte", "free_at")

    def __init__(self, bw_gbps: float):
        self.ns_per_byte = 1.0 / bw_gbps  # GB/s == bytes/ns
        self.free_at = 0.0

    def acquire(self, now: float, nbytes: int) -> float:
        """Occupy the pipe for ``nbytes``; return the queue delay."""
        start = self.free_at if self.free_at > now else now
        self.free_at = start + nbytes * self.ns_per_byte
        return start - now

    # -- fast-forward hooks ------------------------------------------------

    def rel_free(self, now: float) -> float | None:
        """Backlog relative to ``now``, or None when already drained.

        A ``free_at`` in the past is behaviorally dead — every acquire
        clamps it up to ``now`` — so it digests as a sentinel instead
        of a clock-relative offset that would never converge.
        """
        return self.free_at - now if self.free_at > now else None

    def shift(self, time_shift: float, now: float) -> None:
        """Translate a live backlog by one fast-forward jump."""
        if self.free_at > now:
            self.free_at += time_shift


class DRAMBackend:
    """Flat-latency DRAM with read/write bandwidth pipes."""

    def __init__(self, config: DRAMConfig, counters: Counters):
        self.config = config
        self.counters = counters
        self.read_pipe = _Pipe(config.read_bw_gbps)
        self.write_pipe = _Pipe(config.write_bw_gbps)
        self.mlp = config.mlp

    def fill_line(self, addr: int, now: float, demand: bool) -> tuple[float, float, float]:
        """Serve a 64 B read.

        Returns ``(queue_delay, latency, demand_latency)`` where
        ``demand_latency`` is what the same fill would cost at demand
        priority — the bound a promoted late prefetch converges to.
        """
        self.counters.ctrl_read_bytes += LINE_BYTES
        qd = self.read_pipe.acquire(now, LINE_BYTES)
        return qd, self.config.latency_ns, self.config.latency_ns

    def write_line(self, addr: int, now: float) -> float:
        """Accept a 64 B non-temporal store; returns its queue delay."""
        self.counters.write_bytes += LINE_BYTES
        return self.write_pipe.acquire(now, LINE_BYTES)

    def drain_writes(self, now: float) -> float:
        """Time at which all posted writes are durable (for FENCE)."""
        return max(now, self.write_pipe.free_at)

    def pipes(self) -> tuple[_Pipe, ...]:
        """All bandwidth pipes (for fast-forward digest/relabel)."""
        return (self.read_pipe, self.write_pipe)


class PMBackend:
    """Optane-style PM: XPLine media behind a shared read buffer."""

    def __init__(self, config: PMConfig, counters: Counters):
        self.config = config
        self.counters = counters
        self.ctrl_pipe = _Pipe(config.ctrl_bw_gbps)
        self.media_pipe = _Pipe(config.media_read_bw_gbps)
        self.write_pipe = _Pipe(config.write_bw_gbps)
        self.read_buffer = PMReadBuffer(
            config.buffer_capacity_lines, config.xpline_bytes, counters)
        self.mlp = config.mlp

    def fill_line(self, addr: int, now: float, demand: bool) -> tuple[float, float, float]:
        """Serve a 64 B read; returns (queue_delay, latency, demand_latency).

        Buffer hit: DDR-T transfer only. Miss: a 256 B media fill is
        charged (read amplification) and the XPLine becomes resident.
        Prefetch fills complete at deprioritized latency; their
        ``demand_latency`` records what a promoted demand would pay.
        """
        c = self.config
        self.counters.ctrl_read_bytes += LINE_BYTES
        qd = self.ctrl_pipe.acquire(now, LINE_BYTES)
        if self.read_buffer.access(addr):
            return qd, c.buffer_hit_latency_ns, c.buffer_hit_latency_ns
        media_qd = self.media_pipe.acquire(now + qd, c.xpline_bytes)
        self.counters.media_read_bytes += c.xpline_bytes
        self.read_buffer.fill(addr)
        latency = c.media_latency_ns
        if not demand:
            latency *= c.prefetch_latency_factor
        return qd + media_qd, latency, c.media_latency_ns

    def write_line(self, addr: int, now: float) -> float:
        """Accept a 64 B non-temporal store; returns its queue delay."""
        self.counters.write_bytes += LINE_BYTES
        return self.write_pipe.acquire(now, LINE_BYTES)

    def drain_writes(self, now: float) -> float:
        """Time at which the write queue is drained (for FENCE)."""
        return max(now, self.write_pipe.free_at)

    def pipes(self) -> tuple[_Pipe, ...]:
        """All bandwidth pipes (for fast-forward digest/relabel)."""
        return (self.ctrl_pipe, self.media_pipe, self.write_pipe)
