"""Named hardware presets for the simulated testbed.

``cascade_lake_optane`` is the paper's evaluation platform (§5.1) and
the package default. The others support the paper's §6 generality
argument — DIALGA targets *characteristics* (high latency, internal
granularity mismatch, on-device buffering), not one device — and the
Obs. 3 note that 3rd-gen Xeon streamers track 64 streams.

Latency/bandwidth values for non-Optane devices follow published
characterizations of Samsung CMM-H (DRAM-cached flash over CXL) and
are necessarily coarser; they exist to exercise the same code paths,
not to model any product precisely.
"""

from __future__ import annotations

from repro.simulator.params import (
    CPUConfig,
    HardwareConfig,
    PMConfig,
    PrefetcherConfig,
)


def cascade_lake_optane() -> HardwareConfig:
    """The paper's testbed: Xeon Gold 6240 + Optane DCPMM 100 (default)."""
    return HardwareConfig()


def icelake_optane() -> HardwareConfig:
    """3rd-gen Xeon: the streamer tracks 64 unidirectional streams.

    The paper observes this capacity still cannot cover wide stripes
    (k can reach 154 in production); the Fig. 5 cliff just moves.
    """
    return HardwareConfig(
        cpu=CPUConfig(freq_ghz=3.0),
        prefetcher=PrefetcherConfig(max_streams=64),
    )


def cxl_cmmh() -> HardwareConfig:
    """A CMM-H-style memory-semantic SSD over CXL (§6 generality).

    DRAM buffer in front of flash: bigger internal granularity (flash
    page slice modeled at 512 B), much larger on-device buffer, higher
    miss latency, lower media bandwidth. The same mechanisms (implicit
    loads, buffer thrash, prefetch-lead mismatch) apply.
    """
    return HardwareConfig(
        pm=PMConfig(
            media_latency_ns=600.0,
            buffer_hit_latency_ns=250.0,
            xpline_bytes=512,
            read_buffer_kb=512,
            media_read_bw_gbps=8.0,
            ctrl_bw_gbps=32.0,
            write_bw_gbps=4.0,
            mlp=4.0,
            prefetch_latency_factor=2.0,
        ),
    )


def dram_only() -> HardwareConfig:
    """Loads and stores both served by DRAM (the Fig. 3 comparison arm)."""
    return HardwareConfig(load_source="dram", store_target="dram")


PRESETS = {
    "cascade_lake_optane": cascade_lake_optane,
    "icelake_optane": icelake_optane,
    "cxl_cmmh": cxl_cmmh,
    "dram_only": dram_only,
}


def get_preset(name: str) -> HardwareConfig:
    """Look up a preset by name (raises KeyError with suggestions)."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        ) from None
