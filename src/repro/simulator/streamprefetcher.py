"""L2 stream ("streamer") hardware prefetcher model.

Per-core, keyed by 4 KB page, with an LRU stream table. Behaviour is
distilled from the reverse-engineering literature the paper cites
(Rohan et al. EuroS&P'20 W, Didier et al. SBAC-PAD'22) plus the paper's
own Obs. 3:

* A stream trains after ``train_threshold`` ascending accesses in a page.
* Confidence grows with each further sequential access; the
  prefetch-ahead distance ramps with confidence up to ``max_distance``.
* Prefetches never cross the 4 KB page boundary.
* The table holds ``max_streams`` entries (32 on the paper's Cascade
  Lake). When more streams are live than entries, LRU replacement
  evicts streams before they ever train — coverage collapses to zero.
  This is the k > 32 cliff of Fig. 5.
* Non-sequential access within a page (DIALGA's shuffle mapping)
  never raises confidence, so no prefetches are issued — the paper's
  §4.2 fine-grained "switch".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.simulator.counters import Counters
from repro.simulator.params import PrefetcherConfig


@dataclass(slots=True)
class _Stream:
    last_line: int       # last accessed line index within the page
    confidence: int      # sequential-hit count
    max_prefetched: int  # highest line index already prefetched


class StreamPrefetcher:
    """One core's L2 streamer. ``on_access`` returns lines to prefetch."""

    def __init__(self, config: PrefetcherConfig, counters: Counters):
        self.config = config
        self.counters = counters
        self._table: OrderedDict[int, _Stream] = OrderedDict()
        self.enabled = config.enabled

    def reset(self) -> None:
        """Drop all trained streams (e.g. on a policy switch)."""
        self._table.clear()

    @property
    def live_streams(self) -> int:
        """Current stream-table occupancy."""
        return len(self._table)

    # -- fast-forward hooks ------------------------------------------------

    def state_digest(self, addr_shift: int) -> tuple:
        """Shift-invariant digest of the stream table (LRU order).

        ``addr_shift`` must be a multiple of the page size; pages are
        rebased by the page shift, everything else is page-relative
        already (line indices, confidence).
        """
        page_shift = addr_shift // self.config.page_bytes
        return tuple(
            (page - page_shift, s.last_line, s.confidence, s.max_prefetched)
            for page, s in self._table.items())

    def relabel(self, addr_shift: int) -> None:
        """Translate every tracked stream by ``addr_shift`` bytes."""
        page_shift = addr_shift // self.config.page_bytes
        if not page_shift:
            return
        self._table = OrderedDict(
            (page + page_shift, s) for page, s in self._table.items())

    def on_access(self, addr: int) -> list[int]:
        """Observe a demand (or software-prefetch) access.

        Parameters
        ----------
        addr:
            Byte address of the 64 B access.

        Returns
        -------
        list of byte addresses (line-aligned) the prefetcher decides to
        fetch — empty while untrained, disabled or out of page room.
        """
        if not self.enabled:
            return []
        cfg = self.config
        line_bytes = 64
        page = addr // cfg.page_bytes
        line = (addr % cfg.page_bytes) // line_bytes
        lines_per_page = cfg.page_bytes // line_bytes
        table = self._table
        stream = table.get(page)
        if stream is None:
            if len(table) >= cfg.max_streams:
                _, evicted = table.popitem(last=False)
                if evicted.confidence < cfg.train_threshold:
                    self.counters.streams_evicted_untrained += 1
            table[page] = _Stream(last_line=line, confidence=0, max_prefetched=line)
            self.counters.streams_allocated += 1
            return []
        table.move_to_end(page)
        if line == stream.last_line + 1 or line == stream.last_line + 2:
            # Sequential advance of the stream head.
            stream.confidence += 1
            stream.last_line = line
        elif line <= stream.last_line:
            # At or behind the head: a re-touch (e.g. the demand load
            # trailing a software prefetch). Streamers track the
            # monotone head and ignore these — which is exactly why
            # software prefetching *trains* real streamers (§5.9).
            pass
        else:
            # Forward jump beyond the sequential window (the shuffle
            # mapping's signature): lose confidence.
            stream.confidence = max(0, stream.confidence - 2)
            stream.last_line = line
            return []
        if stream.confidence < cfg.train_threshold:
            return []
        distance = min(
            (stream.confidence - cfg.train_threshold) // cfg.ramp_div + 1,
            cfg.max_distance,
        )
        target = min(line + distance, lines_per_page - 1)
        start = max(stream.max_prefetched + 1, line + 1)
        if start > target:
            return []
        stream.max_prefetched = target
        out = [
            page * cfg.page_bytes + l * line_bytes
            for l in range(start, target + 1)
        ]
        self.counters.hwpf_issued += len(out)
        return out
