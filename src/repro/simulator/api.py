"""The unified simulation entry point: :func:`simulate`.

Pre-1.2 there were three overlapping ways to run a trace —
``engine.run_single`` (single thread, private backends), the multicore
runner in :mod:`repro.simulator.multicore`, and per-library ad-hoc
loops. This facade subsumes all of them:

* ``simulate(trace, hw)`` — one trace, one thread;
* ``simulate([t0, t1], hw)`` — one trace per thread over shared memory;
* ``simulate(trace, hw, threads=4)`` — the same op stream replicated on
  4 cores (each context keeps its own program counter);
* ``simulate(..., tracer=tr)`` — install ``tr`` for the duration of the
  run instead of the ambient tracer.

It is also the single seam where the content-addressed result cache
(:mod:`repro.parallel.cache`) hooks in: when a cache is installed and
the run is cacheable (fresh contexts, full drain, tracing disabled),
a repeated (trace, hardware) simulation is served from memory without
re-executing — bit-identically, because simulation is a pure function
of those inputs.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs import get_tracer, use_tracer
from repro.simulator.multicore import SimResult, simulate as _simulate_raw
from repro.simulator.params import HardwareConfig
from repro.trace.ops import Trace

#: Content-addressed (trace, hardware) -> SimResult cache, installed by
#: :func:`repro.parallel.cache.install_sim_cache`. ``None`` disables
#: memoization (the default).
_SIM_CACHE = None


def simulate(trace, hardware: HardwareConfig | None = None, *,
             threads: int | None = None,
             tracer=None,
             batch_ops: int = 1,
             contexts=None,
             drain: bool = True,
             fastforward: bool | None = None) -> SimResult:
    """Simulate one or more traces against a hardware configuration.

    Parameters
    ----------
    trace:
        A single :class:`~repro.trace.ops.Trace` or a sequence of them
        (one per thread). May be empty only when ``contexts`` resumes a
        previous run.
    hardware:
        Testbed description; defaults to the paper's platform
        (``HardwareConfig()``).
    threads:
        Thread count. Defaults to the number of traces given. With a
        single trace and ``threads=N``, the same op stream runs on N
        cores (each context has a private program counter and core
        state; memory backends are shared).
    tracer:
        Optional :class:`repro.obs.Tracer` installed for the duration
        of this call (otherwise the ambient tracer applies).
    batch_ops:
        Ops per scheduling turn for multi-thread interleaving; the
        default of 1 keeps global time monotonic (see
        :mod:`repro.simulator.multicore`). Single-thread runs take the
        engine's inlined fast path regardless.
    contexts:
        Pre-built :class:`~repro.simulator.engine.ThreadContext` list —
        advanced use: the DIALGA coordinator re-enters the simulator
        with live contexts between chunks. Never served from cache.
    drain:
        Flush core caches at the end (pass False for intermediate
        chunks of a longer run).
    fastforward:
        Skip steady-state stripe periods by exact extrapolation
        (:mod:`repro.simulator.fastforward`); results are byte-
        identical to plain interpretation, just faster on long
        periodic traces. Default (None) enables it exactly for
        single-thread runs on fresh contexts — under multicore
        contention the shared backends couple the threads and the
        per-thread periodicity dissolves, so it is off there.

    Returns
    -------
    SimResult
        Makespan, per-thread times, aggregate counters, data volume.
    """
    if hardware is None:
        hardware = HardwareConfig()
    if isinstance(trace, Trace):
        traces = [trace]
    elif trace is None:
        traces = []
    else:
        traces = list(trace)
        for t in traces:
            if not isinstance(t, Trace):
                raise TypeError(f"expected Trace, got {type(t).__name__}")
    if threads is not None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if len(traces) == 1 and threads > 1:
            traces = traces * threads
        elif traces and threads != len(traces):
            raise ValueError(
                f"threads={threads} but {len(traces)} traces given")
    if not traces and contexts is None:
        raise ValueError("need at least one trace (or live contexts)")
    if fastforward is None:
        fastforward = len(traces) == 1 and contexts is None

    if tracer is not None:
        with use_tracer(tracer):
            return _dispatch(traces, hardware, batch_ops, contexts, drain,
                             fastforward)
    return _dispatch(traces, hardware, batch_ops, contexts, drain,
                     fastforward)


def _dispatch(traces, hardware, batch_ops, contexts, drain,
              fastforward) -> SimResult:
    cache = _SIM_CACHE
    if (cache is not None and contexts is None and drain
            and not get_tracer().enabled):
        return cache.simulate(traces, hardware, batch_ops,
                              fastforward=fastforward)
    return _simulate_raw(traces, hardware, batch_ops=batch_ops,
                         contexts=contexts, drain=drain,
                         fastforward=fastforward)
