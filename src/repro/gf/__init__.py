"""Galois-field arithmetic over GF(2^w).

This package is the arithmetic substrate for every codec in the
reproduction: table-lookup Reed-Solomon (the ISA-L path), XOR/bitmatrix
codes (the Zerasure/Cerasure path), and the LRC layer.

Public API
----------
``GF``            vectorized field arithmetic for w in {4, 8, 16}
``GFTables``      raw log/exp/(mul) tables built from a primitive polynomial
``GFPolynomial``  dense polynomials over a field
``gf8``           module-level shared GF(2^8) instance (the paper's field)
``element_bitmatrix`` / ``matrix_to_bitmatrix``  bit-level projections
"""

from repro.gf.tables import GFTables, PRIMITIVE_POLYNOMIALS
from repro.gf.arithmetic import GF, gf4, gf8, gf16
from repro.gf.polynomial import GFPolynomial
from repro.gf.bitmatrix import element_bitmatrix, matrix_to_bitmatrix, bitmatrix_xor_count

__all__ = [
    "GF",
    "GFTables",
    "GFPolynomial",
    "PRIMITIVE_POLYNOMIALS",
    "gf4",
    "gf8",
    "gf16",
    "element_bitmatrix",
    "matrix_to_bitmatrix",
    "bitmatrix_xor_count",
]
