"""Bit-level (binary matrix) projection of GF(2^w) elements.

XOR-based erasure coding (Jerasure's Cauchy-Reed-Solomon path, and the
Zerasure/Cerasure libraries the paper compares against) replaces each
field element of a coding matrix by a ``w x w`` binary matrix, turning
GF multiplication into pure XORs on bit-sliced packets. The number of
ones in the resulting bitmatrix is exactly the XOR count of the naive
schedule — the quantity Zerasure/Cerasure minimize.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF


def element_bitmatrix(field: GF, e: int) -> np.ndarray:
    """Return the ``w x w`` binary matrix of multiplication by ``e``.

    Column ``j`` holds the bits of ``e * alpha^j``; then for any element
    ``v`` with bit-vector ``b``, ``M @ b (mod 2)`` is the bit-vector of
    ``e * v``. Bit 0 is the least-significant bit and occupies row 0.
    """
    w = field.w
    M = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        prod = int(field.mul(e, 1 << j))
        for i in range(w):
            M[i, j] = (prod >> i) & 1
    return M


def matrix_to_bitmatrix(field: GF, A: np.ndarray) -> np.ndarray:
    """Expand an ``r x c`` GF matrix into an ``r*w x c*w`` binary matrix.

    This is the encode (or decode) bitmatrix used by the XOR schedule
    machinery in :mod:`repro.xorsched`.
    """
    A = np.asarray(A)
    r, c = A.shape
    w = field.w
    out = np.zeros((r * w, c * w), dtype=np.uint8)
    cache: dict[int, np.ndarray] = {}
    for i in range(r):
        for j in range(c):
            e = int(A[i, j])
            if e not in cache:
                cache[e] = element_bitmatrix(field, e)
            out[i * w : (i + 1) * w, j * w : (j + 1) * w] = cache[e]
    return out


def bitmatrix_xor_count(bitmatrix: np.ndarray) -> int:
    """XOR operations of the naive schedule for this bitmatrix.

    Each output row with ``p`` ones costs ``p - 1`` XORs (first source
    is a copy), so the total is ``popcount - rows_with_any_ones``.
    """
    ones_per_row = bitmatrix.sum(axis=1, dtype=np.int64)
    active = ones_per_row > 0
    return int(ones_per_row[active].sum() - active.sum())
