"""Vectorized GF(2^w) arithmetic.

The :class:`GF` class exposes NumPy-native field operations. All
element-wise operations accept scalars or arrays and broadcast like
ordinary NumPy ufuncs. The hot path for coding is
:meth:`GF.mul_block` / :meth:`GF.mul_block_accumulate`, which multiply
whole data blocks by one coefficient through a single table gather —
the Python analogue of ISA-L's ``vpshufb``-based kernel.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import GFTables, get_tables


class GF:
    """A GF(2^w) field with vectorized NumPy operations.

    Parameters
    ----------
    w:
        Word size in bits (4, 8 or 16 by default polynomial).
    poly:
        Optional primitive-polynomial override.

    Notes
    -----
    Addition and subtraction in characteristic-2 fields are both XOR;
    only :meth:`add` is provided.
    """

    def __init__(self, w: int, poly: int | None = None):
        self.tables: GFTables = get_tables(w, poly)
        self.w = w
        self.order = self.tables.order
        self.dtype = np.uint8 if w <= 8 else np.uint32

    # -- scalar/array element-wise ops ---------------------------------

    def add(self, a, b):
        """Field addition (XOR). Broadcasts."""
        return np.bitwise_xor(a, b)

    def mul(self, a, b):
        """Field multiplication. Broadcasts over arrays.

        Uses the dense table for w<=8 and log/exp otherwise.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if self.tables.mul is not None:
            return self.tables.mul[a, b]
        a, b = np.broadcast_arrays(a, b)
        out = np.zeros(a.shape, dtype=self.dtype)
        nz = (a != 0) & (b != 0)
        la = self.tables.log[a[nz]]
        lb = self.tables.log[b[nz]]
        out[nz] = self.tables.exp[la + lb]
        return out if out.shape else out[()]

    def div(self, a, b):
        """Field division ``a / b``. Raises ZeroDivisionError on b=0."""
        if type(b) is int and isinstance(a, np.ndarray) \
                and self.tables.mul is not None:
            # Scalar divisor over an array (the schedule searchers'
            # column normalization): one table gather, skipping the
            # asarray/any round-trips. Same tables, same values.
            if b == 0:
                raise ZeroDivisionError("division by zero in GF(2^w)")
            return self.tables.mul[a, self.tables.inv[b]]
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^w)")
        return self.mul(a, self.tables.inv[b])

    def inv(self, a):
        """Multiplicative inverse. Raises ZeroDivisionError on 0."""
        a = np.asarray(a, dtype=self.dtype)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self.tables.inv[a]

    def pow(self, a, e: int):
        """Raise field element(s) ``a`` to integer power ``e`` (e >= 0)."""
        a = np.asarray(a, dtype=self.dtype)
        if e < 0:
            return self.pow(self.inv(a), -e)
        n = self.order - 1
        out = np.ones_like(a)
        zero = a == 0
        la = np.zeros_like(self.tables.log[a])
        nz = ~zero
        la[nz] = self.tables.log[a[nz]]
        out_nz = (
            self.tables.exp[(la[nz].astype(np.int64) * (e % n)) % n]
            if e else np.ones(nz.sum(), self.dtype)
        )
        out[nz] = out_nz
        if e:
            out[zero] = 0
        return out if out.shape else out[()]

    # -- block (bulk) ops ----------------------------------------------

    def mul_block(self, coef: int, block: np.ndarray) -> np.ndarray:
        """Multiply every symbol of ``block`` by scalar ``coef``.

        This is the vectorized analogue of the SIMD GF-multiply kernel:
        for w=8 it is one row-gather from the 64 KiB table.
        """
        block = np.asarray(block, dtype=self.dtype)
        if coef == 0:
            return np.zeros_like(block)
        if coef == 1:
            return block.copy()
        if self.tables.mul is not None:
            return self.tables.mul[coef][block]
        out = np.zeros_like(block)
        nz = block != 0
        out[nz] = self.tables.exp[self.tables.log[coef] + self.tables.log[block[nz]]]
        return out

    def mul_block_accumulate(self, acc: np.ndarray, coef: int, block: np.ndarray) -> None:
        """In-place ``acc ^= coef * block`` — the encode inner loop.

        Avoids temporaries beyond one gather result, per the HPC guide's
        in-place-operation advice.
        """
        if coef == 0:
            return
        if coef == 1:
            np.bitwise_xor(acc, block, out=acc)
            return
        if self.tables.mul is not None:
            np.bitwise_xor(acc, self.tables.mul[coef][block], out=acc)
        else:
            np.bitwise_xor(acc, self.mul_block(coef, block), out=acc)

    # -- linear algebra --------------------------------------------------

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Matrix product over the field.

        ``A`` is (r, c), ``B`` is (c, n); returns (r, n). Implemented
        row-by-row with block multiplies so it is fast when ``n`` is a
        large block length (the encode case).
        """
        A = np.asarray(A, dtype=self.dtype)
        B = np.asarray(B, dtype=self.dtype)
        r, c = A.shape
        c2, n = B.shape
        if c != c2:
            raise ValueError(f"shape mismatch: {A.shape} @ {B.shape}")
        out = np.zeros((r, n), dtype=self.dtype)
        for i in range(r):
            acc = out[i]
            for j in range(c):
                self.mul_block_accumulate(acc, int(A[i, j]), B[j])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF(2^{self.w}, poly={self.tables.poly:#x})"


#: Shared field instances. ``gf8`` is the paper's evaluation field.
gf4 = GF(4)
gf8 = GF(8)
gf16 = GF(16)
