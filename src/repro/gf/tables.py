"""Log/exp/multiplication tables for GF(2^w).

Tables are generated at import time from standard primitive polynomials
(the same ones Jerasure and ISA-L use), so every codec in the repo
shares one consistent field definition.

The full ``w=8`` multiplication table (256x256 uint8, 64 KiB) is the
work-horse of the vectorized encoder: multiplying an entire data block
by a coefficient ``c`` is a single fancy-index ``MUL[c][block]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Primitive polynomials (with the x^w term included), per word size.
#: These match Jerasure/ISA-L conventions so encodings are comparable
#: against reference vectors.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    4: 0x13,      # x^4 + x + 1
    8: 0x11D,     # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}


def _carryless_mul_mod(a: int, b: int, poly: int, w: int) -> int:
    """Schoolbook carry-less multiply of ``a*b`` reduced mod ``poly``.

    Slow scalar reference used only for table construction and as a
    ground-truth oracle in tests.
    """
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & (1 << w):
            a ^= poly
    return result


@dataclass
class GFTables:
    """Precomputed tables for one GF(2^w) field instance.

    Attributes
    ----------
    w:
        Word size in bits; the field has ``2^w`` elements.
    poly:
        Primitive polynomial used for reduction (x^w term included).
    exp:
        ``exp[i] = alpha^i`` for ``i`` in ``[0, 2*(2^w - 1))`` — doubled
        so ``exp[log[a] + log[b]]`` needs no modulo.
    log:
        ``log[e]`` = discrete log of ``e`` base alpha; ``log[0]`` is a
        sentinel (never read by a correct caller).
    inv:
        Multiplicative inverses; ``inv[0] = 0`` sentinel.
    mul:
        Full multiplication table, shape ``(2^w, 2^w)``; built eagerly
        for w <= 8, lazily (on first access) and only if asked for
        w = 16 it is never built (4 GiB) — ``mul`` stays ``None``.
    """

    w: int
    poly: int
    exp: np.ndarray = field(repr=False)
    log: np.ndarray = field(repr=False)
    inv: np.ndarray = field(repr=False)
    mul: np.ndarray | None = field(repr=False, default=None)

    @property
    def order(self) -> int:
        """Number of field elements, ``2^w``."""
        return 1 << self.w

    @classmethod
    def build(cls, w: int, poly: int | None = None) -> "GFTables":
        """Construct tables for GF(2^w).

        Parameters
        ----------
        w:
            Word size; one of 4, 8, 16 unless a custom ``poly`` is given.
        poly:
            Override primitive polynomial. Defaults to the standard one
            from :data:`PRIMITIVE_POLYNOMIALS`.
        """
        if poly is None:
            try:
                poly = PRIMITIVE_POLYNOMIALS[w]
            except KeyError as exc:
                raise ValueError(
                    f"no default primitive polynomial for w={w}; pass poly="
                ) from exc
        order = 1 << w
        n = order - 1
        dtype = np.uint8 if w <= 8 else np.uint32
        exp = np.zeros(2 * n, dtype=dtype)
        log = np.zeros(order, dtype=np.int32)
        x = 1
        for i in range(n):
            exp[i] = x
            log[x] = i
            x = _carryless_mul_mod(x, 2, poly, w)
        if x != 1:
            raise ValueError(f"polynomial {poly:#x} is not primitive for w={w}")
        exp[n : 2 * n] = exp[:n]
        inv = np.zeros(order, dtype=dtype)
        # a^-1 = alpha^(n - log a)
        idx = np.arange(1, order)
        inv[1:] = exp[(n - log[idx]) % n]
        mul = None
        if w <= 8:
            a = np.arange(order)
            la = log[a]
            mul = np.zeros((order, order), dtype=dtype)
            # mul[a, b] = exp[log a + log b], zero row/col handled after.
            mul[1:, 1:] = exp[la[1:, None] + la[None, 1:]]
        return cls(w=w, poly=poly, exp=exp, log=log, inv=inv, mul=mul)


_CACHE: dict[tuple[int, int | None], GFTables] = {}


def get_tables(w: int, poly: int | None = None) -> GFTables:
    """Return (and memoize) the table set for GF(2^w)."""
    key = (w, poly)
    if key not in _CACHE:
        _CACHE[key] = GFTables.build(w, poly)
    return _CACHE[key]
