"""Dense polynomials over GF(2^w).

Used by tests as an independent oracle (e.g. checking Vandermonde
evaluation points) and by the RS layer for syndrome-style verification.
Coefficients are stored lowest-degree first.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import GF


class GFPolynomial:
    """A polynomial with coefficients in GF(2^w).

    Parameters
    ----------
    field:
        The :class:`~repro.gf.arithmetic.GF` instance.
    coeffs:
        Iterable of coefficients, ``coeffs[i]`` multiplying ``x^i``.
        Trailing zero coefficients are trimmed.
    """

    def __init__(self, field: GF, coeffs):
        self.field = field
        c = np.asarray(list(coeffs), dtype=field.dtype)
        # trim trailing zeros but keep at least one coefficient
        nz = np.nonzero(c)[0]
        self.coeffs = c[: nz[-1] + 1] if len(nz) else c[:1]

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree 0."""
        return len(self.coeffs) - 1

    def __call__(self, x):
        """Evaluate at ``x`` (scalar or array) by Horner's rule."""
        f = self.field
        x = np.asarray(x, dtype=f.dtype)
        acc = np.full(x.shape, self.coeffs[-1], dtype=f.dtype)
        for c in self.coeffs[-2::-1]:
            acc = f.add(f.mul(acc, x), c)
        return acc if acc.shape else acc[()]

    def __add__(self, other: "GFPolynomial") -> "GFPolynomial":
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = a.copy()
        out[: len(b)] ^= b
        return GFPolynomial(self.field, out)

    def __mul__(self, other: "GFPolynomial") -> "GFPolynomial":
        f = self.field
        out = np.zeros(self.degree + other.degree + 1, dtype=f.dtype)
        for i, ci in enumerate(self.coeffs):
            if ci:
                out[i : i + len(other.coeffs)] ^= f.mul_block(int(ci), other.coeffs)
        return GFPolynomial(f, out)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GFPolynomial)
            and self.field is other.field
            and np.array_equal(self.coeffs, other.coeffs)
        )

    def __hash__(self):
        return hash((self.field.w, self.coeffs.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GFPolynomial({list(int(c) for c in self.coeffs)})"

    @classmethod
    def from_roots(cls, field: GF, roots) -> "GFPolynomial":
        """Monic polynomial with the given roots: prod (x - r)."""
        p = cls(field, [1])
        for r in roots:
            p = p * cls(field, [int(r), 1])  # (x + r) == (x - r) in char 2
        return p
