"""Common interface for coding-library facades."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.simulator import HardwareConfig, SimResult, simulate
from repro.trace import Trace, Workload


class UnsupportedWorkload(ValueError):
    """A library cannot run this workload (e.g. Zerasure on wide stripes)."""


@dataclass
class LibraryResult:
    """A simulation outcome tagged with its library and workload."""

    library: str
    workload: Workload
    sim: SimResult

    @property
    def throughput_gbps(self) -> float:
        """Aggregate data throughput in GB/s."""
        return self.sim.throughput_gbps


class CodingLibrary(abc.ABC):
    """One compared system: functional codec + performance model.

    Subclasses provide bit-exact :meth:`encode`/:meth:`decode` and a
    per-thread :meth:`trace` describing the kernel's memory schedule.
    :meth:`run` ties them to the simulator.
    """

    #: Display name used in benchmark tables.
    name: str = "?"
    #: SIMD width the library's kernels support ("avx512" means it
    #: follows the workload setting; Zerasure/Cerasure force "avx256").
    forced_simd: str | None = None

    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Return the ``(m, block_len)`` parity for ``(k, block_len)`` data."""

    @abc.abstractmethod
    def decode(self, available: dict[int, np.ndarray], erased) -> dict[int, np.ndarray]:
        """Recover erased blocks from survivors (stripe-global indices)."""

    @abc.abstractmethod
    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        """Generate the memory-access trace of one thread."""

    def supports(self, wl: Workload) -> bool:
        """Whether the library can run this workload at all."""
        return True

    def effective_workload(self, wl: Workload) -> Workload:
        """Apply library constraints (e.g. forced SIMD width)."""
        if self.forced_simd is not None and wl.simd != self.forced_simd:
            return wl.with_(simd=self.forced_simd)
        return wl

    def run(self, wl: Workload, hw: HardwareConfig | None = None) -> LibraryResult:
        """Simulate the workload and return throughput + counters.

        Raises :class:`UnsupportedWorkload` when :meth:`supports` is
        False (benchmarks render these as the paper's "missing results").
        """
        hw = hw or HardwareConfig()
        wl = self.effective_workload(wl)
        if not self.supports(wl):
            raise UnsupportedWorkload(f"{self.name} cannot run {wl}")
        hw = hw.with_cpu(simd=wl.simd)
        traces = [self.trace(wl, hw, t) for t in range(wl.nthreads)]
        sim = simulate(traces, hw)
        return LibraryResult(library=self.name, workload=wl, sim=sim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
