"""Common interface for coding-library facades."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro._deprecation import warn_deprecated
from repro.simulator import HardwareConfig, SimResult, simulate
from repro.trace import Trace, Workload

if TYPE_CHECKING:  # pragma: no cover - annotation only (layering: libs < core)
    from repro.core.policy import Policy


class UnsupportedWorkload(ValueError):
    """A library cannot run this workload (e.g. Zerasure on wide stripes)."""


class GeometryMismatch(ValueError):
    """Workload geometry (k, m) does not match the encoder's.

    Raised by :meth:`CodingLibrary.run` implementations that are bound
    to a fixed code geometry at construction time. Subclasses
    ``ValueError`` so pre-1.1 ``except ValueError`` handlers keep
    working.
    """


@dataclass
class LibraryResult:
    """A simulation outcome tagged with its library and workload."""

    library: str
    workload: Workload
    sim: SimResult

    @property
    def throughput_gbps(self) -> float:
        """Aggregate data throughput in GB/s."""
        return self.sim.throughput_gbps


class CodingLibrary(abc.ABC):
    """One compared system: functional codec + performance model.

    Subclasses provide bit-exact :meth:`encode`/:meth:`decode` and a
    per-thread :meth:`trace` describing the kernel's memory schedule.
    :meth:`run` ties them to the simulator with one uniform signature
    across all five systems::

        lib.run(workload, hardware=None, *, policy=None)

    ``policy`` pins a :class:`~repro.core.policy.Policy` for the run;
    libraries whose kernels cannot change strategy at runtime
    (``supports_policy`` False) raise :class:`UnsupportedWorkload` when
    one is passed.
    """

    #: Display name used in benchmark tables.
    name: str = "?"
    #: SIMD width the library's kernels support ("avx512" means it
    #: follows the workload setting; Zerasure/Cerasure force "avx256").
    forced_simd: str | None = None
    #: Whether :meth:`run` accepts a pinned scheduling policy.
    supports_policy: bool = False

    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Return the ``(m, block_len)`` parity for ``(k, block_len)`` data."""

    @abc.abstractmethod
    def decode(self, available: dict[int, np.ndarray], erased) -> dict[int, np.ndarray]:
        """Recover erased blocks from survivors (stripe-global indices)."""

    @abc.abstractmethod
    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        """Generate the memory-access trace of one thread."""

    def supports(self, wl: Workload) -> bool:
        """Whether the library can run this workload at all."""
        return True

    def effective_workload(self, wl: Workload) -> Workload:
        """Apply library constraints (e.g. forced SIMD width)."""
        if self.forced_simd is not None and wl.simd != self.forced_simd:
            return wl.with_(simd=self.forced_simd)
        return wl

    def _resolve_run_args(self, workload, hardware, legacy) -> tuple[Workload, HardwareConfig | None]:
        """Fold the pre-1.1 ``wl=``/``hw=`` keyword spellings into the
        uniform (workload, hardware) pair, with deprecation warnings."""
        if "wl" in legacy:
            if workload is not None:
                raise TypeError("pass the workload once: positionally or as wl=")
            workload = legacy.pop("wl")
            warn_deprecated(
                f"{type(self).__name__}.run(wl=...) is deprecated; "
                "pass the workload positionally or as workload=")
        if "hw" in legacy:
            if hardware is not None:
                raise TypeError("pass the hardware once: positionally or as hw=")
            hardware = legacy.pop("hw")
            warn_deprecated(
                f"{type(self).__name__}.run(hw=...) is deprecated; "
                "pass the testbed positionally or as hardware=")
        if legacy:
            raise TypeError(
                f"run() got unexpected keyword argument(s) {sorted(legacy)}")
        if workload is None:
            raise TypeError("run() missing required argument: 'workload'")
        return workload, hardware

    def _trace_with_policy(self, wl: Workload, hw: HardwareConfig,
                           thread: int, policy: "Policy | None") -> Trace:
        """Hook for policy-capable libraries; default ignores ``policy``
        (callers have already been rejected unless it is None)."""
        return self.trace(wl, hw, thread)

    def run(self, workload: Workload | None = None,
            hardware: HardwareConfig | None = None, *,
            policy: "Policy | None" = None, **legacy) -> LibraryResult:
        """Simulate the workload and return throughput + counters.

        Raises :class:`UnsupportedWorkload` when :meth:`supports` is
        False (benchmarks render these as the paper's "missing
        results"), or when ``policy`` is pinned on a library whose
        kernels cannot honor one.
        """
        workload, hardware = self._resolve_run_args(workload, hardware, legacy)
        if policy is not None and not self.supports_policy:
            raise UnsupportedWorkload(
                f"{self.name} has fixed kernels; cannot pin a scheduling policy")
        hw = hardware or HardwareConfig()
        wl = self.effective_workload(workload)
        if not self.supports(wl):
            raise UnsupportedWorkload(f"{self.name} cannot run {wl}")
        hw = hw.with_cpu(simd=wl.simd)
        traces = [self._trace_with_policy(wl, hw, t, policy)
                  for t in range(wl.nthreads)]
        sim = simulate(traces, hw)
        return LibraryResult(library=self.name, workload=wl, sim=sim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
