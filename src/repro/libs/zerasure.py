"""Zerasure facade (Zhou & Tian, FAST'19).

Encoding matrices come from a simulated-annealing search over Cauchy
point sets; encoding executes a CSE-optimized XOR schedule. The search
is budgeted, so wide stripes (k > 32) fail to converge and the library
reports the workload as unsupported — reproducing the paper's "some
missing results" for Zerasure on wide stripes. Kernels are AVX256-only.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.arithmetic import gf8
from repro.libs.base import CodingLibrary
from repro.libs.xor_common import BitmatrixCode, lrc_xor_trace
from repro.simulator import HardwareConfig
from repro.trace import Trace, Workload, xor_schedule_trace
from repro.xorsched.anneal import AnnealResult, anneal_cauchy_points


@lru_cache(maxsize=None)
def _search(k: int, m: int, budget: int, seed: int) -> AnnealResult:
    return anneal_cauchy_points(gf8, k, m, budget=budget, seed=seed)


class Zerasure(CodingLibrary):
    """Annealed-Cauchy XOR code with schedule optimization."""

    name = "Zerasure"
    forced_simd = "avx256"

    def __init__(self, k: int, m: int, budget: int = 1500, seed: int = 0):
        self.k, self.m = k, m
        self.search = _search(k, m, budget, seed)
        self.code = BitmatrixCode(k, m, self.search.parity)
        self._decode_scheds: dict[int, object] = {}

    def supports(self, wl: Workload) -> bool:
        """False when the matrix search did not converge (wide stripes)."""
        return self.search.converged

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self.code.encode(data)

    def decode(self, available, erased):
        return self.code.decode(available, erased)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        if wl.lrc_l is not None:
            return self._lrc_trace(wl, hw, thread)
        if wl.op == "decode":
            sched = self._decode_scheds.get(wl.erasures)
            if sched is None:
                sched = self.code.decode_schedule(wl.erasures)
                self._decode_scheds[wl.erasures] = sched
            # Decode reads k survivors and writes `erasures` blocks; the
            # schedule's m equals erasures, which the generator honors.
            wl = wl.with_(m=wl.erasures)
            return xor_schedule_trace(wl.with_(op="encode", erasures=0),
                                      hw.cpu, sched, thread=thread)
        return xor_schedule_trace(wl, hw.cpu, self.code.encode_schedule,
                                  thread=thread)

    def _lrc_trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        """LRC encoding: the parity matrix gains l local-XOR rows."""
        return lrc_xor_trace(self.code, self._decode_scheds, wl, hw, thread)
