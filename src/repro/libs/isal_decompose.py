"""ISA-L-D facade: ISA-L with wide-stripe decomposition (§5.1).

The paper's authors add the decompose strategy (borrowed from Cerasure)
to plain ISA-L: wide stripes are encoded in passes of at most
``group_size`` source blocks so the L2 streamer stays within its
tracking capacity, at the cost of reloading and rewriting the partial
parity every pass.
"""

from __future__ import annotations

import numpy as np

from repro.codes.rs import RSCode
from repro.gf.arithmetic import GF
from repro.libs.base import CodingLibrary
from repro.simulator import HardwareConfig
from repro.trace import IsalVariant, Trace, Workload, isal_trace
from repro.xorsched.decompose import encode_decomposed


class ISALDecompose(CodingLibrary):
    """ISA-L-D: decomposed wide-stripe encoding over the ISA-L kernel."""

    name = "ISA-L-D"

    def __init__(self, k: int, m: int, group_size: int = 16,
                 field: GF | None = None):
        if group_size < 1:
            raise ValueError("group_size must be positive")
        self.code = RSCode(k, m, field=field)
        self.k, self.m = k, m
        self.group_size = group_size

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Group-wise partial-parity encode (identical output to ISA-L)."""
        return encode_decomposed(self.code.field, self.code.parity_rows,
                                 np.asarray(data, dtype=np.uint8),
                                 self.group_size)

    def decode(self, available, erased):
        """Decode is not decomposed (same as ISA-L)."""
        return self.code.decode(available, erased)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        # Decomposing a stripe narrower than the group is a plain pass.
        group = self.group_size if wl.k > self.group_size else None
        return isal_trace(wl, hw.cpu, IsalVariant(decompose_group=group),
                          thread=thread)
