"""Cerasure facade (Niu et al., ICCD'23).

Encoding matrices come from a deterministic greedy search; encoding
executes a CSE-optimized XOR schedule. Wide stripes are *decomposed*
into narrow passes (partial parities XOR-folded, parity reloaded
between passes) so the L2 streamer re-engages — the strategy ISA-L-D
borrows. Kernels are AVX256-only.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.arithmetic import gf8
from repro.libs.base import CodingLibrary
from repro.libs.xor_common import BitmatrixCode, cached_group_schedule, lrc_xor_trace
from repro.simulator import HardwareConfig
from repro.trace import Trace, Workload, xor_schedule_trace, xor_decomposed_trace


@lru_cache(maxsize=None)
def _greedy(k: int, m: int):
    from repro.xorsched.greedy import greedy_cauchy_points
    return greedy_cauchy_points(gf8, k, m)


class Cerasure(CodingLibrary):
    """Greedy-bitmatrix XOR code with decomposition for wide stripes."""

    name = "Cerasure"
    forced_simd = "avx256"
    #: Stripes wider than this are decomposed (streamer capacity bound).
    decompose_threshold = 32

    def __init__(self, k: int, m: int, group_size: int = 16):
        self.k, self.m = k, m
        self.group_size = group_size
        _, _, parity = _greedy(k, m)
        self.parity = parity
        self.code = BitmatrixCode(k, m, parity)
        self._decode_scheds: dict[int, object] = {}

    @property
    def decomposes(self) -> bool:
        """Whether this geometry uses the decompose strategy."""
        return self.k > self.decompose_threshold

    def _groups(self) -> list[list[int]]:
        g = self.group_size
        return [list(range(c, min(c + g, self.k))) for c in range(0, self.k, g)]

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Functional encode (single pass; decompose is numerically
        identical, see :mod:`repro.xorsched.decompose`)."""
        return self.code.encode(data)

    def decode(self, available, erased):
        return self.code.decode(available, erased)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        if wl.lrc_l is not None:
            return lrc_xor_trace(self.code, self._decode_scheds, wl, hw, thread)
        if wl.op == "decode":
            sched = self._decode_scheds.get(wl.erasures)
            if sched is None:
                sched = self.code.decode_schedule(wl.erasures)
                self._decode_scheds[wl.erasures] = sched
            wl2 = wl.with_(m=wl.erasures, op="encode", erasures=0)
            return xor_schedule_trace(wl2, hw.cpu, sched, thread=thread)
        if self.decomposes:
            key = (self.name, self.k, self.m, self.parity.tobytes())
            group_schedules = [
                (cached_group_schedule(key, tuple(cols)), cols)
                for cols in self._groups()
            ]
            return xor_decomposed_trace(wl, hw.cpu, group_schedules,
                                        thread=thread)
        return xor_schedule_trace(wl, hw.cpu, self.code.encode_schedule,
                                  thread=thread)
