"""Coding-library facades — the paper's compared systems (§5.1).

Each facade couples a *functional* codec (bit-exact encode/decode) with
a *performance* model (the memory-access trace its kernel executes):

* :class:`ISAL` — table-lookup RS, one-pass row-major kernel, AVX512.
* :class:`ISALDecompose` — ISA-L-D: ISA-L plus wide-stripe decomposition.
* :class:`Zerasure` — annealed Cauchy bitmatrix + CSE XOR schedule,
  AVX256 only; fails to converge on wide stripes.
* :class:`Cerasure` — greedy bitmatrix + CSE schedule + decomposition,
  AVX256 only.
* DIALGA itself lives in :mod:`repro.core` and implements the same
  interface.
"""

from repro.libs.base import (
    CodingLibrary,
    GeometryMismatch,
    LibraryResult,
    UnsupportedWorkload,
)
from repro.libs.isal import ISAL
from repro.libs.isal_decompose import ISALDecompose
from repro.libs.zerasure import Zerasure
from repro.libs.cerasure import Cerasure

__all__ = [
    "CodingLibrary",
    "LibraryResult",
    "ISAL",
    "ISALDecompose",
    "Zerasure",
    "Cerasure",
    "UnsupportedWorkload",
    "GeometryMismatch",
]
