"""ISA-L facade: table-lookup RS with the one-pass row-major kernel."""

from __future__ import annotations

import numpy as np

from repro.codes.rs import RSCode
from repro.gf.arithmetic import GF
from repro.libs.base import CodingLibrary
from repro.simulator import HardwareConfig
from repro.trace import IsalVariant, Trace, Workload, isal_trace


class ISAL(CodingLibrary):
    """Intel ISA-L (``ec_encode_data``) model.

    Functional path: systematic Vandermonde RS over GF(2^8) with
    table-gather multiply-accumulate (the NumPy analogue of the
    ``vpshufb`` kernel). Performance path: row-major one-pass loads,
    non-temporal parity stores, trailing fence. Each data block is
    loaded exactly once — the memory access pattern the paper's
    analysis (§3) is built on.
    """

    name = "ISA-L"
    #: The row-major kernel takes the same entry-point parameters as
    #: DIALGA's operator, so a pinned Policy maps onto an IsalVariant.
    supports_policy = True

    def __init__(self, k: int, m: int, field: GF | None = None,
                 variant: IsalVariant | None = None):
        self.code = RSCode(k, m, field=field)
        self.k, self.m = k, m
        self.variant = variant or IsalVariant()

    def encode(self, data: np.ndarray) -> np.ndarray:
        """One-pass parity computation (bit-exact RS)."""
        return self.code.encode_blocks(data)

    def decode(self, available, erased):
        """Invert the surviving generator rows and rebuild (ISA-L style)."""
        return self.code.decode(available, erased)

    def trace(self, wl: Workload, hw: HardwareConfig, thread: int) -> Trace:
        return isal_trace(wl, hw.cpu, self.variant, thread=thread)

    def _trace_with_policy(self, wl, hw, thread, policy) -> Trace:
        variant = self.variant if policy is None else policy.to_variant()
        return isal_trace(wl, hw.cpu, variant, thread=thread)
