"""Shared machinery for XOR-bitmatrix library facades.

Zerasure and Cerasure differ in how they *search* for the parity
matrix; everything downstream — bitmatrix expansion, CSE scheduling,
bit-sliced functional execution, decode-matrix construction — is
common and lives here. Search results and schedules are memoized per
code geometry because benchmark sweeps re-instantiate libraries.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.arithmetic import GF, gf8
from repro.gf.bitmatrix import matrix_to_bitmatrix
from repro.matrix.invert import gf_invert_matrix
from repro.xorsched.optimize import cse_optimize
from repro.xorsched.schedule import XorSchedule, encode_bitmatrix, naive_schedule


class BitmatrixCode:
    """A systematic XOR code defined by an (m, k) GF parity matrix.

    Provides bit-exact encode/decode plus the encode/decode XOR
    schedules the performance model replays. Decode schedules use the
    *naive* schedule: as the paper notes (§5.4), the decode matrix is
    derived by inversion and its complexity cannot be pre-optimized.
    """

    def __init__(self, k: int, m: int, parity: np.ndarray,
                 field: GF | None = None, optimize_encode: bool = True):
        self.field = field or gf8
        self.k, self.m = k, m
        self.parity = np.asarray(parity, dtype=self.field.dtype)
        if self.parity.shape != (m, k):
            raise ValueError(f"parity shape {self.parity.shape} != ({m},{k})")
        self.generator = np.vstack(
            [np.eye(k, dtype=self.field.dtype), self.parity])
        self._encode_schedule: XorSchedule | None = None
        self._optimize_encode = optimize_encode

    @property
    def encode_schedule(self) -> XorSchedule:
        """CSE-optimized (or naive) encode schedule, built lazily."""
        if self._encode_schedule is None:
            bm = matrix_to_bitmatrix(self.field, self.parity)
            if self._optimize_encode:
                self._encode_schedule = cse_optimize(bm, self.k, self.m, self.field.w)
            else:
                self._encode_schedule = naive_schedule(bm, self.k, self.m, self.field.w)
        return self._encode_schedule

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Bit-sliced schedule execution — byte-identical to GF matmul."""
        data = np.asarray(data, dtype=np.uint8)
        bm = matrix_to_bitmatrix(self.field, self.parity)
        return encode_bitmatrix(self.field, bm, data,
                                schedule=self.encode_schedule)

    def decode_rows(self, survivors: list[int], erased: list[int]) -> np.ndarray:
        """GF rows rebuilding ``erased`` from ``survivors[:k]``."""
        sub = self.generator[survivors[: self.k]]
        inv = gf_invert_matrix(self.field, sub)
        rows = []
        for e in erased:
            if e < self.k:
                rows.append(inv[e])
            else:
                rows.append(self.field.matmul(
                    self.generator[e][None, :], inv)[0])
        return np.vstack(rows)

    def decode(self, available: dict[int, np.ndarray], erased) -> dict[int, np.ndarray]:
        """Recover erased blocks (functional, via the decode matrix)."""
        erased = list(erased)
        if len(erased) > self.m:
            raise ValueError(f"cannot repair {len(erased)} erasures with m={self.m}")
        survivors = sorted(available)
        if len(survivors) < self.k:
            raise ValueError(f"need >= k={self.k} survivors")
        use = survivors[: self.k]
        D = self.decode_rows(use, erased)
        bm = matrix_to_bitmatrix(self.field, D)
        src = np.vstack([np.asarray(available[i], dtype=np.uint8) for i in use])
        out = encode_bitmatrix(self.field, bm, src)
        return {e: out[i] for i, e in enumerate(erased)}

    def decode_schedule(self, erasures: int) -> XorSchedule:
        """Naive XOR schedule for rebuilding the first ``erasures`` data
        blocks from the canonical survivor set (remaining data + parity).
        """
        erased = list(range(erasures))
        survivors = [i for i in range(self.k + self.m) if i not in erased]
        D = self.decode_rows(survivors[: self.k], erased)
        bm = matrix_to_bitmatrix(self.field, D)
        return naive_schedule(bm, self.k, erasures, self.field.w)


def lrc_extended_parity(field: GF, parity: np.ndarray, l: int) -> np.ndarray:
    """Append ``l`` local-XOR parity rows to an ``(m, k)`` parity matrix.

    Local parities in LRC(k, m, l) are plain XORs of contiguous data
    groups — coefficient-1 rows over the field — so an XOR-bitmatrix
    library encodes LRC by simply extending its parity matrix.
    """
    m, k = parity.shape
    if l < 1 or k % l:
        raise ValueError(f"need l | k, got k={k} l={l}")
    group = k // l
    local = np.zeros((l, k), dtype=parity.dtype)
    for g in range(l):
        local[g, g * group:(g + 1) * group] = 1
    return np.vstack([parity, local])


def build_lrc_schedule(code: BitmatrixCode, l: int) -> XorSchedule:
    """CSE schedule producing ``m`` global + ``l`` local parities."""
    ext = lrc_extended_parity(code.field, code.parity, l)
    bm = matrix_to_bitmatrix(code.field, ext)
    return cse_optimize(bm, code.k, code.m + l, code.field.w)


def lrc_xor_trace(code: BitmatrixCode, cache: dict, wl, hw, thread: int):
    """LRC trace for an XOR library: encode m+l parity outputs.

    ``cache`` is the facade's per-instance schedule cache.
    """
    from repro.trace import xor_schedule_trace
    l = wl.lrc_l
    key = ("lrc", l)
    sched = cache.get(key)
    if sched is None:
        sched = build_lrc_schedule(code, l)
        cache[key] = sched
    wl2 = wl.with_(m=code.m + l, lrc_l=None)
    return xor_schedule_trace(wl2, hw.cpu, sched, thread=thread)


@lru_cache(maxsize=None)
def cached_group_schedule(code_key: tuple, cols: tuple[int, ...]) -> XorSchedule:
    """Memoized CSE schedule for a column subgroup (decompose path).

    ``code_key`` is ``(name, k, m)`` plus the parity bytes, so distinct
    searches don't collide.
    """
    name, k, m, parity_bytes = code_key
    parity = np.frombuffer(parity_bytes, dtype=np.uint8).reshape(m, k)
    sub = parity[:, list(cols)]
    bm = matrix_to_bitmatrix(gf8, sub)
    return cse_optimize(bm, len(cols), m, 8)
