"""Ablation study (beyond the paper): hillclimb sensitivity."""

from repro.bench.ablations import ablation_hillclimb


def test_ablation_hillclimb(figure_runner):
    figure_runner(ablation_hillclimb)
