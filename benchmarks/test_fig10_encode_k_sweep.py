"""Fig. 10: encode throughput vs k, all five libraries (see repro.bench.figures.fig10)."""

from repro.bench.figures import fig10


def test_fig10(figure_runner):
    figure_runner(fig10)
