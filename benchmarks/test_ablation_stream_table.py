"""Ablation study (beyond the paper): stream table sensitivity."""

from repro.bench.ablations import ablation_stream_table


def test_ablation_stream_table(figure_runner):
    figure_runner(ablation_stream_table)
