"""Fig. 19: read traffic by memory layer (see repro.bench.figures.fig19)."""

from repro.bench.figures import fig19


def test_fig19(figure_runner):
    figure_runner(fig19)
