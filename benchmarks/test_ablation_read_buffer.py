"""Ablation study (beyond the paper): read buffer sensitivity."""

from repro.bench.ablations import ablation_read_buffer


def test_ablation_read_buffer(figure_runner):
    figure_runner(ablation_read_buffer)
