"""Fig. 4: encode throughput vs CPU frequency (see repro.bench.figures.fig04)."""

from repro.bench.figures import fig04


def test_fig04(figure_runner):
    figure_runner(fig04)
