"""Ablation study (beyond the paper): §6 generality across PM devices."""

from repro.bench.ablations import ablation_generality


def test_ablation_generality(figure_runner):
    figure_runner(ablation_generality)
