"""Fig. 12: encode throughput vs block size, all libraries (see repro.bench.figures.fig12)."""

from repro.bench.figures import fig12


def test_fig12(figure_runner):
    figure_runner(fig12)
