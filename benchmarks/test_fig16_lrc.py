"""Fig. 16: LRC encoding throughput (see repro.bench.figures.fig16)."""

from repro.bench.figures import fig16


def test_fig16(figure_runner):
    figure_runner(fig16)
