"""Extension experiment (beyond the paper): DIALGA gain across (k, block)."""

from repro.bench.ablations import extension_gain_heatmap


def test_extension_gain_heatmap(figure_runner):
    figure_runner(extension_gain_heatmap)
