"""Fig. 14: decode throughput vs stripe width (see repro.bench.figures.fig14)."""

from repro.bench.figures import fig14


def test_fig14(figure_runner):
    figure_runner(fig14)
