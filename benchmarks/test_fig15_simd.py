"""Fig. 15: AVX512 vs AVX256 (see repro.bench.figures.fig15)."""

from repro.bench.figures import fig15


def test_fig15(figure_runner):
    figure_runner(fig15)
