"""Extension experiment (beyond the paper): prefetching on the update path."""

from repro.bench.ablations import extension_update_path


def test_extension_update_path(figure_runner):
    figure_runner(extension_update_path)
