"""Fig. 3: encode throughput by load source and HW-prefetch state (see repro.bench.figures.fig03)."""

from repro.bench.figures import fig03


def test_fig03(figure_runner):
    figure_runner(fig03)
