"""Fig. 7: multithread scalability with/without HW prefetch (see repro.bench.figures.fig07)."""

from repro.bench.figures import fig07


def test_fig07(figure_runner):
    figure_runner(fig07)
