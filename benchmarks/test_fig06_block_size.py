"""Fig. 6: block-size sweep, throughput and media amplification (see repro.bench.figures.fig06)."""

from repro.bench.figures import fig06


def test_fig06(figure_runner):
    figure_runner(fig06)
