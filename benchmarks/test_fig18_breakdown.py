"""Fig. 18: ablation breakdown Vanilla/+SW/+HW/+BF (see repro.bench.figures.fig18)."""

from repro.bench.figures import fig18


def test_fig18(figure_runner):
    figure_runner(fig18)
