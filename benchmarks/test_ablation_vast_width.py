"""Ablation study (beyond the paper): VAST-scale stripe widths (k=154)."""

from repro.bench.ablations import ablation_vast_width


def test_ablation_vast_width(figure_runner):
    figure_runner(ablation_vast_width)
