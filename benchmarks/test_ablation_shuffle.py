"""Ablation study (beyond the paper): shuffle sensitivity."""

from repro.bench.ablations import ablation_shuffle


def test_ablation_shuffle(figure_runner):
    figure_runner(ablation_shuffle)
