"""Ablation study (beyond the paper): eq1 cap sensitivity."""

from repro.bench.ablations import ablation_eq1_cap


def test_ablation_eq1_cap(figure_runner):
    figure_runner(ablation_eq1_cap)
