"""Fig. 5: stripe-width sweep and the 32-stream cliff (see repro.bench.figures.fig05)."""

from repro.bench.figures import fig05


def test_fig05(figure_runner):
    figure_runner(fig05)
