"""Fig. 11: encode throughput vs parity count m (see repro.bench.figures.fig11)."""

from repro.bench.figures import fig11


def test_fig11(figure_runner):
    figure_runner(fig11)
