"""Fig. 17: cache miss cycles per load (see repro.bench.figures.fig17)."""

from repro.bench.figures import fig17


def test_fig17(figure_runner):
    figure_runner(fig17)
