"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark module regenerates one paper figure. The measured series
and shape checks are printed and persisted to ``benchmarks/results/``;
``scripts/make_experiments_md.py`` collates them into EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=0.5`` (etc.) to shrink simulated volumes.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def figure_runner(benchmark):
    """Run a figure function once under pytest-benchmark and persist it.

    pytest-benchmark would re-run the (minute-scale) simulation many
    times; ``pedantic(rounds=1)`` measures a single execution, which is
    what we want for deterministic simulations.
    """

    def run(fig_func, min_pass_fraction: float = 0.7):
        result = benchmark.pedantic(fig_func, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.fig_id}.txt").write_text(text + "\n")
        print("\n" + text)
        assert result.pass_fraction >= min_pass_fraction, (
            f"{result.fig_id}: only {result.pass_fraction:.0%} of shape "
            f"checks passed\n{text}")
        return result

    return run
