"""Fig. 13: multithread scalability, DIALGA vs baselines (see repro.bench.figures.fig13)."""

from repro.bench.figures import fig13


def test_fig13(figure_runner):
    figure_runner(fig13)
