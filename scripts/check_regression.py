#!/usr/bin/env python3
"""Gate the benchmark history ledger against rolling baselines.

Reads ``BENCH_history.jsonl`` (or ``$REPRO_BENCH_HISTORY`` / an explicit
path) and compares the latest entry of every run against the median of
its prior entries via :func:`repro.obs.regress.detect_regressions` —
the coordinator's own §4.1.2 flag language: a gated metric worse than
110% of the rolling baseline warns (contention-grade drift), worse than
150% fails the gate (inefficient-prefetcher-grade regression).

Exit status: 0 when clean or when nothing is comparable yet (a history
of first entries only seeds baselines); 1 when any metric exceeds the
fail factor; 2 on usage errors (e.g. a missing ledger file).

Usage:  python scripts/check_regression.py [HISTORY] [--window N]
            [--warn F] [--fail F] [--run ID ...]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.regress import detect_regressions, history_path  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the latest benchmark entry regresses past "
                    "150%% of its rolling baseline (warn past 110%%).")
    parser.add_argument("history", nargs="?", default=None,
                        help="ledger path (default: $REPRO_BENCH_HISTORY "
                             "or BENCH_history.jsonl)")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-baseline window (prior entries)")
    parser.add_argument("--warn", type=float, default=1.10,
                        help="warn factor (default 1.10)")
    parser.add_argument("--fail", type=float, default=1.50,
                        help="fail factor (default 1.50)")
    parser.add_argument("--run", action="append", default=None,
                        help="gate only this run id (repeatable)")
    args = parser.parse_args(argv)

    path = history_path(args.history)
    if not path.exists():
        print(f"check_regression: no history ledger at {path}",
              file=sys.stderr)
        return 2
    report = detect_regressions(path, window=args.window,
                                warn_factor=args.warn,
                                fail_factor=args.fail, runs=args.run)
    print(report.render())
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
