#!/usr/bin/env python3
"""Validate a trace file written by ``python -m repro.bench --trace``.

Checks the Chrome ``trace_event`` JSON (or ``.jsonl`` span-log) schema
that ``repro.obs.export`` promises:

* Chrome: a ``traceEvents`` list where every record carries
  ``name``/``ph``/``ts``/``pid``/``tid``, complete (``"X"``) events
  carry a non-negative ``dur``, and instants carry a scope ``s``;
* JSONL: every line parses as JSON and is a span (with
  ``span_id``/``start_ns``/``end_ns``) or an event (with ``ts_ns``).

``--require NAME`` (repeatable) additionally demands at least one
record with that name — the run-all smoke job uses it to pin the
acceptance triple: a coordinator policy switch, a simulator phase
span and a service request span on one timeline.

Exit status is non-zero when any problem is found.

Usage:  python scripts/check_trace.py TRACE [--require NAME ...]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def check_chrome(data: object, problems: list[str]) -> list[str]:
    """Validate Chrome trace_event object format; returns seen names."""
    names: list[str] = []
    if not isinstance(data, dict) or not isinstance(
            data.get("traceEvents"), list):
        problems.append("top level is not {'traceEvents': [...]}")
        return names
    for i, ev in enumerate(data["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        # Metadata records ("M": process/thread names) carry no ts.
        required = (("name", "ph", "pid", "tid") if ph == "M"
                    else ("name", "ph", "ts", "pid", "tid"))
        for key in required:
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0")
        elif ph == "i":
            if ev.get("s") not in ("g", "p", "t"):
                problems.append(f"{where}: instant needs scope s in g/p/t")
        elif ph != "M":
            problems.append(f"{where}: unexpected ph {ph!r}")
        if isinstance(ev.get("ts"), (int, float)) and ev["ts"] < 0:
            problems.append(f"{where}: negative ts")
        if ph != "M":
            names.append(ev.get("name", ""))
    return names


def check_jsonl(text: str, problems: list[str]) -> list[str]:
    """Validate the JSONL span log; returns seen names."""
    names: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not JSON ({exc})")
            continue
        kind = rec.get("type")
        if kind == "span":
            for key in ("name", "span_id", "start_ns", "end_ns"):
                if key not in rec:
                    problems.append(f"{where}: span missing {key!r}")
        elif kind == "event":
            for key in ("name", "ts_ns"):
                if key not in rec:
                    problems.append(f"{where}: event missing {key!r}")
        else:
            problems.append(f"{where}: type must be span/event, got {kind!r}")
        names.append(rec.get("name", ""))
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span/event with this name exists")
    args = parser.parse_args(argv)

    try:
        text = args.trace.read_text()
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    problems: list[str] = []
    if args.trace.suffix == ".jsonl":
        names = check_jsonl(text, problems)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{args.trace}: not valid JSON ({exc})", file=sys.stderr)
            return 1
        names = check_chrome(data, problems)

    seen = set(names)
    for want in args.require:
        if want not in seen:
            problems.append(f"required name {want!r} absent from the trace")

    for p in problems[:40]:
        print(f"PROBLEM: {p}", file=sys.stderr)
    if len(problems) > 40:
        print(f"... and {len(problems) - 40} more", file=sys.stderr)
    if problems:
        return 1
    print(f"{args.trace}: OK ({len(names)} records, "
          f"{len(seen)} distinct names)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
