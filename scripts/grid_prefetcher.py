"""Grid search prefetcher ramp knobs against the paper's target bands."""
import itertools

from repro.simulator import HardwareConfig, simulate
from repro.trace import Workload, isal_trace, IsalVariant

VOL = 192 * 1024


def run(wl, hw):
    traces = [isal_trace(wl, hw.cpu, IsalVariant(), thread=t) for t in range(wl.nthreads)]
    return simulate(traces, hw)


def evaluate(thr, ramp, maxd):
    hw0 = HardwareConfig().with_prefetcher(train_threshold=thr, ramp_div=ramp,
                                           max_distance=maxd)
    out = {}
    wl3 = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=VOL)
    pm_off = run(wl3, hw0.with_prefetcher(enabled=False, train_threshold=thr,
                                          ramp_div=ramp, max_distance=maxd)).throughput_gbps
    pm_on = run(wl3, hw0).throughput_gbps
    dr_off = run(wl3, hw0.with_(load_source="dram").with_prefetcher(
        enabled=False, train_threshold=thr, ramp_div=ramp, max_distance=maxd)).throughput_gbps
    dr_on = run(wl3, hw0.with_(load_source="dram")).throughput_gbps
    out["pm_gain"] = pm_on / pm_off - 1
    out["dram_gain"] = dr_on / dr_off - 1
    out["ratio"] = dr_off / pm_off
    wl24 = lambda bs: Workload(k=24, m=4, block_bytes=bs, data_bytes_per_thread=VOL)
    for bs, tag in ((256, "b256"), (512, "b512"), (1024, "b1k"), (4096, "b4k")):
        r_on = run(wl24(bs), hw0)
        r_off = run(wl24(bs), hw0.with_prefetcher(enabled=False, train_threshold=thr,
                                                  ramp_div=ramp, max_distance=maxd))
        out[f"{tag}_gain"] = r_on.throughput_gbps / r_off.throughput_gbps - 1
        out[f"{tag}_amp"] = r_on.counters.media_read_amplification
    # Fig 5 stage-i contrast at 4KB
    k4 = run(Workload(k=4, m=4, block_bytes=4096, data_bytes_per_thread=VOL), hw0).throughput_gbps
    k24 = run(Workload(k=24, m=4, block_bytes=4096, data_bytes_per_thread=VOL), hw0).throughput_gbps
    out["k4_vs_k24"] = k4 / k24
    return out


def score(o):
    checks = [
        0.30 <= o["pm_gain"] <= 0.75,
        0.80 <= o["dram_gain"] <= 1.40,
        2.5 <= o["ratio"] <= 4.0,
        o["b256_gain"] < 0.15 and o["b256_amp"] <= 1.3,
        o["b512_gain"] < 0.30 and o["b512_amp"] <= 1.5,
        0.30 <= o["b1k_gain"] <= 1.2 and 1.10 <= o["b1k_amp"] <= 1.55,
        o["b4k_amp"] <= 1.02,
        o["k4_vs_k24"] < 0.80,
    ]
    return sum(checks), checks


for thr, ramp, maxd in itertools.product((3, 4, 5, 6, 8), (1, 2, 3), (8, 16)):
    o = evaluate(thr, ramp, maxd)
    s, checks = score(o)
    print(f"thr={thr} ramp={ramp} maxd={maxd}: score={s}/8 "
          f"pm={o['pm_gain']:+.0%} dram={o['dram_gain']:+.0%} ratio={o['ratio']:.1f} "
          f"b256={o['b256_gain']:+.0%}/{o['b256_amp']:.2f} "
          f"b512={o['b512_gain']:+.0%}/{o['b512_amp']:.2f} "
          f"b1k={o['b1k_gain']:+.0%}/{o['b1k_amp']:.2f} "
          f"b4k_amp={o['b4k_amp']:.2f} k4/k24={o['k4_vs_k24']:.2f} "
          f"{''.join('.' if c else 'X' for c in checks)}")
