"""Calibration scratchpad: check Obs. 1-5 shapes emerge from the simulator.

Run:  python scripts/calibrate_obs.py
"""
import time

from repro.simulator import HardwareConfig, simulate
from repro.simulator.params import CPUConfig
from repro.trace import Workload, isal_trace, IsalVariant

HW = HardwareConfig()
VOL = 256 * 1024


def run(wl, hw, variant=IsalVariant()):
    traces = [isal_trace(wl, hw.cpu, variant, thread=t) for t in range(wl.nthreads)]
    return simulate(traces, hw)


def fig3():
    print("== Fig 3: RS(12,8) k=8 m=4 1KB, load source x prefetch ==")
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=VOL)
    for src in ("pm", "dram"):
        for pf in (False, True):
            hw = HW.with_(load_source=src).with_prefetcher(enabled=pf)
            r = run(wl, hw)
            print(f"  {src:4s} pf={pf!s:5s}: {r.throughput_gbps:6.2f} GB/s  "
                  f"stall/load={r.counters.avg_load_latency_ns:6.1f}ns")


def fig5():
    print("== Fig 5: k sweep, m=4, 4KB blocks ==")
    for k in (4, 8, 12, 16, 24, 32, 36, 48, 64):
        wl = Workload(k=k, m=4, block_bytes=4096, data_bytes_per_thread=VOL)
        r = run(wl, HW)
        c = r.counters
        print(f"  k={k:3d}: {r.throughput_gbps:6.2f} GB/s  "
              f"useless={c.useless_hwpf_ratio:5.2f} pf/load={c.hwpf_per_load:5.2f}")


def fig6():
    print("== Fig 6: RS(28,24) block size sweep ==")
    for bs in (256, 512, 1024, 2048, 3072, 4096, 5120):
        wl = Workload(k=24, m=4, block_bytes=bs, data_bytes_per_thread=VOL)
        r_on = run(wl, HW)
        r_off = run(wl, HW.with_prefetcher(enabled=False))
        print(f"  bs={bs:5d}: pf_on={r_on.throughput_gbps:6.2f} "
              f"pf_off={r_off.throughput_gbps:6.2f} GB/s  "
              f"amp_on={r_on.counters.media_read_amplification:5.2f}")


def fig7():
    print("== Fig 7: RS(28,24) 1KB multithread ==")
    for nt in (1, 2, 4, 8, 12, 16, 18):
        wl = Workload(k=24, m=4, block_bytes=1024, nthreads=nt,
                      data_bytes_per_thread=VOL // 2)
        t0 = time.time()
        r_on = run(wl, HW)
        r_off = run(wl, HW.with_prefetcher(enabled=False))
        print(f"  nt={nt:2d}: on={r_on.throughput_gbps:6.2f} "
              f"off={r_off.throughput_gbps:6.2f} GB/s "
              f"amp_on={r_on.counters.media_read_amplification:5.2f} "
              f"({time.time()-t0:4.1f}s)")


def fig4():
    print("== Fig 4: frequency sweep, RS(12,8) ==")
    for ghz in (1.2, 1.8, 2.4, 3.0, 3.3):
        for src in ("pm", "dram"):
            wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=VOL)
            hw = HW.with_(load_source=src).with_cpu(freq_ghz=ghz)
            r = run(wl, hw)
            print(f"  {ghz:3.1f}GHz {src:4s}: {r.throughput_gbps:6.2f} GB/s")


if __name__ == "__main__":
    t0 = time.time()
    fig3(); fig5(); fig6(); fig7(); fig4()
    print(f"total {time.time()-t0:.1f}s")
