#!/usr/bin/env bash
# Full reproduction pipeline: install, test, regenerate every figure,
# rebuild the reports. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== unit / property / integration tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== figure benchmarks (writes benchmarks/results/) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== paper-vs-measured report =="
python scripts/make_experiments_md.py

echo "== API reference =="
python scripts/gen_api_docs.py

echo "all done"
