#!/usr/bin/env bash
# Full reproduction pipeline: install, test, regenerate every figure,
# rebuild the reports. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== unit / property / integration tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== strict deprecation job (shimmed warnings allowlisted) =="
# Internal code must be off the pre-1.1 API: any stock DeprecationWarning
# is an error, while the repo's own shim warnings (exercised on purpose
# by the shim round-trip tests) stay allowed.
python -m pytest tests/ -q \
    -W error::DeprecationWarning \
    -W "default::repro._deprecation.ReproDeprecationWarning" \
    2>&1 | tee strict_warnings_output.txt

echo "== lint (ruff, skipped when unavailable) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests examples
else
    echo "ruff not installed; skipping lint"
fi

echo "== trace smoke job (bench --trace + schema check) =="
# A tiny traced bench run must produce a valid Chrome trace_event file
# carrying the acceptance triple on one timeline: a coordinator policy
# switch, a simulator phase span and a service request span.
python -m repro.bench service --trace trace_smoke.json
python scripts/check_trace.py trace_smoke.json \
    --require coordinator.policy_switch \
    --require sim.chunk \
    --require service.request

echo "== audit smoke job (decision ledger + counterfactual regret replay) =="
# A fig-10-style adaptive episode must yield a fully-evidenced decision
# ledger whose counterfactual replay scores every switch against the
# per-window oracle, byte-identically across reruns; the exported trace
# must carry the decision.* instants on the shared timeline.
python -m repro.bench audit --seed 0 --trace audit_trace.json
python scripts/check_trace.py audit_trace.json \
    --require decision.evaluated \
    --require decision.switch

echo "== bench sweep smoke job (parallel ≡ serial ≡ warm, perf baseline) =="
# The smoke grid runs serial, parallel (--workers 2) and warm-cache and
# exits non-zero unless all three produce bit-identical results; the
# report doubles as the parallel-speedup perf baseline.
python -m repro.bench sweep --grid smoke --workers 2 --json BENCH_sweep.json

echo "== perf-regression gate (rolling baseline over BENCH_history.jsonl) =="
# Every bench invocation above appended to the history ledger; the gate
# fails when any gated metric of the latest entries exceeds 150% of its
# rolling baseline (warns past 110% — the coordinator's own thresholds).
python scripts/check_regression.py

echo "== overload smoke job (graceful degradation, byte-identical reruns) =="
# The overload scenario's own shape checks pin the acceptance triple:
# retry-budget goodput holds while the no-budget counterfactual
# collapses, every durability audit is clean, and brownout engages AND
# disengages. The run must also be byte-identical across two
# invocations and emit the overload.* trace events.
python -m repro.bench overload --seed 0 --out overload_run_a \
    --trace overload_trace.json
python -m repro.bench overload --seed 0 --out overload_run_b --no-history
diff overload_run_a/overload_scenario.txt overload_run_b/overload_scenario.txt
python scripts/check_trace.py overload_trace.json \
    --require overload.shed \
    --require overload.brownout_enter \
    --require overload.brownout_exit

echo "== fastforward smoke job (exact steady-state skip, >=5x speedup) =="
# The scenario's own shape checks gate the contract (non-zero exit on
# failure): fast-forwarded runs byte-identical to the interpreter on
# every workload, >= 5x wall-clock on the long fig10-style encode,
# graceful full-interpretation fallback on the aperiodic update trace.
# Wall-clock columns legitimately vary between reruns, so the rerun
# diff compares the deterministic projection: check verdicts (stripped
# of timing details) and the simulated skip/jump counts.
python -m repro.bench fastforward --seed 0 --out ff_run_a \
    --trace ff_trace.json
python -m repro.bench fastforward --seed 0 --out ff_run_b --no-history
for d in ff_run_a ff_run_b; do
    sed -E -n 's/ \[[^]]*\]$//; /\[(PASS|FAIL)\]/p' \
        "$d/fastforward_scenario.txt" > "$d/verdicts.txt"
    grep -E "^(encode_|decode_|update_)" "$d/fastforward_scenario.txt" \
        | awk '{print $1, $5, $6, $7, $8}' > "$d/periods.txt"
done
diff ff_run_a/verdicts.txt ff_run_b/verdicts.txt
diff ff_run_a/periods.txt ff_run_b/periods.txt
grep -q "\[PASS\] long encode fast-forward speedup" \
    ff_run_a/fastforward_scenario.txt
python scripts/check_trace.py ff_trace.json \
    --require sim.fastforward

echo "== chaos smoke job (seeded campaign, durability audit must be clean) =="
# A short seeded chaos campaign must end with zero acknowledged-write
# loss; the scenario's own shape checks fail the run otherwise (exit 1).
python -m repro.bench chaos --seed 0

echo "== crash smoke job (exhaustive crash-point enumeration + tearing) =="
# Every flush/fence boundary of the smoke and degraded scenarios is
# power-cut, recovered and checked against the four recovery
# invariants; any write hole or lost acknowledged byte exits non-zero,
# as does any byte-level divergence between two identically-seeded runs.
python -m repro.bench crash --seed 0

echo "== slow campaigns (soak tests deselected from tier-1) =="
python -m pytest tests/ -m slow 2>&1 | tee slow_output.txt

echo "== figure benchmarks (writes benchmarks/results/) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== paper-vs-measured report =="
python scripts/make_experiments_md.py

echo "== API reference =="
python scripts/gen_api_docs.py

echo "all done"
