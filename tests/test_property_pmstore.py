"""Property-based tests: the store's reliability loop under fault storms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pmstore import FaultInjector, PMStore, Scrubber


@st.composite
def store_and_faults(draw):
    k = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=3))
    nobjects = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    # faults per stripe kept within the repair budget m
    faults_per_stripe = draw(st.integers(min_value=0, max_value=m))
    return k, m, nobjects, seed, faults_per_stripe


@given(store_and_faults())
@settings(max_examples=25, deadline=None)
def test_scrub_restores_everything_within_budget(case):
    """Any mix of silent corruption and block loss, at most m per
    stripe, must be fully repairable — and every object must read back
    bit-exactly afterwards."""
    k, m, nobjects, seed, per_stripe = case
    rng = np.random.default_rng(seed)
    store = PMStore(k, m, block_bytes=256)
    originals = {}
    for i in range(nobjects):
        key = f"o{i}"
        val = rng.integers(0, 256, int(rng.integers(1, 900)),
                           dtype=np.uint8).tobytes()
        store.put_sharded(key, val)
        originals[key] = val
    inj = FaultInjector(store, seed=seed)
    total = k + store.parity_blocks
    for sid in range(store.num_stripes):
        victims = rng.choice(total, size=per_stripe, replace=False)
        for b in victims:
            if rng.random() < 0.5:
                inj.bit_flip(stripe=sid, block=int(b))
            else:
                inj.block_loss(stripe=sid, block=int(b))
    report = Scrubber(store).scrub()
    assert not report.unrepairable_stripes
    for key, val in originals.items():
        assert store.get_sharded(key) == val
    assert Scrubber(store).scrub().clean


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_overbudget_damage_is_reported_not_hidden(seed, k, m):
    """More than m corrupt blocks in one stripe must surface as
    unrepairable, never as silent wrong data."""
    rng = np.random.default_rng(seed)
    store = PMStore(k, m, block_bytes=256)
    store.put("x", rng.integers(0, 256, 200, dtype=np.uint8).tobytes())
    inj = FaultInjector(store, seed=seed)
    victims = rng.choice(k + m, size=m + 1, replace=False)
    for b in victims:
        inj.bit_flip(stripe=0, block=int(b), nbits=2)
    report = Scrubber(store).scrub()
    assert report.unrepairable_stripes == [0]


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_store_roundtrip_random_objects(seed):
    rng = np.random.default_rng(seed)
    store = PMStore(4, 2, block_bytes=512)
    live = {}
    for i in range(12):
        action = rng.integers(3)
        key = f"k{int(rng.integers(5))}"
        if action == 0 or key not in live:
            val = rng.integers(0, 256, int(rng.integers(0, 1500)),
                               dtype=np.uint8).tobytes()
            store.put_sharded(key, val)
            live[key] = val
        elif action == 1:
            assert store.get_sharded(key) == live[key]
        else:
            store.delete(key)
            del live[key]
    for key, val in live.items():
        assert store.get_sharded(key) == val
