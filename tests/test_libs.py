"""Unit tests for the library facades (functional + performance)."""

import numpy as np
import pytest

from repro import (
    ISAL, ISALDecompose, Zerasure, Cerasure, DialgaEncoder,
    HardwareConfig, Workload, UnsupportedWorkload,
)

HW = HardwareConfig()
WL = Workload(k=6, m=3, block_bytes=1024, data_bytes_per_thread=32 * 1024)


def _data(k, blen=1024, seed=0):
    return np.random.default_rng(seed).integers(0, 256, (k, blen)).astype(np.uint8)


ALL_LIBS = [
    lambda: ISAL(6, 3),
    lambda: ISALDecompose(6, 3, group_size=4),
    lambda: Zerasure(6, 3),
    lambda: Cerasure(6, 3),
    lambda: DialgaEncoder(6, 3, use_probe=False),
]


@pytest.fixture(params=ALL_LIBS, ids=["isal", "isald", "zerasure", "cerasure", "dialga"])
def lib(request):
    return request.param()


def test_encode_decode_roundtrip(lib):
    """Every library must actually be a working MDS erasure code."""
    data = _data(6)
    parity = lib.encode(data)
    assert parity.shape == (3, 1024)
    blocks = {i: data[i] for i in range(6)}
    blocks.update({6 + i: parity[i] for i in range(3)})
    erased = [0, 4, 7]
    avail = {i: b for i, b in blocks.items() if i not in erased}
    out = lib.decode(avail, erased)
    for e in erased:
        assert np.array_equal(out[e], blocks[e]), (lib.name, e)


def test_run_produces_throughput(lib):
    res = lib.run(WL, HW)
    assert res.throughput_gbps > 0
    assert res.sim.counters.loads > 0
    assert res.library == lib.name


def test_all_libraries_agree_with_isal_where_applicable():
    """ISA-L, ISA-L-D and DIALGA share the same generator: identical parity."""
    data = _data(6, seed=3)
    want = ISAL(6, 3).encode(data)
    assert np.array_equal(ISALDecompose(6, 3, group_size=4).encode(data), want)
    assert np.array_equal(DialgaEncoder(6, 3).encode(data), want)


def test_xor_libs_internally_consistent():
    """Zerasure/Cerasure use their own searched matrices; their schedule
    execution must match GF matmul with that matrix."""
    from repro.gf import gf8
    for lib in (Zerasure(5, 2), Cerasure(5, 2)):
        data = _data(5, seed=4)
        got = lib.encode(data)
        want = gf8.matmul(lib.code.parity, data)
        assert np.array_equal(got, want), lib.name


def test_zerasure_unsupported_wide_stripe():
    z = Zerasure(48, 4, budget=300)
    wl = Workload(k=48, m=4, block_bytes=1024, data_bytes_per_thread=98304)
    assert not z.supports(wl)
    with pytest.raises(UnsupportedWorkload):
        z.run(wl, HW)


def test_xor_libs_force_avx256():
    z = Zerasure(6, 3)
    wl = z.effective_workload(WL)
    assert wl.simd == "avx256"
    assert Cerasure(6, 3).effective_workload(WL).simd == "avx256"


def test_cerasure_decomposes_only_wide():
    assert not Cerasure(6, 3).decomposes
    assert Cerasure(48, 4).decomposes


def test_cerasure_wide_trace_has_parity_reload():
    c = Cerasure(48, 4, group_size=16)
    wl = Workload(k=48, m=4, block_bytes=1024,
                  data_bytes_per_thread=48 * 1024)
    trace = c.trace(wl, HW, thread=0)
    counts = trace.counts()
    L = 16
    # 3 groups -> parity stored 3x and reloaded 2x per stripe.
    assert counts["STORE"] == 3 * 4 * L
    # loads include 2 parity reload passes
    from repro.trace import LOAD
    lay_loads = counts["LOAD"]
    assert lay_loads > 2 * 4 * L  # at least the reloads


def test_isal_decompose_narrow_passthrough():
    lib = ISALDecompose(6, 3, group_size=16)
    t = lib.trace(WL, HW, 0)
    base = ISAL(6, 3).trace(WL, HW, 0)
    assert t.counts() == base.counts()


def test_decode_trace_loads_k_blocks():
    wl = Workload(k=6, m=3, op="decode", erasures=2, block_bytes=1024,
                  data_bytes_per_thread=12 * 1024)
    for lib in (ISAL(6, 3), Zerasure(6, 3), Cerasure(6, 3)):
        t = lib.trace(wl, HW, 0)
        assert t.data_bytes == wl.stripes_per_thread * 6 * 1024


def test_decode_slower_than_encode_for_xor_libs():
    """The paper's Fig. 14 mechanism: decode bitmatrices are denser."""
    z = Zerasure(8, 4)
    enc = z.code.encode_schedule
    dec = z.code.decode_schedule(4)
    assert dec.xor_count / 4 > enc.xor_count / 4 * 0.9  # not cheaper
    wl_e = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=64 * 1024)
    wl_d = wl_e.with_(op="decode", erasures=4)
    r_e = z.run(wl_e, HW)
    r_d = z.run(wl_d, HW)
    assert r_d.throughput_gbps < r_e.throughput_gbps


def test_library_result_properties():
    res = ISAL(6, 3).run(WL, HW)
    assert res.throughput_gbps == pytest.approx(res.sim.throughput_gbps)
