"""Crash-consistent PMStore: WAL transactions, recovery, the harness,
and the service/chaos integration of power cuts."""

import numpy as np
import pytest

from repro.chaos import CANNED_CAMPAIGNS, DurabilityAuditor
from repro.chaos.campaign import ChaosAction
from repro.chaos.engine import CampaignEngine
from repro.crash import (
    CrashInjector,
    PowerCut,
    ServiceRecovery,
    check_all,
    degraded_scenario,
    smoke_scenario,
    soak_scenario,
)
from repro.crash.injector import _Boundary
from repro.pmstore import FaultInjector, PMStore, seeded_line_policy
from repro.service import ErasureCodingService, put_wave


def _store(**kw):
    kw.setdefault("pm_capacity_bytes", 1 << 20)
    kw.setdefault("wal_capacity_bytes", 1 << 20)
    return PMStore(3, 2, block_bytes=256, **kw)


# -- store-level crash + recovery --------------------------------------------


def test_acked_put_survives_crash_and_recover():
    store = _store()
    store.put("a", b"alpha" * 50)
    store.put("b", b"beta" * 40)
    store.delete("a")
    store.crash()
    assert store.keys() == []          # volatile state gone
    rep = store.recover()
    assert rep.txns_seen == 3
    assert sorted(store.keys()) == ["b"]
    assert store.get("b") == b"beta" * 40


def test_update_survives_crash_with_delta_parity():
    store = _store()
    store.put("k", b"\x11" * 500)
    store.update("k", b"\x22" * 500)
    store.crash()
    store.recover()
    assert store.get("k") == b"\x22" * 500
    assert not store.verify_stripe(0)  # data and parity agree


def test_stats_and_checksums_move_only_after_commit():
    """Satellite: a put interrupted before its commit record leaves
    stats untouched — torn writes are never counted as bytes written."""
    store = _store()
    store.put("pre", b"x" * 100)
    base_bytes = store.stats.bytes_written
    boundary = _Boundary(target=None)
    store.domain.persist_hooks.append(boundary)
    store.wal.domain.persist_hooks.append(boundary)
    boundary.count = 0
    boundary.target = 6   # cut mid-way through the next transaction
    boundary.armed = True
    with pytest.raises(PowerCut):
        store.put("torn", b"y" * 200)
    assert store.stats.puts == 1                      # only the acked one
    assert store.stats.bytes_written == base_bytes    # no torn bytes
    assert "torn" not in store.keys()


def test_recovery_is_idempotent_fixed_point():
    store = _store()
    for i in range(4):
        store.put(f"o{i}", bytes([i]) * (100 + 60 * i))
    store.update("o2", b"\x77" * 220)
    store.crash()
    store.recover()
    d1 = store.state_digest()
    store.recover()
    assert store.state_digest() == d1


def test_recover_preserves_loss_marks_across_crash():
    store = _store()
    store.put("a", b"q" * 600)
    store.mark_lost(0, 1)
    store.crash()
    store.recover()
    assert store.lost_blocks(0) == frozenset({1})
    assert store.get("a") == b"q" * 600   # degraded read still works
    assert store.stats.degraded_reads == 1


def test_overwrite_crash_leaves_old_or_new_never_neither():
    """An acked value stays readable until the overwriting transaction
    commits: cut at every boundary of the overwrite and read back."""
    old, new = b"\xAA" * 300, b"\xBB" * 300
    boundary_count = None
    i = 0
    while boundary_count is None or i < boundary_count:
        store = _store()
        store.put("k", old)
        boundary = _Boundary(target=i)
        store.domain.persist_hooks.append(boundary)
        store.wal.domain.persist_hooks.append(boundary)
        try:
            store.put("k", new)
            if boundary_count is None:
                boundary_count = boundary.count
            boundary.armed = False
        except PowerCut:
            boundary.armed = False
            store.crash()
            store.recover()
            assert store.get("k") in (old, new)
        i += 1
    assert boundary_count and boundary_count > 4


def test_wal_transactions_cover_sharded_manifest():
    store = _store()
    big = bytes(range(256)) * 8   # spans multiple stripes
    store.put_sharded("big", big)
    store.crash()
    store.recover()
    assert store.get("big") == big


# -- the crash-point harness -------------------------------------------------


def test_smoke_enumeration_passes_all_invariants():
    injector = CrashInjector(smoke_scenario(0))
    report = injector.enumerate_all(limit=40)
    assert report.points_run == 40
    assert report.all_passed, "\n".join(report.failures)
    assert report.boundaries_total >= 100   # acceptance floor


def test_tear_rounds_pass_and_are_deterministic():
    injector = CrashInjector(smoke_scenario(0))
    r1 = injector.tear_points(8, seed=3)
    r2 = CrashInjector(smoke_scenario(0)).tear_points(8, seed=3)
    assert r1.all_passed, "\n".join(r1.failures)
    assert r1.summary() == r2.summary()
    assert r1.summary() != CrashInjector(
        smoke_scenario(0)).tear_points(8, seed=4).summary()


def test_degraded_scenario_composes_crashes_with_erasures():
    report = CrashInjector(degraded_scenario(0)).enumerate_all(limit=30)
    assert report.all_passed, "\n".join(report.failures)


def test_invariant_checker_flags_a_real_write_hole():
    """Poke a raw hole (data changed, parity not) and the consistency
    invariant must fail — the oracle is not vacuous."""
    store = _store()
    store.put("k", b"\x55" * 500)
    store._stripes[0].data[0][:8] = 99   # bypass WAL and checksums
    results = {r.name: r for r in check_all(store, {})}
    assert not results["data_parity_consistency"].passed
    assert not results["checksum_validity"].passed


# -- service-level recovery --------------------------------------------------


def _loaded_service(n=6):
    svc = ErasureCodingService(3, 2, block_bytes=256)
    auditor = DurabilityAuditor()
    svc.submit_many(put_wave(2, n // 2, payload_bytes=400, seed=5))
    auditor.observe(svc.drain())
    return svc, auditor


def test_service_power_cut_recovers_and_accounts():
    svc, auditor = _loaded_service()
    acked = len(auditor.acknowledged_keys)
    assert acked > 0
    clock_before = svc.clock_ns
    episode = ServiceRecovery(svc, auditor=auditor).power_cut()
    assert episode.clean
    assert episode.acked_checked == acked
    assert episode.acked_intact == acked
    assert episode.txns_replayed == acked
    assert svc.clock_ns > clock_before                  # outage costs time
    snap = svc.metrics.snapshot()["counters"]
    assert snap["power_cuts"] == 1
    assert snap["wal_txns_replayed"] == acked
    for key in auditor.acknowledged_keys:               # service still serves
        assert svc.store.get(key)


def test_service_power_cut_requeues_unacked_requests():
    svc, auditor = _loaded_service()
    extra = put_wave(1, 2, payload_bytes=300, seed=9)
    svc.submit_many(extra)                              # submitted, not drained
    episode = ServiceRecovery(svc, auditor=auditor).power_cut()
    assert episode.requests_requeued == len(extra)
    results = svc.drain()                               # the retries land
    assert all(r.ok for r in results)
    assert all(r.request.arrival_ns >= episode.at_ns for r in results)


def test_service_power_cut_with_tearing_policy_stays_clean():
    svc, auditor = _loaded_service()
    episode = ServiceRecovery(svc, auditor=auditor).power_cut(
        seeded_line_policy(np.random.default_rng(11)))
    assert episode.clean


# -- chaos integration -------------------------------------------------------


def test_power_cut_action_validation():
    ChaosAction(at_ns=1e6, kind="power_cut", policy="tear")
    with pytest.raises(ValueError, match="drop|keep|tear"):
        ChaosAction(at_ns=1e6, kind="power_cut", policy="zap")
    line = ChaosAction(at_ns=1e6, kind="power_cut", policy="keep").describe()
    assert "policy=keep" in line


def test_power_cycle_campaign_is_clean_and_deterministic():
    r1 = CampaignEngine(CANNED_CAMPAIGNS["power_cycle"](seed=0)).run()
    assert r1.durability_clean
    assert r1.faults.get("power_cut") == 2
    assert r1.counters.get("power_cuts") == 2
    assert r1.counters.get("wal_txns_replayed", 0) > 0
    r2 = CampaignEngine(CANNED_CAMPAIGNS["power_cycle"](seed=0)).run()
    assert r1.render() == r2.render()


# -- per-site fault seeding (satellite) --------------------------------------


def _two_stores():
    out = []
    for _ in range(2):
        store = _store()
        for i in range(4):
            store.put(f"o{i}", bytes([40 + i]) * 500)
        out.append(store)
    return out


def test_fault_targets_independent_of_call_order():
    """A bit_flip's target must not depend on how many other fault
    kinds ran first — per-site RNG streams, not one shared cursor."""
    s1, s2 = _two_stores()
    inj1, inj2 = FaultInjector(s1, seed=7), FaultInjector(s2, seed=7)
    inj2.scribble()                     # extra draw on another site
    inj2.block_loss()
    ev1, ev2 = inj1.bit_flip(), inj2.bit_flip()
    assert (ev1.stripe, ev1.block) == (ev2.stripe, ev2.block)


def test_fault_streams_still_differ_across_seeds():
    s1, s2 = _two_stores()
    inj1, inj2 = FaultInjector(s1, seed=1), FaultInjector(s2, seed=2)
    seq1 = [(e.stripe, e.block) for e in (inj1.bit_flip() for _ in range(6))]
    seq2 = [(e.stripe, e.block) for e in (inj2.bit_flip() for _ in range(6))]
    assert seq1 != seq2


# -- full-enumeration soak (slow) --------------------------------------------


@pytest.mark.slow
def test_soak_full_enumeration_all_scenarios():
    """Exhaustive crash-point enumeration plus tear rounds over every
    shipped scenario — the long-haul proof behind the smoke gate."""
    for scenario in (smoke_scenario(0), degraded_scenario(0),
                     soak_scenario(0)):
        report = CrashInjector(scenario).campaign(tear_rounds=60, seed=0)
        assert report.all_passed, "\n".join(report.failures[:10])
        assert report.points_run == report.boundaries_total + 60
