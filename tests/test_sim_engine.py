"""Unit tests for the execution engine and memory backends."""

import pytest

from repro.simulator import (
    Counters,
    DRAMBackend,
    HardwareConfig,
    PMBackend,
    run_single,
    simulate,
)
from repro.trace.ops import LOAD, STORE, SWPF, COMPUTE, FENCE, Trace

HW = HardwareConfig()


def _trace(ops, data_bytes=0):
    return Trace(ops=list(ops), data_bytes=data_bytes)


# -- backends -----------------------------------------------------------------

def test_dram_fill_latency_and_traffic():
    c = Counters()
    d = DRAMBackend(HW.dram, c)
    qd, lat, dlat = d.fill_line(0, 0.0, demand=True)
    assert qd == 0.0
    assert lat == HW.dram.latency_ns
    assert c.ctrl_read_bytes == 64


def test_dram_bandwidth_queueing():
    c = Counters()
    d = DRAMBackend(HW.dram, c)
    # Saturate the pipe with back-to-back same-time requests.
    delays = [d.fill_line(i * 64, 0.0, demand=True)[0] for i in range(10)]
    assert delays[0] == 0.0
    assert delays[-1] > delays[1] > 0.0


def test_pm_fill_miss_then_buffer_hit():
    c = Counters()
    p = PMBackend(HW.pm, c)
    _, lat1, _ = p.fill_line(0, 0.0, demand=True)
    assert lat1 == HW.pm.media_latency_ns
    _, lat2, dlat2 = p.fill_line(64, 1000.0, demand=True)  # same XPLine
    assert dlat2 == lat2
    assert lat2 == HW.pm.buffer_hit_latency_ns
    assert c.media_read_bytes == 256
    assert c.ctrl_read_bytes == 128


def test_pm_write_and_drain():
    c = Counters()
    p = PMBackend(HW.pm, c)
    p.write_line(0, 0.0)
    assert c.write_bytes == 64
    assert p.drain_writes(0.0) > 0.0


# -- engine --------------------------------------------------------------------

def test_cold_load_pays_memory_latency():
    t = _trace([(LOAD, 0)])
    finish, c = run_single(t, HW)
    assert c.loads == 1 and c.load_misses == 1
    # latency/mlp is charged as stall
    assert c.load_stall_ns == pytest.approx(HW.pm.media_latency_ns / HW.pm.mlp)


def test_buffer_hit_second_line():
    t = _trace([(LOAD, 0), (LOAD, 64)])
    _, c = run_single(t, HW)
    assert c.buffer_hits == 1
    assert c.media_read_bytes == 256  # one XPLine for both lines


def test_repeat_load_hits_cache():
    t = _trace([(LOAD, 0), (LOAD, 0)])
    _, c = run_single(t, HW)
    assert c.load_cache_hits == 1
    assert c.load_misses == 1


def test_compute_advances_clock():
    t = _trace([(COMPUTE, 330.0)])  # 330 cycles @3.3GHz = 100ns
    finish, c = run_single(t, HW)
    assert finish == pytest.approx(100.0)
    assert c.compute_ns == pytest.approx(100.0)


def test_avx256_doubles_compute():
    t = _trace([(COMPUTE, 330.0)])
    finish, _ = run_single(t, HW.with_cpu(simd="avx256"))
    assert finish == pytest.approx(200.0)


def test_swpf_hides_latency_with_enough_lead():
    # prefetch, then compute longer than the (deprioritized) prefetch
    # fill latency, then load
    lead_cycles = (HW.pm.media_latency_ns * HW.pm.prefetch_latency_factor
                   + 100) * HW.cpu.freq_ghz
    t = _trace([(SWPF, 0), (COMPUTE, lead_cycles), (LOAD, 0)])
    _, c = run_single(t, HW)
    assert c.load_cache_hits == 1
    assert c.swpf_issued == 1
    assert c.load_stall_ns == 0.0


def test_swpf_late_partial_stall():
    # load immediately after prefetch: only residual latency is paid
    t = _trace([(SWPF, 0), (LOAD, 0)])
    _, c = run_single(t, HW)
    assert c.load_late_prefetch == 1
    assert c.swpf_late == 1
    limit = HW.pm.media_latency_ns * HW.pm.prefetch_latency_factor
    assert 0 < c.load_stall_ns < limit


def test_hw_prefetch_issue_and_useful():
    # Sequential walk over one page: streamer trains and covers lines.
    ops = [(LOAD, i * 64) for i in range(32)]
    _, c = run_single(_trace(ops), HW)
    assert c.hwpf_issued > 0
    assert c.hwpf_useful > 0
    assert c.load_cache_hits > 0


def test_hw_prefetch_disabled_no_issue():
    ops = [(LOAD, i * 64) for i in range(32)]
    _, c = run_single(_trace(ops), HW.with_prefetcher(enabled=False))
    assert c.hwpf_issued == 0
    assert c.load_cache_hits == 0


def test_store_counted_and_fence_waits():
    t = _trace([(STORE, 0), (FENCE, 0)])
    finish, c = run_single(t, HW)
    assert c.stores == 1
    assert finish >= 64 / HW.pm.write_bw_gbps  # at least the write occupancy


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError):
        run_single(_trace([(99, 0)]), HW)


def test_dram_source_uses_dram_latency():
    hw = HW.with_(load_source="dram")
    t = _trace([(LOAD, 0)])
    _, c = run_single(t, hw)
    assert c.load_stall_ns == pytest.approx(HW.dram.latency_ns / HW.dram.mlp)
    assert c.media_read_bytes == 0


# -- multicore -------------------------------------------------------------------

def test_simulate_requires_traces():
    with pytest.raises(ValueError):
        simulate([], HW)


def test_simulate_single_matches_run_single():
    ops = [(LOAD, i * 64) for i in range(64)] + [(FENCE, 0)]
    t1, c1 = run_single(_trace(list(ops)), HW)
    res = simulate([_trace(list(ops))], HW)
    assert res.makespan_ns == pytest.approx(t1)
    assert res.counters.loads == c1.loads


def test_simulate_two_threads_share_buffer():
    # Two threads in disjoint regions: media traffic from both lands in
    # the shared counters, and makespan >= each thread alone.
    ops_a = [(LOAD, (1 << 44) + i * 64) for i in range(64)]
    ops_b = [(LOAD, (2 << 44) + i * 64) for i in range(64)]
    res = simulate([_trace(ops_a), _trace(ops_b)], HW)
    assert res.counters.loads == 128
    assert len(res.thread_times_ns) == 2


def test_throughput_property():
    ops = [(COMPUTE, 330.0)]
    res = simulate([_trace(ops, data_bytes=1000)], HW)
    assert res.throughput_gbps == pytest.approx(1000 / res.makespan_ns)
    assert res.throughput_mbps == pytest.approx(res.throughput_gbps * 1000)
