"""Unit tests for GF table construction."""

import numpy as np
import pytest

from repro.gf.tables import GFTables, PRIMITIVE_POLYNOMIALS, _carryless_mul_mod, get_tables


@pytest.mark.parametrize("w", [4, 8, 16])
def test_exp_log_roundtrip(w):
    t = get_tables(w)
    n = t.order - 1
    for e in [1, 2, 3, t.order // 2, n]:
        assert t.exp[t.log[e]] == e


@pytest.mark.parametrize("w", [4, 8])
def test_exp_covers_all_nonzero(w):
    t = get_tables(w)
    n = t.order - 1
    assert sorted(int(v) for v in t.exp[:n]) == list(range(1, t.order))


def test_exp_doubled_for_modless_lookup():
    t = get_tables(8)
    n = t.order - 1
    assert np.array_equal(t.exp[:n], t.exp[n : 2 * n])


@pytest.mark.parametrize("w", [4, 8, 16])
def test_inverse_table(w):
    t = get_tables(w)
    # a * inv(a) == 1 for a sample of elements (all for small fields)
    elems = range(1, t.order) if w <= 8 else [1, 2, 3, 255, 256, 65535, 40000]
    for a in elems:
        assert _carryless_mul_mod(a, int(t.inv[a]), t.poly, w) == 1


def test_mul_table_matches_carryless_reference():
    t = get_tables(8)
    rng = np.random.default_rng(0)
    for _ in range(200):
        a, b = int(rng.integers(256)), int(rng.integers(256))
        assert t.mul[a, b] == _carryless_mul_mod(a, b, t.poly, 8)


def test_mul_table_zero_row_col():
    t = get_tables(8)
    assert not t.mul[0].any()
    assert not t.mul[:, 0].any()


def test_mul_table_absent_for_w16():
    assert get_tables(16).mul is None


def test_nonprimitive_poly_rejected():
    # x^8 + 1 = (x+1)^8 is not primitive.
    with pytest.raises(ValueError, match="not primitive"):
        GFTables.build(8, 0x101)


def test_unknown_width_needs_poly():
    with pytest.raises(ValueError, match="no default"):
        GFTables.build(5)


def test_custom_poly_accepted():
    # x^5 + x^2 + 1 is primitive for w=5.
    t = GFTables.build(5, 0x25)
    assert t.order == 32
    assert t.exp[0] == 1


def test_tables_memoized():
    assert get_tables(8) is get_tables(8)


def test_known_gf8_products():
    # Reference vectors from the Rijndael/ISA-L 0x11d field.
    t = get_tables(8)
    assert t.mul[2, 2] == 4
    assert t.mul[0x80, 2] == 0x1D
    assert t.mul[0x53, t.inv[0x53]] == 0x01


@pytest.mark.parametrize("w,poly", list(PRIMITIVE_POLYNOMIALS.items()))
def test_default_polys_have_top_bit(w, poly):
    assert poly >> w == 1
