"""Steady-state fast-forward: detection, exactness, fallback, wiring."""

import dataclasses

import pytest

from repro.obs import Tracer, use_tracer
from repro.parallel.cache import sim_key
from repro.simulator import HardwareConfig, simulate
from repro.simulator.multicore import simulate as simulate_raw
from repro.simulator.params import CacheConfig
from repro.trace import (COMPUTE, FENCE, LOAD, STORE, IsalVariant, Trace,
                         TracePeriod, Workload, detect_period, isal_trace)
from repro.trace.update_gen import update_trace

#: Small cache -> steady state within a few stripes, so exactness tests
#: cover warmup, convergence, jumps and tail in well under a second.
SMALL_HW = HardwareConfig(cache=CacheConfig(l2_kb=16))


def encode_trace(stripes, hw=SMALL_HW, *, op="encode", erasures=0, swpf=0,
                 k=4, m=2, block_bytes=512):
    wl = Workload(k=k, m=m, block_bytes=block_bytes,
                  data_bytes_per_thread=stripes * k * block_bytes,
                  op=op, erasures=erasures)
    return isal_trace(wl, hw.cpu,
                      variant=IsalVariant(sw_prefetch_distance=swpf))


def assert_identical(a, b):
    assert a == b
    assert a.makespan_ns == b.makespan_ns
    assert a.thread_times_ns == b.thread_times_ns
    assert a.data_bytes == b.data_bytes
    for f in dataclasses.fields(a.counters):
        assert getattr(a.counters, f.name) == getattr(b.counters, f.name), \
            f.name


# -- period detection ----------------------------------------------------


class TestDetectPeriod:
    def test_periodic_encode_trace(self):
        tr = encode_trace(40)
        info = detect_period(tr)
        assert isinstance(info, TracePeriod)
        assert info.periods == 40
        assert info.start == 0
        assert info.stride > 0
        # One period per stripe, covering the whole trace.
        assert info.period_ops * info.periods == len(tr.opcodes)
        assert tr.opcodes[info.boundary(1) - 1] == FENCE

    def test_stride_is_stripe_footprint(self):
        from repro.trace import StripeLayout
        tr = encode_trace(16, k=4, m=2, block_bytes=512)
        info = detect_period(tr)
        layout = StripeLayout(4, 2, 512)
        assert info.stride == (layout.line_addr(1, 0, 0)
                               - layout.line_addr(0, 0, 0))

    def test_aperiodic_update_trace_declines(self):
        wl = Workload(k=4, m=2, block_bytes=512)
        tr = update_trace(wl, SMALL_HW.cpu)
        info = detect_period(tr)
        # The update target rotates through blocks: no constant stride.
        assert info is None or info.periods < 4

    def test_perturbed_trace_truncates(self):
        tr = encode_trace(20)
        ops = list(zip(tr.opcodes, tr.args))
        mid = len(ops) // 2
        ops[mid] = (COMPUTE, 999.0)  # mid-trace perturbation
        tr2 = Trace(ops=ops)
        info = detect_period(tr2)
        if info is not None:
            assert info.periods < 20

    def test_too_few_periods(self):
        assert detect_period(encode_trace(2)) is None

    def test_start_pc_skips_prolog(self):
        tr = encode_trace(12)
        info = detect_period(tr, start_pc=tr_period_ops(tr))
        assert info is not None
        assert info.periods == 11


def tr_period_ops(tr):
    return detect_period(tr).period_ops


# -- exactness -----------------------------------------------------------


class TestExactness:
    @pytest.mark.parametrize("kwargs", [
        dict(stripes=200),
        dict(stripes=200, swpf=4),
        dict(stripes=200, op="decode", erasures=2),
        dict(stripes=200, k=8, m=4, block_bytes=1024),
    ])
    def test_byte_identical_to_interpreter(self, kwargs):
        tr = encode_trace(**kwargs)
        plain = simulate(tr, SMALL_HW, fastforward=False)
        fast = simulate(tr, SMALL_HW, fastforward=True)
        assert fast.fastforward["engaged"]
        assert fast.fastforward["periods_skipped"] > 0
        assert_identical(plain, fast)

    def test_dram_backend_identical(self):
        hw = HardwareConfig(cache=CacheConfig(l2_kb=16),
                            load_source="dram", store_target="dram")
        tr = encode_trace(200, hw)
        plain = simulate(tr, hw, fastforward=False)
        fast = simulate(tr, hw, fastforward=True)
        assert_identical(plain, fast)

    def test_prefetcher_disabled_identical(self):
        from repro.simulator.params import PrefetcherConfig
        hw = HardwareConfig(cache=CacheConfig(l2_kb=16),
                            prefetcher=PrefetcherConfig(enabled=False))
        tr = encode_trace(200, hw)
        plain = simulate(tr, hw, fastforward=False)
        fast = simulate(tr, hw, fastforward=True)
        assert_identical(plain, fast)

    def test_simresult_equality_ignores_ff_stats(self):
        tr = encode_trace(40)
        plain = simulate(tr, SMALL_HW, fastforward=False)
        fast = simulate(tr, SMALL_HW, fastforward=True)
        assert plain.fastforward != fast.fastforward
        assert plain == fast  # stats field is compare=False


# -- fallback ------------------------------------------------------------


class TestFallback:
    def test_update_trace_never_engages(self):
        wl = Workload(k=4, m=2, block_bytes=512)
        tr = update_trace(wl, SMALL_HW.cpu)
        plain = simulate(tr, SMALL_HW, fastforward=False)
        fast = simulate(tr, SMALL_HW, fastforward=True)
        assert not fast.fastforward["engaged"]
        assert fast.fastforward["periods_skipped"] == 0
        assert fast.fastforward["reason"]
        assert_identical(plain, fast)

    def test_short_trace_never_engages(self):
        tr = encode_trace(3)
        fast = simulate(tr, SMALL_HW, fastforward=True)
        assert not fast.fastforward["engaged"]
        assert fast.fastforward["reason"] == "no periodic structure"

    def test_default_on_single_thread_off_multicore(self):
        tr = encode_trace(30)
        single = simulate(tr, SMALL_HW)
        assert single.fastforward is not None
        multi = simulate([tr, tr], SMALL_HW)
        assert multi.fastforward is None

    def test_multicore_unaffected_by_flag(self):
        tr = encode_trace(30)
        a = simulate_raw([tr, tr], SMALL_HW, fastforward=False)
        b = simulate_raw([tr, tr], SMALL_HW, fastforward=True)
        assert_identical(a, b)
        assert b.fastforward is None


# -- engine chunking -----------------------------------------------------


def fresh_context(tr, hw=SMALL_HW):
    from repro.simulator import Counters, ThreadContext
    from repro.simulator.multicore import make_backends
    counters = Counters()
    load_b, store_b = make_backends(hw, counters)
    return ThreadContext(hw, counters, load_b, store_b, trace=tr)


class TestRunUntil:
    def test_chunked_run_identical_to_full(self):
        tr = encode_trace(20)
        ctx_a = fresh_context(tr)
        ctx_a.run()
        ctx_b = fresh_context(tr)
        step = 37  # deliberately misaligned with period boundaries
        while not ctx_b.done:
            ctx_b.run(until=ctx_b.pc + step)
        assert ctx_b.clock == ctx_a.clock
        assert ctx_b.counters == ctx_a.counters

    def test_until_clamps_and_is_idempotent(self):
        tr = encode_trace(5)
        ctx = fresh_context(tr)
        ctx.run(until=10 ** 9)
        assert ctx.done
        clock = ctx.run(until=3)  # already past: no-op
        assert clock == ctx.clock


# -- observability and caching wiring ------------------------------------


class TestWiring:
    def test_tracer_event_per_jump(self):
        tr = encode_trace(200)
        tracer = Tracer("test")
        with use_tracer(tracer):
            res = simulate(tr, SMALL_HW, fastforward=True)
        events = [e for e in tracer.events if e.name == "sim.fastforward"]
        assert len(events) == res.fastforward["jumps"] > 0
        total = sum(e.attrs["periods_skipped"] for e in events)
        assert total == res.fastforward["periods_skipped"]
        for e in events:
            assert e.attrs["stride"] == res.fastforward["stride"]
            assert e.attrs["converged_at_op"] is not None

    def test_sim_key_includes_fastforward_flag(self):
        tr = encode_trace(10)
        hw = SMALL_HW
        assert (sim_key([tr], hw, fastforward=False)
                != sim_key([tr], hw, fastforward=True))

    def test_bench_scenario_registered(self):
        from repro.bench.cli import _experiments
        assert "fastforward" in _experiments()
