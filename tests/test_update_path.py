"""Tests for the parity-update trace generator (extension feature)."""

import pytest

from repro.simulator import HardwareConfig, simulate
from repro.simulator.params import CPUConfig
from repro.trace import LOAD, STORE, SWPF, Workload
from repro.trace.layout import StripeLayout
from repro.trace.update_gen import update_trace

CPU = CPUConfig()
HW = HardwareConfig()


def _wl(**kw):
    base = dict(k=8, m=4, block_bytes=1024, data_bytes_per_thread=16 * 1024)
    base.update(kw)
    return Workload(**base)


def test_update_trace_op_counts():
    wl = _wl()
    t = update_trace(wl, CPU)
    counts = t.counts()
    stripes = wl.stripes_per_thread
    L = 16
    assert counts["LOAD"] == stripes * L * (1 + wl.m)   # old data + parities
    assert counts["STORE"] == stripes * L * (1 + wl.m)  # new data + parities
    assert counts["FENCE"] == stripes
    assert t.data_bytes == stripes * wl.block_bytes


def test_update_targets_rotate_through_blocks():
    wl = _wl(data_bytes_per_thread=8 * 8192)  # several stripes
    t = update_trace(wl, CPU)
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    data_loads = set()
    for op, a in t.ops:
        if op == LOAD:
            block = ((a - lay.thread_base) // 4096) % (wl.k + wl.m)
            if block < wl.k:
                data_loads.add(block)
    assert len(data_loads) > 1  # different stripes update different blocks


def test_update_swpf_targets_future_loads():
    wl = _wl(data_bytes_per_thread=8192)
    d = 1 + wl.m  # one row ahead
    t = update_trace(wl, CPU, sw_prefetch_distance=d)
    loads = [a for op, a in t.ops if op == LOAD]
    swpfs = [a for op, a in t.ops if op == SWPF]
    for n, target in enumerate(swpfs):
        assert target == loads[n + d]


def test_update_stores_hit_data_and_parity():
    wl = _wl(data_bytes_per_thread=8192)
    t = update_trace(wl, CPU)
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    stored_blocks = {((a - lay.thread_base) // 4096) % (wl.k + wl.m)
                     for op, a in t.ops if op == STORE}
    assert 0 in stored_blocks            # the updated data block
    assert wl.k in stored_blocks         # first parity


def test_update_prefetch_improves_pm_throughput():
    """DIALGA's mechanism carries over to the update path."""
    wl = _wl(data_bytes_per_thread=64 * 1024)
    plain = simulate([update_trace(wl, CPU)], HW)
    d = (1 + wl.m) * 4  # four rows of lead
    pf = simulate([update_trace(wl, CPU, sw_prefetch_distance=d)], HW)
    assert pf.throughput_gbps > 1.2 * plain.throughput_gbps


def test_update_shuffle_kills_hw_prefetches():
    wl = _wl(block_bytes=4096, data_bytes_per_thread=64 * 1024)
    plain = simulate([update_trace(wl, CPU)], HW)
    shuf = simulate([update_trace(wl, CPU, shuffle=True)], HW)
    assert plain.counters.hwpf_issued > 0
    assert shuf.counters.hwpf_issued == 0


def test_update_stripe_offset():
    wl = _wl(data_bytes_per_thread=8192)
    a = update_trace(wl, CPU, stripe_offset=0)
    b = update_trace(wl, CPU, stripe_offset=10)
    addrs_a = {arg for op, arg in a.ops if op in (LOAD, STORE)}
    addrs_b = {arg for op, arg in b.ops if op in (LOAD, STORE)}
    assert not (addrs_a & addrs_b)


def test_update_trace_compute_scales_with_m():
    """Per-row compute must include the m parity multiply-accumulates."""
    from repro.trace import COMPUTE
    wl2 = _wl(m=2, data_bytes_per_thread=8192)
    wl8 = _wl(m=8, data_bytes_per_thread=8192)
    c2 = sum(a for op, a in update_trace(wl2, CPU).ops if op == COMPUTE)
    c8 = sum(a for op, a in update_trace(wl8, CPU).ops if op == COMPUTE)
    assert c8 > c2
