"""Exporter round-trip tests: Chrome trace_event schema, JSONL
parseability, Prometheus text shape — plus a hypothesis-generated span
workload that must survive every exporter well-formed."""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    Tracer,
    assert_well_formed,
    chrome_trace,
    prometheus_text,
    to_jsonl,
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.service.metrics import MetricsRegistry


def _sample_trace() -> Tracer:
    tr = Tracer("sample")
    run = tr.begin("sim.run", 0.0, threads=2, track="sim")
    chunk = tr.begin("sim.chunk", 0.0, chunk=0)
    tr.event("coordinator.policy_switch", 30.0, track="coordinator",
             old="low", new="high")
    tr.end(chunk, 50.0, d_loads=128)
    tr.end(run, 50.0)
    req = tr.begin("service.request", 60.0, detached=True,
                   track="client-1", obj=None)
    req.event("service.admitted", 61.0)
    req.end(90.0, status="completed")
    tr.begin("left.open", 95.0)   # deliberately unfinished
    return tr


class TestChromeTrace:
    def test_schema_fields(self):
        doc = chrome_trace(_sample_trace())
        assert isinstance(doc["traceEvents"], list)
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert phs == {"M", "X", "i"}
        for e in doc["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0 and "ts" in e
            elif e["ph"] == "i":
                assert e["s"] == "g" and "ts" in e

    def test_tracks_become_tids_with_metadata(self):
        doc = chrome_trace(_sample_trace())
        meta = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        # One named track per distinct `track` attr / name prefix.
        assert {"sim", "coordinator", "client-1", "left"} <= set(meta)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] != "M"}
        assert by_name["service.request"]["tid"] == meta["client-1"]
        assert (by_name["coordinator.policy_switch"]["tid"]
                == meta["coordinator"])

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(_sample_trace())
        req = next(e for e in doc["traceEvents"]
                   if e["name"] == "service.request")
        assert req["ts"] == 60.0 / 1e3
        assert req["dur"] == 30.0 / 1e3

    def test_unfinished_span_marked(self):
        doc = chrome_trace(_sample_trace())
        open_ev = next(e for e in doc["traceEvents"]
                       if e["name"] == "left.open")
        assert open_ev["args"]["unfinished"] is True
        assert open_ev["dur"] == 0.0

    def test_non_json_attrs_are_repred(self):
        tr = Tracer()
        s = tr.begin("x", 0.0, weird={1, 2})
        tr.end(s, 1.0)
        doc = chrome_trace(tr)
        args = next(e for e in doc["traceEvents"]
                    if e["name"] == "x")["args"]
        assert isinstance(args["weird"], str)
        json.dumps(doc)   # the whole document must serialize


class TestJsonl:
    def test_every_line_parses(self):
        text = to_jsonl(_sample_trace())
        lines = text.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(lines)
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "event"}

    def test_records_carry_identity_and_parentage(self):
        records = trace_records(_sample_trace())
        spans = [r for r in records if r["type"] == "span"]
        chunk = next(r for r in spans if r["name"] == "sim.chunk")
        run = next(r for r in spans if r["name"] == "sim.run")
        assert chunk["parent_id"] == run["span_id"]
        open_span = next(r for r in spans if r["name"] == "left.open")
        assert open_span["end_ns"] is None

    def test_write_trace_picks_format_from_suffix(self, tmp_path):
        tr = _sample_trace()
        chrome = write_trace(tr, tmp_path / "deep" / "t.json")
        jsonl = write_trace(tr, tmp_path / "deep" / "t.jsonl")
        doc = json.loads(chrome.read_text())
        assert "traceEvents" in doc
        for line in jsonl.read_text().strip().splitlines():
            json.loads(line)

    def test_writers_create_parent_dirs(self, tmp_path):
        tr = _sample_trace()
        assert write_jsonl(tr, tmp_path / "a" / "b" / "t.jsonl").exists()
        assert write_chrome_trace(tr, tmp_path / "c" / "t.json").exists()


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        mx = MetricsRegistry()
        mx.inc("completed", 3)
        mx.inc("retries")
        for v in (100.0, 200.0, 300.0, 400.0):
            mx.observe_latency("put", v)
        mx.sample_queue_depth(2)
        mx.sample_queue_depth(4)
        return mx

    def test_counters_and_summary_shape(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_service_completed_total counter" in text
        assert "repro_service_completed_total 3" in text
        assert 'repro_service_latency_ns{op="put",quantile="0.5"}' in text
        assert 'repro_service_latency_ns{op="put",quantile="0.999"}' in text
        assert 'repro_service_latency_ns_count{op="put"} 4' in text
        assert "# TYPE repro_service_queue_max_depth gauge" in text

    def test_accepts_snapshot_dict_and_custom_prefix(self):
        snap = self._registry().snapshot()
        text = prometheus_text(snap, prefix="ec")
        assert "ec_completed_total 3" in text
        assert 'ec_latency_ns_sum{op="put"}' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()).strip() == ""

    def test_every_family_has_help_and_type(self):
        text = prometheus_text(self._registry())
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                metric = line.split()[2]
                assert f"# HELP {metric} " in text, metric

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_service_latency_ns_hist histogram" in text
        bucket_lines = [line for line in text.splitlines()
                        if line.startswith(
                            'repro_service_latency_ns_hist_bucket{op="put"')]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert bucket_lines[-1].startswith(
            'repro_service_latency_ns_hist_bucket{op="put",le="+Inf"}')
        assert counts[-1] == 4
        # Samples 100..400 ns all fall under the first (1000 ns) bound.
        assert 'le="1000"} 4' in bucket_lines[0]
        assert 'repro_service_latency_ns_hist_count{op="put"} 4' in text

    def test_metric_name_mangling(self):
        mx = MetricsRegistry()
        mx.inc("faults.unrecoverable-total")
        mx.inc("2xx responses")
        text = prometheus_text(mx)
        assert "repro_service_faults_unrecoverable_total_total 1" in text
        # A leading digit is not a valid metric-name start.
        assert "repro_service__2xx_responses_total 1" in text

    def test_label_value_escaping(self):
        mx = MetricsRegistry()
        mx.observe_latency('put "big"\\\n', 100.0)
        text = prometheus_text(mx)
        assert '{op="put \\"big\\"\\\\\\n",quantile="0.5"}' in text
        assert "\n\n" not in text  # the raw newline never leaks

    def test_old_summary_shape_is_preserved(self):
        # The pre-histogram consumers parse these exact series.
        text = prometheus_text(self._registry())
        assert "# TYPE repro_service_latency_ns summary" in text
        assert 'repro_service_latency_ns{op="put",quantile="0.5"} ' in text
        assert 'repro_service_latency_ns_sum{op="put"} ' in text
        assert 'repro_service_latency_ns_count{op="put"} 4' in text

    def test_snapshot_without_buckets_skips_histogram(self):
        snap = self._registry().snapshot()
        for s in snap["latency"].values():
            del s["buckets"]
        text = prometheus_text(snap)
        assert "_hist" not in text
        assert 'repro_service_latency_ns_count{op="put"} 4' in text


class TestLatencyBuckets:
    def test_cumulative_buckets_exact(self):
        from repro.service.metrics import LatencyHistogram
        h = LatencyHistogram()
        for v in (500.0, 1000.0, 1500.0, 5e6):
            h.record(v)
        buckets = dict(h.cumulative_buckets(bounds=(1e3, 2.5e3, 1e6)))
        assert buckets == {1e3: 2, 2.5e3: 3, 1e6: 3}  # le is inclusive

    def test_empty_histogram_buckets(self):
        from repro.service.metrics import LatencyHistogram
        assert all(n == 0 for _, n in LatencyHistogram().cumulative_buckets())


# -- property: generated traces survive every exporter ---------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["begin", "end", "event", "begin_detached"]),
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["sim.run", "sim.chunk", "service.request",
                         "service.admitted", "coordinator.policy_switch"]),
    ),
    min_size=0, max_size=60,
)


def _replay(ops) -> Tracer:
    """Drive a tracer through an arbitrary op sequence.

    Ends always close the *oldest* open span (so interleavings happen),
    with the timestamp taken as-is — the tracer clamps it.
    """
    tr = Tracer("gen")
    open_spans = []
    for kind, ts, name in ops:
        if kind == "begin":
            open_spans.append(tr.begin(name, ts))
        elif kind == "begin_detached":
            open_spans.append(tr.begin(name, ts, detached=True))
        elif kind == "event":
            tr.event(name, ts)
        elif kind == "end" and open_spans:
            tr.end(open_spans.pop(0), ts)
    return tr


@given(_ops)
def test_generated_traces_export_well_formed(ops):
    tr = _replay(ops)
    assert_well_formed(tr)

    # Chrome: every record schema-complete, valid JSON, non-negative dur.
    doc = chrome_trace(tr)
    json.dumps(doc)
    non_meta = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert len(non_meta) == len(tr.spans) + len(tr.events)
    for e in non_meta:
        assert e["ts"] >= 0
        if e["ph"] == "X":
            assert e["dur"] >= 0

    # JSONL: line-parseable, spans precede events, ids consistent.
    lines = to_jsonl(tr).strip().splitlines() if tr.spans or tr.events else []
    records = [json.loads(line) for line in lines]
    span_ids = {r["span_id"] for r in records if r["type"] == "span"}
    assert len(span_ids) == len(tr.spans)
    for r in records:
        if r["type"] == "span":
            assert r["end_ns"] is None or r["end_ns"] >= r["start_ns"]
        if r["type"] == "event" and r["span_id"] is not None:
            assert r["span_id"] in span_ids
