"""Property-based tests: GF(2^8) field axioms and table consistency."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gf import gf8, element_bitmatrix
from repro.gf.tables import _carryless_mul_mod

elem = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


@given(elem, elem)
def test_mul_commutative(a, b):
    assert gf8.mul(a, b) == gf8.mul(b, a)


@given(elem, elem, elem)
def test_mul_associative(a, b, c):
    assert gf8.mul(gf8.mul(a, b), c) == gf8.mul(a, gf8.mul(b, c))


@given(elem, elem, elem)
def test_distributive(a, b, c):
    left = gf8.mul(a, b ^ c)
    right = gf8.mul(a, b) ^ gf8.mul(a, c)
    assert left == right


@given(elem)
def test_additive_inverse_is_self(a):
    assert gf8.add(a, a) == 0


@given(nonzero)
def test_multiplicative_inverse(a):
    assert gf8.mul(a, gf8.inv(a)) == 1


@given(elem, elem)
def test_mul_matches_carryless_reference(a, b):
    assert gf8.mul(a, b) == _carryless_mul_mod(a, b, gf8.tables.poly, 8)


@given(nonzero, st.integers(min_value=0, max_value=600))
def test_pow_matches_repeated_mul(a, e):
    want = 1
    for _ in range(e % 255):
        want = int(gf8.mul(want, a))
    # a^e == a^(e mod 255) for nonzero a (multiplicative order divides 255)
    assert gf8.pow(a, e % 255) == want


@given(st.lists(elem, min_size=1, max_size=64), nonzero)
def test_mul_block_then_div_roundtrip(block, c):
    arr = np.array(block, dtype=np.uint8)
    prod = gf8.mul_block(c, arr)
    assert np.array_equal(gf8.div(prod, c), arr)


@given(elem, elem)
def test_bitmatrix_respects_addition(a, b):
    Ma, Mb = element_bitmatrix(gf8, a), element_bitmatrix(gf8, b)
    assert np.array_equal(Ma ^ Mb, element_bitmatrix(gf8, a ^ b))


@given(elem, elem)
@settings(max_examples=50)
def test_bitmatrix_respects_multiplication(a, b):
    Ma, Mb = element_bitmatrix(gf8, a), element_bitmatrix(gf8, b)
    assert np.array_equal((Ma @ Mb) % 2,
                          element_bitmatrix(gf8, int(gf8.mul(a, b))))
