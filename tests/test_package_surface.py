"""Guard rails on the public package surface.

These catch accidental API breakage: every name in each package's
``__all__`` must resolve, be importable from the package, and carry a
docstring — the contract docs/api.md is generated from.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.gf",
    "repro.matrix",
    "repro.codes",
    "repro.xorsched",
    "repro.simulator",
    "repro.trace",
    "repro.libs",
    "repro.core",
    "repro.bench",
    "repro.parallel",
    "repro.pmstore",
    "repro.service",
    "repro.chaos",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    module = importlib.import_module(pkg)
    assert hasattr(module, "__all__"), f"{pkg} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{pkg}.{name} missing"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_public_classes_and_functions_documented(pkg):
    module = importlib.import_module(pkg)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{pkg}: undocumented {undocumented}"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_no_cross_layer_imports():
    """The substrate must not import the contribution (layering check)."""
    import pathlib
    src = pathlib.Path(importlib.import_module("repro").__file__).parent
    lower_layers = ["gf", "matrix", "codes", "xorsched", "simulator"]
    for layer in lower_layers:
        for py in (src / layer).rglob("*.py"):
            text = py.read_text()
            assert "from repro.core" not in text, f"{py} imports repro.core"
            assert "from repro.libs" not in text, f"{py} imports repro.libs"
            assert "from repro.bench" not in text, f"{py} imports repro.bench"
