"""Unit tests for coding-matrix construction and GF linear algebra."""

import itertools

import numpy as np
import pytest

from repro.gf import gf8, element_bitmatrix
from repro.matrix import (
    vandermonde_matrix,
    systematic_vandermonde,
    cauchy_matrix,
    systematic_cauchy,
    optimize_cauchy_ones,
    gf_invert_matrix,
    gf_solve,
    gf_rank,
)
from repro.matrix.invert import SingularMatrixError


def test_vandermonde_entries():
    V = vandermonde_matrix(gf8, 4, 3)
    assert V[0, 0] == 1 and V[0, 1] == 0
    assert V[2, 0] == 1
    assert V[2, 1] == 2
    assert V[2, 2] == gf8.mul(2, 2)


def test_vandermonde_too_many_rows():
    with pytest.raises(ValueError):
        vandermonde_matrix(gf8, 257, 3)


def test_systematic_vandermonde_identity_top():
    G = systematic_vandermonde(gf8, 6, 3)
    assert G.shape == (9, 6)
    assert np.array_equal(G[:6], np.eye(6, dtype=np.uint8))
    assert G[6:].any()


@pytest.mark.parametrize("k,m", [(4, 2), (6, 3), (12, 4)])
def test_systematic_vandermonde_mds(k, m):
    """Any k rows of the generator must be invertible (MDS property)."""
    G = systematic_vandermonde(gf8, k, m)
    rows = list(range(k + m))
    rng = np.random.default_rng(0)
    combos = list(itertools.combinations(rows, k))
    picks = rng.choice(len(combos), size=min(20, len(combos)), replace=False)
    for idx in picks:
        sub = G[list(combos[idx])]
        assert gf_rank(gf8, sub) == k


def test_rs_parameter_bound():
    with pytest.raises(ValueError):
        systematic_vandermonde(gf8, 250, 10)


def test_cauchy_matrix_values():
    C = cauchy_matrix(gf8, [4, 5], [0, 1, 2])
    for i, x in enumerate([4, 5]):
        for j, y in enumerate([0, 1, 2]):
            assert C[i, j] == gf8.inv(x ^ y)


def test_cauchy_rejects_overlap_and_dups():
    with pytest.raises(ValueError, match="disjoint"):
        cauchy_matrix(gf8, [1, 2], [2, 3])
    with pytest.raises(ValueError, match="distinct"):
        cauchy_matrix(gf8, [1, 1], [2, 3])


@pytest.mark.parametrize("k,m", [(4, 2), (8, 4)])
def test_systematic_cauchy_mds(k, m):
    G = systematic_cauchy(gf8, k, m)
    assert np.array_equal(G[:k], np.eye(k, dtype=np.uint8))
    # Spot-check a handful of k-row subsets.
    rng = np.random.default_rng(1)
    for _ in range(15):
        rows = sorted(rng.choice(k + m, size=k, replace=False))
        assert gf_rank(gf8, G[rows]) == k


def test_optimize_cauchy_reduces_or_keeps_ones():
    P = cauchy_matrix(gf8, range(8, 12), range(8))
    before = sum(int(element_bitmatrix(gf8, int(e)).sum()) for e in P.ravel())
    P2 = optimize_cauchy_ones(gf8, P)
    after = sum(int(element_bitmatrix(gf8, int(e)).sum()) for e in P2.ravel())
    assert after <= before
    # Row 0 becomes all ones after column normalization.
    assert np.all(P2[0] == 1)


def test_optimized_cauchy_still_mds():
    k, m = 6, 3
    P = optimize_cauchy_ones(gf8, cauchy_matrix(gf8, range(k, k + m), range(k)))
    G = np.vstack([np.eye(k, dtype=np.uint8), P])
    rng = np.random.default_rng(2)
    for _ in range(15):
        rows = sorted(rng.choice(k + m, size=k, replace=False))
        assert gf_rank(gf8, G[rows]) == k


def test_invert_roundtrip():
    rng = np.random.default_rng(3)
    for n in [1, 2, 5, 8]:
        while True:
            A = rng.integers(0, 256, (n, n)).astype(np.uint8)
            if gf_rank(gf8, A) == n:
                break
        Ainv = gf_invert_matrix(gf8, A)
        assert np.array_equal(gf8.matmul(A, Ainv), np.eye(n, dtype=np.uint8))
        assert np.array_equal(gf8.matmul(Ainv, A), np.eye(n, dtype=np.uint8))


def test_invert_singular_raises():
    A = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        gf_invert_matrix(gf8, A)


def test_invert_non_square_raises():
    with pytest.raises(ValueError, match="square"):
        gf_invert_matrix(gf8, np.zeros((2, 3), np.uint8))


def test_solve_vector_and_matrix():
    A = np.array([[1, 2], [3, 4]], dtype=np.uint8)
    x = np.array([7, 9], dtype=np.uint8)
    b = gf8.matmul(A, x[:, None])[:, 0]
    assert np.array_equal(gf_solve(gf8, A, b), x)
    X = np.array([[7, 1], [9, 2]], dtype=np.uint8)
    B = gf8.matmul(A, X)
    assert np.array_equal(gf_solve(gf8, A, B), X)


def test_rank():
    assert gf_rank(gf8, np.eye(3, dtype=np.uint8)) == 3
    assert gf_rank(gf8, np.zeros((3, 3), np.uint8)) == 0
    A = np.array([[1, 2, 3], [2, 4, 6]], dtype=np.uint8)  # row2 = 2*row1
    assert gf_rank(gf8, A) == 1
