"""Property-based tests: every generated trace is structurally valid."""

from hypothesis import given, settings, strategies as st

from repro.simulator.params import CPUConfig
from repro.trace import IsalVariant, Workload, isal_trace, validate_isal_trace

CPU = CPUConfig()


@st.composite
def workload_and_variant(draw):
    k = draw(st.integers(min_value=1, max_value=32))
    m = draw(st.integers(min_value=1, max_value=4))
    bs = draw(st.sampled_from([256, 512, 1024, 4096, 5120]))
    stripes = draw(st.integers(min_value=1, max_value=3))
    op = draw(st.sampled_from(["encode", "decode"]))
    erasures = (draw(st.integers(min_value=1, max_value=min(m, k)))
                if op == "decode" else 0)
    lrc_l = None
    if op == "encode" and draw(st.booleans()):
        divisors = [l for l in range(1, k + 1) if k % l == 0]
        lrc_l = draw(st.sampled_from(divisors))
    wl = Workload(k=k, m=m, block_bytes=bs, op=op, erasures=erasures,
                  lrc_l=lrc_l, data_bytes_per_thread=stripes * k * bs)
    lines = max(1, bs // 64)
    d = draw(st.one_of(st.none(),
                       st.integers(min_value=1, max_value=lines * k)))
    bf = None
    if d is not None and draw(st.booleans()):
        bf = draw(st.integers(min_value=d, max_value=2 * lines * k))
    variant = IsalVariant(
        sw_prefetch_distance=d,
        bf_first_line_distance=bf,
        shuffle=draw(st.booleans()),
        xpline_granularity=draw(st.booleans()),
    )
    return wl, variant


@given(workload_and_variant())
@settings(max_examples=60, deadline=None)
def test_every_generated_trace_is_valid(case):
    """No (workload, variant) combination may produce coverage holes,
    duplicate loads, misdirected stores or missing fences."""
    wl, variant = case
    trace = isal_trace(wl, CPU, variant)
    stats = validate_isal_trace(trace, wl)
    assert stats.duplicate_data_loads == 0


@given(workload_and_variant(),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_stripe_offset_shifts_cleanly(case, offset):
    wl, variant = case
    trace = isal_trace(wl, CPU, variant, stripe_offset=offset)
    validate_isal_trace(trace, wl, stripe_offset=offset)


@given(st.integers(min_value=2, max_value=24),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_decompose_traces_always_valid(k, m, stripes):
    wl = Workload(k=k, m=m, block_bytes=1024,
                  data_bytes_per_thread=stripes * k * 1024)
    group = max(1, k // 2)
    trace = isal_trace(wl, CPU, IsalVariant(decompose_group=group))
    stats = validate_isal_trace(trace, wl, reloads_allowed=True)
    passes = -(-k // group)
    # parity reloads: (passes - 1) * m * lines per stripe
    expected_reloads = wl.stripes_per_thread * (passes - 1) * m * 16
    assert stats.loads == stats.data_lines_covered + expected_reloads
