"""Detail tests for the XOR facades: decomposed traces, LRC schedules,
schedule caching."""

import numpy as np
import pytest

from repro import Cerasure, HardwareConfig, Workload, Zerasure
from repro.codes import LRCCode
from repro.gf import gf8
from repro.libs.xor_common import (
    BitmatrixCode, build_lrc_schedule, lrc_extended_parity,
)
from repro.simulator.params import CPUConfig
from repro.trace import LOAD, STORE, xor_decomposed_trace
from repro.trace.layout import StripeLayout
from repro.xorsched import encode_bitmatrix
from repro.gf.bitmatrix import matrix_to_bitmatrix

HW = HardwareConfig()
CPU = CPUConfig()


def test_lrc_extended_parity_rows():
    parity = np.arange(1, 9, dtype=np.uint8).reshape(2, 4)
    ext = lrc_extended_parity(gf8, parity, l=2)
    assert ext.shape == (4, 4)
    assert np.array_equal(ext[2], [1, 1, 0, 0])
    assert np.array_equal(ext[3], [0, 0, 1, 1])
    with pytest.raises(ValueError):
        lrc_extended_parity(gf8, parity, l=3)


def test_lrc_schedule_matches_lrc_codec():
    """The XOR facade's extended schedule must produce the exact global
    + local parities that LRCCode computes."""
    k, m, l = 4, 2, 2
    lrc = LRCCode(k, m, l)
    code = BitmatrixCode(k, m, lrc.rs.parity_rows)
    sched = build_lrc_schedule(code, l)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, (k, 64)).astype(np.uint8)
    ext = lrc_extended_parity(gf8, code.parity, l)
    bm = matrix_to_bitmatrix(gf8, ext)
    got = encode_bitmatrix(gf8, bm, data, schedule=sched)
    gp, lp = lrc.encode(data)
    assert np.array_equal(got[:m], gp)
    assert np.array_equal(got[m:], lp)


def test_xor_decomposed_trace_structure():
    c = Cerasure(48, 4, group_size=16)
    wl = Workload(k=48, m=4, block_bytes=1024,
                  data_bytes_per_thread=48 * 1024)
    trace = c.trace(wl, HW, thread=0)
    lay = StripeLayout(48, 4, 1024)
    loads = [a for op, a in trace.ops if op == LOAD]
    # data loads touch all 48 blocks; parity reload loads touch parity
    blocks = {((a - lay.thread_base) // 4096) % 52 for a in loads}
    assert set(range(48)) <= blocks
    assert 48 in blocks  # parity reload
    stores = [a for op, a in trace.ops if op == STORE]
    assert len(stores) == 3 * 4 * 16  # 3 passes x m x lines


def test_xor_decomposed_geometry_mismatch():
    c = Cerasure(48, 4, group_size=16)
    key = (c.name, c.k, c.m, c.parity.tobytes())
    from repro.libs.xor_common import cached_group_schedule
    sched = cached_group_schedule(key, tuple(range(16)))
    wl = Workload(k=48, m=4, block_bytes=1024, data_bytes_per_thread=48 * 1024)
    with pytest.raises(ValueError, match="mismatch"):
        xor_decomposed_trace(wl, CPU, [(sched, list(range(8)))])


def test_group_schedule_cache_hits():
    from repro.libs.xor_common import cached_group_schedule
    c = Cerasure(48, 4)
    key = (c.name, c.k, c.m, c.parity.tobytes())
    a = cached_group_schedule(key, tuple(range(16)))
    b = cached_group_schedule(key, tuple(range(16)))
    assert a is b


def test_decode_schedule_cached_per_erasure_count():
    z = Zerasure(6, 3)
    wl1 = Workload(k=6, m=3, op="decode", erasures=1, block_bytes=1024,
                   data_bytes_per_thread=6 * 1024)
    z.trace(wl1, HW, 0)
    z.trace(wl1, HW, 0)
    assert 1 in z._decode_scheds
    wl2 = wl1.with_(erasures=3)
    z.trace(wl2, HW, 0)
    assert set(z._decode_scheds) >= {1, 3}


def test_zerasure_lrc_trace_counts():
    z = Zerasure(6, 3)
    wl = Workload(k=6, m=3, lrc_l=2, block_bytes=1024,
                  data_bytes_per_thread=6 * 1024)
    trace = z.trace(wl, HW, 0)
    # stores cover m + l = 5 parity blocks x 16 lines per stripe
    stores = trace.counts()["STORE"]
    assert stores == wl.stripes_per_thread * 5 * 16


def test_bitmatrix_code_validates_shape():
    with pytest.raises(ValueError):
        BitmatrixCode(4, 2, np.zeros((3, 4), np.uint8))


def test_bitmatrix_code_decode_errors():
    code = BitmatrixCode(4, 2, Cerasure(4, 2).parity)
    with pytest.raises(ValueError, match="cannot repair"):
        code.decode({0: np.zeros(8, np.uint8)}, [1, 2, 3])
    with pytest.raises(ValueError, match="survivors"):
        code.decode({0: np.zeros(8, np.uint8)}, [1])


def test_naive_encode_schedule_option():
    parity = Cerasure(4, 2).parity
    opt = BitmatrixCode(4, 2, parity, optimize_encode=True)
    naive = BitmatrixCode(4, 2, parity, optimize_encode=False)
    assert naive.encode_schedule.num_temps == 0
    assert opt.encode_schedule.xor_count <= naive.encode_schedule.xor_count
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (4, 32)).astype(np.uint8)
    assert np.array_equal(opt.encode(data), naive.encode(data))
