"""The chaos campaign engine: schemas, audit, runs, determinism."""

import pytest

from repro.chaos import (
    CANNED_CAMPAIGNS,
    Campaign,
    CampaignEngine,
    ChaosAction,
    DurabilityAuditor,
    kitchen_sink,
    single_device_loss,
)
from repro.pmstore import FaultInjector, PMStore
from repro.service import Request
from repro.service.request import RequestResult, RequestStatus

# -- schemas ----------------------------------------------------------------


def test_action_validation():
    with pytest.raises(ValueError, match="unknown action kind"):
        ChaosAction(at_ns=0.0, kind="meteor_strike")
    with pytest.raises(ValueError, match="before t=0"):
        ChaosAction(at_ns=-1.0, kind="bit_flip")
    with pytest.raises(ValueError, match="duration_ns"):
        ChaosAction(at_ns=0.0, kind="transient_storm", duration_ns=0.0)
    with pytest.raises(ValueError, match="burst op"):
        ChaosAction(at_ns=0.0, kind="traffic_burst", op="delete")


def test_action_describe_is_deterministic():
    a = ChaosAction(at_ns=2.5e7, kind="device_loss", device=3, note="boom")
    assert a.describe() == a.describe()
    assert "device=3" in a.describe() and "(boom)" in a.describe()


def test_campaign_validation():
    with pytest.raises(ValueError, match="duration_ns"):
        Campaign(name="x", duration_ns=0.0)
    with pytest.raises(ValueError, match="past the campaign"):
        Campaign(name="x", duration_ns=1e6,
                 actions=(ChaosAction(at_ns=2e6, kind="bit_flip"),))


def test_campaign_schedule_sorted_and_with_seed():
    c = Campaign(name="x", actions=(
        ChaosAction(at_ns=5e6, kind="bit_flip"),
        ChaosAction(at_ns=1e6, kind="scribble"),
    ))
    assert [a.at_ns for a in c.schedule()] == [1e6, 5e6]
    assert c.with_seed(9).seed == 9
    assert c.with_seed(9).actions == c.actions


def test_canned_campaign_library():
    assert set(CANNED_CAMPAIGNS) == {
        "single_device_loss", "corruption_wave", "retry_storm",
        "kitchen_sink", "power_cycle"}
    for name, build in CANNED_CAMPAIGNS.items():
        campaign = build(seed=3)
        assert campaign.name == name
        assert campaign.seed == 3
        assert campaign.actions


# -- durability auditor ------------------------------------------------------


def _ok(req, value=b""):
    return RequestResult(req, RequestStatus.COMPLETED, value=value)


def test_auditor_records_acks_and_flags_served_corruption():
    aud = DurabilityAuditor()
    put = Request.put("a", b"payload")
    aud.observe([_ok(put)])
    aud.observe([RequestResult(Request.put("b", b"x"),
                               RequestStatus.FAILED)])   # never acked
    assert aud.acknowledged_keys == ["a"]
    aud.observe([_ok(Request.get("a"), value=b"payload")])
    aud.observe([_ok(Request.get("a"), value=b"WRONG!!")])
    assert aud.read_checks == 2
    assert aud.read_mismatches == 1
    assert aud.mismatched_keys == ["a"]


def test_auditor_verify_classifies_intact_corrupted_lost():
    store = PMStore(4, 2, block_bytes=256)
    aud = DurabilityAuditor()
    for key in ("intact", "corrupt", "lost"):
        payload = (key.encode() * 200)[:1000]   # fills one stripe each
        store.put(key, payload)
        aud.observe([_ok(Request.put(key, payload))])
    # Silent corruption on `corrupt`'s stripe (a raw GET trusts it).
    meta = store.meta_of("corrupt")
    block = meta.offset // store.block_bytes
    FaultInjector(store, seed=1).bit_flip(stripe=meta.stripe,
                                          block=block, nbits=1)
    # `lost`: erase past the parity budget.
    lmeta = store.meta_of("lost")
    for block in range(store.m + 1):
        store.mark_lost(lmeta.stripe, block)
    report = aud.verify(store)
    assert report.acknowledged == 3
    assert report.intact == 1
    assert report.corrupted == ["corrupt"]
    assert report.lost == ["lost"]
    assert not report.clean
    assert "DIRTY" in report.summary()


def test_auditor_clean_report():
    store = PMStore(4, 2, block_bytes=256)
    aud = DurabilityAuditor()
    store.put("k", b"v" * 100)
    aud.observe([_ok(Request.put("k", b"v" * 100))])
    report = aud.verify(store)
    assert report.clean
    assert "CLEAN" in report.summary()


# -- engine runs -------------------------------------------------------------


def test_single_device_loss_campaign_self_heals():
    report = CampaignEngine(single_device_loss(seed=0)).run()
    assert report.durability_clean
    assert report.audit.acknowledged > 0
    assert report.faults.get("device_loss") == 1
    assert report.counters.get("health_trips", 0) >= 1
    assert report.counters.get("repair_blocks_rebuilt", 0) >= 1
    assert report.settled_at_ns is not None     # fully healed
    assert report.availability == 1.0
    assert report.mean_mttr_ns > 0


def test_corruption_wave_is_deterministic_and_clean():
    r1 = CampaignEngine(CANNED_CAMPAIGNS["corruption_wave"](seed=0)).run()
    r2 = CampaignEngine(CANNED_CAMPAIGNS["corruption_wave"](seed=0)).run()
    assert r1.render() == r2.render()
    assert r1.to_dict() == r2.to_dict()
    assert r1.durability_clean
    assert r1.faults.get("bit_flip") == 5
    assert r1.faults.get("scribble") == 3


def test_different_seed_changes_traffic_not_verdict():
    r0 = CampaignEngine(single_device_loss(seed=0)).run()
    r7 = CampaignEngine(single_device_loss(seed=7)).run()
    assert r0.render() != r7.render()
    assert r0.durability_clean and r7.durability_clean


def test_report_shape():
    report = CampaignEngine(single_device_loss(seed=1)).run()
    d = report.to_dict()
    for field in ("name", "seed", "faults", "counters", "health",
                  "audit", "availability"):
        assert field in d
    text = report.render()
    assert "single_device_loss" in text
    assert "device_loss" in text
    assert "CLEAN" in text


@pytest.mark.slow
def test_kitchen_sink_soak_across_seeds():
    """Long soak: the acceptance campaign stays durability-clean under
    several seeds (deselected from tier-1 by the `slow` marker)."""
    for seed in range(3):
        report = CampaignEngine(kitchen_sink(seed=seed)).run()
        assert report.durability_clean, f"seed {seed} lost data"
        assert report.faults.get("device_loss", 0) >= 1
        assert report.counters.get("faults_transient", 0) >= 1
        assert report.settled_at_ns is not None
