"""End-to-end tracing: a traced adaptive run plus service traffic must
put coordinator decisions, simulator phases and request lifecycles on
one timeline — the property the bench ``--trace`` flag relies on."""

import pytest

from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.libs import ISAL
from repro.obs import (
    Tracer,
    aggregate_by_name,
    assert_well_formed,
    render_span_tree,
    service_stage_breakdown,
    span_forest,
    use_tracer,
)
from repro.service import ErasureCodingService, ServiceConfig, put_wave
from repro.service.metrics import LatencyHistogram
from repro.service.request import Request
from repro.simulator import HardwareConfig
from repro.simulator.engine import run_single
from repro.simulator.profiler import perf_report
from repro.trace import Workload


@pytest.fixture
def traced_run():
    """One adaptive encode (policy switch) + a small service burst."""
    tracer = Tracer("it")
    with use_tracer(tracer):
        lib = DialgaEncoder(8, 4, config=DialgaConfig(use_probe=False,
                                                      chunks=6))
        lib.run(Workload(k=8, m=4, block_bytes=1024, nthreads=10,
                         data_bytes_per_thread=160 * 8 * 1024 // 10))
        svc = ErasureCodingService(
            8, 4, block_bytes=1024,
            config=ServiceConfig(max_queue_depth=12, max_batch=4))
        svc.submit(Request.encode(stripes=16, arrival_ns=0.0))
        svc.submit_many(put_wave(3, 2, payload_bytes=1024,
                                 mean_gap_ns=2_000.0, seed=9))
        results = svc.drain()
    assert all(r.ok for r in results)
    return tracer


class TestTimelineUnification:
    def test_trace_is_well_formed(self, traced_run):
        assert_well_formed(traced_run)
        assert traced_run.open_spans == []

    def test_all_three_layers_recorded(self, traced_run):
        assert traced_run.find_events("coordinator.policy_switch")
        assert traced_run.find_spans("sim.chunk")
        assert traced_run.find_spans("service.request")

    def test_policy_switch_lies_inside_a_chunk_span(self, traced_run):
        switch = traced_run.find_events("coordinator.policy_switch")[0]
        assert any(s.start_ns <= switch.ts_ns <= s.end_ns
                   for s in traced_run.find_spans("sim.chunk"))

    def test_service_coding_spans_rebased_onto_service_clock(
            self, traced_run):
        # Every dialga.run nested under a service.batch must start at
        # the batch's dispatch instant, not at t=0.
        by_id = {s.span_id: s for s in traced_run.spans}
        nested = [s for s in traced_run.find_spans("dialga.run")
                  if s.parent_id is not None
                  and by_id[s.parent_id].name == "service.batch"]
        assert nested
        for s in nested:
            parent = by_id[s.parent_id]
            assert s.start_ns >= parent.start_ns > 0

    def test_standalone_runs_sequence_not_overlap(self):
        tracer = Tracer()
        lib = ISAL(4, 2)
        wl = Workload(k=4, m=2, block_bytes=1024, nthreads=2,
                      data_bytes_per_thread=8 * 1024)
        with use_tracer(tracer):
            lib.run(wl)
            lib.run(wl)
        first, second = tracer.find_spans("sim.run")
        assert second.start_ns >= first.end_ns

    def test_run_single_traces_when_enabled(self):
        tracer = Tracer()
        hw = HardwareConfig()
        trace = ISAL(4, 2).trace(
            Workload(k=4, m=2, block_bytes=1024, nthreads=1,
                     data_bytes_per_thread=8 * 1024), hw, 0)
        with use_tracer(tracer):
            run_single(trace, hw)
        (span,) = tracer.find_spans("sim.run")
        assert span.attrs["threads"] == 1
        assert span.attrs["d_loads"] > 0   # counter delta attached

    def test_disabled_tracing_records_nothing_and_matches_output(self):
        lib = ISAL(4, 2)
        wl = Workload(k=4, m=2, block_bytes=1024, nthreads=2,
                      data_bytes_per_thread=8 * 1024)
        baseline = lib.run(wl)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = lib.run(wl)
        assert traced.sim.makespan_ns == baseline.sim.makespan_ns
        assert traced.sim.counters.loads == baseline.sim.counters.loads


class TestSummaries:
    def test_stage_breakdown_covers_completed_requests(self, traced_run):
        stages = service_stage_breakdown(traced_run)
        n = len(stages["total"])
        assert n > 0
        assert len(stages["queue_wait"]) == len(stages["execute"]) == n
        for wait, run, total in zip(stages["queue_wait"],
                                    stages["execute"], stages["total"]):
            assert wait >= 0 and run >= 0
            assert total == pytest.approx(wait + run)

    def test_span_tree_renders_nested_structure(self, traced_run):
        text = render_span_tree(traced_run, max_children=3)
        assert "dialga.run" in text
        assert "  sim.chunk" in text       # indented child
        assert "(+" in text                # elision marker

    def test_aggregate_by_name(self, traced_run):
        agg = aggregate_by_name(traced_run)
        assert agg["sim.chunk"]["count"] >= 6
        assert agg["sim.chunk"]["mean_ns"] > 0

    def test_span_forest_parents_resolve(self, traced_run):
        roots = span_forest(traced_run)
        seen = set()

        def walk(node):
            seen.add(node.span.span_id)
            for child in node.children:
                walk(child)

        for root in roots:
            walk(root)
        assert seen == {s.span_id for s in traced_run.spans}


class TestHillclimbEvents:
    def test_probe_search_emits_step_and_done_events(self):
        tracer = Tracer()
        with use_tracer(tracer):
            lib = DialgaEncoder(8, 4, config=DialgaConfig(use_probe=True,
                                                          chunks=2))
            lib.run(Workload(k=8, m=4, block_bytes=4096, nthreads=4,
                             data_bytes_per_thread=16 * 8 * 4096))
        steps = tracer.find_events("coordinator.hillclimb_step")
        done = tracer.find_events("coordinator.hillclimb_done")
        assert steps and done
        assert steps[0].attrs["step"] == 0
        assert done[0].attrs["evaluations"] >= 1


class TestLatencyHistogram:
    def test_percentile_properties_on_sorted_copy(self):
        hist = LatencyHistogram()
        samples = [10.0, 1.0, 7.0, 3.0, 9.0, 2.0, 8.0, 4.0, 6.0, 5.0]
        for v in samples:
            hist.record(v)
        # Nearest-rank over the sorted copy of 1..10.
        assert hist.p50 == 5.0
        assert hist.p95 == 10.0
        assert hist.p999 == 10.0
        # Recording order is preserved; sorting happens on a copy.
        assert hist._values == samples
        assert hist.sorted_values() == sorted(samples)

    def test_sorted_cache_invalidates_on_record(self):
        hist = LatencyHistogram()
        hist.record(10.0)
        assert hist.p50 == 10.0
        hist.record(2.0)
        assert hist.sorted_values() == [2.0, 10.0]

    def test_summary_includes_new_quantiles(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        s = hist.summary()
        assert {"p50_ns", "p90_ns", "p95_ns", "p99_ns",
                "p999_ns"} <= set(s)


class TestPerfReportCompare:
    def _run(self, nthreads):
        wl = Workload(k=8, m=4, block_bytes=1024, nthreads=nthreads,
                      data_bytes_per_thread=32 * 8 * 1024)
        return ISAL(8, 4).run(wl).sim

    def test_compare_section_rendered(self):
        base = self._run(2)
        cur = self._run(14)
        text = perf_report(cur, compare=base)
        assert "vs baseline:" in text
        assert "makespan_ns" in text
        assert "(baseline" in text

    def test_contention_flag_uses_110_percent_threshold(self):
        base = self._run(2)
        cur = self._run(14)
        text = perf_report(cur, compare=base)
        c, b = cur.counters, base.counters
        flagged = "!! contention" in text
        assert flagged == (
            c.avg_load_latency_ns > 1.10 * b.avg_load_latency_ns)

    def test_self_compare_raises_no_flags(self):
        res = self._run(4)
        text = perf_report(res, compare=res)
        assert "!!" not in text
        assert "+0.0%" in text
