"""Test-suite configuration.

Registers a deterministic hypothesis profile: simulation-backed
properties have runtimes that vary with the drawn workload, so the
default 200 ms deadline would flake; example counts stay moderate to
keep the suite fast.

Also redirects the benchmark history ledger: bench CLI invocations
under test must never append to the repo's committed
``BENCH_history.jsonl``.
"""

import pytest
from hypothesis import HealthCheck, settings


@pytest.fixture(autouse=True)
def _isolated_bench_history(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_HISTORY",
                       str(tmp_path / "BENCH_history.jsonl"))

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
