"""Test-suite configuration.

Registers a deterministic hypothesis profile: simulation-backed
properties have runtimes that vary with the drawn workload, so the
default 200 ms deadline would flake; example counts stay moderate to
keep the suite fast.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
