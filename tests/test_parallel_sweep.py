"""Determinism and caching guarantees of :mod:`repro.parallel`.

The contract under test: a sweep's results are a pure function of its
:class:`SweepSpec` — independent of worker count, cache temperature
and scheduling — and cache keys change whenever any simulated-meaning
input changes (so a hit is never stale).
"""

import dataclasses
import pickle

import pytest

from repro.obs import Tracer, use_tracer
from repro.parallel import (
    ContentCache,
    SweepSpec,
    canonical,
    fingerprint,
    run_sweep,
    sim_cache,
    sim_key,
    trace_fingerprint,
)
from repro.parallel.sweep import SweepCell
from repro.simulator import HardwareConfig, simulate
from repro.trace import Workload

VOL = 16 * 1024
LIBS = ("ISA-L", "Zerasure", "DIALGA")
WLS = tuple(
    Workload(k=k, m=m, block_bytes=512, data_bytes_per_thread=VOL)
    for k, m in ((4, 2), (6, 3), (8, 4)))


def small_spec(**over) -> SweepSpec:
    kw = dict(libraries=LIBS, workloads=WLS)
    kw.update(over)
    return SweepSpec(**kw)


# ------------------------------------------------------------ the grid

def test_cells_enumerate_in_stable_workload_major_order():
    spec = small_spec()
    cells = spec.cells()
    assert len(cells) == len(spec) == 9
    assert [c.workload.k for c in cells] == [4, 4, 4, 6, 6, 6, 8, 8, 8]
    assert [c.library for c in cells] == list(LIBS) * 3
    assert cells == spec.cells()  # pure function of the spec


def test_spec_normalizes_lists_and_defaults_hardware():
    spec = SweepSpec(libraries=["ISA-L"], workloads=list(WLS))
    assert isinstance(spec.libraries, tuple)
    assert spec.hardware == (HardwareConfig(),)


def test_spec_requires_a_workload():
    with pytest.raises(ValueError):
        SweepSpec(libraries=LIBS, workloads=())


def test_dialga_kwargs_reach_the_cell_key():
    a = SweepSpec(libraries=("DIALGA",), workloads=WLS[:1])
    b = SweepSpec(libraries=("DIALGA",), workloads=WLS[:1],
                  library_kwargs={"DIALGA": {"chunks": 3}})
    assert a.cells()[0].key() != b.cells()[0].key()


# -------------------------------------------- serial ≡ parallel ≡ warm

def test_parallel_sweep_bit_identical_to_serial():
    spec = small_spec()
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=4)
    assert serial == parallel
    assert serial.counters.snapshot() == parallel.counters.snapshot()
    assert serial.to_dict() == parallel.to_dict()


def test_warm_cache_changes_nothing_and_runs_no_cell():
    spec = small_spec()
    cache = ContentCache()
    cold = run_sweep(spec, workers=2, cache=cache)
    warm = run_sweep(spec, workers=1, cache=cache)
    assert cold == warm
    assert not any(r.cached for r in cold.results)
    assert all(r.cached for r in warm.results)
    assert warm.cache_stats["hits"] == len(spec)


def test_cache_true_builds_a_fresh_store():
    result = run_sweep(small_spec(workloads=WLS[:1]), cache=True)
    assert result.cache_stats["misses"] == len(result)


def test_unsupported_and_failing_cells_are_carried_not_raised():
    # Zerasure has fixed kernels -> pinning a policy is unsupported;
    # library_kwargs on a non-DIALGA library -> recorded error.
    from repro.core import Policy
    spec = SweepSpec(libraries=("Zerasure", "ISA-L"), workloads=WLS[:1],
                     policies=(Policy(sw_distance=8),),
                     library_kwargs={"ISA-L": {"bogus": 1}})
    result = run_sweep(spec)
    zer, isal = result.results
    assert not zer.supported and zer.error is None
    assert isal.supported and "library_kwargs" in isal.error
    # and the same cells fail identically through the pool
    assert run_sweep(spec, workers=2) == result


def test_sweep_result_grouping_and_payload():
    result = run_sweep(small_spec())
    table = result.by_library()
    assert set(table) == set(LIBS)
    assert all(len(rows) == 3 for rows in table.values())
    payload = result.to_dict()
    assert len(payload["cells"]) == 9
    assert payload["counters"] == result.counters.nonzero_dict()


# ------------------------------------------------- fingerprint hygiene

def test_fingerprint_invalidates_on_any_input_change():
    cell = SweepCell("ISA-L", WLS[0], HardwareConfig())
    base = cell.key()
    changed = [
        dataclasses.replace(cell, library="Zerasure"),
        dataclasses.replace(cell, workload=dataclasses.replace(
            WLS[0], block_bytes=1024)),
        dataclasses.replace(cell, hardware=HardwareConfig().with_pm(
            media_latency_ns=400.0)),
        dataclasses.replace(cell, library_kwargs=(("chunks", 3),)),
    ]
    keys = {c.key() for c in changed}
    assert base not in keys and len(keys) == len(changed)


def test_fingerprint_is_stable_across_equal_objects():
    assert (fingerprint(HardwareConfig())
            == fingerprint(HardwareConfig()))
    assert fingerprint(WLS[0]) == fingerprint(dataclasses.replace(WLS[0]))


def test_canonical_encodes_floats_exactly_and_sorts_dicts():
    assert canonical(0.1) != canonical(0.1 + 2 ** -55)
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})
    with pytest.raises(TypeError):
        canonical(object())


def test_trace_fingerprint_tracks_content():
    from repro.libs import ISAL
    wl = WLS[0]
    lib = ISAL(wl.k, wl.m)
    hw = HardwareConfig()
    t0 = lib.trace(lib.effective_workload(wl), hw, 0)
    t1 = lib.trace(lib.effective_workload(wl), hw, 0)
    assert trace_fingerprint(t0) == trace_fingerprint(t1)
    t2 = lib.trace(lib.effective_workload(
        dataclasses.replace(wl, block_bytes=1024)), hw, 0)
    assert trace_fingerprint(t0) != trace_fingerprint(t2)


# ---------------------------------------------------------- the store

def test_content_cache_returns_fresh_copies():
    cache = ContentCache()
    cache.put("k", {"list": [1, 2]})
    a = cache.get("k")
    a["list"].append(3)
    assert cache.get("k") == {"list": [1, 2]}


def test_content_cache_disk_round_trip(tmp_path):
    cache = ContentCache(disk=tmp_path)
    cache.put("deadbeef", [1, 2, 3])
    fresh = ContentCache(disk=tmp_path)  # new process, cold memory
    assert fresh.get("deadbeef") == [1, 2, 3]
    assert fresh.disk_hits == 1
    assert (tmp_path / "de" / "deadbeef.pkl").exists()
    assert not list(tmp_path.glob("**/*.tmp.*"))  # atomic writes


def test_cache_dir_env_override(tmp_path, monkeypatch):
    from repro.parallel import default_cache_dir
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
    assert default_cache_dir() == tmp_path / "x"


# ------------------------------------------------ the simulate() seam

def test_sim_cache_serves_identical_results():
    from repro.libs import ISAL
    wl = WLS[0]
    lib = ISAL(wl.k, wl.m)
    hw = HardwareConfig().with_cpu(simd=wl.simd)
    trace = lib.trace(lib.effective_workload(wl), hw, 0)
    fresh = simulate(trace, hw)
    with sim_cache() as store:
        first = simulate(trace, hw)
        again = simulate(trace, hw)
    assert first.makespan_ns == again.makespan_ns == fresh.makespan_ns
    assert first.counters.snapshot() == fresh.counters.snapshot()
    assert store.hits == 1 and store.misses == 1
    # and the hook is gone afterwards
    from repro.simulator import api
    assert api._SIM_CACHE is None


def test_sim_key_depends_on_hardware_and_batching():
    from repro.libs import ISAL
    wl = WLS[0]
    lib = ISAL(wl.k, wl.m)
    hw = HardwareConfig()
    trace = lib.trace(lib.effective_workload(wl), hw, 0)
    k0 = sim_key([trace], hw)
    assert k0 == sim_key([trace], HardwareConfig())
    assert k0 != sim_key([trace], hw.with_pm(media_latency_ns=400.0))
    assert k0 != sim_key([trace], hw, batch_ops=8)
    assert k0 != sim_key([trace, trace], hw)


# -------------------------------------------------- tracing + workers

def test_traced_parallel_sweep_absorbs_worker_spans_deterministically():
    spec = small_spec(workloads=WLS[:2])
    with use_tracer(Tracer("serial")) as serial_tr:
        serial = run_sweep(spec, workers=1)
    with use_tracer(Tracer("pool")) as pool_tr:
        parallel = run_sweep(spec, workers=2)
    assert serial == parallel
    assert len(pool_tr.spans) == len(serial_tr.spans) > 0
    assert ([s.name for s in pool_tr.spans]
            == [s.name for s in serial_tr.spans])
    ids = [s.span_id for s in pool_tr.spans]
    assert len(ids) == len(set(ids))  # remapped past collisions


def test_cache_is_skipped_while_tracing():
    spec = small_spec(workloads=WLS[:1])
    cache = ContentCache()
    run_sweep(spec, cache=cache)
    with use_tracer(Tracer("t")) as tr:
        result = run_sweep(spec, cache=cache)
    assert not any(r.cached for r in result.results)
    assert result.cache_stats is None
    assert tr.spans  # the re-run actually recorded


def test_cell_results_pickle_for_the_pool():
    result = run_sweep(small_spec(workloads=WLS[:1]))
    clone = pickle.loads(pickle.dumps(result.results[0]))
    assert clone == result.results[0]


# ----------------------------------------------- worker-death hardening

def test_poisoned_worker_is_resubmitted_and_results_match(tmp_path,
                                                          monkeypatch):
    spec = small_spec(workloads=WLS[:2])
    baseline = run_sweep(spec, workers=2)
    flag = tmp_path / "poison-once"
    # Cell 2's worker hard-exits once; the resubmitted attempt survives
    # (the flag file exists by then) and the sweep is *byte-identical*
    # to the fault-free run.
    monkeypatch.setenv("REPRO_SWEEP_POISON", f"2:{flag}")
    recovered = run_sweep(spec, workers=2)
    assert recovered == baseline
    assert recovered.fault_stats is not None
    assert recovered.fault_stats["pool_restarts"] >= 1
    assert recovered.fault_stats["resubmitted_cells"] >= 1
    assert recovered.fault_stats["abandoned_cells"] == 0
    assert flag.exists()


def test_resubmission_budget_exhaustion_surfaces_errors(monkeypatch):
    spec = small_spec(workloads=WLS[:2])
    # No flag file: the poisoned cell dies on *every* attempt.
    monkeypatch.setenv("REPRO_SWEEP_POISON", "2")
    result = run_sweep(spec, workers=2, max_resubmits=1)
    dead = result.results[2]
    assert dead.error is not None and "resubmission budget" in dead.error
    assert result.fault_stats["abandoned_cells"] >= 1
    # The sweep still completed: every cell has a result, and the only
    # errors are worker-death ones (cells in flight when the pool broke
    # may be abandoned alongside the poisoned cell).
    assert all(r is not None for r in result.results)
    for r in result.results:
        if r.supported and r.error is not None:
            assert "worker died" in r.error
    assert any(r.error is None for r in result.results if r.supported)


def test_executor_fault_errors_never_poison_the_cache(monkeypatch):
    spec = small_spec(workloads=WLS[:1])
    cache = ContentCache()
    monkeypatch.setenv("REPRO_SWEEP_POISON", "1")
    faulted = run_sweep(spec, workers=2, cache=cache, max_resubmits=0)
    assert "worker died" in faulted.results[1].error
    monkeypatch.delenv("REPRO_SWEEP_POISON")
    # Warm run: the dead cell was never memoized, so it re-executes and
    # now matches a fault-free sweep.
    healed = run_sweep(spec, workers=2, cache=cache)
    assert healed == run_sweep(spec, workers=1)
    assert healed.results[1].error is None


def test_fault_stats_absent_on_clean_runs():
    clean = run_sweep(small_spec(workloads=WLS[:1]), workers=2)
    assert clean.fault_stats is None
    assert run_sweep(small_spec(workloads=WLS[:1])).fault_stats is None


def test_cell_timeout_returns_error_result():
    # Serial path ignores the timeout; exercise the accounting shape
    # via a tiny parallel run where nothing actually hangs.
    result = run_sweep(small_spec(workloads=WLS[:2]), workers=2,
                       cell_timeout_s=120.0)
    assert all(r.error is None for r in result.results if r.supported)
    assert result.fault_stats is None
