"""Unit tests for the tracer core: spans, nesting, rebasing, the null
default and the process-wide installation protocol."""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    assert_well_formed,
    check_containment,
    check_spans,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_begin_end_records_interval(self):
        tr = Tracer()
        span = tr.begin("work", 100.0, items=3)
        tr.end(span, 250.0, status="done")
        assert span.finished
        assert span.start_ns == 100.0
        assert span.end_ns == 250.0
        assert span.duration_ns == 150.0
        assert span.attrs == {"items": 3, "status": "done"}

    def test_span_end_method_delegates_to_tracer(self):
        tr = Tracer()
        span = tr.begin("work", 0.0)
        span.end(50.0)
        assert span.end_ns == 50.0
        assert tr.open_spans == []

    def test_stack_nesting_sets_parent(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        inner = tr.begin("inner", 10.0)
        assert inner.parent_id == outer.span_id
        tr.end(inner, 20.0)
        tr.end(outer, 30.0)
        sibling = tr.begin("sibling", 40.0)
        assert sibling.parent_id is None

    def test_detached_span_is_root_and_not_stacked(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        det = tr.begin("request", 5.0, detached=True)
        assert det.parent_id is None
        # The stack is undisturbed: a new child still nests under outer.
        child = tr.begin("child", 6.0)
        assert child.parent_id == outer.span_id

    def test_explicit_parent_overrides_stack(self):
        tr = Tracer()
        a = tr.begin("a", 0.0, detached=True)
        tr.begin("b", 0.0)
        c = tr.begin("c", 1.0, parent=a)
        assert c.parent_id == a.span_id

    def test_end_clamps_to_start(self):
        tr = Tracer()
        span = tr.begin("work", 100.0)
        tr.end(span, 40.0)   # earlier than start: clamp, never negative
        assert span.end_ns == 100.0
        assert not check_spans(tr)

    def test_out_of_order_end_of_interleaved_spans(self):
        tr = Tracer()
        a = tr.begin("a", 0.0)
        b = tr.begin("b", 1.0)
        tr.end(a, 10.0)      # a closed while b still open
        assert tr.open_spans == [b]
        tr.end(b, 11.0)
        assert tr.open_spans == []

    def test_events_attach_to_innermost_or_explicit_span(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        ev = tr.event("tick", 1.0)
        assert ev.span_id == outer.span_id
        det = tr.begin("req", 2.0, detached=True)
        ev2 = det.event("mark", 3.0, n=1)
        assert ev2.span_id == det.span_id and ev2.attrs == {"n": 1}
        tr.end(outer, 4.0)
        free = tr.event("lonely", 5.0)
        assert free.span_id is None

    def test_find_helpers_and_max_ts(self):
        tr = Tracer()
        s = tr.begin("x", 3.0)
        tr.event("e", 7.0)
        tr.end(s, 9.0)
        assert tr.find_spans("x") == [s]
        assert [e.name for e in tr.find_events("e")] == ["e"]
        assert tr.max_ts == 9.0


class TestRebasing:
    def test_shifted_offsets_spans_and_events(self):
        tr = Tracer()
        with tr.shifted(1000.0):
            s = tr.begin("inner", 0.0)
            tr.event("e", 5.0)
            tr.end(s, 10.0)
        assert (s.start_ns, s.end_ns) == (1000.0, 1010.0)
        assert tr.events[0].ts_ns == 1005.0
        # Offsets nest additively and unwind.
        with tr.shifted(100.0), tr.shifted(10.0):
            assert tr.offset_ns == 110.0
        assert tr.offset_ns == 0.0

    def test_sequenced_lays_runs_end_to_end(self):
        tr = Tracer()
        for _ in range(2):
            with tr.sequenced(0.0):
                s = tr.begin("run", 0.0)
                tr.end(s, 100.0)
        first, second = tr.find_spans("run")
        assert (first.start_ns, first.end_ns) == (0.0, 100.0)
        assert (second.start_ns, second.end_ns) == (100.0, 200.0)

    def test_sequenced_is_noop_inside_open_span(self):
        tr = Tracer()
        outer = tr.begin("outer", 500.0)
        with tr.sequenced(0.0):
            inner = tr.begin("inner", 510.0)
            tr.end(inner, 520.0)
        tr.end(outer, 530.0)
        assert inner.start_ns == 510.0   # not shifted to max_ts
        assert not check_containment(tr)


class TestNullAndDefault:
    def test_default_is_null_tracer(self):
        tr = get_tracer()
        assert isinstance(tr, NullTracer)
        assert tr is NULL_TRACER
        assert not tr.enabled

    def test_null_tracer_is_inert(self):
        tr = NullTracer()
        span = tr.begin("x", 0.0, anything="goes")
        span.end(10.0)
        span.event("e", 5.0)
        tr.event("e", 5.0)
        with tr.shifted(100.0), tr.sequenced(0.0):
            pass
        assert tr.spans == () and tr.events == ()
        assert tr.find_spans("x") == [] and tr.find_events("e") == []

    def test_set_tracer_returns_previous_and_none_restores_null(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            assert set_tracer(None) is tr
        assert get_tracer() is NULL_TRACER
        assert prev is NULL_TRACER

    def test_use_tracer_restores_on_exit_even_on_error(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tr):
                assert get_tracer() is tr
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER


class TestWellFormedness:
    def test_clean_trace_passes(self):
        tr = Tracer()
        s = tr.begin("a", 0.0)
        tr.event("e", 1.0)
        tr.end(s, 2.0)
        assert_well_formed(tr)

    def test_orphan_parent_and_negative_ts_flagged(self):
        tr = Tracer()
        s = tr.begin("a", -5.0)
        s.parent_id = 999
        problems = check_spans(tr)
        assert any("orphan parent" in p for p in problems)
        assert any("before t=0" in p for p in problems)
        with pytest.raises(ValueError, match="malformed trace"):
            assert_well_formed(tr)
