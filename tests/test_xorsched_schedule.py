"""Unit tests for bit-slicing and XOR schedule execution."""

import numpy as np
import pytest

from repro.gf import gf8, matrix_to_bitmatrix
from repro.codes import RSCode
from repro.xorsched import (
    XorSchedule,
    naive_schedule,
    bitslice,
    unbitslice,
    encode_bitmatrix,
)


def test_bitslice_roundtrip():
    rng = np.random.default_rng(0)
    block = rng.integers(0, 256, 64).astype(np.uint8)
    assert np.array_equal(unbitslice(bitslice(block)), block)


def test_bitslice_shape_and_bit_semantics():
    block = np.array([0b00000001] * 8 + [0b10000000] * 8, dtype=np.uint8)
    p = bitslice(block)
    assert p.shape == (8, 2)
    assert p[0, 0] == 0xFF and p[0, 1] == 0x00   # bit 0 set in first 8 symbols
    assert p[7, 0] == 0x00 and p[7, 1] == 0xFF   # bit 7 set in last 8 symbols


def test_bitslice_validates():
    with pytest.raises(ValueError):
        bitslice(np.zeros(10, np.uint8))
    with pytest.raises(NotImplementedError):
        bitslice(np.zeros(16, np.uint8), w=4)
    with pytest.raises(NotImplementedError):
        unbitslice(np.zeros((4, 2), np.uint8), w=4)


def test_naive_schedule_counts():
    code = RSCode(4, 2, matrix="cauchy")
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    sched = naive_schedule(bm, 4, 2, 8)
    ones = int(bm.sum())
    rows = int((bm.sum(axis=1) > 0).sum())
    assert sched.xor_count == ones - rows
    assert sched.total_ops == ones


def test_naive_schedule_shape_validation():
    with pytest.raises(ValueError):
        naive_schedule(np.zeros((16, 32), np.uint8), k=4, m=3, w=8)


def test_schedule_execute_wrong_packets():
    sched = XorSchedule(k=2, m=1, w=8)
    with pytest.raises(ValueError):
        sched.execute(np.zeros((8, 4), np.uint8))


@pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (6, 3)])
def test_bitmatrix_encode_equals_table_encode(k, m):
    """The central equivalence: XOR-scheduled encode == table-lookup RS."""
    code = RSCode(k, m, matrix="cauchy")
    rng = np.random.default_rng(k + m)
    data = rng.integers(0, 256, (k, 64)).astype(np.uint8)
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    got = encode_bitmatrix(gf8, bm, data)
    want = code.encode_blocks(data)
    assert np.array_equal(got, want)


def test_bitmatrix_encode_vandermonde_generator():
    code = RSCode(5, 2, matrix="vandermonde")
    rng = np.random.default_rng(9)
    data = rng.integers(0, 256, (5, 32)).astype(np.uint8)
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    assert np.array_equal(encode_bitmatrix(gf8, bm, data), code.encode_blocks(data))


def test_source_reads_metric():
    sched = XorSchedule(k=1, m=1, w=8,
                        ops=[("copy", 8, 0), ("xor", 8, 1)])
    assert sched.source_reads() == 3
    assert sched.xor_count == 1


def test_gf16_bitslice_roundtrip():
    rng = np.random.default_rng(5)
    block = rng.integers(0, 1 << 16, 64).astype(np.uint32)
    assert np.array_equal(unbitslice(bitslice(block, 16), 16), block)


def test_gf16_bitmatrix_encode_equals_table_encode():
    from repro.gf import gf16
    code = RSCode(4, 2, field=gf16)
    rng = np.random.default_rng(6)
    data = rng.integers(0, 1 << 16, (4, 16)).astype(np.uint32)
    bm = matrix_to_bitmatrix(gf16, code.parity_rows)
    got = encode_bitmatrix(gf16, bm, data)
    assert np.array_equal(got, code.encode_blocks(data))


def test_bitslice_rejects_unsupported_width():
    with pytest.raises(NotImplementedError):
        bitslice(np.zeros(16, np.uint8), w=4)
