"""Decision ledger, counterfactual replay and the regression gate."""

import json
import subprocess
import sys

import pytest

from repro import HardwareConfig, Workload
from repro.core import AdaptiveCoordinator
from repro.core.dialga import DialgaConfig, DialgaEncoder
from repro.obs import (
    BenchHistory,
    DecisionLedger,
    Tracer,
    detect_regressions,
    history_path,
    ledger_from_coordinator,
    metric_direction,
    replay_decisions,
    use_tracer,
)
from repro.simulator import Counters

HW = HardwareConfig()


def _wl(**kw):
    base = dict(k=8, m=4, block_bytes=1024, data_bytes_per_thread=64 * 1024)
    base.update(kw)
    return Workload(**base)


def _hot_coordinator():
    """Coordinator driven through a synthetic contention switch."""
    coord = AdaptiveCoordinator(_wl(nthreads=10), HW)
    cal = Counters()
    cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 10_000.0, 10
    coord.set_baseline(cal)
    hot = Counters()
    hot.loads, hot.load_stall_ns, hot.hwpf_useless = 1000, 30_000.0, 100
    coord.observe(hot)
    return coord


# -- evidence capture ------------------------------------------------------


class TestDecisionEvidence:
    def test_initial_decision_is_recorded_with_evidence(self):
        coord = AdaptiveCoordinator(_wl(), HW)
        assert len(coord.decision_log) == 1
        ev = coord.decision_log[0]
        assert ev.kind == "initial"
        assert not ev.switched and ev.old is None
        assert ev.chosen is coord.policy
        assert {c.name for c in ev.checks} >= {"thread_pressure",
                                               "wide_stripe"}
        assert coord.policy in ev.candidates

    def test_observe_records_threshold_evaluations(self):
        coord = _hot_coordinator()
        ev = coord.decision_log[-1]
        assert ev.kind == "observe"
        assert ev.switched and ev.old is not None
        assert ev.fired("contention") and ev.fired("inefficient")
        by_name = {c.name: c for c in ev.checks}
        assert by_name["contention"].value > by_name["contention"].limit
        assert len(ev.candidates) >= 2
        assert not coord.policy.hw_prefetch

    def test_on_decision_callback_fires_live(self):
        seen = []
        coord = AdaptiveCoordinator(_wl(), HW, on_decision=seen.append)
        assert len(seen) == 1 and seen[0].kind == "initial"
        quiet = Counters()
        quiet.loads, quiet.load_stall_ns = 1000, 10_000.0
        coord.observe(quiet)
        assert len(seen) == 2
        coord.observe(Counters())  # zero-load samples carry no evidence
        assert len(seen) == 2

    def test_probe_search_records_climb_trajectory(self):
        wl = _wl(nthreads=2)
        coord = AdaptiveCoordinator(wl, HW,
                                    probe=lambda d: abs(d - 11) + 1.0)
        ev = coord.decision_log[0]
        assert len(ev.climb) >= 2  # the start plus accepted moves
        # The trajectory's last accepted move is the chosen distance.
        assert ev.climb[-1][1] == coord.policy.sw_distance == 11


class TestDecisionLedger:
    def test_ingest_matches_live_attach(self):
        live = DecisionLedger()
        coord = AdaptiveCoordinator(_wl(nthreads=10), HW,
                                    on_decision=live.on_decision)
        cal = Counters()
        cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 10_000.0, 10
        coord.set_baseline(cal)
        hot = Counters()
        hot.loads, hot.load_stall_ns, hot.hwpf_useless = 1000, 30_000.0, 100
        coord.observe(hot)
        live.wl, live.hw = coord.wl, coord.hw
        after = ledger_from_coordinator(coord)
        assert live.to_records() == after.to_records()
        assert len(after.switches) == 1

    def test_attach_chains_existing_hook_and_backfills(self):
        seen = []
        coord = AdaptiveCoordinator(_wl(), HW, on_decision=seen.append)
        ledger = DecisionLedger().attach(coord)
        assert len(ledger.records) == 1  # backfilled the initial decision
        quiet = Counters()
        quiet.loads, quiet.load_stall_ns = 1000, 10_000.0
        coord.observe(quiet)
        assert len(ledger.records) == 2
        assert len(seen) == 2  # the original hook still fires

    def test_jsonl_roundtrip_is_plain_json(self):
        ledger = ledger_from_coordinator(_hot_coordinator())
        lines = ledger.to_jsonl().strip().splitlines()
        assert len(lines) == len(ledger.records)
        parsed = [json.loads(line) for line in lines]
        assert parsed[-1]["switched"] is True
        assert parsed[-1]["old"] != parsed[-1]["chosen"]
        assert any(c["fired"] for c in parsed[-1]["checks"])

    def test_write_jsonl(self, tmp_path):
        ledger = ledger_from_coordinator(_hot_coordinator())
        path = ledger.write_jsonl(tmp_path / "sub" / "decisions.jsonl")
        assert path.exists()
        assert len(path.read_text().strip().splitlines()) == len(ledger.records)

    def test_emit_events_lays_decisions_on_the_timeline(self):
        ledger = ledger_from_coordinator(_hot_coordinator())
        tracer = Tracer("test")
        emitted = ledger.emit_events(tracer)
        evaluated = [e for e in tracer.events if e.name == "decision.evaluated"]
        switches = [e for e in tracer.events if e.name == "decision.switch"]
        assert len(evaluated) == len(ledger.records)
        assert len(switches) == len(ledger.switches) == 1
        assert emitted == len(evaluated) + len(switches)
        assert switches[0].attrs["old"] != switches[0].attrs["new"]

    def test_emit_events_noop_without_tracer(self):
        ledger = ledger_from_coordinator(_hot_coordinator())
        assert ledger.emit_events() == 0  # ambient NULL tracer

    def test_render_mentions_switches(self):
        text = ledger_from_coordinator(_hot_coordinator()).render()
        assert "SWITCH" in text and "contention" in text


# -- counterfactual replay -------------------------------------------------


class TestReplay:
    @pytest.fixture(scope="class")
    def episode(self):
        wl = _wl(nthreads=10,
                 data_bytes_per_thread=48 * 8 * 1024)
        enc = DialgaEncoder(8, 4, config=DialgaConfig(use_probe=False,
                                                      chunks=4))
        enc.run(wl, HW)
        return ledger_from_coordinator(enc.last_coordinator)

    def test_regret_report_shape(self, episode):
        report = replay_decisions(episode)
        assert len(report.decisions) == len(episode.records)
        assert 0.0 < report.oracle_score <= 1.0
        assert all(d.regret_ns_per_byte >= 0.0 for d in report.decisions)
        assert all(d.best in d.candidate_ns_per_byte
                   and d.chosen in d.candidate_ns_per_byte
                   for d in report.decisions)

    def test_window_stripes_come_from_the_chunk_size(self, episode):
        assert episode.window_stripes == 48 // 4
        assert replay_decisions(episode).window_stripes == 12
        assert replay_decisions(episode,
                                window_stripes=3).window_stripes == 3

    def test_cache_engages_across_windows(self, episode):
        report = replay_decisions(episode)
        assert report.cache_stats["hits"] > 0
        # Candidate policies recur across decisions: far fewer unique
        # simulations than candidate evaluations.
        assert report.cache_stats["misses"] < sum(
            len(d.candidate_ns_per_byte) for d in report.decisions)

    def test_replay_is_deterministic(self, episode):
        a = replay_decisions(episode).to_dict()
        b = replay_decisions(episode).to_dict()
        assert a == b

    def test_render_has_score_line(self, episode):
        text = replay_decisions(episode).render()
        assert "oracle-normalized score" in text

    def test_replay_without_workload_raises(self):
        with pytest.raises(ValueError):
            replay_decisions(DecisionLedger())

    def test_replay_ignores_ambient_tracer(self, episode):
        tracer = Tracer("test")
        with use_tracer(tracer):
            report = replay_decisions(episode)
        assert report.cache_stats["hits"] > 0
        assert not tracer.spans  # windows never land on the timeline


# -- service integration ---------------------------------------------------


def test_service_emits_decision_events_on_the_request_timeline():
    from repro.service import ErasureCodingService, Request, ServiceConfig

    svc = ErasureCodingService(
        4, 2, block_bytes=1024,
        library=DialgaEncoder(4, 2, config=DialgaConfig(use_probe=False,
                                                        chunks=2)),
        config=ServiceConfig(threads_per_job=2))
    tracer = Tracer("test")
    with use_tracer(tracer):
        svc.submit(Request.encode(stripes=8, arrival_ns=0.0))
        svc.drain()
    evaluated = [e for e in tracer.events if e.name == "decision.evaluated"]
    assert evaluated, "coding jobs must leave decision.* events"
    batch_spans = [s for s in tracer.spans if s.name == "service.batch"]
    assert batch_spans
    # Decisions are rebased onto the service clock: inside the batch.
    assert all(batch_spans[0].start_ns <= e.ts_ns <= batch_spans[-1].end_ns
               for e in evaluated)


# -- regression gate -------------------------------------------------------


class TestMetricDirection:
    def test_lower_is_better(self):
        for name in ("wall_s", "serial_s", "makespan_ns", "p99_latency_us",
                     "mean_regret_ns_per_byte"):
            assert metric_direction(name) == "lower"

    def test_higher_is_better(self):
        for name in ("throughput_gbps", "speedup_warm", "oracle_score",
                     "pass_fraction"):
            assert metric_direction(name) == "higher"

    def test_ungated(self):
        for name in ("cells", "workers", "mean_switches"):
            assert metric_direction(name) is None


class TestBenchHistory:
    def test_append_and_read(self, tmp_path):
        hist = BenchHistory(tmp_path / "h.jsonl")
        hist.append("bench:a", {"wall_s": 1.0, "note": "skipped"},
                    meta={"seed": 0})
        hist.append("bench:b", {"wall_s": 2.0})
        assert hist.runs() == ["bench:a", "bench:b"]
        (entry,) = hist.entries("bench:a")
        assert entry["metrics"] == {"wall_s": 1.0}  # non-numeric dropped
        assert entry["meta"] == {"seed": 0}

    def test_entries_skip_garbage_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        hist = BenchHistory(path)
        hist.append("bench:a", {"wall_s": 1.0})
        with path.open("a") as fh:
            fh.write("not json\n{\"no_run\": 1}\n")
        hist.append("bench:a", {"wall_s": 1.1})
        assert len(hist.entries("bench:a")) == 2

    def test_env_var_redirects_default_path(self, tmp_path, monkeypatch):
        target = tmp_path / "redirected.jsonl"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(target))
        assert history_path() == target
        BenchHistory().append("bench:a", {"wall_s": 1.0})
        assert target.exists()


class TestDetectRegressions:
    def _history(self, tmp_path, values, metric="wall_s", run="bench:a"):
        hist = BenchHistory(tmp_path / "h.jsonl")
        for v in values:
            hist.append(run, {metric: v}, ts="2026-08-07T00:00:00+00:00")
        return hist

    def test_clean_history_passes(self, tmp_path):
        report = detect_regressions(self._history(tmp_path, [10.0, 10.1, 9.9]))
        assert report.clean and not report.flags
        assert report.compared == 1

    def test_exactly_at_110_percent_does_not_warn(self, tmp_path):
        # Strict >: ratio == warn factor stays clean (matches
        # perf_report's 110% flag semantics).
        hist = self._history(tmp_path, [10.0, 10.0, 10.0])
        assert detect_regressions(hist, warn_factor=1.10).clean
        hist.append("bench:a", {"wall_s": 11.0})
        assert not detect_regressions(hist, warn_factor=1.10).flags
        hist.append("bench:a", {"wall_s": 11.001})
        flags = detect_regressions(hist, warn_factor=1.10).flags
        assert [f.severity for f in flags] == ["warn"]

    def test_exactly_at_150_percent_warns_but_does_not_fail(self, tmp_path):
        hist = self._history(tmp_path, [10.0, 10.0])
        hist.append("bench:a", {"wall_s": 15.0})
        report = detect_regressions(hist)
        assert report.warnings and not report.failures and report.clean
        hist.append("bench:a", {"wall_s": 15.0})  # median now 10.0 again
        hist = self._history(tmp_path / "b", [10.0, 10.0])
        hist.append("bench:a", {"wall_s": 15.001})
        report = detect_regressions(hist)
        assert report.failures and not report.clean
        assert "150%" in report.failures[0].describe()

    def test_higher_is_better_direction(self, tmp_path):
        hist = self._history(tmp_path, [2.0, 2.0, 0.9],
                             metric="speedup_warm")
        report = detect_regressions(hist)
        assert report.failures
        assert report.failures[0].ratio == pytest.approx(2.0 / 0.9)

    def test_improvement_never_flags(self, tmp_path):
        hist = self._history(tmp_path, [10.0, 10.0, 2.0])
        assert detect_regressions(hist).clean

    def test_first_entry_seeds_baseline(self, tmp_path):
        report = detect_regressions(self._history(tmp_path, [10.0]))
        assert report.unseeded == ["bench:a"]
        assert report.compared == 0 and report.clean
        assert "baseline seeded" in report.render()

    def test_median_baseline_resists_one_outlier(self, tmp_path):
        hist = self._history(tmp_path, [10.0, 10.0, 100.0, 10.0, 10.2])
        assert detect_regressions(hist).clean

    def test_rolling_window_limits_lookback(self, tmp_path):
        # Old fast entries age out of the window: no flag.
        hist = self._history(tmp_path, [1.0, 1.0, 20.0, 20.0, 20.0, 20.0,
                                        20.0, 20.5])
        assert detect_regressions(hist, window=5).clean


class TestFigureHistoryMetrics:
    def test_history_metrics_are_gateable_numbers(self):
        from repro.bench.report import FigureResult
        fig = FigureResult("f", "t", ["tput_gbps", "tag", "ok"])
        fig.add_row("a", tput_gbps=2.0, tag="x", ok=True)
        fig.add_row("b", tput_gbps=4.0, tag="y", ok=False)
        fig.check("c1", True)
        fig.check("c2", False)
        metrics = fig.history_metrics()
        assert metrics == {"pass_fraction": 0.5, "mean_tput_gbps": 3.0}


class TestGateScript:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "scripts/check_regression.py", *argv],
            capture_output=True, text=True, cwd="/root/repo")

    def test_clean_history_exits_zero(self, tmp_path):
        hist = BenchHistory(tmp_path / "h.jsonl")
        for v in (10.0, 10.1, 9.9):
            hist.append("bench:a", {"wall_s": v})
        proc = self._run(str(hist.path))
        assert proc.returncode == 0, proc.stderr
        assert "0 failure(s)" in proc.stdout

    def test_injected_slowdown_exits_nonzero(self, tmp_path):
        hist = BenchHistory(tmp_path / "h.jsonl")
        for v in (10.0, 10.1, 9.9):
            hist.append("bench:a", {"wall_s": v})
        hist.append("bench:a", {"wall_s": 60.0})
        proc = self._run(str(hist.path))
        assert proc.returncode == 1
        assert "inefficient-prefetcher-grade" in proc.stdout

    def test_missing_ledger_exits_two(self, tmp_path):
        proc = self._run(str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2


# -- the bench scenario ----------------------------------------------------


def test_audit_scenario_is_registered():
    from repro.bench.audit_scenario import ALL_AUDIT_SCENARIOS, audit_scenario
    from repro.bench.cli import _experiments
    assert ALL_AUDIT_SCENARIOS["audit"] is audit_scenario
    assert _experiments()["audit"] is audit_scenario


@pytest.mark.slow
def test_audit_scenario_all_checks_pass():
    from repro.bench.audit_scenario import audit_scenario
    fig = audit_scenario(seed=0)
    assert fig.all_passed, fig.render()
    assert fig.value("pressure (10 threads)", "switches") >= 1
