"""Property tests for batch coalescing.

The service's central soundness claim: merging same-geometry requests
into ONE coding call produces bit-for-bit the same parities (and the
same stored bytes) as handling them one at a time. RS parity is
computed independently per byte column, so the horizontal concatenation
of stripes must encode to the concatenation of their parities — for any
geometry, any widths, any data.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes import RSCode
from repro.service import (
    ErasureCodingService,
    Request,
    ServiceConfig,
    encode_coalesced,
)


@st.composite
def stripes_case(draw):
    """A geometry plus 1-6 stripes of varying widths."""
    k = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=4))
    widths = draw(st.lists(st.integers(min_value=1, max_value=64),
                           min_size=1, max_size=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    stripes = [rng.integers(0, 256, (k, w), dtype=np.uint8)
               for w in widths]
    return k, m, stripes


@settings(max_examples=40, deadline=None)
@given(stripes_case())
def test_coalesced_encode_is_bit_exact(case):
    k, m, stripes = case
    code = RSCode(k, m)
    coalesced = encode_coalesced(code, stripes)
    assert len(coalesced) == len(stripes)
    for stripe, parity in zip(stripes, coalesced):
        expected = code.encode_blocks(stripe)
        assert parity.shape == expected.shape
        assert np.array_equal(parity, expected)


def test_coalesced_encode_empty_list():
    assert encode_coalesced(RSCode(4, 2), []) == []


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=4, max_value=12))
def test_coalesced_service_stores_same_bytes_as_serial(seed, nobjects):
    """A/B: max-coalescing service vs a one-at-a-time service must
    leave clients with identical bytes for identical traffic."""
    rng = np.random.default_rng(seed)
    payloads = {f"k{i}": rng.integers(0, 256, int(rng.integers(1, 2000)),
                                      dtype=np.uint8).tobytes()
                for i in range(nobjects)}

    def run(max_batch, threads_per_job):
        svc = ErasureCodingService(
            4, 2, block_bytes=256,
            config=ServiceConfig(max_batch=max_batch,
                                 threads_per_job=threads_per_job,
                                 max_queue_depth=64))
        svc.submit_many(Request.put(k, v) for k, v in payloads.items())
        assert all(r.ok for r in svc.drain())
        svc.submit_many(Request.get(k, arrival_ns=svc.clock_ns + 1.0)
                        for k in payloads)
        results = svc.drain()
        assert all(r.ok for r in results)
        return {r.request.key: r.value for r in results}

    # threads_per_job=48 fills the whole Eq. (1) budget -> queueing ->
    # coalesced batches; max_batch=1 forbids coalescing entirely.
    coalesced = run(max_batch=16, threads_per_job=48)
    serial = run(max_batch=1, threads_per_job=1)
    assert coalesced == serial == payloads
