"""Coverage for the under-tested fault paths.

Satellites of the chaos PR: scribble corruption end-to-end, stripes
damaged beyond the parity budget (unrepairable), transient faults
raised mid-batch, the time-windowed storm hook, and the write-path
verify that stops silent corruption from being laundered into fresh
parity.
"""

import pytest

from repro.pmstore import FaultInjector, PMStore, Scrubber, TransientFault
from repro.service import ErasureCodingService, Request, ServiceConfig
from repro.service.metrics import MetricsRegistry


def make_store(k=4, m=2, block_bytes=256, nobjs=6, payload=200):
    store = PMStore(k, m, block_bytes=block_bytes)
    for i in range(nobjs):
        store.put(f"obj{i}", bytes([i % 251]) * payload)
    return store


# -- scribble ---------------------------------------------------------------


def test_scribble_detected_and_repaired_by_scrub():
    store = make_store()
    inj = FaultInjector(store, seed=3)
    ev = inj.scribble(stripe=0, block=1, length=64)
    assert ev.kind == "scribble"
    report = Scrubber(store).scrub()
    assert (0, 1) in report.corrupt_blocks
    assert report.repaired_blocks >= 1
    assert Scrubber(store).scrub().clean


def test_scribble_on_parity_block_is_located():
    store = make_store(k=4, m=2)
    inj = FaultInjector(store, seed=5)
    inj.scribble(stripe=0, block=4, length=32)  # first parity block
    report = Scrubber(store).scrub(repair=False)
    assert (0, 4) in report.corrupt_blocks


def test_scribble_records_metrics_sink():
    store = make_store()
    inj = FaultInjector(store, seed=7)
    inj.scribble(stripe=0, block=0)
    metrics = MetricsRegistry()
    Scrubber(store, metrics=metrics).scrub()
    assert metrics.count("scrub_stripes_scanned") == store.num_stripes
    assert metrics.count("scrub_corrupt_blocks") == 1
    assert metrics.count("scrub_repaired_blocks") >= 1
    assert metrics.count("scrub_unrepairable_stripes") == 0


# -- beyond the parity budget ----------------------------------------------


def test_multi_fault_stripe_exceeding_m_is_unrepairable():
    store = make_store(k=4, m=2)
    for block in (0, 1, 2):  # three erasures > m=2
        store.mark_lost(0, block)
    with pytest.raises(ValueError, match="data loss"):
        store.repair(0)


def test_scrub_flags_unrepairable_and_counts_it():
    store = make_store(k=4, m=2)
    inj = FaultInjector(store, seed=11)
    for block in (0, 1, 2):
        inj.bit_flip(stripe=0, block=block, nbits=3)
    metrics = MetricsRegistry()
    report = Scrubber(store, metrics=metrics).scrub()
    assert 0 in report.unrepairable_stripes
    assert metrics.count("scrub_unrepairable_stripes") == 1


def test_service_get_on_unrepairable_stripe_fails_cleanly():
    """A degraded read past the budget must FAIL, never crash the loop."""
    svc = ErasureCodingService(4, 2, block_bytes=256)
    svc.submit(Request.put("victim", b"x" * 900))
    svc.drain()
    sid = svc.store.meta_of("victim").stripe
    for block in (0, 1, 2):
        svc.store.mark_lost(sid, block)
    svc.submit(Request.get("victim", arrival_ns=svc.clock_ns + 1.0))
    (res,) = svc.drain()
    assert not res.ok
    assert svc.metrics.count("faults_unrecoverable") == 1


# -- transient faults mid-batch --------------------------------------------


def test_transient_fault_mid_batch_isolated_to_one_request():
    """One poisoned key inside a coalesced batch: only it retries; the
    other requests in the same batch complete untouched."""
    svc = ErasureCodingService(4, 2, block_bytes=256,
                               config=ServiceConfig(max_batch=8))

    def poison(op, key):
        if op == "put" and key == "poisoned":
            raise TransientFault("mid-batch hiccup")

    calls = []
    svc.store.add_fault_hook(lambda op, key: calls.append(key))
    svc.store.add_fault_hook(poison)
    svc.submit_many([
        Request.put("a", b"1" * 100, arrival_ns=0.0),
        Request.put("poisoned", b"2" * 100, arrival_ns=0.1),
        Request.put("b", b"3" * 100, arrival_ns=0.2),
    ])
    results = {r.request.key: r for r in svc.drain()}
    assert results["a"].ok and results["a"].retries == 0
    assert results["b"].ok and results["b"].retries == 0
    assert not results["poisoned"].ok
    assert results["poisoned"].retries == 3  # exhausted max_attempts=4
    assert "poisoned" in calls  # the hook really fired inside the batch


def test_transient_fault_mid_batch_retry_succeeds():
    svc = ErasureCodingService(4, 2, block_bytes=256)
    inj = FaultInjector(svc.store, seed=0)
    svc.store.add_fault_hook(inj.transient_hook(
        rate=1.0, max_failures_per_key=1))
    svc.submit_many([Request.put(f"k{i}", b"v" * 64, arrival_ns=float(i))
                     for i in range(4)])
    results = svc.drain()
    assert all(r.ok for r in results)
    assert all(r.retries == 1 for r in results)
    assert svc.metrics.count("faults_transient") == 4


# -- the storm hook ---------------------------------------------------------


def test_storm_hook_only_fires_inside_window():
    store = make_store()
    inj = FaultInjector(store, seed=1)
    clock = {"ns": 0.0}
    store.add_fault_hook(inj.storm_hook(
        lambda: clock["ns"], start_ns=100.0, end_ns=200.0, rate=1.0,
        max_failures_per_key=99))
    store.put("before", b"x")          # clock 0: outside the window
    clock["ns"] = 150.0
    with pytest.raises(TransientFault, match="storm"):
        store.put("during", b"x")
    clock["ns"] = 250.0
    store.put("after", b"x")           # past the window again


def test_storm_hook_validates():
    inj = FaultInjector(make_store(), seed=0)
    with pytest.raises(ValueError):
        inj.storm_hook(lambda: 0.0, start_ns=5.0, end_ns=5.0)
    with pytest.raises(ValueError):
        inj.storm_hook(lambda: 0.0, start_ns=0.0, end_ns=1.0, rate=1.5)


def test_storm_hook_respects_per_key_cap():
    store = make_store()
    inj = FaultInjector(store, seed=1)
    clock = {"ns": 50.0}
    store.add_fault_hook(inj.storm_hook(
        lambda: clock["ns"], start_ns=0.0, end_ns=100.0, rate=1.0,
        max_failures_per_key=2))
    for _ in range(2):
        with pytest.raises(TransientFault):
            store.put("key", b"x")
    store.put("key", b"x")  # third attempt sails through


# -- write-path verify ------------------------------------------------------


def test_put_does_not_launder_silent_corruption():
    """Writing into a stripe with a silently corrupted neighbor must
    repair the neighbor first — not bake the bad bytes into fresh
    parity and checksums."""
    store = PMStore(4, 2, block_bytes=256)
    store.put("victim", b"A" * 200)
    inj = FaultInjector(store, seed=2)
    inj.bit_flip(stripe=0, block=0, nbits=4)   # victim's block, silent
    # A later put lands in the same (not-full) stripe and would
    # re-encode parity over the corrupt block.
    store.put("neighbor", b"B" * 200)
    assert store.get("victim") == b"A" * 200
    assert Scrubber(store).scrub().clean


def test_verify_reads_repairs_before_serving():
    store = PMStore(4, 2, block_bytes=256, verify_reads=True)
    store.put("obj", b"C" * 600)
    inj = FaultInjector(store, seed=4)
    inj.scribble(stripe=0, block=1, length=48)
    assert store.get("obj") == b"C" * 600    # served bit-exact
    assert Scrubber(store).scrub().clean     # and healed in place


def test_verify_stripe_reports_and_repairs():
    store = PMStore(4, 2, block_bytes=256)
    store.put("obj", b"D" * 512)
    inj = FaultInjector(store, seed=6)
    inj.bit_flip(stripe=0, block=2, nbits=1)
    corrupt = store.verify_stripe(0)
    assert corrupt == [2]
    assert store.lost_blocks(0) == frozenset()
    assert store.verify_stripe(0) == []
