"""Tests for the one-call comparison API."""

import pytest

from repro import Workload
from repro.bench.compare import compare_libraries


def _cmp(**kw):
    base = dict(k=6, m=3, block_bytes=1024, data_bytes_per_thread=24 * 1024)
    base.update(kw)
    return compare_libraries(Workload(**base),
                             include=("ISA-L", "DIALGA"))


def test_winner_is_dialga_on_pm_smallblocks():
    c = _cmp()
    assert c.winner == "DIALGA"


def test_speedup_table():
    c = _cmp()
    s = c.speedup_over("ISA-L")
    assert s["ISA-L"] == pytest.approx(1.0)
    assert s["DIALGA"] > 1.0
    with pytest.raises(ValueError):
        c.speedup_over("Zerasure")


def test_str_contains_ranking():
    out = str(_cmp())
    assert "winner" in out and "GB/s" in out


def test_unsupported_rendered():
    c = compare_libraries(
        Workload(k=48, m=4, block_bytes=1024, data_bytes_per_thread=48 * 1024),
        include=("ISA-L", "Zerasure"))
    assert "unsupported" in str(c)
    assert c.results["Zerasure"] is None
