"""Coordinator decision-path tests beyond the basics."""

import pytest

from repro import HardwareConfig, Workload
from repro.core import AdaptiveCoordinator, CoordinatorConfig
from repro.core.buffer_friendly import thrash_thread_bound
from repro.simulator import Counters

HW = HardwareConfig()


def _wl(**kw):
    base = dict(k=8, m=4, block_bytes=1024, data_bytes_per_thread=64 * 1024)
    base.update(kw)
    return Workload(**base)


def test_wide_stripe_threshold_from_buffer_capacity():
    """For k=48 the effective threshold is the 8-thread buffer bound,
    not the testbed's 12 (§5.3's 8 x 48 streams)."""
    assert thrash_thread_bound(48, HW.pm) == 8
    below = AdaptiveCoordinator(_wl(k=48, nthreads=8), HW).policy
    above = AdaptiveCoordinator(_wl(k=48, nthreads=9), HW).policy
    assert below.hw_prefetch and not above.hw_prefetch
    assert above.xpline_granularity


def test_narrow_stripe_keeps_paper_threshold():
    """For k=8 the buffer bound (48 threads) exceeds 12, so the paper's
    observed 12-thread threshold governs."""
    at = AdaptiveCoordinator(_wl(k=8, nthreads=12), HW).policy
    above = AdaptiveCoordinator(_wl(k=8, nthreads=13), HW).policy
    assert at.hw_prefetch and not above.hw_prefetch


def test_tiny_stripe_no_room_for_bf_distance():
    """One 64 B line per block: the k+4 first-line distance can't fit."""
    wl = _wl(k=2, block_bytes=64, data_bytes_per_thread=1024)
    pol = AdaptiveCoordinator(wl, HW).policy
    assert pol.bf_first_distance is None
    assert pol.sw_distance is not None


def test_high_pressure_distance_never_exceeds_elements():
    wl = _wl(k=2, block_bytes=64, nthreads=32, data_bytes_per_thread=1024)
    pol = AdaptiveCoordinator(wl, HW).policy
    assert pol.sw_distance <= 2 * 1 - 1 or pol.sw_distance == 1


def test_set_baseline_overrides_first_sample():
    coord = AdaptiveCoordinator(_wl(), HW)
    cal = Counters()
    cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 15_000.0, 20
    coord.set_baseline(cal)
    assert coord.baseline_latency_ns == 15.0
    assert coord.baseline_useless_per_load == pytest.approx(0.02)
    # a hot first sample now registers as contention immediately
    hot = Counters()
    hot.loads, hot.load_stall_ns, hot.hwpf_useless = 1000, 40_000.0, 200
    coord.observe(hot)
    assert not coord.policy.hw_prefetch


def test_set_baseline_ignores_empty_sample():
    coord = AdaptiveCoordinator(_wl(), HW)
    coord.set_baseline(Counters())
    assert coord.baseline_latency_ns is None


def test_dynamic_switch_goes_full_high_pressure():
    """The contention switch applies the complete §4.3.3 strategy,
    not just the streamer toggle."""
    coord = AdaptiveCoordinator(_wl(nthreads=10), HW)
    cal = Counters()
    cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 10_000.0, 10
    coord.set_baseline(cal)
    hot = Counters()
    hot.loads, hot.load_stall_ns, hot.hwpf_useless = 1000, 30_000.0, 100
    coord.observe(hot)
    assert not coord.policy.hw_prefetch
    assert coord.policy.xpline_granularity


def test_relief_restores_exact_saved_policy():
    coord = AdaptiveCoordinator(_wl(nthreads=10), HW)
    original = coord.policy
    cal = Counters()
    cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 10_000.0, 10
    coord.set_baseline(cal)
    hot = Counters()
    hot.loads, hot.load_stall_ns, hot.hwpf_useless = 1000, 30_000.0, 100
    coord.observe(hot)
    cool = Counters()
    cool.loads, cool.load_stall_ns = 1000, 10_000.0
    coord.observe(cool)
    assert coord.policy == original
    assert coord.switches == 2


def test_initial_high_pressure_never_restores_to_low():
    """A job that *starts* high-pressure has no saved policy; relief
    alone must not flip it to an unvetted low-pressure policy."""
    coord = AdaptiveCoordinator(_wl(nthreads=16), HW)
    cool = Counters()
    cool.loads, cool.load_stall_ns = 1000, 5_000.0
    coord.observe(cool)
    coord.observe(cool)
    assert not coord.policy.hw_prefetch
    assert coord.switches == 0


def test_custom_thresholds_respected():
    cfg = CoordinatorConfig(latency_factor=5.0, useless_growth_factor=100.0)
    coord = AdaptiveCoordinator(_wl(), HW, config=cfg)
    cal = Counters()
    cal.loads, cal.load_stall_ns, cal.hwpf_useless = 1000, 10_000.0, 10
    coord.set_baseline(cal)
    warm = Counters()
    warm.loads, warm.load_stall_ns, warm.hwpf_useless = 1000, 30_000.0, 100
    coord.observe(warm)  # 3x latency < 5x threshold: no switch
    assert coord.policy.hw_prefetch


def test_policy_probe_backs_off_bf_when_uniform_wins():
    calls = []

    def policy_probe(policy):
        calls.append(policy)
        # pretend the uniform policy is faster (lower latency)
        return 1.0 if policy.bf_first_distance is None else 2.0

    coord = AdaptiveCoordinator(_wl(), HW, probe=lambda d: abs(d - 10),
                                policy_probe=policy_probe)
    assert coord.policy.bf_first_distance is None
    assert len(calls) == 2


def test_policy_probe_keeps_bf_when_split_wins():
    def policy_probe(policy):
        return 2.0 if policy.bf_first_distance is None else 1.0

    coord = AdaptiveCoordinator(_wl(), HW, probe=lambda d: abs(d - 10),
                                policy_probe=policy_probe)
    assert coord.policy.bf_first_distance is not None


def test_4kb_blocks_skip_bf_split():
    coord = AdaptiveCoordinator(_wl(block_bytes=4096), HW,
                                probe=lambda d: abs(d - 10))
    assert coord.policy.bf_first_distance is None
    assert coord.policy.hw_prefetch
