"""Tests for the trace validator — and, through it, every generator."""

import pytest

from repro.simulator.params import CPUConfig
from repro.trace import IsalVariant, Trace, Workload, isal_trace
from repro.trace.layout import StripeLayout
from repro.trace.ops import LOAD, STORE, SWPF, FENCE
from repro.trace.validate import TraceValidationError, validate_isal_trace

CPU = CPUConfig()


def _wl(**kw):
    base = dict(k=6, m=3, block_bytes=1024, data_bytes_per_thread=24 * 1024)
    base.update(kw)
    return Workload(**base)


@pytest.mark.parametrize("variant", [
    IsalVariant(),
    IsalVariant(sw_prefetch_distance=6),
    IsalVariant(sw_prefetch_distance=6, bf_first_line_distance=12),
    IsalVariant(shuffle=True),
    IsalVariant(xpline_granularity=True),
    IsalVariant(shuffle=True, xpline_granularity=True,
                sw_prefetch_distance=12),
], ids=["plain", "swpf", "bf", "shuffle", "xpline", "highpressure"])
def test_all_variants_produce_valid_traces(variant):
    wl = _wl()
    trace = isal_trace(wl, CPU, variant)
    stats = validate_isal_trace(trace, wl)
    assert stats.duplicate_data_loads == 0
    assert stats.fences == wl.stripes_per_thread


def test_decompose_validates_with_reloads():
    wl = _wl(k=8, data_bytes_per_thread=32 * 1024)
    trace = isal_trace(wl, CPU, IsalVariant(decompose_group=4))
    stats = validate_isal_trace(trace, wl, reloads_allowed=True)
    assert stats.loads > stats.data_lines_covered  # parity reloads happen


def test_lrc_trace_validates():
    wl = _wl(lrc_l=3)
    stats = validate_isal_trace(isal_trace(wl, CPU), wl)
    # stores include local parities
    assert stats.stores == wl.stripes_per_thread * 16 * (wl.m + 3)


def test_decode_trace_validates():
    wl = _wl(op="decode", erasures=2)
    stats = validate_isal_trace(isal_trace(wl, CPU), wl)
    assert stats.stores == wl.stripes_per_thread * 16 * 2


def test_stripe_offset_respected():
    wl = _wl(data_bytes_per_thread=12 * 1024)
    trace = isal_trace(wl, CPU, stripe_offset=5)
    stats = validate_isal_trace(trace, wl, stripe_offset=5)
    assert stats.data_lines_covered > 0
    with pytest.raises(TraceValidationError, match="outside"):
        validate_isal_trace(trace, wl, stripe_offset=0)


def test_detects_unaligned_address():
    wl = _wl()
    t = Trace(ops=[(LOAD, 3)])
    with pytest.raises(TraceValidationError, match="unaligned"):
        validate_isal_trace(t, wl, expect_full_coverage=False)


def test_detects_coverage_hole():
    wl = _wl(data_bytes_per_thread=6 * 1024)
    trace = isal_trace(wl, CPU)
    trace.ops = [op for op in trace.ops if op[0] != LOAD or op[1] % 4096]
    with pytest.raises(TraceValidationError, match="coverage hole"):
        validate_isal_trace(trace, wl)


def test_detects_duplicate_loads():
    wl = _wl(data_bytes_per_thread=6 * 1024)
    trace = isal_trace(wl, CPU)
    first_load = next(op for op in trace.ops if op[0] == LOAD)
    trace.ops.append(first_load)
    with pytest.raises(TraceValidationError, match="more than once"):
        validate_isal_trace(trace, wl)


def test_detects_store_to_data_block():
    wl = _wl(data_bytes_per_thread=6 * 1024)
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    trace = isal_trace(wl, CPU)
    trace.ops.append((STORE, lay.line_addr(0, 0, 0)))
    with pytest.raises(TraceValidationError, match="non-destination"):
        validate_isal_trace(trace, wl)


def test_detects_parity_prefetch():
    wl = _wl(data_bytes_per_thread=6 * 1024)
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    trace = isal_trace(wl, CPU)
    trace.ops.insert(0, (SWPF, lay.line_addr(0, wl.k, 0)))
    with pytest.raises(TraceValidationError, match="non-source"):
        validate_isal_trace(trace, wl)


def test_decode_loads_surviving_parity_blocks():
    """Decode must read the erasures' worth of parity, not the erased data."""
    wl = _wl(op="decode", erasures=2)
    trace = isal_trace(wl, CPU)
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    loaded_blocks = {
        ((a - lay.thread_base) // 4096) % (wl.k + wl.m)
        for op, a in trace.ops if op == LOAD
    }
    assert loaded_blocks == set(range(2, wl.k)) | {wl.k, wl.k + 1}
    stored_blocks = {
        ((a - lay.thread_base) // 4096) % (wl.k + wl.m)
        for op, a in trace.ops if op == STORE
    }
    assert stored_blocks == {0, 1}


def test_detects_missing_fence():
    wl = _wl(data_bytes_per_thread=6 * 1024)
    trace = isal_trace(wl, CPU)
    trace.ops = [op for op in trace.ops if op[0] != FENCE]
    with pytest.raises(TraceValidationError, match="fences"):
        validate_isal_trace(trace, wl)
