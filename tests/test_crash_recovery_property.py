"""Property-based crash testing: any crash point, any tearing, any op
mix — recovery must land on a consistent committed state."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crash import CrashInjector, CrashScenario, PowerCut
from repro.crash.injector import _Boundary
from repro.pmstore import PMStore, seeded_line_policy
from repro.pmstore.pmem import keep_flushed


def _payload(rng, nbytes):
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


def _store(k=3, m=2, block_bytes=256):
    return PMStore(k, m, block_bytes=block_bytes,
                   pm_capacity_bytes=1 << 20, wal_capacity_bytes=1 << 20)


# -- the update_parity mid-delta property (satellite) ------------------------


@st.composite
def interrupted_update(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    boundary = draw(st.integers(min_value=0, max_value=40))
    policy = draw(st.sampled_from(["drop", "keep", "tear"]))
    return seed, boundary, policy


@given(interrupted_update())
@settings(max_examples=30, deadline=None)
def test_update_parity_interrupted_mid_delta_yields_old_or_new(case):
    """RSCode.update_parity through the store, cut at any flush/fence
    boundary under any crash policy: after recovery the stripe holds
    entirely-old or entirely-new data AND parity — never a mix (the
    write hole), and parity always re-encodes from the data."""
    seed, boundary_index, policy_name = case
    rng = np.random.default_rng(seed)
    old = _payload(rng, 600)
    new = _payload(rng, 600)

    store = _store()
    store.put("k", old)
    parity_old = store._stripes[0].parity.copy()
    data_old = store._stripes[0].data.copy()

    boundary = _Boundary(target=boundary_index)
    store.domain.persist_hooks.append(boundary)
    store.wal.domain.persist_hooks.append(boundary)
    try:
        store.update("k", new)   # the delta-parity small-write path
        boundary.armed = False
        crashed = False
    except PowerCut:
        boundary.armed = False
        crashed = True

    policy = {"drop": None, "keep": keep_flushed,
              "tear": seeded_line_policy(np.random.default_rng(seed + 1))
              }[policy_name]
    store.crash(policy)
    store.recover()

    value = store.get("k")
    assert value in (old, new)
    if not crashed:
        assert value == new      # acked update must be the outcome
    # never a mix: data AND parity must both match the same epoch
    stripe = store._stripes[0]
    if value == old:
        assert np.array_equal(stripe.data, data_old)
        assert np.array_equal(stripe.parity, parity_old)
    # and parity must re-encode exactly from the recovered data
    assert np.array_equal(store._compute_parity(stripe.data), stripe.parity)
    assert store.verify_stripe(0, repair=False) == []


# -- random scenarios, random crash points -----------------------------------


@st.composite
def random_crash_case(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    nops = draw(st.integers(min_value=2, max_value=8))
    k = draw(st.integers(min_value=2, max_value=4))
    m = draw(st.integers(min_value=1, max_value=3))
    policy = draw(st.sampled_from(["drop", "keep", "tear"]))
    frac = draw(st.floats(min_value=0.0, max_value=1.0))
    return seed, nops, k, m, policy, frac


def _random_scenario(seed, nops, k, m):
    rng = np.random.default_rng(seed)
    ops, live = [], []
    sizes = {}
    for _ in range(nops):
        roll = rng.integers(4)
        if roll == 0 and live:
            key = live[int(rng.integers(len(live)))]
            ops.append(("update", key, _payload(rng, sizes[key])))
        elif roll == 1 and len(live) > 1:
            key = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", key))
            sizes.pop(key)
        else:
            key = f"o{len(sizes)}-{int(rng.integers(1000))}"
            sizes[key] = int(rng.integers(64, k * 256))
            live.append(key)
            ops.append(("put", key, _payload(rng, sizes[key])))
    return CrashScenario(name=f"prop({seed})", k=k, m=m, block_bytes=256,
                         ops=tuple(ops))


@given(random_crash_case())
@settings(max_examples=25, deadline=None)
def test_any_crash_point_passes_all_invariants(case):
    seed, nops, k, m, policy_name, frac = case
    scenario = _random_scenario(seed, nops, k, m)
    injector = CrashInjector(scenario)
    total = injector.count_boundaries()
    if total == 0:
        return
    boundary = min(int(frac * total), total - 1)
    if policy_name == "drop":
        result = injector.run_point(boundary)
    elif policy_name == "keep":
        result = injector.run_point(boundary, keep_flushed, "keep_flushed")
    else:
        result = injector.run_point(
            boundary, seeded_line_policy(np.random.default_rng(seed + 2)),
            "seeded_tear")
    assert result.passed, result.summary() + "\n" + "\n".join(
        inv.summary() for inv in result.invariants)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_double_crash_during_recovery_converges(seed):
    """Crash, recover, crash again immediately (recovery work unfenced
    at an arbitrary prefix), recover again: still a fixed point."""
    rng = np.random.default_rng(seed)
    store = _store()
    for i in range(3):
        store.put(f"o{i}", _payload(rng, int(rng.integers(64, 700))))
    store.update("o1", store.get("o1")[::-1])
    store.crash(seeded_line_policy(rng))
    store.recover()
    # second cut mid-everything: pending lines (if any) torn again
    store.crash(seeded_line_policy(rng))
    store.recover()
    d1 = store.state_digest()
    store.recover()
    assert store.state_digest() == d1
    for i in range(3):
        assert store.get(f"o{i}")   # all acked objects still readable


@pytest.mark.slow
@given(random_crash_case())
@settings(max_examples=10, deadline=None)
def test_soak_random_scenarios_full_enumeration(case):
    """Slow soak: exhaustively enumerate every boundary of random
    scenarios (not just one sampled point per case)."""
    seed, nops, k, m, _, _ = case
    scenario = _random_scenario(seed, nops, k, m)
    report = CrashInjector(scenario).campaign(tear_rounds=10, seed=seed)
    assert report.all_passed, "\n".join(report.failures[:10])
