"""Property-based tests: fast-forward exactness and digest algebra."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.simulator import Counters, CoreCache, HardwareConfig, simulate
from repro.simulator.cache import DEMAND, HWPF, SWPF as SWPF_SRC
from repro.simulator.params import CacheConfig
from repro.simulator.readbuffer import PMReadBuffer
from repro.simulator.streamprefetcher import StreamPrefetcher
from repro.simulator.params import PrefetcherConfig
from repro.trace.ops import COMPUTE, FENCE, LOAD, STORE, SWPF, Trace

HW = HardwareConfig(cache=CacheConfig(l2_kb=16))

#: One per-stripe kernel op: (opcode, base arg). Addresses are line
#: aligned inside a small window; COMPUTE carries a cycle count.
_kernel_op = st.one_of(
    st.tuples(st.just(LOAD), st.integers(0, 31).map(lambda n: n * 64)),
    st.tuples(st.just(STORE), st.integers(0, 31).map(lambda n: n * 64)),
    st.tuples(st.just(SWPF), st.integers(0, 31).map(lambda n: n * 64)),
    st.tuples(st.just(COMPUTE), st.integers(1, 50).map(float)),
)

_ADDR_OPS = (LOAD, STORE, SWPF)


def periodic_trace(kernel, stride, periods):
    ops = []
    for p in range(periods):
        shift = p * stride
        for op, arg in kernel:
            ops.append((op, arg + shift if op in _ADDR_OPS else arg))
        ops.append((FENCE, 0))
    return Trace(ops=ops)


def assert_identical(a, b):
    assert a == b
    assert a.makespan_ns == b.makespan_ns
    for f in dataclasses.fields(a.counters):
        assert getattr(a.counters, f.name) == getattr(b.counters, f.name), \
            f.name


@given(kernel=st.lists(_kernel_op, min_size=3, max_size=10),
       stride_pages=st.integers(1, 8),
       periods=st.integers(30, 150))
@settings(max_examples=25, deadline=None)
def test_fastforward_byte_identical_on_periodic_traces(
        kernel, stride_pages, periods):
    """Randomized periodic traces: fast-forward output (makespan plus
    every counter) equals plain interpretation bit for bit, whether or
    not steady state was reached."""
    tr = periodic_trace(kernel, stride_pages * 4096, periods)
    plain = simulate(tr, HW, fastforward=False)
    fast = simulate(tr, HW, fastforward=True)
    assert_identical(plain, fast)


@given(kernel=st.lists(_kernel_op, min_size=3, max_size=8),
       stride_pages=st.integers(1, 4),
       periods=st.integers(20, 60),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_perturbed_traces_never_engage(kernel, stride_pages, periods, data):
    """A fault-style perturbation every few stripes leaves no periodic
    run long enough to validate: fast-forward must decline and fall
    back to plain interpretation, still bit-identical."""
    tr = periodic_trace(kernel, stride_pages * 4096, periods)
    ops = list(zip(tr.opcodes, tr.args))
    row = len(kernel) + 1
    # Knock one op per 3-period window out of pattern (MIN_PERIODS=4
    # clean consecutive periods can then never occur).
    for p in range(0, periods, 3):
        i = p * row + data.draw(st.integers(0, row - 2), label=f"slot{p}")
        op, arg = ops[i]
        ops[i] = (COMPUTE, 1e6) if op != COMPUTE else (COMPUTE, arg + 0.5)
    tr2 = Trace(ops=ops)
    plain = simulate(tr2, HW, fastforward=False)
    fast = simulate(tr2, HW, fastforward=True)
    assert not fast.fastforward["engaged"]
    assert fast.fastforward["periods_skipped"] == 0
    assert_identical(plain, fast)


@given(addrs=st.lists(st.integers(0, 500), min_size=1, max_size=60,
                      unique=True),
       data=st.data(),
       a=st.integers(0, 50), b=st.integers(0, 50),
       ta=st.integers(0, 10 ** 6), tb=st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_cache_relabel_is_a_group_action(addrs, data, a, b, ta, tb):
    """relabel(a, ta) then relabel(b, tb) == relabel(a+b, ta+tb), and
    the shift-invariant digest is invariant under both."""
    now = 1000.0
    grain = 4096
    specs = [
        (addr * 64,
         float(data.draw(st.integers(0, 5000), label=f"arr{addr}")),
         data.draw(st.sampled_from([DEMAND, HWPF, SWPF_SRC]),
                   label=f"src{addr}"))
        for addr in addrs
    ]

    # Integer-valued floats below 2**53: every addition is exact, so
    # the composition law holds with equality, not approximately.
    def build():
        cache = CoreCache(128, Counters())
        for line, arrival, src in specs:
            cache.insert(line, arrival, src,
                         used=bool(line % 128), promo_ns=float(line % 7))
        return cache

    def snapshot(c):
        return [(addr, e.arrival_ns, e.source, e.used, e.promo_ns)
                for addr, e in c._lines.items()]

    c1 = build()
    dig0, live0 = c1.state_digest(now, 0)
    c1.relabel(a * grain, float(ta), now)
    c1.relabel(b * grain, float(tb), now)
    c2 = build()
    c2.relabel((a + b) * grain, float(ta + tb), now)
    assert snapshot(c1) == snapshot(c2)
    # Digest invariance: rebasing by the same shift recovers the
    # original digest entries (live offsets measured from the shifted
    # clock).
    dig1, live1 = c2.state_digest(now + ta + tb, (a + b) * grain)
    assert dig1 == dig0
    assert live1 == live0


@given(pages=st.lists(st.integers(0, 300), min_size=1, max_size=40,
                      unique=True),
       a=st.integers(0, 20), b=st.integers(0, 20))
@settings(max_examples=40, deadline=None)
def test_prefetcher_and_readbuffer_relabel_group_action(pages, a, b):
    cfg = PrefetcherConfig()
    grain = cfg.page_bytes

    def build_pf():
        pf = StreamPrefetcher(cfg, Counters())
        for i, page in enumerate(pages[:cfg.max_streams]):
            for line in range(min(3, 1 + i % 3)):
                pf.on_access(page * grain + line * 64)
        return pf

    p1 = build_pf()
    d0 = p1.state_digest(0)
    p1.relabel(a * grain)
    p1.relabel(b * grain)
    p2 = build_pf()
    p2.relabel((a + b) * grain)
    assert list(p1._table.items()) == list(p2._table.items())
    assert p2.state_digest((a + b) * grain) == d0

    def build_rb():
        rb = PMReadBuffer(32, 256, Counters())
        for page in pages:
            if not rb.access(page * 256):
                rb.fill(page * 256)
        return rb

    r1 = build_rb()
    rd0 = r1.state_digest(0)
    r1.relabel(a * 256)
    r1.relabel(b * 256)
    r2 = build_rb()
    r2.relabel((a + b) * 256)
    assert list(r1._entries.items()) == list(r2._entries.items())
    assert r2.state_digest((a + b) * 256) == rd0
