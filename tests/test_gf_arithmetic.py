"""Unit tests for vectorized GF arithmetic."""

import numpy as np
import pytest

from repro.gf import GF, gf4, gf8, gf16
from repro.gf.tables import _carryless_mul_mod


@pytest.fixture(params=[gf4, gf8, gf16], ids=["gf4", "gf8", "gf16"])
def field(request):
    return request.param


def test_add_is_xor(field):
    a = np.array([1, 2, 3], dtype=field.dtype)
    b = np.array([3, 2, 1], dtype=field.dtype)
    assert np.array_equal(field.add(a, b), a ^ b)


def test_mul_matches_reference(field):
    rng = np.random.default_rng(1)
    a = rng.integers(0, field.order, 50)
    b = rng.integers(0, field.order, 50)
    got = field.mul(a, b)
    want = [_carryless_mul_mod(int(x), int(y), field.tables.poly, field.w)
            for x, y in zip(a, b)]
    assert np.array_equal(got, np.array(want))


def test_mul_broadcasts(field):
    a = np.arange(1, 5, dtype=field.dtype)
    out = field.mul(a[:, None], a[None, :])
    assert out.shape == (4, 4)
    assert out[1, 1] == field.mul(2, 2)


def test_mul_identity_and_zero(field):
    a = np.arange(field.order if field.w <= 8 else 256, dtype=field.dtype)
    assert np.array_equal(field.mul(a, 1), a)
    assert not np.asarray(field.mul(a, 0)).any()


def test_div_inverts_mul(field):
    rng = np.random.default_rng(2)
    a = rng.integers(0, field.order, 30)
    b = rng.integers(1, field.order, 30)
    assert np.array_equal(field.div(field.mul(a, b), b), a.astype(field.dtype))


def test_div_by_zero_raises(field):
    with pytest.raises(ZeroDivisionError):
        field.div(5, 0)


def test_inv(field):
    a = np.arange(1, min(field.order, 300), dtype=field.dtype)
    assert np.all(field.mul(a, field.inv(a)) == 1)


def test_inv_zero_raises(field):
    with pytest.raises(ZeroDivisionError):
        field.inv(0)


def test_pow(field):
    assert field.pow(3, 0) == 1
    assert field.pow(3, 1) == 3
    assert field.pow(3, 2) == field.mul(3, 3)
    assert field.pow(0, 0) == 1
    assert field.pow(0, 5) == 0
    # Fermat: a^(order-1) == 1
    assert field.pow(7 % field.order or 3, field.order - 1) == 1


def test_pow_negative_exponent(field):
    assert field.pow(5 % field.order or 2, -1) == field.inv(5 % field.order or 2)


def test_mul_block_matches_elementwise():
    rng = np.random.default_rng(3)
    block = rng.integers(0, 256, 1024).astype(np.uint8)
    for coef in [0, 1, 2, 7, 255]:
        assert np.array_equal(
            gf8.mul_block(coef, block), gf8.mul(coef, block))


def test_mul_block_w16():
    rng = np.random.default_rng(4)
    block = rng.integers(0, 1 << 16, 128).astype(np.uint32)
    assert np.array_equal(gf16.mul_block(9, block), gf16.mul(9, block))


def test_mul_block_accumulate_inplace():
    rng = np.random.default_rng(5)
    block = rng.integers(0, 256, 256).astype(np.uint8)
    acc = rng.integers(0, 256, 256).astype(np.uint8)
    want = acc ^ gf8.mul_block(9, block)
    gf8.mul_block_accumulate(acc, 9, block)
    assert np.array_equal(acc, want)


def test_mul_block_accumulate_coef_edge_cases():
    block = np.array([1, 2, 3], dtype=np.uint8)
    acc = np.array([4, 5, 6], dtype=np.uint8)
    orig = acc.copy()
    gf8.mul_block_accumulate(acc, 0, block)
    assert np.array_equal(acc, orig)
    gf8.mul_block_accumulate(acc, 1, block)
    assert np.array_equal(acc, orig ^ block)


def test_matmul_against_scalar_loop():
    rng = np.random.default_rng(6)
    A = rng.integers(0, 256, (3, 4)).astype(np.uint8)
    B = rng.integers(0, 256, (4, 5)).astype(np.uint8)
    got = gf8.matmul(A, B)
    want = np.zeros((3, 5), dtype=np.uint8)
    for i in range(3):
        for j in range(5):
            acc = 0
            for t in range(4):
                acc ^= int(gf8.mul(int(A[i, t]), int(B[t, j])))
            want[i, j] = acc
    assert np.array_equal(got, want)


def test_matmul_shape_mismatch():
    with pytest.raises(ValueError, match="shape mismatch"):
        gf8.matmul(np.zeros((2, 3), np.uint8), np.zeros((4, 2), np.uint8))


def test_matmul_identity():
    I = np.eye(4, dtype=np.uint8)
    B = np.arange(16, dtype=np.uint8).reshape(4, 4)
    assert np.array_equal(gf8.matmul(I, B), B)
