"""The concurrent EC service: queue coalescing, Eq. (1) admission,
retry-under-faults, degraded reads and the metrics registry."""

import math

import numpy as np
import pytest

from repro.libs import GeometryMismatch
from repro.pmstore import FaultInjector, TransientFault
from repro.service import (
    AdmissionController,
    Batch,
    BatchKey,
    ErasureCodingService,
    LatencyHistogram,
    MetricsRegistry,
    Request,
    RequestKind,
    RequestQueue,
    RetryPolicy,
    ServiceConfig,
    eq1_thread_cap,
    get_wave,
    put_wave,
)
from repro.simulator.params import PMConfig


# --------------------------------------------------------------- queue

def _key(kind=RequestKind.PUT):
    return BatchKey(kind, 8, 4, 1024)


def test_queue_rejects_when_full():
    q = RequestQueue(max_depth=2)
    assert q.push(_key(), Request.put("a", b"x"))
    assert q.push(_key(), Request.put("b", b"x"))
    assert q.full
    assert not q.push(_key(), Request.put("c", b"x"))
    assert q.depth == 2 and q.peak_depth == 2


def test_pop_batch_coalesces_same_key_and_preserves_fifo():
    q = RequestQueue(max_depth=10)
    p1, p2, p3 = (Request.put(k, b"x") for k in "abc")
    g1 = Request.get("a")
    for key, req in ((_key(), p1), (_key(RequestKind.GET), g1),
                     (_key(), p2), (_key(), p3)):
        q.push(key, req)
    batch = q.pop_batch(max_batch=8)
    assert batch.key.kind is RequestKind.PUT
    assert batch.requests == [p1, p2, p3] and batch.coalesced
    # The non-matching GET kept its place at the head.
    nxt = q.pop_batch()
    assert nxt.requests == [g1] and not nxt.coalesced
    assert q.pop_batch() is None


def test_pop_batch_respects_max_batch():
    q = RequestQueue()
    reqs = [Request.put(str(i), b"x") for i in range(5)]
    for r in reqs:
        q.push(_key(), r)
    batch = q.pop_batch(max_batch=3)
    assert batch.requests == reqs[:3]
    assert q.pop_batch(max_batch=3).requests == reqs[3:]


# ----------------------------------------------------------- admission

def test_eq1_thread_cap_matches_the_papers_equation():
    pm = PMConfig()  # 96 KB buffer, 256 B XPLine
    k, m, d = 8, 4, 16
    per_thread = k * pm.xpline_bytes * math.ceil(d / (k + m))
    assert eq1_thread_cap(k, m, d, pm) == (pm.read_buffer_kb * 1024) // per_thread == 24


def test_eq1_thread_cap_never_starves():
    assert eq1_thread_cap(48, 4, 96 * 48, PMConfig()) == 1


def test_eq1_thread_cap_validates():
    with pytest.raises(ValueError, match="bad geometry"):
        eq1_thread_cap(0, 4, 16, PMConfig())


def test_admission_controller_accounting():
    ac = AdmissionController(8, 4, PMConfig())  # d_max=16 -> cap 24
    assert ac.capacity_threads == 24
    assert ac.try_admit(20) and ac.try_admit(4)
    assert ac.at_capacity and not ac.try_admit(1)
    assert ac.would_exceed(1) and ac.utilization == 1.0
    ac.release(4)
    assert not ac.at_capacity and ac.try_admit(4)
    assert ac.peak_threads == 24
    with pytest.raises(ValueError, match="releasing"):
        ac.release(25)


# --------------------------------------------------------------- retry

def test_retry_policy_backoff_schedule():
    p = RetryPolicy(max_attempts=5, base_delay_ns=100.0, factor=2.0,
                    max_delay_ns=350.0)
    assert [p.delay_ns(i) for i in (1, 2, 3, 4)] == [100.0, 200.0, 350.0,
                                                     350.0]
    assert p.total_delay_ns(3) == 650.0


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(factor=0.5)


# ------------------------------------------------------------- metrics

def test_latency_histogram_percentiles_are_nearest_rank():
    h = LatencyHistogram()
    for v in range(1, 101):
        h.record(float(v))
    assert h.percentile(50) == 50.0
    assert h.percentile(99) == 99.0
    assert h.percentile(100) == h.max_ns == 100.0
    assert h.mean_ns == 50.5
    with pytest.raises(ValueError):
        h.percentile(101)


def test_metrics_registry_snapshot_and_render():
    m = MetricsRegistry()
    m.inc("completed")
    m.inc("completed", 2)
    m.observe_latency("put", 1000.0)
    m.sample_queue_depth(3)
    m.sample_queue_depth(5)
    snap = m.snapshot()
    assert snap["counters"]["completed"] == 3
    assert snap["latency"]["put"]["count"] == 1
    assert snap["queue"]["max_depth"] == 5 and m.mean_queue_depth == 4.0
    assert m.count("nonexistent") == 0
    out = m.render()
    assert "completed" in out and "put latency" in out


# ------------------------------------------------------ service basics

def test_service_rejects_mismatched_library_geometry():
    from repro.libs import ISAL
    with pytest.raises(GeometryMismatch):
        ErasureCodingService(8, 4, library=ISAL(6, 3))


def test_put_then_get_round_trips_bytes():
    svc = ErasureCodingService(4, 2)
    payload = bytes(range(256)) * 3
    svc.submit(Request.put("obj", payload, arrival_ns=0.0))
    put_res, = svc.drain()
    assert put_res.ok and put_res.latency_ns > 0
    svc.submit(Request.get("obj", arrival_ns=svc.clock_ns + 1.0))
    get_res, = svc.drain()
    assert get_res.ok and get_res.value == payload


def test_get_of_missing_key_fails_without_retrying():
    svc = ErasureCodingService(4, 2)
    svc.submit(Request.get("ghost"))
    res, = svc.drain()
    assert not res.ok and "no such key" in res.error and res.retries == 0


def test_service_coalesces_concurrent_puts():
    svc = ErasureCodingService(
        4, 2, config=ServiceConfig(max_batch=8, max_queue_depth=32,
                                   threads_per_job=48))
    # One job occupies the whole Eq. (1) budget, so the simultaneous
    # arrivals back up in the queue and coalesce into big batches.
    assert svc.admission.capacity_threads == 48
    svc.submit_many(Request.put(f"k{i}", b"z" * 512) for i in range(16))
    results = svc.drain()
    assert all(r.ok for r in results)
    assert svc.metrics.count("coalesced_requests") > 0
    assert max(r.batch_size for r in results) > 1
    assert svc.metrics.count("batches") < 16


# ------------------------------------- fault injection + retry metrics

def test_injected_faults_are_retried_to_eventual_success():
    svc = ErasureCodingService(4, 2)
    inj = FaultInjector(svc.store, seed=5)
    svc.store.add_fault_hook(inj.transient_hook(rate=0.9,
                                                max_failures_per_key=2))
    svc.submit_many(Request.put(f"k{i}", b"y" * 256) for i in range(12))
    results = svc.drain()
    # max_failures_per_key < max_attempts: every put must succeed.
    assert all(r.ok for r in results)
    assert svc.metrics.count("faults_transient") > 0
    assert svc.metrics.count("retries") == svc.metrics.count("faults_transient")
    assert sum(r.retries for r in results) == svc.metrics.count("retries")
    assert svc.metrics.count("failed") == 0


def test_retries_exhausted_fails_the_request():
    svc = ErasureCodingService(
        4, 2, config=ServiceConfig(retry=RetryPolicy(max_attempts=2)))
    inj = FaultInjector(svc.store, seed=0)
    svc.store.add_fault_hook(inj.transient_hook(rate=1.0,
                                                max_failures_per_key=99))
    svc.submit(Request.put("doomed", b"x"))
    res, = svc.drain()
    assert not res.ok and res.retries == 1
    assert "transient" in res.error
    assert svc.metrics.count("failed") == 1


def test_transient_fault_is_raised_by_hook_directly():
    svc = ErasureCodingService(4, 2)
    inj = FaultInjector(svc.store, seed=0)
    svc.store.add_fault_hook(inj.transient_hook(rate=1.0,
                                                max_failures_per_key=1))
    with pytest.raises(TransientFault):
        svc.store.put("k", b"v")
    svc.store.put("k", b"v")  # second attempt passes (per-key cap)


# ------------------------------------------------------ degraded reads

def test_device_loss_serves_degraded_reads_bit_exact():
    svc = ErasureCodingService(4, 2, block_bytes=256)
    rng = np.random.default_rng(0)
    payloads = {f"k{i}": rng.integers(0, 256, 4 * 256,
                                      dtype=np.uint8).tobytes()
                for i in range(6)}
    svc.submit_many(Request.put(k, v) for k, v in payloads.items())
    assert all(r.ok for r in svc.drain())
    svc.store.mark_device_lost(0)
    assert svc.store.lost_devices == frozenset({0})
    svc.submit_many(Request.get(k, arrival_ns=svc.clock_ns + 1.0)
                    for k in payloads)
    results = svc.drain()
    assert all(r.ok for r in results)
    assert all(r.degraded for r in results)  # full-stripe objects
    assert svc.metrics.count("degraded_reads") == len(payloads)
    for r in results:
        assert r.value == payloads[r.request.key]


def test_restore_device_ends_degraded_mode():
    svc = ErasureCodingService(4, 2, block_bytes=256)
    svc.submit(Request.put("k", bytes(4 * 256)))
    svc.drain()
    svc.store.mark_device_lost(1)
    assert svc.store.is_degraded("k")
    svc.store.restore_device(1)
    assert not svc.store.is_degraded("k")
    svc.submit(Request.get("k", arrival_ns=svc.clock_ns + 1.0))
    res, = svc.drain()
    assert res.ok and not res.degraded


# ------------------------------- admission under load (the invariant)

def test_rejections_happen_only_at_the_eq1_cap():
    svc = ErasureCodingService(
        8, 4, config=ServiceConfig(max_queue_depth=8))
    svc.submit_many(put_wave(48, 2, payload_bytes=512,
                             mean_gap_ns=500.0, seed=3))
    results = svc.drain()
    rejected = [r for r in results if r.status.value == "rejected"]
    assert rejected, "load was meant to exceed the cap"
    assert svc.metrics.count("admission_rejected") == len(rejected)
    assert svc.metrics.count("rejected_below_cap") == 0
    assert svc.admission.peak_threads == svc.admission.capacity_threads
    assert all("Eq. (1)" in r.error for r in rejected)


def test_light_load_admits_everything():
    svc = ErasureCodingService(8, 4)
    svc.submit_many(put_wave(4, 1, mean_gap_ns=1e6, seed=1))
    results = svc.drain()
    assert all(r.ok for r in results)
    assert svc.metrics.count("admission_rejected") == 0


# ----------------------------------------------------- end-to-end shape

def test_full_traffic_cycle_metrics_snapshot_non_empty():
    svc = ErasureCodingService(8, 4)
    inj = FaultInjector(svc.store, seed=9)
    svc.store.add_fault_hook(inj.transient_hook(rate=0.2,
                                                max_failures_per_key=2))
    svc.submit_many(put_wave(32, 2, seed=2))
    put_results = svc.drain()
    stored = {r.request.key for r in put_results if r.ok}
    svc.store.mark_device_lost(3)
    svc.submit_many(r for r in get_wave(32, 2, start_ns=svc.clock_ns + 1e4)
                    if r.key in stored)
    get_results = svc.drain()
    assert all(r.ok for r in put_results if r.status.value != "rejected")
    assert all(r.ok for r in get_results)
    snap = svc.metrics.snapshot()
    assert snap["counters"], "metrics snapshot must not be empty"
    assert snap["counters"]["requests"] == len(svc.results)
    assert "put" in snap["latency"] and "get" in snap["latency"]
    assert snap["latency"]["put"]["p99_ns"] >= snap["latency"]["put"]["p50_ns"]
    assert snap["queue"]["samples"] > 0
    # Clock only moves forward, and every completion is timestamped.
    assert svc.clock_ns > 0
    assert all(r.latency_ns >= 0 for r in svc.results
               if r.latency_ns is not None)


def test_policy_switch_metric_exposed_via_library():
    from repro import DialgaConfig, DialgaEncoder
    enc = DialgaEncoder(4, 2, config=DialgaConfig(use_probe=False,
                                                  chunks=2))
    svc = ErasureCodingService(4, 2, library=enc)
    assert enc.policy_switches == 0
    svc.submit(Request.put("k", b"x" * 1024))
    svc.drain()
    # The counter key exists in the registry contract even when the
    # short run never flips policy.
    assert svc.metrics.count("policy_switches") >= 0
    assert enc.last_coordinator is not None
    assert enc.policy_switches == enc.last_coordinator.switches


def test_drain_is_reentrant_and_clock_persists():
    svc = ErasureCodingService(4, 2)
    svc.submit(Request.put("a", b"1"))
    svc.drain()
    t1 = svc.clock_ns
    svc.submit(Request.put("b", b"2", arrival_ns=t1 + 100.0))
    svc.drain()
    assert svc.clock_ns > t1
    assert len(svc.results) == 2


def test_raw_encode_requests_complete():
    svc = ErasureCodingService(8, 4,
                               config=ServiceConfig(threads_per_job=24))
    svc.submit_many(Request.encode(stripes=2) for _ in range(3))
    results = svc.drain()
    assert all(r.ok for r in results)
    # First job dispatches alone; the two queued behind it coalesce.
    assert svc.metrics.count("batches") == 2
    assert sorted(r.batch_size for r in results) == [1, 2, 2]
