"""Tests for the ASCII chart renderer."""

from repro.bench.plotting import ascii_chart
from repro.bench.report import FigureResult


def _fig(rows):
    fig = FigureResult("f", "t", ["a", "b"])
    for i, (a, b) in enumerate(rows):
        fig.add_row(f"p{i}", a=a, b=b)
    return fig


def test_chart_contains_marks_and_legend():
    out = ascii_chart(_fig([(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]))
    assert "o=a" in out and "x=b" in out
    assert "o" in out.split("\n")[0] or "x" in out.split("\n")[0]


def test_chart_scales_labels():
    out = ascii_chart(_fig([(0.0, 10.0), (5.0, 20.0)]))
    assert "20.00" in out and "0.00" in out


def test_chart_handles_missing_values():
    fig = FigureResult("f", "t", ["a"])
    fig.add_row("p0", a=1.0)
    fig.add_row("p1", a=None)
    fig.add_row("p2", a=3.0)
    grid_only = "\n".join(ascii_chart(fig).split("\n")[:-1])  # drop legend
    assert grid_only.count("o") == 2


def test_chart_flat_series():
    out = ascii_chart(_fig([(1.0, 1.0), (1.0, 1.0)]))
    assert "o" in out  # no division by zero


def test_chart_empty():
    assert "no numeric series" in ascii_chart(FigureResult("f", "t", ["a"]))


def test_chart_single_point():
    fig = FigureResult("f", "t", ["a"])
    fig.add_row("only", a=2.5)
    out = ascii_chart(fig)
    assert "only" in out


def test_chart_x_axis_labels():
    out = ascii_chart(_fig([(0, 0), (1, 1), (2, 2)]))
    assert "p0" in out and "p2" in out
